"""Checkpoint overhead: wall time with and without the run journal.

Superstep-granular checkpointing (DESIGN.md §9) buys crash-resumability
with fsync'd partition flushes and an atomic manifest replace after
every superstep.  This benchmark measures what that durability costs on
the postgresql-like pointer closure: same closure, same supersteps, the
delta is pure checkpoint I/O.  A resumed run from a mid-point crash is
timed as well, so the table shows the payoff next to the price.
"""

import time

from benchmarks.conftest import results_path
from repro.bench import render_table, rows_from_dicts, save_and_print
from repro.engine.engine import GraspanEngine
from repro.grammar.builtin import pointsto_grammar_extended
from repro.util.faults import FaultInjector, FaultPlan, InjectedCrash


def _run(graph, workdir, checkpoint, resume=False, injector=None):
    engine = GraspanEngine(
        pointsto_grammar_extended(),
        max_edges_per_partition=max(1000, graph.num_edges // 4),
        workdir=workdir,
        checkpoint=checkpoint,
        fault_injector=injector,
    )
    started = time.perf_counter()
    computation = engine.run(graph, resume=resume)
    wall = time.perf_counter() - started
    stats = computation.stats
    dur = stats.durability_summary()
    return {
        "mode": "",
        "final_edges": stats.final_edges,
        "supersteps": stats.num_supersteps,
        "checkpoints": dur["checkpoints_written"],
        "checkpoint_s": dur["checkpoint_s"],
        "io_s": round(stats.timers.get("io"), 3),
        "wall_s": round(wall, 3),
    }


def checkpoint_rows(graph, base_dir):
    rows = []
    off = _run(graph, base_dir / "off", checkpoint=False)
    off["mode"] = "checkpoint off"
    rows.append(off)
    on = _run(graph, base_dir / "on", checkpoint=True)
    on["mode"] = "checkpoint on"
    rows.append(on)
    # Crash halfway through, then resume: the durability payoff.
    crash_at = max(2, on["checkpoints"] // 2)
    injector = FaultInjector(FaultPlan(crash_after_commit=crash_at))
    try:
        _run(graph, base_dir / "resume", checkpoint=True, injector=injector)
    except InjectedCrash:
        pass
    resumed = _run(graph, base_dir / "resume", checkpoint=True, resume=True)
    resumed["mode"] = f"resume (from commit {crash_at})"
    rows.append(resumed)
    return rows


def test_checkpoint_overhead(benchmark, postgresql, tmp_path):
    graph = postgresql.pointer
    rows = benchmark.pedantic(
        checkpoint_rows, args=(graph, tmp_path), rounds=1, iterations=1
    )

    off, on, resumed = rows
    # Durability must not change the computed closure.
    assert on["final_edges"] == off["final_edges"]
    assert resumed["final_edges"] == off["final_edges"]
    assert off["checkpoints"] == 0
    assert on["checkpoints"] == on["supersteps"] + 1
    # The resumed run skips the already-committed supersteps.
    assert resumed["supersteps"] < on["supersteps"]

    text = render_table(
        "Checkpoint overhead (postgresql-like pointer closure)",
        [
            "mode",
            "edges",
            "supersteps",
            "ckpts",
            "ckpt (s)",
            "io (s)",
            "wall (s)",
        ],
        rows_from_dicts(
            rows,
            [
                "mode",
                "final_edges",
                "supersteps",
                "checkpoints",
                "checkpoint_s",
                "io_s",
                "wall_s",
            ],
        ),
        note="checkpoint = fsync'd partition flush + atomic manifest per superstep",
    )
    save_and_print(text, results_path("checkpoint_overhead.txt"))
