"""Table 4 — Linux bug breakdown by module.

Shape contract (paper): `drivers` carries the largest share of both the
NULL-deref bugs and the unnecessary NULL tests.
"""

from repro.bench import render_table, rows_from_dicts, save_and_print, table4_rows
from benchmarks.conftest import results_path


def test_table4_breakdown(benchmark, linux):
    rows = benchmark.pedantic(table4_rows, args=(linux,), rounds=1, iterations=1)
    per_module = [r for r in rows if r["module"] != "Total"]
    assert per_module, "expected at least one module with findings"
    top_untest = max(per_module, key=lambda r: r["untests"])
    assert top_untest["module"] == "drivers", (
        "drivers should dominate unnecessary NULL tests, got "
        f"{top_untest['module']}"
    )
    total = next(r for r in rows if r["module"] == "Total")
    assert total["null_derefs"] > 0 and total["untests"] > 0
    text = render_table(
        "Table 4: linux-like breakdown by module",
        ["module", "NULL derefs (GR)", "of which FP", "unnecessary NULL tests"],
        rows_from_dicts(rows, ["module", "null_derefs", "null_fps", "untests"]),
    )
    save_and_print(text, results_path("table4.txt"))
