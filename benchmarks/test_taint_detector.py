"""Taint/injection + async-misuse detectors — BL vs GR on all workloads.

Shape contract: the grammar-driven augmented detectors reach >= 0.9
precision and recall on every workload, suppress every sanitizer/spawn
decoy, and consume the taint closure already computed for the checker
bundle — zero extra engine runs and zero extra supersteps.  The taint
grammar closure itself is byte-identical across the serial, process,
and matmul join backends.  Machine-readable numbers land in
``results/BENCH_taint.json``.
"""

import json

import numpy as np

from repro.bench import render_table, rows_from_dicts, save_and_print, taint_rows
from repro.engine import GraspanEngine
from repro.engine.matmul import scipy_available
from repro.engine.parallel import shared_memory_available
from repro.frontend import taint_graph
from repro.grammar import taint_grammar
from benchmarks.conftest import results_path


def closure_arrays(graph, backend, num_threads=1):
    comp = GraspanEngine(
        taint_grammar(), parallel_backend=backend, num_threads=num_threads
    ).run(graph)
    mem = comp.to_memgraph()
    return np.asarray(mem.src).copy(), np.asarray(mem.keys).copy()


def test_taint_detector(benchmark, all_workloads):
    rows = benchmark.pedantic(
        taint_rows, args=(all_workloads,), rounds=1, iterations=1
    )

    for row in rows:
        assert row["injected"] > 0, row
        assert row["gr_precision"] >= 0.9, row
        assert row["gr_recall"] >= 0.9, row
        assert row["decoy_fp"] == 0, row
        assert row["extra_closure_runs"] == 0, row
        assert row["extra_closure_supersteps"] == 0, row

    # Baseline blind spots: the name-keyed taint scan misses the
    # interprocedural/heap flows and falls for the sanitizer decoys; the
    # direct-sleep async scan misses the wrapped blocking call.
    taint = [r for r in rows if r["checker"] == "Taint"]
    assert any(r["bl_recall"] < 1.0 for r in taint), taint
    assert any(r["bl_fp"] > 0 for r in taint), taint
    async_ = [r for r in rows if r["checker"] == "Async"]
    assert any(r["bl_recall"] < 1.0 for r in async_), async_

    # Backend equivalence: the taint closure must not depend on the join
    # data plane (same contract as the matmul backend, DESIGN.md §11).
    cw = next(c for c in all_workloads if c.name == "httpd")
    ctx = cw.analyses()
    graph = taint_graph(cw.pg, alias_pairs=ctx.pointsto.deref_alias_pairs())
    base_src, base_keys = closure_arrays(graph, "serial")
    checked = ["serial"]
    if shared_memory_available():
        src, keys = closure_arrays(graph, "process", num_threads=2)
        assert np.array_equal(base_src, src)
        assert np.array_equal(base_keys, keys)
        checked.append("process")
    if scipy_available():
        src, keys = closure_arrays(graph, "matmul")
        assert np.array_equal(base_src, src)
        assert np.array_equal(base_keys, keys)
        checked.append("matmul")

    columns = [
        "program",
        "checker",
        "injected",
        "bl_precision",
        "bl_recall",
        "gr_precision",
        "gr_recall",
        "bl_fp",
        "gr_fp",
        "decoy_fp",
        "tainted_vertices",
        "flows",
    ]
    text = render_table(
        "Taint + Async checkers: baseline (BL) vs Graspan grammar (GR)",
        [
            "program",
            "checker",
            "injected",
            "BL prec",
            "BL rec",
            "GR prec",
            "GR rec",
            "BL FP",
            "GR FP",
            "decoy FP",
            "tainted",
            "flows",
        ],
        rows_from_dicts(rows, columns),
        note="both checkers reuse the four closures already in hand "
        "(0 extra engine runs, 0 extra supersteps); closure "
        f"byte-identical across backends: {', '.join(checked)}",
    )
    save_and_print(text, results_path("taint_detector.txt"))

    with open(results_path("BENCH_taint.json"), "w") as fh:
        json.dump(
            {
                "rows": rows,
                "backends_byte_identical": checked,
                "closure_edges": int(base_keys.size),
            },
            fh,
            indent=2,
        )
        fh.write("\n")
