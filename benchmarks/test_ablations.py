"""Ablations of the design choices DESIGN.md calls out.

* old/new discipline vs full rejoin (Algorithm 1's reason to exist)
* merge-time batch dedup vs heap merge vs naive per-edge scan (§4.2)
* DDM-delta scheduling vs round-robin (§4.3)
"""

import numpy as np

from repro.bench import (
    ablation_dedup_merge,
    ablation_oldnew,
    ablation_scheduler,
    render_table,
    rows_from_dicts,
    save_and_print,
)
from repro.grammar import pointsto_grammar_extended
from benchmarks.conftest import results_path


def test_ablation_oldnew(benchmark, httpd):
    rows = benchmark.pedantic(
        ablation_oldnew,
        args=(httpd.pointer, pointsto_grammar_extended()),
        rounds=1,
        iterations=1,
    )
    full, oldnew = rows
    assert full["final_edges"] == oldnew["final_edges"], "same closure"
    # The old/new discipline must not produce MORE join output than the
    # full rejoin (which re-derives everything every iteration).
    assert oldnew["join_output_edges"] <= full["join_output_edges"]
    text = render_table(
        "Ablation: old/new edge discipline (Algorithm 1) vs full rejoin",
        ["variant", "seconds", "iterations", "join output", "final edges"],
        rows_from_dicts(
            rows,
            ["variant", "seconds", "iterations", "join_output_edges", "final_edges"],
        ),
    )
    save_and_print(text, results_path("ablation_oldnew.txt"))


def test_ablation_dedup(benchmark):
    rng = np.random.default_rng(7)
    arrays = [
        np.unique(rng.integers(0, 40_000, size=1500).astype(np.int64))
        for _ in range(24)
    ]
    rows = benchmark.pedantic(
        ablation_dedup_merge, args=(arrays,), rounds=1, iterations=1
    )
    by_variant = {r["variant"]: r["seconds"] for r in rows}
    assert (
        by_variant["vectorized sorted merge"]
        < by_variant["per-edge linear scan (naive)"]
    )
    text = render_table(
        "Ablation: duplicate-eliminating merge strategies",
        ["variant", "seconds"],
        rows_from_dicts(rows, ["variant", "seconds"]),
    )
    save_and_print(text, results_path("ablation_dedup.txt"))


def test_ablation_scheduler(benchmark, postgresql):
    rows = benchmark.pedantic(
        ablation_scheduler,
        args=(postgresql.pointer, pointsto_grammar_extended()),
        rounds=1,
        iterations=1,
    )
    ddm, rr = rows
    assert ddm["final_edges"] == rr["final_edges"], "schedulers agree on the closure"
    assert ddm["supersteps"] <= rr["supersteps"]
    text = render_table(
        "Ablation: DDM-delta scheduling vs round-robin",
        ["scheduler", "supersteps", "seconds", "I/O (s)", "final edges"],
        rows_from_dicts(
            rows, ["scheduler", "supersteps", "seconds", "io_s", "final_edges"]
        ),
    )
    save_and_print(text, results_path("ablation_scheduler.txt"))
