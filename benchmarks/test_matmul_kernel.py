"""Sparse-matmul join kernel against the serial edge-pair join.

The matmul backend (DESIGN.md §11) lowers each superstep iteration to
per-label boolean sparse matrix products: duplicate derivations collapse
inside scipy's C matmul instead of being materialized and merged away in
Python.  This benchmark runs the same closures with both backends,
checks they are byte-identical, and reports per-superstep compute time
side by side.  Two workload rows bound the behaviour:

* ``dense-reach`` — a random digraph under the reachability grammar; the
  closure is dense (~120k edges from 1.7k), exactly the duplicate-heavy
  regime the kernel targets.  This row must clear 10x.
* ``postgresql-pointer`` — the realistic pointer workload, sparser and
  label-diverse; speedup is reported, not asserted.

Machine-readable numbers land in ``results/BENCH_matmul.json``.
"""

import json

import numpy as np
import pytest

from benchmarks.conftest import results_path
from repro.bench import render_table, rows_from_dicts, save_and_print
from repro.engine.engine import GraspanEngine
from repro.engine.matmul import scipy_available
from repro.grammar import reachability_grammar
from repro.grammar.builtin import pointsto_grammar_extended
from repro.graph import MemGraph

pytestmark = pytest.mark.skipif(
    not scipy_available(), reason="scipy not installed"
)


def dense_reach_graph():
    """A random digraph whose transitive closure is dense."""
    rng = np.random.default_rng(42)
    n, m = 350, 1750
    edges = list(
        {(int(rng.integers(n)), int(rng.integers(n)), 0) for _ in range(m)}
    )
    return MemGraph.from_edges(edges, label_names=["E"])


def _run(graph, grammar, backend):
    computation = GraspanEngine(grammar, parallel_backend=backend).run(graph)
    mem = computation.to_memgraph()
    closure = (np.asarray(mem.src).copy(), np.asarray(mem.keys).copy())
    return computation.stats, closure


def workload_rows(name, graph, grammar):
    serial_stats, serial_closure = _run(graph, grammar, "serial")
    mm_stats, mm_closure = _run(graph, grammar, "matmul")
    # Equal closures or the timing comparison is meaningless.
    assert np.array_equal(serial_closure[0], mm_closure[0]), name
    assert np.array_equal(serial_closure[1], mm_closure[1]), name
    rows = []
    for i, (s, m) in enumerate(
        zip(serial_stats.supersteps, mm_stats.supersteps), start=1
    ):
        assert s.edges_added == m.edges_added
        rows.append(
            {
                "workload": name,
                "superstep": i,
                "edges_added": s.edges_added,
                "serial_s": round(s.seconds, 4),
                "matmul_s": round(m.seconds, 4),
                "speedup": round(s.seconds / m.seconds, 2)
                if m.seconds > 0
                else float("inf"),
                "products": m.matmul_products,
                "product_nnz": m.matmul_nnz,
                "blocks_built": m.matmul_blocks_built,
                "blocks_reused": m.matmul_blocks_reused,
            }
        )
    summary = {
        "workload": name,
        "final_edges": int(serial_stats.final_edges),
        "supersteps": serial_stats.num_supersteps,
        "serial_compute_s": round(serial_stats.timers.get("compute"), 3),
        "matmul_compute_s": round(mm_stats.timers.get("compute"), 3),
        "compute_speedup": round(
            serial_stats.timers.get("compute")
            / max(mm_stats.timers.get("compute"), 1e-9),
            2,
        ),
        "matmul": mm_stats.matmul_summary(),
    }
    return rows, summary


def collect(postgresql):
    dense_rows, dense_summary = workload_rows(
        "dense-reach", dense_reach_graph(), reachability_grammar()
    )
    pointer_rows, pointer_summary = workload_rows(
        "postgresql-pointer", postgresql.pointer, pointsto_grammar_extended()
    )
    return dense_rows + pointer_rows, [dense_summary, pointer_summary]


def test_matmul_kernel(benchmark, postgresql):
    rows, summaries = benchmark.pedantic(
        collect, args=(postgresql,), rounds=1, iterations=1
    )

    # The tentpole claim: on the dense workload the matmul lowering is at
    # least an order of magnitude faster per superstep at equal closures.
    dense = [r for r in rows if r["workload"] == "dense-reach"]
    assert max(r["speedup"] for r in dense) >= 10.0
    # The kernel actually ran as a kernel, not via a fallback path.
    assert all(s["matmul"]["products"] > 0 for s in summaries)

    columns = [
        "workload",
        "superstep",
        "edges_added",
        "serial_s",
        "matmul_s",
        "speedup",
        "products",
        "product_nnz",
        "blocks_built",
        "blocks_reused",
    ]
    text = render_table(
        "Matmul join kernel vs serial edge-pair join (equal closures)",
        [
            "workload",
            "superstep",
            "added",
            "serial (s)",
            "matmul (s)",
            "speedup",
            "products",
            "nnz",
            "built",
            "reused",
        ],
        rows_from_dicts(rows, columns),
        note="speedup = serial superstep compute / matmul superstep compute",
    )
    save_and_print(text, results_path("matmul_kernel.txt"))

    with open(results_path("BENCH_matmul.json"), "w") as fh:
        json.dump(
            {
                "supersteps": rows,
                "workloads": summaries,
                "max_row_speedup": max(r["speedup"] for r in rows),
            },
            fh,
            indent=2,
        )
        fh.write("\n")
