"""Closure-as-a-service latency: concurrent queries and delta re-closure.

Three measurements against one live daemon (DESIGN.md §14):

* **cold load** — compile + four store-backed closures + hot-partition
  pinning for a whole workload, the daemon's worst case;
* **sustained concurrent queries** — eight client threads hammering
  checker queries against the resident closures; per-request p50/p99
  round-trip latency is the serving-tier headline;
* **incremental vs cold** — a single-function edit re-closed through the
  store's delta path against a from-scratch run of the same mutated
  graph, the speedup row that justifies the store.

Machine-readable numbers land in ``results/BENCH_service.json``.
"""

from __future__ import annotations

import itertools
import json
import tempfile
import time
from pathlib import Path
from threading import Thread

import numpy as np

from benchmarks.conftest import results_path
from repro.bench import render_table, rows_from_dicts, save_and_print
from repro.engine.store import ClosureStore
from repro.grammar.builtin import pointsto_grammar_extended
from repro.service import ClosureDaemon, ServiceClient, ServiceThread

QUERY_WORKERS = 8
QUERIES_PER_WORKER = 5
#: The per-worker query mix: one broad all-checker sweep, then targeted
#: single-checker queries — the shape an editor integration produces.
CHECKER_MIX = [None, "Null", "Taint", "Free", "Race"]


def _function_edit(pg, graph):
    """New assignment flows inside one function (see tests/engine)."""
    label = graph.label_names.index("A")
    namer = pg.namer
    for fname in sorted(pg.lowered.functions):
        func = pg.lowered.functions[fname]
        names = sorted(set(func.params) | set(func.locals))
        if len(names) < 2:
            continue
        for a, b in itertools.combinations(names, 2):
            by_ctx = {namer.context(v): v for v in namer.vertices_for(fname, a)}
            extra = []
            for vb in namer.vertices_for(fname, b):
                va = by_ctx.get(namer.context(vb))
                if va is not None and not graph.has_edge(va, vb, label):
                    extra.append((va, vb, label))
            if extra:
                return graph.with_edges(extra)
    raise RuntimeError("no mutable function found")


def test_service_latency(httpd):
    sources = list(httpd.workload.sources)
    max_edges = max(500, httpd.pointer.num_edges // 6)
    latencies_ms = []
    errors = []

    with tempfile.TemporaryDirectory(prefix="closure-svc-") as tmp:
        daemon = ClosureDaemon(
            Path(tmp) / "store",
            max_edges_per_partition=max_edges,
            memory_budget=8 * 1024 * 1024,
            num_workers=QUERY_WORKERS,
        )
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port) as client:
                started = time.perf_counter()
                loaded = client.load(httpd.name, sources=sources)
                load_s = time.perf_counter() - started

                def worker():
                    try:
                        with ServiceClient(host, port) as c:
                            for i in range(QUERIES_PER_WORKER):
                                checker = CHECKER_MIX[i % len(CHECKER_MIX)]
                                t0 = time.perf_counter()
                                c.check(httpd.name, checker=checker)
                                latencies_ms.append(
                                    (time.perf_counter() - t0) * 1000.0
                                )
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [Thread(target=worker) for _ in range(QUERY_WORKERS)]
                query_start = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                query_wall_s = time.perf_counter() - query_start
                status = client.status()

        assert not errors
        assert len(latencies_ms) == QUERY_WORKERS * QUERIES_PER_WORKER

        # -- incremental vs cold, through the same store machinery ------
        grammar = pointsto_grammar_extended()
        store = ClosureStore(
            Path(tmp) / "delta-store", max_edges_per_partition=max_edges
        )
        base = store.closure(grammar, httpd.pointer)
        mutated = _function_edit(httpd.pg, httpd.pointer)

        t0 = time.perf_counter()
        incremental = store.closure(grammar, mutated)
        incremental_s = time.perf_counter() - t0
        assert incremental.stats.closure_source == "incremental"

        cold_store = ClosureStore(
            Path(tmp) / "cold-store", max_edges_per_partition=max_edges
        )
        t0 = time.perf_counter()
        cold = cold_store.closure(grammar, mutated)
        cold_s = time.perf_counter() - t0
        assert cold.stats.closure_source == "cold"
        assert incremental.stats.num_supersteps < cold.stats.num_supersteps

    p50 = float(np.percentile(latencies_ms, 50))
    p99 = float(np.percentile(latencies_ms, 99))
    qps = len(latencies_ms) / query_wall_s
    speedup = cold_s / incremental_s if incremental_s > 0 else float("inf")

    closures = status["programs"][httpd.name]["closures"]
    rows = [
        {
            "phase": "cold load (4 closures + pin)",
            "wall_s": round(load_s, 3),
            "detail": ",".join(
                f"{k}:{v['source']}" for k, v in sorted(loaded["closures"].items())
            ),
        },
        {
            "phase": f"{QUERY_WORKERS}x{QUERIES_PER_WORKER} concurrent checks",
            "wall_s": round(query_wall_s, 3),
            "detail": f"p50 {p50:.1f}ms p99 {p99:.1f}ms ({qps:.0f} q/s)",
        },
        {
            "phase": "incremental re-closure",
            "wall_s": round(incremental_s, 3),
            "detail": (
                f"{incremental.stats.num_supersteps} supersteps, "
                f"{incremental.stats.delta_seed_partitions} seeded"
            ),
        },
        {
            "phase": "cold re-closure (reference)",
            "wall_s": round(cold_s, 3),
            "detail": (
                f"{cold.stats.num_supersteps} supersteps; "
                f"incremental speedup {speedup:.1f}x"
            ),
        },
    ]
    text = render_table(
        "Closure-as-a-service: load, query latency, delta re-closure",
        ["phase", "wall s", "detail"],
        rows_from_dicts(rows, ["phase", "wall_s", "detail"]),
        note="daemon queries served from pinned-resident closures "
        "under an 8 MiB budget",
    )
    save_and_print(text, results_path("service_latency.txt"))

    with open(results_path("BENCH_service.json"), "w") as fh:
        json.dump(
            {
                "workload": httpd.name,
                "load_s": load_s,
                "query_workers": QUERY_WORKERS,
                "queries": len(latencies_ms),
                "query_wall_s": query_wall_s,
                "latency_p50_ms": p50,
                "latency_p99_ms": p99,
                "queries_per_s": qps,
                "residency": {
                    label: {
                        "peak_resident_bytes": c["peak_resident_bytes"],
                        "memory_budget": c["memory_budget"],
                        "pinned": len(c["pinned"]),
                    }
                    for label, c in closures.items()
                },
                "incremental_s": incremental_s,
                "cold_s": cold_s,
                "incremental_speedup": speedup,
                "incremental_supersteps": incremental.stats.num_supersteps,
                "cold_supersteps": cold.stats.num_supersteps,
                "base_supersteps": base.stats.num_supersteps,
            },
            fh,
            indent=2,
        )
