"""Shared fixtures: workloads compiled once per benchmark session."""

from __future__ import annotations

import os

import pytest

from repro.bench import CompiledWorkload, compile_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def results_path(name: str) -> str:
    return os.path.join(RESULTS_DIR, name)


@pytest.fixture(scope="session")
def linux(request) -> CompiledWorkload:
    return compile_workload("linux")


@pytest.fixture(scope="session")
def postgresql(request) -> CompiledWorkload:
    return compile_workload("postgresql")


@pytest.fixture(scope="session")
def httpd(request) -> CompiledWorkload:
    return compile_workload("httpd")


@pytest.fixture(scope="session")
def all_workloads(linux, postgresql, httpd):
    return [linux, postgresql, httpd]
