"""I/O overlap: the pipelined superstep loop against the sequential one.

The pipeline (DESIGN.md §10) overlaps the disk with the CPU: the
scheduler's predicted next pair is prefetched on a background thread
while the current superstep computes, and dirty partitions are flushed
asynchronously with the checkpoint commit lagging one superstep.  This
benchmark runs the same out-of-core pointer closure with the pipeline
off and on, checks the closures are byte-identical, and reports how much
background I/O was hidden under compute (the ``overlap`` column) plus
how often the prefetch guessed right.  Machine-readable numbers land in
``results/BENCH_pipeline.json`` for CI trend tracking.
"""

import json
import time

import numpy as np

from benchmarks.conftest import results_path
from repro.bench import render_table, rows_from_dicts, save_and_print
from repro.engine.engine import GraspanEngine
from repro.grammar.builtin import pointsto_grammar_extended


def _run(graph, workdir, pipeline):
    engine = GraspanEngine(
        pointsto_grammar_extended(),
        # Small partitions force a genuinely out-of-core run with enough
        # supersteps for the prefetcher to have something to predict.
        max_edges_per_partition=max(500, graph.num_edges // 8),
        workdir=workdir,
        memory_budget=None,
        pipeline=pipeline,
    )
    started = time.perf_counter()
    computation = engine.run(graph)
    wall = time.perf_counter() - started
    stats = computation.stats
    pipe = stats.pipeline_summary()
    closure = computation.to_memgraph()
    return {
        "mode": "pipeline on" if pipeline else "pipeline off",
        "final_edges": stats.final_edges,
        "supersteps": stats.num_supersteps,
        "io_s": round(stats.timers.get("io"), 3),
        "load_wait_s": pipe["load_wait_s"],
        "flush_wait_s": pipe["flush_wait_s"],
        "io_hidden_s": pipe["io_hidden_s"],
        "overlap": pipe["overlap_fraction"],
        "prefetch": (
            f"{pipe['prefetch_hits']}/{pipe['prefetch_issued']}"
            if pipeline
            else "-"
        ),
        "prefetch_issued": pipe["prefetch_issued"],
        "prefetch_hits": pipe["prefetch_hits"],
        "prefetch_wasted": pipe["prefetch_wasted"],
        "wall_s": round(wall, 3),
        "_closure": (
            np.asarray(closure.src).copy(),
            np.asarray(closure.keys).copy(),
        ),
    }


def overlap_rows(graph, base_dir):
    off = _run(graph, base_dir / "off", pipeline=False)
    on = _run(graph, base_dir / "on", pipeline=True)
    return [off, on]


def test_io_overlap(benchmark, postgresql, tmp_path):
    graph = postgresql.pointer
    rows = benchmark.pedantic(
        overlap_rows, args=(graph, tmp_path), rounds=1, iterations=1
    )
    off, on = rows

    # Overlapping I/O with compute must not change the closure by a byte.
    assert on["final_edges"] == off["final_edges"]
    assert np.array_equal(off["_closure"][0], on["_closure"][0])
    assert np.array_equal(off["_closure"][1], on["_closure"][1])
    # The pipeline actually overlapped: background I/O ran under compute
    # and the prefetcher's predictions landed at least once.
    assert on["overlap"] > 0.0
    assert on["prefetch_issued"] > 0
    assert on["prefetch_hits"] > 0
    # The sequential run has no background I/O at all.
    assert off["prefetch_issued"] == 0
    assert off["io_hidden_s"] == 0.0

    for row in rows:
        row.pop("_closure")
    columns = [
        "mode",
        "final_edges",
        "supersteps",
        "io_s",
        "io_hidden_s",
        "overlap",
        "prefetch",
        "load_wait_s",
        "flush_wait_s",
        "wall_s",
    ]
    text = render_table(
        "I/O pipeline overlap (postgresql-like pointer closure, out-of-core)",
        [
            "mode",
            "edges",
            "supersteps",
            "io (s)",
            "hidden (s)",
            "overlap",
            "prefetch",
            "load wait",
            "flush wait",
            "wall (s)",
        ],
        rows_from_dicts(rows, columns),
        note="overlap = background I/O seconds hidden under compute / total",
    )
    save_and_print(text, results_path("io_overlap.txt"))

    with open(results_path("BENCH_pipeline.json"), "w") as fh:
        json.dump(
            {
                "workload": "postgresql",
                "off": {k: off[k] for k in columns if k != "prefetch"},
                "on": {k: on[k] for k in columns if k != "prefetch"},
                "speedup_wall": round(off["wall_s"] / on["wall_s"], 3)
                if on["wall_s"] > 0
                else None,
            },
            fh,
            indent=2,
        )
        fh.write("\n")
