"""Race detector — precision/recall of BL vs GR, closure reuse.

Shape contract: the augmented detector finds every injected race
(recall 1.0) on all three workloads with strictly fewer false positives
than the name-keyed baseline, and does so on the pointer closure already
computed for the other checkers — zero extra engine runs.
"""

from repro.bench import race_rows, render_table, rows_from_dicts, save_and_print
from benchmarks.conftest import results_path


def test_race_detector(benchmark, all_workloads):
    rows = benchmark.pedantic(
        race_rows, args=(all_workloads,), rounds=1, iterations=1
    )
    for row in rows:
        assert row["injected"] > 0, row["program"]
        assert row["gr_recall"] == 1.0, row
        assert row["gr_fp"] < row["bl_fp"], row
        assert row["extra_closure_runs"] == 0
    text = render_table(
        "Race detector: lockset races, baseline (BL) vs Graspan (GR)",
        [
            "program",
            "injected",
            "BL prec",
            "BL rec",
            "GR prec",
            "GR rec",
            "BL FP",
            "GR FP",
            "threads",
            "shared",
            "pts reused",
        ],
        rows_from_dicts(
            rows,
            [
                "program",
                "injected",
                "bl_precision",
                "bl_recall",
                "gr_precision",
                "gr_recall",
                "bl_fp",
                "gr_fp",
                "threads",
                "shared_objects",
                "pts_facts_reused",
            ],
        ),
        note="race facts derived from the shared pointer closure "
        "(0 extra engine runs)",
    )
    save_and_print(text, results_path("race_detector.txt"))
