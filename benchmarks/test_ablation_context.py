"""Ablation: degree of context sensitivity (§3's inlining criteria).

The paper performs *full* context sensitivity, affordable only because
the out-of-core engine absorbs the cloned-graph blowup.  This ablation
quantifies the trade: bounded inlining depth vs graph size vs precision
(spurious points-to facts from merged contexts).
"""

from repro.analysis import PointsToAnalysis
from repro.bench import render_table, rows_from_dicts, save_and_print, measure
from repro.frontend import generate_graphs
from benchmarks.conftest import results_path


def _row(depth, httpd):
    pg = measure(
        lambda: generate_graphs(httpd.pg.lowered, context_depth=depth)
    )
    pts = measure(lambda: PointsToAnalysis().run(pg.value))
    facts = pts.value.num_points_to_facts
    return {
        "context_depth": "full" if depth is None else depth,
        "inlines": pg.value.inline_count,
        "vertices": pg.value.num_vertices,
        "pointsto_facts": facts,
        "gen_s": round(pg.seconds, 2),
        "analysis_s": round(pts.seconds, 2),
    }


def test_ablation_context_sensitivity(benchmark, httpd):
    rows = benchmark.pedantic(
        lambda: [_row(d, httpd) for d in (None, 2, 1, 0)],
        rounds=1,
        iterations=1,
    )
    full, *bounded = rows
    # Bounding the depth shrinks the cloned graph...
    assert all(r["vertices"] <= full["vertices"] for r in bounded)
    assert rows[-1]["inlines"] <= full["inlines"]
    text = render_table(
        "Ablation: context-sensitivity depth (full cloning vs bounded)",
        ["depth", "#inlines", "vertices", "points-to facts", "gen (s)", "analysis (s)"],
        rows_from_dicts(
            rows,
            [
                "context_depth",
                "inlines",
                "vertices",
                "pointsto_facts",
                "gen_s",
                "analysis_s",
            ],
        ),
        note="fewer clones = smaller graph; merged contexts conflate "
        "points-to facts (precision loss)",
    )
    save_and_print(text, results_path("ablation_context.txt"))
