"""Join-backend scaling: serial vs thread pool vs shared-memory processes.

Table 6 style sweep on the postgresql-like pointer analysis.  Shape
contract: every configuration completes and every configuration lands
on the *same* final edge count — the backends are interchangeable data
planes, not different algorithms.  (Absolute speedups depend on the
host's core count; on a single-core CI box the pooled backends may be
slower than serial, which is fine — the telemetry columns still show
what the pool did.)
"""

from repro.bench import render_table, rows_from_dicts, save_and_print, scaling_rows
from benchmarks.conftest import results_path


def test_scaling_threads(benchmark, postgresql):
    graph = postgresql.pointer
    rows = benchmark.pedantic(
        scaling_rows,
        args=(graph,),
        kwargs={"max_edges_per_partition": max(1000, graph.num_edges // 4)},
        rounds=1,
        iterations=1,
    )
    assert all(r["status"] == "ok" for r in rows)
    edge_counts = {r["final_edges"] for r in rows}
    assert len(edge_counts) == 1  # identical closure in every config
    assert edge_counts.pop() > graph.num_edges
    serial = next(r for r in rows if r["backend"] == "serial")
    assert serial["chunks"] > 0
    text = render_table(
        "Scaling: join backend x workers (postgresql-like pointer analysis)",
        [
            "backend",
            "workers",
            "status",
            "edges",
            "wall (s)",
            "CT (s)",
            "chunks",
            "balance",
            "est. speedup",
        ],
        rows_from_dicts(
            rows,
            [
                "backend",
                "workers",
                "status",
                "final_edges",
                "wall_s",
                "compute_s",
                "chunks",
                "balance",
                "speedup_est",
            ],
        ),
        note="same closure in every config; speedup estimated as "
        "summed per-chunk kernel time over pool wall time",
    )
    save_and_print(text, results_path("scaling_threads.txt"))
