"""§5.4 — the GraphChi-like vertex-centric system on a DTC workload.

Shape contract (paper): without duplicate checking the vertex-centric
run diverges (GraphChi "would never terminate on our workloads"); the
naive buffer-only duplicate check still diverges; Graspan's merge-time
dedup converges on the same input.
"""

from repro.bench import graphchi_rows, render_table, rows_from_dicts, save_and_print
from benchmarks.conftest import results_path


def test_graphchi_comparison(benchmark, httpd):
    rows = benchmark.pedantic(graphchi_rows, args=(httpd,), rounds=1, iterations=1)
    by_system = {r["system"]: r for r in rows}
    assert by_system["vertex-centric (dedup=none)"]["status"] in (
        "diverged",
        "timeout",
    )
    assert by_system["vertex-centric (dedup=buffer)"]["status"] in (
        "diverged",
        "timeout",
    )
    assert by_system["Graspan (merge dedup)"]["status"] == "ok"
    full = by_system["vertex-centric (dedup=full)"]
    graspan = by_system["Graspan (merge dedup)"]
    if full["status"] == "ok":
        assert full["total_edges"] == graspan["total_edges"]
    text = render_table(
        "GraphChi comparison (dataflow graph): duplicate handling decides "
        "termination",
        ["system", "status", "edges added", "total edges", "seconds"],
        rows_from_dicts(
            rows, ["system", "status", "edges_added", "total_edges", "seconds"]
        ),
    )
    save_and_print(text, results_path("graphchi.txt"))
