"""Table 2 — programs analyzed: LoC and #Inlines per workload.

Shape contract: the linux-like workload must dominate the inline counts
by at least an order of magnitude over httpd-like, mirroring the paper's
317M (Linux) vs 58K (httpd) spread.
"""

from repro.bench import render_table, rows_from_dicts, save_and_print, table2_rows
from benchmarks.conftest import results_path


def test_table2_programs(benchmark, all_workloads):
    rows = benchmark.pedantic(
        table2_rows, args=(all_workloads,), rounds=1, iterations=1
    )
    by_name = {r["program"]: r for r in rows}
    assert by_name["linux-like"]["inlines"] > 10 * by_name["httpd-like"]["inlines"]
    assert (
        by_name["linux-like"]["inlines"]
        > by_name["postgresql-like"]["inlines"]
        > by_name["httpd-like"]["inlines"]
    )
    text = render_table(
        "Table 2: programs analyzed (ours, with paper reference values)",
        [
            "program",
            "LoC",
            "functions",
            "#inlines",
            "#contexts",
            "paper LoC",
            "paper #inlines",
        ],
        rows_from_dicts(
            rows,
            [
                "program",
                "loc",
                "functions",
                "inlines",
                "contexts",
                "paper_loc",
                "paper_inlines",
            ],
        ),
        note="generated workloads are ~10^3-10^4x scaled down; ordering and "
        "ratios preserved (DESIGN.md)",
    )
    save_and_print(text, results_path("table2.txt"))
