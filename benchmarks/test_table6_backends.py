"""Table 6 — backend comparison: Graspan vs ODA vs Datalog (SociaLite).

Shape contract (paper): with the same nominal memory, Graspan's
out-of-core design completes every run, while the in-memory worklist
solver (ODA) and the in-memory Datalog engine run out of memory on the
large workloads and only survive the smallest one.
"""

from repro.bench import render_table, rows_from_dicts, save_and_print, table6_rows
from benchmarks.conftest import results_path


def test_table6_backends(benchmark, all_workloads):
    rows = benchmark.pedantic(
        table6_rows, args=(all_workloads,), rounds=1, iterations=1
    )
    # Graspan completes everywhere.
    assert all(r["graspan_status"] == "ok" for r in rows)
    # The in-memory baselines die on the big pointer-analysis graphs.
    linux_pointer = next(
        r
        for r in rows
        if r["program"] == "linux-like" and r["analysis"] == "pointer/alias"
    )
    assert linux_pointer["oda_status"] in ("oom", "timeout")
    assert linux_pointer["datalog_status"] in ("oom", "timeout")
    # ...and survive the smallest workload (httpd), as in the paper.
    httpd_rows = [r for r in rows if r["program"] == "httpd-like"]
    assert any(r["oda_status"] == "ok" for r in httpd_rows)
    assert any(r["datalog_status"] == "ok" for r in httpd_rows)
    text = render_table(
        "Table 6: backends under equal nominal memory "
        "(Graspan | ODA worklist | Datalog engine)",
        [
            "program",
            "analysis",
            "graspan",
            "t (s)",
            "CT (s)",
            "I/O (s)",
            "ODA",
            "t (s)",
            "Datalog",
            "t (s)",
        ],
        rows_from_dicts(
            rows,
            [
                "program",
                "analysis",
                "graspan_status",
                "graspan_s",
                "graspan_ct_s",
                "graspan_io_s",
                "oda_status",
                "oda_s",
                "datalog_status",
                "datalog_s",
            ],
        ),
        note="GC column n/a in Python; OOM enforced via explicit memory "
        "budgets (see repro.util.memory)",
    )
    save_and_print(text, results_path("table6.txt"))
