"""Sustained load vs a fault-injected daemon: nothing is silently lost.

Chaos counterpart to ``test_service_latency`` (DESIGN.md §15): eight
retry-enabled clients hammer a daemon that is deliberately small
(``max_inflight`` well under the worker count) and deliberately unlucky
(scheduled transient I/O errors, one injected mid-load crash, corrupted
store entries).  The accounting contract is absolute — every request a
worker issues must end in exactly one of:

* a successful response (possibly after typed ``overloaded`` sheds the
  client's bounded backoff absorbed);
* a typed error the worker can act on (``crashed`` → re-issue, which
  must then *resume* the interrupted closure);
* :class:`ServiceUnavailable` after the retry budget.

An exception outside that taxonomy, or a request that vanishes without
an outcome, fails the benchmark.  p50/p99 client-observed latency plus
shed/retry/degradation counters land in the ``chaos`` section of
``results/BENCH_service.json``.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import results_path
from repro.bench import render_table, rows_from_dicts, save_and_print
from repro.engine.checkpoint import MANIFEST_NAME
from repro.service import (
    ClosureDaemon,
    ServiceClient,
    ServiceError,
    ServiceThread,
    ServiceUnavailable,
)
from repro.util.faults import FaultInjector, FaultPlan
from repro.util.retry import RetryPolicy

CLIENT_WORKERS = 8
LOADS_PER_WORKER = 4
CHECKS_PER_WORKER = 4
MAX_INFLIGHT = 3

#: Bounded patience: enough backoff to ride out a shed storm from seven
#: rivals, small enough that a dead daemon surfaces in a few seconds.
CLIENT_RETRY = RetryPolicy(
    attempts=8, base_delay=0.05, multiplier=2.0, max_delay=1.0, jitter=0.25
)

#: Every program is this template under fresh names, so concurrent loads
#: never collide in the linked interprocedural graph and each still has
#: a NULL deref and an unsanitized taint flow for checkers to find.
PROGRAM = """
int *shared_{tag};

void *make_{tag}(void) {{
    int *fresh;
    fresh = malloc(8);
    return fresh;
}}

void *risky_{tag}(int n) {{
    int *p;
    p = NULL;
    if (n) {{ p = malloc(8); }}
    return p;
}}

void handle_{tag}(void) {{
    int *a;
    int *b;
    int t;
    a = make_{tag}();
    b = risky_{tag}(0);
    *b = 1;
    t = input();
    *a = t;
    query(*a);
}}
"""


def program(tag):
    return PROGRAM.format(tag=tag)


def corrupt_entry(store_root):
    """Scribble over every committed manifest under the store."""
    count = 0
    for manifest in Path(store_root).glob(f"*/{MANIFEST_NAME}"):
        manifest.write_text("{ chaos was here")
        count += 1
    return count


class Worker:
    """One client thread; records an outcome for every request issued."""

    def __init__(self, index, host, port, degrade_name):
        self.index = index
        self.host = host
        self.port = port
        self.degrade_name = degrade_name
        self.outcomes = []
        self.latencies_ms = []
        self.retries = 0
        self.thread = threading.Thread(target=self.run, name=f"chaos-{index}")

    def _record(self, client, op, fn):
        before = client.retries
        t0 = time.perf_counter()
        try:
            fn()
            outcome = "ok-retried" if client.retries > before else "ok"
        except ServiceUnavailable:
            outcome = "unavailable"
        except ServiceError as exc:
            kind = (exc.response or {}).get("kind")
            crashed = bool((exc.response or {}).get("crashed"))
            outcome = f"typed:{kind or ('crashed' if crashed else 'error')}"
        except Exception as exc:  # noqa: BLE001 - the contract under test
            outcome = f"UNTYPED:{type(exc).__name__}"
        self.latencies_ms.append((time.perf_counter() - t0) * 1000.0)
        self.retries += client.retries - before
        self.outcomes.append((op, outcome))

    def run(self):
        with ServiceClient(
            self.host, self.port, retry=CLIENT_RETRY
        ) as client:
            for i in range(LOADS_PER_WORKER):
                name = f"w{self.index}-{i}"
                self._record(
                    client,
                    "load",
                    lambda n=name: client.load(n, source=program(n.replace("-", "_"))),
                )
            for i in range(CHECKS_PER_WORKER):
                name = f"w{self.index}-{i % LOADS_PER_WORKER}"
                checker = ("Taint", "Null", None)[i % 3]
                self._record(
                    client,
                    "check",
                    lambda n=name, c=checker: client.check(n, checker=c),
                )
            # Re-load over a corrupted store entry: the daemon must
            # degrade to a cold recompute, not fail the request.
            self._record(
                client,
                "degraded-load",
                lambda: client.load(
                    self.degrade_name,
                    source=program(self.degrade_name.replace("-", "_")),
                ),
            )


def test_service_chaos():
    results = {}
    with tempfile.TemporaryDirectory(prefix="closure-chaos-") as tmp:
        store_root = Path(tmp) / "store"

        # -- phase 1: injected crash mid-load --------------------------
        # A raise-mode injected crash reports a typed ``crashed``
        # response and then stops the daemon, leaving the store entry
        # interrupted mid-journal.
        crash_plan = FaultPlan(crash_after_commit=3)
        doomed = ClosureDaemon(
            store_root,
            max_edges_per_partition=64,
            fault_injector=FaultInjector(crash_plan),
            crash_mode="raise",
        )
        doomed_server = ServiceThread(doomed)
        crash_t0 = time.perf_counter()
        host, port = doomed_server.start()
        crashed_response = None
        try:
            with ServiceClient(host, port, retry=CLIENT_RETRY) as client:
                try:
                    client.load("crashy", source=program("crashy"))
                except ServiceError as exc:
                    crashed_response = exc.response
        finally:
            doomed_server.stop()
        assert crashed_response is not None, (
            "the scheduled crash_after_commit fault never fired"
        )
        assert crashed_response.get("crashed") is True

        # -- phase 2: restart on the same store ------------------------
        # Scheduled transient I/O errors ride along (absorbed by the
        # store's retry policy); the crashy reload must resume from the
        # committed watermark, not fail.
        plan = FaultPlan(
            errno_at_write={5: errno.EIO, 17: errno.ENOSPC},
            errno_at_read={9: errno.EIO},
        )
        daemon = ClosureDaemon(
            store_root,
            max_edges_per_partition=64,
            num_workers=CLIENT_WORKERS,
            fault_injector=FaultInjector(plan),
            max_inflight=MAX_INFLIGHT,
        )
        server = ServiceThread(daemon)
        host, port = server.start()
        try:
            with ServiceClient(host, port, retry=CLIENT_RETRY) as client:
                reloaded = client.load("crashy", source=program("crashy"))
                assert reloaded["ok"] is True
                crash_recovery_s = time.perf_counter() - crash_t0
                status = client.status()
                assert "crashy" in status["programs"]

                # -- corrupt everything committed so far ---------------
                corrupted = corrupt_entry(store_root)
                assert corrupted > 0

                # -- the storm -----------------------------------------
                workers = [
                    Worker(i, host, port, degrade_name="crashy")
                    for i in range(CLIENT_WORKERS)
                ]
                storm_t0 = time.perf_counter()
                for w in workers:
                    w.thread.start()
                for w in workers:
                    w.thread.join()
                storm_wall_s = time.perf_counter() - storm_t0

                health = client.health()
                daemon_counters = {
                    "shed": health["shed"],
                    "deadline_hits": health["deadline_hits"],
                    "oversized_frames": health["oversized_frames"],
                    "degraded_to_cold": health["degraded_to_cold"],
                    "requests_served": health["requests_served"],
                }

            # -- graceful drain under a live socket --------------------
            drain_t0 = time.perf_counter()
            daemon.request_drain()
            server._thread.join(timeout=60)
            assert not server._thread.is_alive(), "drain did not stop the server"
            drain_s = time.perf_counter() - drain_t0
        finally:
            server.stop()

        # -- the accounting contract -----------------------------------
        issued_per_worker = LOADS_PER_WORKER + CHECKS_PER_WORKER + 1
        all_outcomes = [o for w in workers for o in w.outcomes]
        assert len(all_outcomes) == CLIENT_WORKERS * issued_per_worker, (
            "a request vanished without an outcome"
        )
        untyped = [o for o in all_outcomes if o[1].startswith("UNTYPED")]
        assert not untyped, f"untyped failures: {untyped}"
        tally = {}
        for _, outcome in all_outcomes:
            tally[outcome] = tally.get(outcome, 0) + 1
        # Everything lands in the closed taxonomy.
        assert set(tally) <= {"ok", "ok-retried", "unavailable"} | {
            k for k in tally if k.startswith("typed:")
        }
        # The corrupted entries were healed, not fatal: every worker's
        # degraded-load succeeded.
        degraded_loads = [
            o for op, o in all_outcomes if op == "degraded-load"
        ]
        assert all(o in ("ok", "ok-retried") for o in degraded_loads)
        assert daemon_counters["degraded_to_cold"] >= 1
        # Eight simultaneous clients against three slots: backpressure
        # must have engaged, and the retry layer must have absorbed it.
        assert daemon_counters["shed"] >= 1
        assert tally.get("ok-retried", 0) + tally.get("ok", 0) > 0

        latencies = [ms for w in workers for ms in w.latencies_ms]
        total_retries = sum(w.retries for w in workers)
        p50 = float(np.percentile(latencies, 50))
        p99 = float(np.percentile(latencies, 99))

        results = {
            "client_workers": CLIENT_WORKERS,
            "max_inflight": MAX_INFLIGHT,
            "requests_issued": len(all_outcomes),
            "storm_wall_s": storm_wall_s,
            "latency_p50_ms": p50,
            "latency_p99_ms": p99,
            "outcomes": tally,
            "client_retries": total_retries,
            "crash_recovery_s": crash_recovery_s,
            "drain_s": drain_s,
            "fault_plan": {**crash_plan.to_env(), **plan.to_env()},
            **daemon_counters,
        }

    rows = [
        {"metric": "requests issued", "value": results["requests_issued"]},
        {
            "metric": "outcomes",
            "value": " ".join(f"{k}={v}" for k, v in sorted(tally.items())),
        },
        {
            "metric": "latency",
            "value": f"p50 {p50:.1f}ms p99 {p99:.1f}ms",
        },
        {
            "metric": "daemon sheds / client retries",
            "value": f"{daemon_counters['shed']} / {total_retries}",
        },
        {
            "metric": "store degradations to cold",
            "value": daemon_counters["degraded_to_cold"],
        },
        {
            "metric": "crash recovery / drain",
            "value": (
                f"{results['crash_recovery_s']:.2f}s / "
                f"{results['drain_s']:.2f}s"
            ),
        },
    ]
    text = render_table(
        "Service chaos: retrying clients vs a fault-injected daemon",
        ["metric", "value"],
        rows_from_dicts(rows, ["metric", "value"]),
        note=f"{CLIENT_WORKERS} clients vs max_inflight={MAX_INFLIGHT}; "
        "zero silently-lost requests required",
    )
    save_and_print(text, results_path("service_chaos.txt"))

    bench_path = results_path("BENCH_service.json")
    merged = {}
    if os.path.exists(bench_path):
        with open(bench_path) as fh:
            merged = json.load(fh)
    merged["chaos"] = results
    with open(bench_path, "w") as fh:
        json.dump(merged, fh, indent=2)
