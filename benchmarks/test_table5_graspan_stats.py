"""Table 5 — Graspan execution statistics (out-of-core runs).

Shape contract (paper): dynamic transitive closure grows every graph by
a large factor (3-100x in the paper; >2x here), computation dominates
I/O (§5.2: "the I/O cost is generally low because most disk accesses
are sequential"), and large graphs need several partitions and
supersteps.
"""


from repro.bench import (
    figure4_series,
    render_table,
    rows_from_dicts,
    save_and_print,
    sparkline,
    table5_rows,
)
from benchmarks.conftest import results_path

_cache = {}


def _run(all_workloads):
    if "t5" not in _cache:
        _cache["t5"] = table5_rows(all_workloads)
    return _cache["t5"]


def test_table5_graspan_stats(benchmark, all_workloads):
    rows, stats = benchmark.pedantic(
        _run, args=(all_workloads,), rounds=1, iterations=1
    )
    linux_pointer = next(
        r
        for r in rows
        if r["program"] == "linux-like" and r["analysis"] == "pointer/alias"
    )
    assert linux_pointer["growth"] > 2.0, "closure should grow the graph"
    assert linux_pointer["partitions"] >= 4
    assert linux_pointer["supersteps"] >= 3
    assert linux_pointer["compute_s"] > linux_pointer["io_s"]
    for row in rows:
        assert row["edges_final"] >= row["edges_initial"]
    text = render_table(
        "Table 5: Graspan execution statistics (out-of-core)",
        [
            "program",
            "analysis",
            "V",
            "E initial",
            "E final",
            "growth",
            "parts",
            "supersteps",
            "reparts",
            "CT (s)",
            "I/O (s)",
            "total (s)",
        ],
        rows_from_dicts(
            rows,
            [
                "program",
                "analysis",
                "vertices",
                "edges_initial",
                "edges_final",
                "growth",
                "partitions",
                "supersteps",
                "repartitions",
                "compute_s",
                "io_s",
                "total_s",
            ],
        ),
    )
    save_and_print(text, results_path("table5.txt"))


def test_figure4_supersteps(benchmark, all_workloads):
    _rows, stats = _run(all_workloads)
    series_rows = benchmark.pedantic(
        figure4_series, args=(stats,), rounds=1, iterations=1
    )
    # Shape contract: edge addition is front-loaded — the first half of
    # the supersteps contributes the majority of added edges (Figure 4).
    linux_pointer = next(
        r
        for r in series_rows
        if r["program"] == "linux" and r["analysis"] == "pointer/alias"
    )
    assert linux_pointer["first_half_share"] >= 0.5
    text = render_table(
        "Figure 4: edges added per superstep (percent of original edges)",
        ["program", "analysis", "supersteps", "first-half share", "curve"],
        [
            [
                r["program"],
                r["analysis"],
                r["supersteps"],
                r["first_half_share"],
                sparkline(r["series_pct"], width=48),
            ]
            for r in series_rows
        ],
        note="sparkline: per-superstep added edges, peak-normalized",
    )
    save_and_print(text, results_path("figure4.txt"))
