"""Distributed superstep scaling: coordinator/worker leases at 1/2/4 workers.

The distributed tier (DESIGN.md §16) moves superstep compute off the
coordinator onto share-nothing workers that pull pair leases and ship
back new-edge deltas.  On a single box the wall clock cannot beat the
serial engine — every joined edge is still joined once — so the number
that matters is **compute fan-out**: how evenly the per-lease compute
seconds (measured on the workers) spread across the fleet,

    fan_out = sum(lease compute seconds) / busiest worker's sum.

A perfectly balanced pull schedule gives ``fan_out == workers``; with
real partition-size skew the dense-reach workload must still clear 1.7x
at 4 workers — the acceptance bar for the lease scheduler not
serializing behind one hot worker.  Closures are asserted byte-identical
to the serial engine at every worker count before any number is
reported.

Machine-readable rows land in ``results/BENCH_distributed.json``.
"""

import json
import tempfile
from collections import defaultdict
from pathlib import Path

import numpy as np

from benchmarks.conftest import results_path
from repro.bench import render_table, rows_from_dicts, save_and_print
from repro.engine.engine import GraspanEngine
from repro.grammar import reachability_grammar
from repro.grammar.builtin import pointsto_grammar_extended
from repro.graph import MemGraph

#: Partition cap for the dense graph: small enough that the closure
#: spreads over many pairs (many leases to balance), large enough that
#: each lease does real work.
DENSE_MAX_EDGES = 4000

WORKER_COUNTS = (1, 2, 4)


def dense_reach_graph():
    """The same random digraph the matmul benchmark uses (dense closure)."""
    rng = np.random.default_rng(42)
    n, m = 350, 1750
    edges = list(
        {(int(rng.integers(n)), int(rng.integers(n)), 0) for _ in range(m)}
    )
    return MemGraph.from_edges(edges, label_names=["E"])


def run_serial(graph, grammar, max_edges):
    with tempfile.TemporaryDirectory() as workdir:
        computation = GraspanEngine(
            grammar, max_edges_per_partition=max_edges, workdir=Path(workdir)
        ).run(graph)
        mem = computation.to_memgraph()
        return computation.stats, (
            np.asarray(mem.src).copy(),
            np.asarray(mem.keys).copy(),
        )


def run_distributed(graph, grammar, max_edges, workers):
    with tempfile.TemporaryDirectory() as workdir:
        computation = GraspanEngine(
            grammar,
            max_edges_per_partition=max_edges,
            workdir=Path(workdir),
            parallel_backend="distributed",
            distributed={"workers": workers},
        ).run(graph)
        mem = computation.to_memgraph()
        return computation.stats, (
            np.asarray(mem.src).copy(),
            np.asarray(mem.keys).copy(),
        )


def fan_out(stats):
    """Summed per-lease compute seconds over the busiest worker's share."""
    per_worker = defaultdict(float)
    for record in stats.supersteps:
        per_worker[record.worker] += record.seconds
    total = sum(per_worker.values())
    busiest = max(per_worker.values())
    return total / busiest if busiest > 0 else 1.0, len(per_worker)


def workload_rows(name, graph, grammar, max_edges):
    serial_stats, serial_closure = run_serial(graph, grammar, max_edges)
    rows = []
    for workers in WORKER_COUNTS:
        stats, closure = run_distributed(graph, grammar, max_edges, workers)
        # Equal closures or the scaling numbers are meaningless.
        assert np.array_equal(serial_closure[0], closure[0]), (name, workers)
        assert np.array_equal(serial_closure[1], closure[1]), (name, workers)
        summary = stats.distributed_summary()
        spread, active = fan_out(stats)
        rows.append(
            {
                "workload": name,
                "workers": workers,
                "active_workers": active,
                "supersteps": stats.num_supersteps,
                "final_edges": int(stats.final_edges),
                "leases_issued": summary["leases_issued"],
                "leases_reissued": summary["leases_reissued"],
                "compute_s": round(
                    sum(r.seconds for r in stats.supersteps), 3
                ),
                "busiest_worker_s": round(
                    max(
                        sum(
                            r.seconds
                            for r in stats.supersteps
                            if r.worker == w
                        )
                        for w in {r.worker for r in stats.supersteps}
                    ),
                    3,
                ),
                "fan_out": round(spread, 2),
            }
        )
    # Identity against serial is already asserted; record the baseline.
    baseline = {
        "workload": name,
        "serial_supersteps": serial_stats.num_supersteps,
        "serial_compute_s": round(serial_stats.timers.get("compute"), 3),
        "final_edges": int(serial_stats.final_edges),
    }
    return rows, baseline


def collect(postgresql):
    dense_rows, dense_base = workload_rows(
        "dense-reach", dense_reach_graph(), reachability_grammar(),
        DENSE_MAX_EDGES,
    )
    pointer_graph = postgresql.pointer
    pointer_rows, pointer_base = workload_rows(
        "postgresql-pointer",
        pointer_graph,
        pointsto_grammar_extended(),
        max(100, pointer_graph.num_edges // 2),
    )
    return dense_rows + pointer_rows, [dense_base, pointer_base]


def test_distributed_supersteps(benchmark, postgresql):
    rows, baselines = benchmark.pedantic(
        collect, args=(postgresql,), rounds=1, iterations=1
    )

    # The acceptance bar: at 4 workers the dense-reach superstep compute
    # fans out at least 1.7x over the busiest worker, at equal closures
    # (byte-identity was asserted inside collect()).
    dense = {r["workers"]: r for r in rows if r["workload"] == "dense-reach"}
    assert dense[1]["fan_out"] == 1.0
    assert dense[4]["fan_out"] >= 1.7, dense[4]
    # Scaling is real: more workers never concentrates the compute.
    assert dense[4]["fan_out"] > dense[2]["fan_out"] >= 1.0
    # Every configured worker actually pulled leases.
    assert all(r["active_workers"] == r["workers"] for r in rows)

    columns = [
        "workload",
        "workers",
        "supersteps",
        "leases_issued",
        "compute_s",
        "busiest_worker_s",
        "fan_out",
    ]
    text = render_table(
        "Distributed supersteps: lease fan-out at equal closures",
        ["workload", "workers", "steps", "leases", "compute (s)",
         "busiest (s)", "fan-out"],
        rows_from_dicts(rows, columns),
        note=(
            "fan-out = total per-lease compute over the busiest worker's "
            "share; closures byte-identical to serial at every row"
        ),
    )
    save_and_print(text, results_path("distributed_supersteps.txt"))
    with open(results_path("BENCH_distributed.json"), "w") as f:
        json.dump({"rows": rows, "serial_baselines": baselines}, f, indent=2)
