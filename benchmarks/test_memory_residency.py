"""Memory-budgeted residency: peak resident bytes vs. configured budget.

Shape contract on the httpd-like pointer analysis: every budget lands on
the identical closure; budgeted runs actually evict; and the tracked
peak resident bytes never exceed the budget by more than one partition
(the evict-before-load guarantee of the residency manager).
"""

from repro.bench import render_table, residency_rows, rows_from_dicts, save_and_print
from benchmarks.conftest import results_path


def test_memory_residency(benchmark, httpd):
    graph = httpd.pointer
    rows = benchmark.pedantic(
        residency_rows, args=(graph,), rounds=1, iterations=1
    )

    edge_counts = {r["final_edges"] for r in rows}
    assert len(edge_counts) == 1  # identical closure under every budget
    assert edge_counts.pop() > graph.num_edges

    baseline, budgeted = rows[0], rows[1:]
    assert baseline["budget"] == "unlimited"
    assert budgeted
    for row in budgeted:
        budget = int(row["budget"])
        assert row["peak_resident_bytes"] <= budget + row["max_partition_bytes"]
    # The tightest budget must actually cycle partitions through disk.
    assert budgeted[-1]["evictions"] > 0

    text = render_table(
        "Residency: peak resident bytes vs memory budget (httpd-like pointer analysis)",
        [
            "budget (B)",
            "peak (B)",
            "max part (B)",
            "evict",
            "loads",
            "hits",
            "read (B)",
            "wrote (B)",
            "parts",
            "edges",
            "wall (s)",
        ],
        rows_from_dicts(
            rows,
            [
                "budget",
                "peak_resident_bytes",
                "max_partition_bytes",
                "evictions",
                "loads",
                "cache_hits",
                "bytes_read",
                "bytes_written",
                "partitions",
                "final_edges",
                "wall_s",
            ],
        ),
        note="same closure under every budget; peak <= budget + one "
        "partition by the evict-before-load rule",
    )
    save_and_print(text, results_path("memory_residency.txt"))
