"""Table 3 — bugs found: baseline (BL) vs Graspan-augmented (GR).

Shape contract (paper): the baseline checkers find almost nothing real
in the modern codebase (their reports are dominated by false positives),
while the augmented checkers uncover the injected interprocedural bugs
— new NULL derefs, alias-hidden frees/locks, fp-blocking — plus the
UNTest mass, with a small FP rate.
"""

from repro.bench import render_table, rows_from_dicts, save_and_print, table3_rows
from benchmarks.conftest import results_path


def test_table3_bugs(benchmark, linux):
    rows, _result = benchmark.pedantic(
        table3_rows, args=(linux,), rounds=1, iterations=1
    )
    by_name = {r["checker"]: r for r in rows}
    # GR finds every injected Null bug; BL misses them all (its reports are FPs).
    assert by_name["Null"]["gr_new_true"] == by_name["Null"]["truth"]
    assert by_name["Null"]["bl_reported"] == by_name["Null"]["bl_fp"]
    # The checkers that exist only to be improved by aliasing find their bugs.
    for checker in ("Free", "Lock", "Block", "Size", "Range"):
        assert by_name[checker]["gr_new_true"] == by_name[checker]["truth"]
    # UNTest reports the unnecessary-test mass with no baseline at all.
    assert by_name["UNTest"]["bl_reported"] == 0
    assert by_name["UNTest"]["gr_reported"] >= by_name["UNTest"]["truth"] * 0.9
    # PNull: augmentation filters baseline false positives.
    assert by_name["PNull"]["gr_fp"] <= by_name["PNull"]["bl_fp"]
    text = render_table(
        "Table 3: checker reports on linux-like (BL = baseline, GR = Graspan)",
        ["checker", "BL RE", "BL FP", "GR RE", "GR FP", "GR true", "injected"],
        rows_from_dicts(
            rows,
            [
                "checker",
                "bl_reported",
                "bl_fp",
                "gr_reported",
                "gr_fp",
                "gr_new_true",
                "truth",
            ],
        ),
        note="RE/FP computed against generator ground truth instead of the "
        "paper's manual inspection",
    )
    save_and_print(text, results_path("table3.txt"))
