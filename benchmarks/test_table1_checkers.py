"""Table 1 — the checker taxonomy (descriptive registry self-check)."""

from repro.bench import render_table, rows_from_dicts, save_and_print, table1_rows
from benchmarks.conftest import results_path


def test_table1_checkers(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    assert len(rows) == 11
    text = render_table(
        "Table 1: checkers, targets, and baseline limitations",
        ["checker", "target", "baseline limitation", "has baseline"],
        rows_from_dicts(
            rows, ["checker", "target", "baseline_limitation", "has_baseline"]
        ),
    )
    save_and_print(text, results_path("table1.txt"))
