#!/usr/bin/env python
"""Define your own analysis: Graspan's programming model from scratch (§3).

The paper's pitch is that a new interprocedural analysis costs two
artifacts: a graph and a grammar.  This example builds both by hand for
a *lock-flow* analysis nobody shipped with the library — "which lock
objects can reach which critical sections" — and runs it out-of-core on
a generated graph, printing the engine statistics (partitions,
supersteps, repartitions).

Usage:  python examples/custom_analysis.py
"""

import random
import tempfile

from repro.graph import MemGraph
from repro.grammar import Grammar
from repro.engine import GraspanEngine

# ---------------------------------------------------------------------
# 1. The grammar.  Labels: a lock object is born at an allocation (ML),
#    handles flow through assignments (AH), and a critical section is
#    entered through an acquire edge (AQ).  One nonterminal per fact:
#
#        lockFlow  ::= ML | lockFlow AH       (object reaches a handle)
#        guardedBy ::= lockFlow AQ            (object guards a section)
#
#    Registered through the paper's addConstraint API; every production
#    already has <= 2 RHS terms, so no normalization kicks in.
# ---------------------------------------------------------------------
grammar = Grammar()
for terminal in ("ML", "AH", "AQ"):
    grammar.label(terminal)
grammar.add_constraint("lockFlow", "ML")
grammar.add_constraint("lockFlow", "lockFlow", "AH")
grammar.add_constraint("guardedBy", "lockFlow", "AQ")
frozen = grammar.freeze()

# ---------------------------------------------------------------------
# 2. The graph.  Synthesize a lock-passing web: lock objects handed
#    through chains of handles into critical sections.  In a real tool
#    this comes from your compiler frontend (cf. repro.frontend).
# ---------------------------------------------------------------------
rng = random.Random(42)
NUM_LOCKS, CHAINS_PER_LOCK, CHAIN_LEN, NUM_SECTIONS = 60, 8, 12, 40

edges = []
vertex = 0
lock_objects = []
sections = [("section", i) for i in range(NUM_SECTIONS)]
next_id = NUM_LOCKS + NUM_SECTIONS
ML, AH, AQ = (frozen.label_id(x) for x in ("ML", "AH", "AQ"))

for lock in range(NUM_LOCKS):
    for _ in range(CHAINS_PER_LOCK):
        handle = next_id
        next_id += 1
        edges.append((lock, handle, ML))
        for _ in range(CHAIN_LEN - 1):
            nxt = next_id
            next_id += 1
            edges.append((handle, nxt, AH))
            handle = nxt
        section = NUM_LOCKS + rng.randrange(NUM_SECTIONS)
        edges.append((handle, section, AQ))

graph = MemGraph.from_edges(edges, label_names=frozen.names)
print(f"input graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

# ---------------------------------------------------------------------
# 3. Run it out-of-core with deliberately tiny partitions, to show the
#    full machinery (partitioning, DDM scheduling, repartitioning).
# ---------------------------------------------------------------------
with tempfile.TemporaryDirectory() as workdir:
    engine = GraspanEngine(
        frozen,
        max_edges_per_partition=graph.num_edges // 4,
        workdir=workdir,
    )
    # load_resident() pulls the final partitions into memory so the
    # results stay queryable after the temporary workdir disappears.
    computation = engine.run(graph).load_resident()

stats = computation.stats
print(f"closure: {stats.original_edges} -> {stats.final_edges} edges "
      f"({stats.growth_factor:.1f}x)")
print(f"supersteps: {stats.num_supersteps}, partitions: "
      f"{stats.initial_partitions} -> {stats.final_partitions} "
      f"({stats.repartition_count} repartitions)")
print(f"time: compute {stats.timers.get('compute'):.2f}s, "
      f"io {stats.timers.get('io'):.2f}s")

g_src, g_dst = computation.edges_with_label_arrays("guardedBy")
guarded = list(zip(g_src.tolist(), g_dst.tolist()))
by_section = {}
for lock, section in guarded:
    by_section.setdefault(section, set()).add(lock)
print(f"\nguardedBy facts: {len(guarded)}")
multi = {s: locks for s, locks in by_section.items() if len(locks) > 1}
print(f"critical sections reachable by more than one lock object: "
      f"{len(multi)} (lock-aliasing hazards a name-based checker misses)")
