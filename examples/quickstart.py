#!/usr/bin/env python
"""Quickstart: analyze a small C program with Graspan.

Runs the full pipeline on a classic interprocedural NULL bug:
MiniC source -> context-sensitive program graphs -> pointer/alias
analysis -> NULL dataflow analysis -> queries, all through the public
API.  Takes well under a second.

Usage:  python examples/quickstart.py
"""

from repro import (
    NullDataflowAnalysis,
    PointsToAnalysis,
    compile_program,
)

SOURCE = """
/* A NULL born two calls deep -- the pattern intraprocedural
 * checkers miss (paper, Figure 3). */

void *find_entry(int key) {
    int *entry;
    entry = NULL;
    if (key > 0) { entry = malloc(32); }
    return entry;
}

void *lookup(int key) {
    int *hit;
    hit = find_entry(key);
    return hit;
}

void handler(void) {
    int *req;
    int *safe;
    req = lookup(0);
    *req = 1;                    /* potential NULL dereference! */
    safe = lookup(1);
    if (safe) { *safe = 2; }     /* this one is guarded */
}
"""


def main() -> None:
    # 1. Frontend: parse, lower, build the call graph, and inline every
    #    function once per calling context (aggressive cloning, §3).
    pg = compile_program(SOURCE, module="example")
    print(f"program graph: {pg.num_vertices} vertices, {pg.num_edges} edges, "
          f"{pg.inline_count} inlines, {pg.namer.num_contexts} contexts")

    # 2. Pointer/alias analysis: grammar-guided transitive closure on the
    #    expression graph (objectFlow edges = points-to facts).
    pts = PointsToAnalysis().run(pg)
    print(f"points-to facts: {pts.num_points_to_facts}, "
          f"alias facts: {pts.num_alias_facts}")
    print("handler::req may point to:", sorted(pts.var_points_to("handler", "req")))

    # 3. NULL dataflow analysis, built on the pointer results (§5).
    nulls = NullDataflowAnalysis().run(pg, pointsto=pts)
    for var in ("req", "safe"):
        verdict = "MAY be NULL" if nulls.may_receive("handler", var) else "never NULL"
        contexts = nulls.contexts_reaching("handler", var)
        print(f"handler::{var}: {verdict}"
              + (f" (in {len(contexts)} context(s))" if contexts else ""))

    assert nulls.may_receive("handler", "req")
    assert nulls.may_receive("handler", "safe")  # flow-insensitive: same callee
    print("\nThe dereference of `req` is unguarded -> a real bug a depth-0 "
          "checker cannot see.")


if __name__ == "__main__":
    main()
