#!/usr/bin/env python
"""Backend shoot-out: Graspan vs a worklist solver vs a Datalog engine.

Reproduces the Table 6 experience interactively: the same pointer
analysis on the same program graph, through three backends under the
same nominal memory budget.  Graspan spills to disk and finishes; the
in-memory baselines hit the wall as the workload grows.

Usage:  python examples/compare_backends.py [workload] [scale]
        workload in {httpd, postgresql, linux}, default postgresql
"""

import sys
import tempfile
import time

from repro.baselines import run_datalog, run_oda
from repro.engine import GraspanEngine
from repro.frontend import pointer_graph
from repro.grammar import pointsto_grammar_extended
from repro.workloads import workload_by_name

MEMORY_BUDGET = 2 * 1024 * 1024  # the same nominal bytes for everyone


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "postgresql"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    workload = workload_by_name(name, scale=scale)
    graph = pointer_graph(workload.compile())
    grammar = pointsto_grammar_extended()
    print(f"{workload.name}: pointer graph with {graph.num_edges} edges\n")

    # Graspan: the budget buys two resident partitions; the rest of the
    # graph lives on disk.
    max_edges = MEMORY_BUDGET // (2 * 24)
    with tempfile.TemporaryDirectory() as workdir:
        engine = GraspanEngine(
            grammar, max_edges_per_partition=max_edges, workdir=workdir
        )
        started = time.perf_counter()
        stats = engine.run(graph).stats
        graspan_s = time.perf_counter() - started
    print(f"graspan : ok       {graspan_s:7.2f}s   "
          f"{stats.final_edges} edges, {stats.num_supersteps} supersteps, "
          f"{stats.final_partitions} partitions")

    oda = run_oda(graph, grammar, memory_budget_bytes=MEMORY_BUDGET,
                  time_budget_seconds=120)
    print(f"ODA     : {oda.status:8} {oda.seconds:7.2f}s   "
          f"{oda.facts} facts before stopping")

    datalog = run_datalog(graph, grammar, memory_budget_bytes=MEMORY_BUDGET,
                          time_budget_seconds=120)
    print(f"datalog : {datalog.status:8} {datalog.seconds:7.2f}s   "
          f"{datalog.tuples} tuples before stopping")

    if oda.status != "ok" or datalog.status != "ok":
        print("\nThe in-memory backends cannot hold the dynamic transitive "
              "closure; Graspan's out-of-core partitioning is the difference.")


if __name__ == "__main__":
    main()
