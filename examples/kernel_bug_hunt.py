#!/usr/bin/env python
"""Bug hunt on a kernel-shaped codebase: the paper's §5.1 workflow.

Generates the linux-like workload (layered call DAG, Linux module
taxonomy, injected interprocedural defects), runs the pointer/alias and
dataflow analyses, then runs every Table 1 checker in both baseline and
Graspan-augmented mode and prints the Table 3 / Table 4 style summary.

Usage:  python examples/kernel_bug_hunt.py [scale]
        (scale defaults to 0.3; 1.0 takes a few minutes)
"""

import sys
import time

from repro.checkers import ALL_CHECKERS, check_program
from repro.workloads import linux_like


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    print(f"generating linux-like workload (scale={scale})...")
    workload = linux_like(scale=scale)
    print(f"  {workload.loc} LoC, {len(workload.ground_truth)} injected findings")

    print("compiling (parse -> lower -> context-sensitive inlining)...")
    pg = workload.compile()
    print(f"  {pg.inline_count} inlines, {pg.num_vertices} vertices, "
          f"{pg.num_edges} edges")

    print("running analyses + checkers (baseline and Graspan-augmented)...")
    started = time.perf_counter()
    result = check_program(pg)
    print(f"  done in {time.perf_counter() - started:.1f}s\n")

    header = f"{'checker':8} | {'BL RE':>5} {'BL FP':>5} | {'GR RE':>5} {'GR FP':>5} {'GR new-true':>11}"
    print(header)
    print("-" * len(header))
    for cls in ALL_CHECKERS:
        bl = result.score(workload.ground_truth, "baseline", cls.name)
        gr = result.score(workload.ground_truth, "augmented", cls.name)
        print(
            f"{cls.name:8} | {bl.reported:5} {bl.false_positives:5} | "
            f"{gr.reported:5} {gr.false_positives:5} {gr.true_positives:11}"
        )

    print("\nNULL findings by module (drivers should dominate, Table 4):")
    breakdown = result.module_breakdown("augmented", "UNTest")
    for module, count in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        print(f"  {module:10} {'#' * min(count, 60)} {count}")

    print("\nexample reports:")
    for report in result.all_reports("augmented")[:5]:
        print(f"  [{report.checker}] {report.module}/{report.function}:"
              f"{report.line}: {report.message}")


if __name__ == "__main__":
    main()
