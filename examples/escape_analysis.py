#!/usr/bin/env python
"""Escape analysis on a kernel-shaped codebase: a third engine client.

The paper argues Graspan powers *many* interprocedural analyses beyond
the two it evaluates (§3).  This example runs the bundled escape
analysis — built entirely on the pointer analysis' objectFlow edges and
the inlined clone tree — over the linux-like workload and reports which
allocation sites could be stack-allocated.

Usage:  python examples/escape_analysis.py [scale]
"""

import sys

from repro import EscapeAnalysis, PointsToAnalysis
from repro.workloads import linux_like


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    workload = linux_like(scale=scale)
    print(f"compiling {workload.name} (scale={scale}, {workload.loc} LoC)...")
    pg = workload.compile()

    print("running pointer analysis...")
    pts = PointsToAnalysis().run(pg)

    print("classifying allocation sites...\n")
    result = EscapeAnalysis().run(pg, pts)

    print(f"allocation-site clones: {result.num_objects}, "
          f"escaping: {result.num_escaping} "
          f"({100 * result.num_escaping / max(result.num_objects, 1):.0f}%)")

    summary = result.summary_by_function()
    fully_local = sorted(
        func for func, (esc, _total) in summary.items() if esc == 0
    )
    print(f"functions whose allocations never escape: {len(fully_local)} "
          f"of {len(summary)}")
    for func in fully_local[:8]:
        sites = result.stack_allocatable(func)
        print(f"  {func}: {', '.join(sites)}  <- stack-allocatable")

    reason_counts = {}
    for info in result:
        for reason in info.reasons:
            reason_counts[reason] = reason_counts.get(reason, 0) + 1
    print("\nescape reasons (clone-level):")
    for reason, count in sorted(reason_counts.items(), key=lambda kv: -kv[1]):
        print(f"  {reason:10} {count}")


if __name__ == "__main__":
    main()
