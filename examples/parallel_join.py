#!/usr/bin/env python
"""The join data plane: serial vs thread pool vs shared-memory processes.

Runs the same pointer analysis through each join backend and prints the
per-run parallelism telemetry — chunk counts, chunk balance, and the
pool-vs-serial-estimate speedup — so you can see what the paper's
"separate thread per vertex" parallelism (§4.2) buys on your machine.
The closure is identical in every run: the backends only change *where*
the edge-pair join executes, never what it produces.

Usage:  python examples/parallel_join.py [workload] [workers]
        workload in {httpd, postgresql, linux}, default httpd
"""

import sys
import time

from repro.engine import GraspanEngine, shared_memory_available
from repro.frontend import pointer_graph
from repro.grammar import pointsto_grammar_extended
from repro.workloads import workload_by_name


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "httpd"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    workload = workload_by_name(name)
    graph = pointer_graph(workload.compile())
    grammar = pointsto_grammar_extended()
    print(f"{workload.name}: pointer graph with {graph.num_edges} edges")
    if not shared_memory_available():
        print("(no POSIX shared memory here; 'process' will run as threads)")
    print()

    edges = {}
    for backend in ("serial", "thread", "process"):
        engine = GraspanEngine(
            grammar,
            num_threads=1 if backend == "serial" else workers,
            parallel_backend=backend,
        )
        started = time.perf_counter()
        comp = engine.run(graph)
        wall = time.perf_counter() - started
        edges[backend] = comp.num_edges
        par = comp.stats.parallelism_summary()
        print(
            f"{backend:8}: {wall:6.2f}s  {comp.num_edges} edges  "
            f"[{par['backend']}] {par['chunks']} chunks, "
            f"worst balance {par['worst_chunk_balance']}x, "
            f"pool {par['pool_s']}s vs serial-estimate "
            f"{par['serial_estimate_s']}s (~{par['speedup_estimate']}x)"
        )

    assert len(set(edges.values())) == 1, "backends must agree"
    print("\nSame closure from every backend; only the data plane differs.")


if __name__ == "__main__":
    main()
