"""Protocol-level coordinator tests: driving the lease verbs by hand.

These bypass :class:`DistributedWorker` and speak raw JSON-lines to the
coordinator, so the at-most-once machinery — duplicate suppression,
stale rejection, deadline expiry, early release — is exercised verb by
verb with the counters asserted after each transition.
"""

import time

import pytest

from repro.distributed import DistributedCoordinator
from repro.distributed.messages import Lease, grammar_from_payload
from repro.engine.engine import GraspanEngine
from repro.grammar.builtin import reachability_grammar
from repro.graph import MemGraph
from repro.service.client import ServiceClient, ServiceError
from repro.util.retry import RetryPolicy


@pytest.fixture()
def harness(tmp_path):
    grammar = reachability_grammar()
    graph = MemGraph.from_edges(
        [(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 4, 0), (4, 5, 0), (5, 0, 0)],
        label_names=["E"],
    )
    engine = GraspanEngine(
        grammar,
        max_edges_per_partition=2,
        workdir=tmp_path,
        parallel_backend="distributed",
    )
    session = engine.session(graph)
    session.open()
    coordinator = DistributedCoordinator(
        session, lease_timeout=30.0
    ).start()
    client = ServiceClient(
        "127.0.0.1", coordinator.port, retry=RetryPolicy(attempts=2)
    )
    try:
        yield coordinator, client, session
    finally:
        client.close()
        coordinator.stop()
        session.close()


def take_lease(client, worker="w0"):
    response = client.request({"op": "lease", "worker": worker})
    assert response["status"] == "lease"
    return Lease.from_payload(response["lease"])


def complete(client, lease, **overrides):
    payload = {
        "op": "complete",
        "lease_id": lease.lease_id,
        "epoch": lease.epoch,
        "chunks": 0,
        "iterations": 1,
        "completed": True,
        "compute_seconds": 0.0,
    }
    payload.update(overrides)
    return client.request(payload)


class TestHandshake:
    def test_hello_carries_faithful_grammar(self, harness):
        coordinator, client, session = harness
        response = client.request({"op": "hello", "worker": "w0"})
        assert response["ok"]
        restored = grammar_from_payload(response["grammar"])
        assert restored.names == session.engine.grammar.names
        assert restored.productions == session.engine.grammar.productions
        assert response["heartbeat_interval"] == pytest.approx(
            coordinator.lease_timeout / 3.0
        )
        assert session.stats.distributed_workers == 1

    def test_unknown_op_is_an_error(self, harness):
        _, client, _ = harness
        with pytest.raises(ServiceError, match="unknown op"):
            client.request({"op": "frobnicate"})


class TestIdempotency:
    def test_duplicate_completion_suppressed(self, harness):
        _, client, session = harness
        lease = take_lease(client)
        assert complete(client, lease)["status"] == "applied"
        # The retried completion must acknowledge without re-applying.
        assert complete(client, lease)["status"] == "duplicate"
        assert session.stats.duplicate_deltas_suppressed == 1
        assert session.stats.leases_completed == 1
        assert len(session.stats.supersteps) == 1

    def test_released_lease_completion_is_stale(self, harness):
        _, client, session = harness
        lease = take_lease(client)
        assert (
            client.request(
                {"op": "release", "lease_id": lease.lease_id}
            )["status"]
            == "released"
        )
        assert complete(client, lease)["status"] == "stale"
        assert session.stats.stale_deltas_rejected == 1
        assert session.stats.leases_completed == 0
        assert len(session.stats.supersteps) == 0

    def test_reissued_pair_gets_fresh_token_and_epoch(self, harness):
        _, client, _ = harness
        first = take_lease(client)
        client.request({"op": "release", "lease_id": first.lease_id})
        second = take_lease(client)
        assert second.pair == first.pair
        assert second.lease_id != first.lease_id
        assert second.epoch == first.epoch + 1

    def test_chunk_count_mismatch_rejected(self, harness):
        _, client, _ = harness
        lease = take_lease(client)
        with pytest.raises(ServiceError, match="delta chunks"):
            complete(client, lease, chunks=3)

    def test_delta_for_unknown_lease_is_stale(self, harness):
        _, client, session = harness
        response = client.request(
            {"op": "delta", "lease_id": "no-such", "epoch": 1,
             "src": "", "keys": ""}
        )
        assert response["status"] == "stale"
        assert session.stats.stale_deltas_rejected == 1


class TestLiveness:
    def test_heartbeat_renews_known_lease(self, harness):
        _, client, _ = harness
        lease = take_lease(client)
        response = client.request(
            {"op": "heartbeat", "lease_id": lease.lease_id}
        )
        assert response["status"] == "renewed"
        assert (
            client.request({"op": "heartbeat", "lease_id": "bogus"})["status"]
            == "unknown"
        )

    def test_expired_lease_reissued_and_old_completion_stale(self, tmp_path):
        grammar = reachability_grammar()
        graph = MemGraph.from_edges(
            [(0, 1, 0), (1, 2, 0), (2, 0, 0)], label_names=["E"]
        )
        engine = GraspanEngine(
            grammar,
            max_edges_per_partition=2,
            workdir=tmp_path,
            parallel_backend="distributed",
        )
        session = engine.session(graph)
        session.open()
        coordinator = DistributedCoordinator(
            session, lease_timeout=0.2
        ).start()
        client = ServiceClient("127.0.0.1", coordinator.port)
        try:
            first = take_lease(client)
            time.sleep(0.4)  # past the deadline, no heartbeat
            second = take_lease(client, worker="w1")
            assert second.pair == first.pair
            assert second.epoch == first.epoch + 1
            assert session.stats.leases_expired == 1
            assert complete(client, first)["status"] == "stale"
            assert complete(client, second)["status"] == "applied"
        finally:
            client.close()
            coordinator.stop()
            session.close()


class TestBackpressure:
    def test_max_inflight_returns_wait(self, tmp_path):
        grammar = reachability_grammar()
        graph = MemGraph.from_edges(
            [(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)], label_names=["E"]
        )
        engine = GraspanEngine(
            grammar,
            max_edges_per_partition=2,
            workdir=tmp_path,
            parallel_backend="distributed",
        )
        session = engine.session(graph)
        session.open()
        coordinator = DistributedCoordinator(
            session, lease_timeout=30.0, max_inflight=1
        ).start()
        client = ServiceClient("127.0.0.1", coordinator.port)
        try:
            lease = take_lease(client)
            waited = client.request({"op": "lease", "worker": "w1"})
            assert waited["status"] == "wait"
            assert waited["retry_after"] > 0
            complete(client, lease)
            # Backpressure lifted: the next request gets real work (or
            # the fixed point, if that completion settled the last pair)
            # instead of another "wait".
            assert client.request({"op": "lease"})["status"] in (
                "lease",
                "done",
            )
        finally:
            client.close()
            coordinator.stop()
            session.close()

    def test_status_reports_progress(self, harness):
        _, client, _ = harness
        lease = take_lease(client)
        status = client.request({"op": "status"})
        assert status["inflight"] == 1
        assert status["finished"] is False
        complete(client, lease)
        status = client.request({"op": "status"})
        assert status["inflight"] == 0
        assert status["supersteps"] == 1


class TestDrain:
    """Shutdown must wait until every known worker has heard ``done``."""

    def _drive_to_done(self, client, worker):
        for _ in range(10_000):
            response = client.request({"op": "lease", "worker": worker})
            if response["status"] == "done":
                return
            if response["status"] == "wait":
                time.sleep(response.get("retry_after", 0.01))
                continue
            complete(client, Lease.from_payload(response["lease"]),
                     worker=worker)
        raise AssertionError("closure never reached the fixed point")

    def test_drained_waits_for_every_worker(self, harness):
        coordinator, client, _ = harness
        client.request({"op": "hello", "worker": "w0"})
        client.request({"op": "hello", "worker": "w1"})
        self._drive_to_done(client, "w0")
        # w0 heard "done" but w1 is still out there polling: finished,
        # yet not drained — stopping now would slam the door on w1.
        assert coordinator.finished()
        assert not coordinator.drained()
        assert client.request({"op": "lease", "worker": "w1"})["status"] == "done"
        assert coordinator.drained()

    def test_drain_grace_covers_dead_workers(self, harness):
        coordinator, client, _ = harness
        client.request({"op": "hello", "worker": "w0"})
        client.request({"op": "hello", "worker": "ghost"})
        self._drive_to_done(client, "w0")
        # "ghost" died and will never poll again: the grace window, not
        # its missing "done", must release the coordinator.
        assert not coordinator.drained()
        time.sleep(0.05)
        assert coordinator.drained(grace=0.01)
