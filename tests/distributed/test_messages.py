"""Unit tests for the lease-protocol wire helpers (DESIGN.md §16)."""

import numpy as np
import pytest

from repro.distributed.messages import (
    DELTA_CHUNK_EDGES,
    Lease,
    LeaseError,
    LeasePartition,
    decode_array,
    delta_chunks,
    encode_array,
    grammar_from_payload,
    grammar_payload,
    join_delta_chunks,
    partition_fingerprint,
)
from repro.graph import MemGraph
from repro.partition.preprocess import preprocess
from repro.partition.storage import PartitionStore


class TestArrayCodec:
    def test_roundtrip(self):
        arr = np.array([0, 1, -5, 2**62, -(2**62)], dtype=np.int64)
        assert np.array_equal(decode_array(encode_array(arr)), arr)

    def test_empty_roundtrip(self):
        out = decode_array(encode_array(np.empty(0, dtype=np.int64)))
        assert out.dtype == np.int64 and len(out) == 0

    def test_casts_to_int64(self):
        out = decode_array(encode_array(np.array([1, 2, 3], dtype=np.int32)))
        assert out.dtype == np.int64
        assert np.array_equal(out, [1, 2, 3])

    def test_misaligned_payload_rejected(self):
        import base64

        text = base64.b64encode(b"12345").decode("ascii")
        with pytest.raises(LeaseError, match="not int64-aligned"):
            decode_array(text)

    def test_garbage_base64_rejected(self):
        with pytest.raises(Exception):
            decode_array("!!! not base64 !!!")


class TestPartitionFingerprint:
    @pytest.fixture()
    def partition_file(self, tmp_path):
        graph = MemGraph.from_edges(
            [(0, 1, 0), (1, 2, 0), (2, 0, 0)], label_names=["E"]
        )
        pset = preprocess(
            graph, store=PartitionStore(tmp_path), max_edges_per_partition=2
        )
        pset.flush_dirty()
        path = pset.slot_state(0)["path"]
        assert path is not None
        return path

    def test_fingerprint_is_header_crc(self, partition_file):
        fp = partition_fingerprint(partition_file)
        assert isinstance(fp, int)
        # Stable across reads of the same write-once file.
        assert partition_fingerprint(partition_file) == fp

    def test_different_content_different_fingerprint(self, tmp_path):
        store = PartitionStore(tmp_path)
        fps = set()
        for seed in (1, 2):
            graph = MemGraph.from_edges(
                [(0, seed, 0), (seed, 2, 0)], label_names=["E"]
            )
            pset = preprocess(graph, store=store, max_edges_per_partition=100)
            pset.flush_dirty()
            fps.add(partition_fingerprint(pset.slot_state(0)["path"]))
        assert len(fps) == 2

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "fake.gp"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 48)
        with pytest.raises(LeaseError, match="not a GRSPART2"):
            partition_fingerprint(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.gp"
        path.write_bytes(b"GRSPART2\x00\x00")
        with pytest.raises(LeaseError, match="truncated"):
            partition_fingerprint(path)


class TestLeasePayload:
    def lease(self):
        return Lease(
            lease_id="abc123",
            epoch=3,
            pair=(1, 4),
            partitions=(
                LeasePartition(
                    pid=1, path="partition-000001.gp", fingerprint=17,
                    edges=100, lo=0, hi=32,
                ),
                LeasePartition(
                    pid=4, path="partition-000009.gp", fingerprint=23,
                    edges=250, lo=96, hi=128,
                ),
            ),
            deadline_seconds=30.0,
        )

    def test_roundtrip(self):
        lease = self.lease()
        assert Lease.from_payload(lease.to_payload()) == lease

    def test_payload_is_json_plain(self):
        import json

        # The payload must survive the service-tier JSON framing as-is.
        assert Lease.from_payload(
            json.loads(json.dumps(self.lease().to_payload()))
        ) == self.lease()

    def test_malformed_pair_rejected(self):
        payload = self.lease().to_payload()
        payload["pair"] = [1, 2, 3]
        with pytest.raises(LeaseError):
            Lease.from_payload(payload)

    def test_missing_field_rejected(self):
        payload = self.lease().to_payload()
        del payload["lease_id"]
        with pytest.raises(LeaseError, match="malformed lease"):
            Lease.from_payload(payload)

    def test_malformed_partition_rejected(self):
        payload = self.lease().to_payload()
        del payload["partitions"][0]["fingerprint"]
        with pytest.raises(LeaseError, match="malformed lease"):
            Lease.from_payload(payload)


class TestGrammarPayload:
    """The handshake grammar must survive id-for-id — packed keys encode
    label ids, so first-appearance re-interning (what the text format
    does) silently mislabels every edge on the worker."""

    def grammars(self):
        from repro.grammar.builtin import (
            pointsto_grammar_extended,
            reachability_grammar,
        )

        return [reachability_grammar(), pointsto_grammar_extended()]

    def test_roundtrip_preserves_label_table(self):
        import json

        for grammar in self.grammars():
            restored = grammar_from_payload(
                json.loads(json.dumps(grammar_payload(grammar)))
            )
            assert restored.names == grammar.names
            assert restored.productions == grammar.productions
            assert np.array_equal(
                restored.binary_index, grammar.binary_index
            )
            assert restored.unary_closure == grammar.unary_closure

    def test_text_format_is_not_faithful_for_extended_grammar(self):
        # The regression the payload format exists for: text drops
        # production-free labels and renumbers the rest.
        from repro.grammar import grammar_to_text, parse_grammar_text
        from repro.grammar.builtin import pointsto_grammar_extended

        grammar = pointsto_grammar_extended()
        reparsed = parse_grammar_text(grammar_to_text(grammar))
        assert reparsed.names != grammar.names

    def test_malformed_payload_rejected(self):
        with pytest.raises(LeaseError, match="malformed grammar"):
            grammar_from_payload({"labels": ["A"]})
        with pytest.raises(LeaseError, match="malformed grammar"):
            grammar_from_payload(
                {"labels": ["A"], "productions": [["A", None]]}
            )


class TestDeltaChunks:
    def test_empty_delta_no_chunks(self):
        assert delta_chunks(np.empty(0, np.int64), np.empty(0, np.int64)) == []

    def test_join_of_nothing_is_empty(self):
        src, keys = join_delta_chunks([])
        assert len(src) == 0 and len(keys) == 0

    def test_single_chunk_roundtrip(self):
        src = np.arange(10, dtype=np.int64)
        keys = np.arange(10, 20, dtype=np.int64)
        chunks = delta_chunks(src, keys)
        assert len(chunks) == 1
        decoded = [(decode_array(a), decode_array(b)) for a, b in chunks]
        out_src, out_keys = join_delta_chunks(decoded)
        assert np.array_equal(out_src, src)
        assert np.array_equal(out_keys, keys)

    def test_chunking_preserves_order_and_content(self):
        src = np.arange(25, dtype=np.int64)
        keys = src * 7
        chunks = delta_chunks(src, keys, chunk_edges=10)
        assert len(chunks) == 3  # 10 + 10 + 5
        decoded = [(decode_array(a), decode_array(b)) for a, b in chunks]
        assert len(decoded[0][0]) == 10 and len(decoded[2][0]) == 5
        out_src, out_keys = join_delta_chunks(decoded)
        assert np.array_equal(out_src, src)
        assert np.array_equal(out_keys, keys)

    def test_default_chunk_limit_fits_frame(self):
        # ~21.4 base64 bytes per (src, key) edge; the default chunk size
        # must stay far inside the 64 MiB service frame limit.
        from repro.service.protocol import MAX_MESSAGE_BYTES

        per_edge_b64 = 2 * 8 * 4 / 3
        assert DELTA_CHUNK_EDGES * per_edge_b64 < MAX_MESSAGE_BYTES * 0.75
