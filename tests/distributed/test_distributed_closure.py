"""Distributed supersteps end-to-end: byte-identity and fault matrix.

The contract under test (DESIGN.md §16): a closure driven by the
coordinator/worker lease protocol is **byte-identical** to the serial
schedule's — same canonical ``(src, keys)`` arrays out of
``to_memgraph()`` — for any worker count, under a memory budget, and
across a crash/resume; killing a worker mid-lease loses no edges and
applies no delta twice, with the idempotency counters proving it.
"""

import numpy as np
import pytest

from repro.engine.engine import GraspanEngine
from repro.frontend.graphs import pointer_graph
from repro.grammar.builtin import pointsto_grammar_extended
from repro.util.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.workloads.programs import workload_by_name

WORKLOADS = {
    "postgresql": 0.05,
    "linux": 0.12,
    "httpd": 0.1,
}


@pytest.fixture(scope="module")
def grammar():
    return pointsto_grammar_extended()


@pytest.fixture(scope="module")
def baselines(grammar, tmp_path_factory):
    """Serial closure + schedule per workload, computed once."""
    out = {}
    for name, scale in WORKLOADS.items():
        graph = pointer_graph(workload_by_name(name, scale=scale).compile())
        workdir = tmp_path_factory.mktemp(f"serial-{name}")
        max_edges = max(100, graph.num_edges // 2)
        computation = GraspanEngine(
            grammar, max_edges_per_partition=max_edges, workdir=workdir
        ).run(graph)
        closure = computation.to_memgraph()
        out[name] = {
            "graph": graph,
            "max_edges": max_edges,
            "src": np.asarray(closure.src).copy(),
            "keys": np.asarray(closure.keys).copy(),
            "schedule": [
                (r.pair, r.edges_added, r.completed)
                for r in computation.stats.supersteps
            ],
        }
    return out


def run_distributed_engine(base, grammar, workdir, workers, **engine_kwargs):
    distributed = engine_kwargs.pop("distributed", {})
    distributed.setdefault("workers", workers)
    engine = GraspanEngine(
        grammar,
        max_edges_per_partition=base["max_edges"],
        workdir=workdir,
        parallel_backend="distributed",
        distributed=distributed,
        **engine_kwargs,
    )
    with engine.session(base["graph"]) as session:
        session.run()
        closure = session.pset.to_memgraph()
        return (
            np.asarray(closure.src).copy(),
            np.asarray(closure.keys).copy(),
            session.stats,
        )


def assert_identical(base, src, keys):
    assert np.array_equal(base["src"], src)
    assert np.array_equal(base["keys"], keys)


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_two_workers_identical(self, name, baselines, grammar, tmp_path):
        base = baselines[name]
        src, keys, stats = run_distributed_engine(base, grammar, tmp_path, 2)
        assert_identical(base, src, keys)
        summary = stats.distributed_summary()
        assert summary["workers"] == 2
        assert summary["leases_completed"] == len(stats.supersteps)
        assert summary["duplicate_deltas_suppressed"] == 0

    def test_single_worker_is_the_serial_schedule(
        self, baselines, grammar, tmp_path
    ):
        """One worker, sequential pulls: not just the same closure — the
        exact serial superstep sequence (pair, delta size, completion)."""
        base = baselines["postgresql"]
        src, keys, stats = run_distributed_engine(base, grammar, tmp_path, 1)
        assert_identical(base, src, keys)
        schedule = [
            (r.pair, r.edges_added, r.completed) for r in stats.supersteps
        ]
        assert schedule == base["schedule"]

    def test_four_workers_identical(self, baselines, grammar, tmp_path):
        base = baselines["httpd"]
        src, keys, stats = run_distributed_engine(base, grammar, tmp_path, 4)
        assert_identical(base, src, keys)
        assert stats.distributed_summary()["workers"] == 4

    def test_identical_under_memory_budget(self, baselines, grammar, tmp_path):
        base = baselines["linux"]
        src, keys, stats = run_distributed_engine(
            base, grammar, tmp_path, 2, memory_budget=1 << 20
        )
        assert_identical(base, src, keys)

    def test_crash_then_resume_identical(self, baselines, grammar, tmp_path):
        base = baselines["postgresql"]
        plan = FaultPlan(crash_after_commit=4)
        engine = GraspanEngine(
            grammar,
            max_edges_per_partition=base["max_edges"],
            workdir=tmp_path,
            parallel_backend="distributed",
            checkpoint=True,
            distributed={"workers": 2},
            fault_injector=FaultInjector(plan),
        )
        with pytest.raises(InjectedCrash):
            engine.run(base["graph"])
        resumed = GraspanEngine(
            grammar,
            max_edges_per_partition=base["max_edges"],
            workdir=tmp_path,
            parallel_backend="distributed",
            checkpoint=True,
            distributed={"workers": 2},
        )
        closure = resumed.run(base["graph"], resume=True).to_memgraph()
        assert_identical(
            base, np.asarray(closure.src), np.asarray(closure.keys)
        )


class TestWorkerDeath:
    def test_kill_mid_lease_loses_nothing_applies_nothing_twice(
        self, baselines, grammar, tmp_path
    ):
        """A worker killed at its 3rd lease dispatch: the coordinator
        reissues the lost lease, the survivor finishes the closure, the
        counters prove at-most-once application."""
        base = baselines["postgresql"]
        plan = FaultPlan(kill_worker_at_dispatch=3)
        src, keys, stats = run_distributed_engine(
            base,
            grammar,
            tmp_path,
            2,
            fault_injector=FaultInjector(plan),
        )
        assert_identical(base, src, keys)
        summary = stats.distributed_summary()
        assert summary["worker_deaths"] >= 1
        assert summary["leases_reissued"] >= 1
        # At-most-once: every superstep came from exactly one applied
        # lease, nothing was merged twice, nothing stale got in.
        assert summary["leases_completed"] == len(stats.supersteps)
        assert summary["duplicate_deltas_suppressed"] == 0
        assert summary["stale_deltas_rejected"] == 0
        assert (
            summary["leases_issued"]
            == summary["leases_completed"] + summary["leases_reissued"]
        )

    def test_all_workers_die_coordinator_respawns(
        self, baselines, grammar, tmp_path
    ):
        """Sole worker dies mid-run: run_distributed spawns a replacement
        generation and still reaches the identical fixed point."""
        base = baselines["postgresql"]
        plan = FaultPlan(kill_worker_at_dispatch=2)
        src, keys, stats = run_distributed_engine(
            base,
            grammar,
            tmp_path,
            1,
            fault_injector=FaultInjector(plan),
        )
        assert_identical(base, src, keys)
        assert stats.distributed_summary()["worker_deaths"] == 1


class TestWorkerCache:
    def test_worker_memory_budget_respected(self, baselines, grammar, tmp_path):
        base = baselines["postgresql"]
        src, keys, _ = run_distributed_engine(
            base,
            grammar,
            tmp_path,
            2,
            distributed={"worker_memory_budget": 1 << 16},
        )
        assert_identical(base, src, keys)
