"""Shrinking: ddmin reduces failing cases to 1-minimal MiniC repros.

The acceptance test plants a deliberately broken oracle under a real
generated workload and proves the shrinker hands back a *minimal*
failing program — the mismatch persists on the shrunk sources, the
artifact directory replays it, and no smaller unit set still fails.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz import (
    ddmin,
    minic_case,
    oracle_closure,
    run_seed,
    shrink_sources,
    split_toplevel,
)
from repro.fuzz.cases import CaseBuildError, rebuild
from repro.fuzz.diff import DEFAULT_CONFIGS, DifferentialMismatch, check_case
from repro.fuzz.shrink import to_sources, to_units

SAMPLE = """int *g;
int other;

void f(void) {
    int x;
    x = 1;
    if (x) { x = 2; }
}

void h(void) {
    f();
}
"""


class TestSplitting:
    def test_units_concatenate_back_to_the_source(self):
        units = split_toplevel(SAMPLE)
        assert "".join(units) == SAMPLE

    def test_functions_and_globals_are_separate_units(self):
        units = split_toplevel(SAMPLE)
        bodies = [u for u in units if "{" in u]
        globals_ = [u for u in units if "{" not in u]
        assert len(bodies) == 2
        assert any("int *g;" in u for u in globals_)

    def test_sources_roundtrip(self):
        sources = [("a", SAMPLE), ("b", "int y;\n")]
        assert to_sources(to_units(sources)) == sources


class TestDdmin:
    def test_finds_the_two_culprit_units(self):
        units = [("m", f"u{i};") for i in range(12)]
        culprits = {("m", "u2;"), ("m", "u9;")}
        probes = []

        def fails(us):
            probes.append(len(us))
            return culprits <= set(us)

        minimal = ddmin(units, fails)
        assert set(minimal) == culprits
        # 1-minimality by construction: dropping either culprit passes.
        for unit in minimal:
            assert not fails([u for u in minimal if u != unit])

    def test_always_failing_predicate_reduces_to_one_unit(self):
        units = [("m", f"u{i};") for i in range(9)]
        minimal = ddmin(units, lambda us: True)
        assert len(minimal) == 1

    def test_requires_a_failing_input(self):
        with pytest.raises(AssertionError, match="failing input"):
            ddmin([("m", "u;")], lambda us: False)

    def test_probe_budget_returns_progress(self):
        units = [("m", f"u{i};") for i in range(16)]
        minimal = ddmin(units, lambda us: True, max_probes=3)
        assert 1 <= len(minimal) <= len(units)


class TestBrokenOracleShrink:
    """The end-to-end acceptance: a wrong oracle on a real generated
    workload shrinks to a minimal failing MiniC repro artifact."""

    SEED = 2

    @staticmethod
    def broken_oracle(case):
        return oracle_closure(case) | {(10**6, 10**6, 0)}

    def test_shrinks_to_minimal_repro_artifact(self, tmp_path):
        result = run_seed(
            self.SEED,
            configs=DEFAULT_CONFIGS[:1],
            artifact_dir=tmp_path / "artifacts",
            fault=False,
            oracle_fn=self.broken_oracle,
        )
        assert result.status == "fail"
        assert result.artifact is not None and result.artifact.is_dir()

        meta = json.loads((result.artifact / "repro.json").read_text())
        assert meta["seed"] == self.SEED
        assert meta["config"] == "serial"
        assert 0 < meta["shrunk_loc"] < meta["original_loc"]

        # The artifact's sources reduce to a single top-level unit: with
        # an always-wrong oracle every compilable unit still fails, so
        # 1-minimality means exactly one unit survives.
        sources = [
            (name, (result.artifact / f"{name}.c").read_text())
            for name in meta["modules"]
        ]
        assert len(to_units(sources)) == 1

        # And that minimal program still reproduces the mismatch.
        case = minic_case(self.SEED)
        shrunk = rebuild(case, sources)
        with pytest.raises(DifferentialMismatch):
            check_case(
                shrunk,
                DEFAULT_CONFIGS[:1],
                tmp_path / "replay",
                oracle=self.broken_oracle(shrunk),
            )

    def test_shrink_probe_rejects_uncompilable_candidates(self):
        case = minic_case(self.SEED)
        with pytest.raises(CaseBuildError):
            rebuild(case, [("m", "void broken( {")])

    def test_shrink_sources_respects_predicate(self):
        sources = [("a", "int x;\nint y;\n"), ("b", "int z;\n")]

        def fails(ss):
            return any("int z;" in s for _, s in ss)

        minimal = shrink_sources(sources, fails)
        assert minimal == [("b", "int z;\n")]
