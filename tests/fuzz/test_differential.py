"""Differential fuzzing: the engine agrees with the Datalog oracle.

A handful of pinned seeds run here (the CI ``fuzz-smoke`` job and
``python -m repro fuzz`` sweep many more): the full default config
matrix — including the matmul backend and the crash/resume leg — must
match the oracle fact-for-fact and each other byte-for-byte, and the
fault-composed re-runs must end in a correct closure or a loud
corruption detection, never a silent wrong answer.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fuzz import (
    DEFAULT_CONFIGS,
    DifferentialMismatch,
    EngineConfig,
    case_for_seed,
    check_case,
    minic_case,
    oracle_closure,
    raw_case,
    run_seed,
)

#: Seeds pinned for the in-repo smoke: two MiniC (taint + nullflow), one
#: raw topology.  seed % 3 == 0 selects the raw family.
SMOKE_SEEDS = (1, 2, 3)


class TestDifferentialMatrix:
    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_matrix_agrees_with_oracle(self, seed, tmp_path):
        case = case_for_seed(seed)
        outcomes = check_case(case, DEFAULT_CONFIGS, tmp_path)
        assert set(outcomes) == {c.name for c in DEFAULT_CONFIGS}
        assert all(o.status == "ok" for o in outcomes.values())
        # The resume leg must actually exercise crash/restore, not just
        # rerun cold — otherwise the matrix quietly loses a dimension.
        assert outcomes["budget-resume"].resumed

    def test_matmul_config_is_in_the_default_matrix(self):
        assert any(c.backend == "matmul" for c in DEFAULT_CONFIGS)
        assert any(c.resume for c in DEFAULT_CONFIGS)

    def test_empty_graph_case(self, tmp_path):
        seed = next(
            s for s in range(0, 90, 3) if "empty" in raw_case(s).name
        )
        case = raw_case(seed)
        assert case.graph.num_edges == 0
        outcomes = check_case(case, DEFAULT_CONFIGS, tmp_path)
        assert all(o.status == "ok" for o in outcomes.values())

    def test_broken_oracle_is_detected(self, tmp_path):
        case = case_for_seed(2)
        bogus = oracle_closure(case) | {(10**6, 10**6, 0)}
        with pytest.raises(DifferentialMismatch) as err:
            check_case(
                case, (EngineConfig("serial"),), tmp_path, oracle=bogus
            )
        assert err.value.missing  # the fact the engine rightly lacks
        assert not err.value.extra

    def test_mismatch_names_case_and_config(self, tmp_path):
        case = case_for_seed(2)
        bogus = oracle_closure(case) | {(10**6, 10**6, 0)}
        with pytest.raises(DifferentialMismatch, match=r"minic-2.*serial"):
            check_case(
                case, (EngineConfig("serial"),), tmp_path, oracle=bogus
            )


class TestFaultComposition:
    @pytest.mark.parametrize("seed", (1, 2))
    def test_fault_composed_rerun_survives(self, seed):
        result = run_seed(seed, configs=DEFAULT_CONFIGS[:1], fault=True)
        assert result.status == "ok", result.error
        assert result.fault_outcomes, "the fault leg did not run"
        assert set(result.fault_outcomes.values()) <= {
            "ok",
            "corruption-detected",
        }

    def test_fault_plans_vary_with_offset(self):
        a = run_seed(3, configs=DEFAULT_CONFIGS[:1], fault=True, fault_offset=0)
        b = run_seed(3, configs=DEFAULT_CONFIGS[:1], fault=True, fault_offset=1)
        assert a.status == b.status == "ok"
        assert a.fault_plan != b.fault_plan


class TestCaseDeterminism:
    """The whole campaign replays from a seed — across processes."""

    @pytest.mark.parametrize("seed", (1, 3))
    def test_same_seed_same_case_across_processes(self, seed):
        case = case_for_seed(seed)
        script = (
            "import json, sys, zlib\n"
            "from repro.fuzz import case_for_seed\n"
            f"case = case_for_seed({seed})\n"
            "print(json.dumps({\n"
            "    'name': case.name,\n"
            "    'edges': int(case.graph.num_edges),\n"
            "    'src': zlib.crc32(case.graph.src.tobytes()),\n"
            "    'keys': zlib.crc32(case.graph.keys.tobytes()),\n"
            "}))\n"
        )
        src_root = Path(__file__).resolve().parents[2] / "src"
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src_root), "PATH": "/usr/bin:/bin"},
        )
        other = json.loads(out.stdout)
        import zlib

        assert other == {
            "name": case.name,
            "edges": int(case.graph.num_edges),
            "src": zlib.crc32(case.graph.src.tobytes()),
            "keys": zlib.crc32(case.graph.keys.tobytes()),
        }

    def test_minic_sources_ride_along(self):
        case = minic_case(2)
        assert case.is_minic
        assert case.sources and case.graph_builder in (
            "pointer",
            "nullflow",
            "taint",
        )

    def test_raw_cases_have_no_sources(self):
        case = raw_case(3)
        assert not case.is_minic
