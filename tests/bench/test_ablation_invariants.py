"""Property tests for the ablation reference implementations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.ablation import run_superstep_full_rejoin
from repro.engine import run_superstep
from repro.graph import from_pairs, packed
from repro.grammar import dyck_grammar

DYCK = dyck_grammar()


@st.composite
def adjacencies(draw):
    n = draw(st.integers(2, 9))
    count = draw(st.integers(1, 15))
    by_src = {}
    for _ in range(count):
        s = draw(st.integers(0, n - 1))
        d = draw(st.integers(0, n - 1))
        l = draw(st.integers(0, 1))
        by_src.setdefault(s, []).append((d, l))
    return {v: from_pairs(pairs) for v, pairs in by_src.items()}


def flatten(adjacency):
    out = set()
    for v, keys in adjacency.items():
        for d, l in packed.to_pairs(keys):
            out.add((v, d, l))
    return out


@given(adjacencies())
@settings(max_examples=40, deadline=None)
def test_full_rejoin_equals_oldnew(adjacency):
    """The ablation variant computes the exact same closure — only the
    amount of re-matching differs."""
    full_state, _, _ = run_superstep_full_rejoin(dict(adjacency), DYCK)
    oldnew = run_superstep(dict(adjacency), DYCK)
    assert flatten(full_state) == flatten(oldnew.adjacency)


@given(adjacencies())
@settings(max_examples=25, deadline=None)
def test_oldnew_never_does_more_join_output(adjacency):
    _, _, full_volume = run_superstep_full_rejoin(dict(adjacency), DYCK)
    oldnew = run_superstep(dict(adjacency), DYCK)
    # the old/new discipline's output (new edges) is bounded by the full
    # rejoin's raw candidate volume
    assert oldnew.edges_added <= full_volume
