"""Tests for the bench harness utilities."""

import pytest

from repro.bench import bench_scale, measure, render_table, rows_from_dicts
from repro.bench.harness import SCALE_ENV


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV, raising=False)
        assert bench_scale(2.5) == 2.5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV, "0.25")
        assert bench_scale() == 0.25

    def test_nonpositive_rejected(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV, "0")
        with pytest.raises(ValueError):
            bench_scale()


class TestMeasure:
    def test_returns_value_and_time(self):
        result = measure(lambda: 42)
        assert result.value == 42
        assert result.seconds >= 0


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            "T", ["col", "n"], [["a", 1], ["long-value", 22]], note="hi"
        )
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "col" in lines[1] and "n" in lines[1]
        assert "-+-" in lines[2]
        assert "(hi)" in lines[-1]
        # columns aligned: both data rows have the separator at the same
        # position
        assert lines[3].index("|") == lines[4].index("|")

    def test_rows_from_dicts(self):
        rows = rows_from_dicts(
            [{"a": 1, "b": 2}, {"a": 3}], ["a", "b"]
        )
        assert rows == [[1, 2], [3, ""]]
