"""Tests for the Figure 4 sparkline renderer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_peak_gets_top_glyph(self):
        out = sparkline([0.0, 1.0, 0.5])
        assert out[1] == "@"
        assert out[0] == " "

    def test_monotone_series_monotone_glyphs(self):
        ramp = "  .:-=+*#%@"
        out = sparkline([i / 10 for i in range(11)])
        positions = [ramp.index(c) if c in ramp else 99 for c in out]
        assert positions == sorted(positions)

    def test_long_series_bucketed_to_width(self):
        out = sparkline(list(range(500)), width=40)
        assert len(out) == 40

    def test_negative_values_clamped(self):
        out = sparkline([-5, 1])
        assert out[0] == " "


@given(st.lists(st.floats(0, 1000), min_size=1, max_size=300))
@settings(max_examples=60, deadline=None)
def test_sparkline_bounded_width(values):
    out = sparkline(values, width=60)
    assert 0 < len(out) <= 60
