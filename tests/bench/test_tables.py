"""Smoke tests for the table-reproduction functions at tiny scale.

The real runs live in ``benchmarks/``; these verify the plumbing and the
shape contracts quickly.
"""

import pytest

from repro.bench import (
    ablation_dedup_merge,
    ablation_oldnew,
    ablation_scheduler,
    compile_workload,
    dataflow_input,
    figure4_series,
    graphchi_rows,
    race_rows,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
    table6_rows,
)
from repro.grammar import pointsto_grammar_extended


@pytest.fixture(scope="module")
def httpd_small():
    return compile_workload("httpd", scale=0.5)


class TestTableFunctions:
    def test_table1(self):
        rows = table1_rows()
        assert len(rows) == 11
        assert {r["checker"] for r in rows} >= {"Null", "UNTest", "Race", "Taint", "Async"}

    def test_table2(self, httpd_small):
        rows = table2_rows([httpd_small])
        assert rows[0]["inlines"] == httpd_small.pg.inline_count
        assert rows[0]["paper_inlines"] == 58_269

    def test_table3_and_4(self, httpd_small):
        rows, result = table3_rows(httpd_small)
        by_name = {r["checker"]: r for r in rows}
        assert by_name["Null"]["gr_new_true"] == by_name["Null"]["truth"]
        t4 = table4_rows(httpd_small, result)
        total = next(r for r in t4 if r["module"] == "Total")
        assert total["untests"] > 0

    def test_race_rows(self, httpd_small):
        (row,) = race_rows([httpd_small])
        assert row["injected"] > 0
        assert row["gr_recall"] == 1.0
        assert row["gr_fp"] < row["bl_fp"]
        assert row["threads"] > 1
        assert row["extra_closure_runs"] == 0

    def test_table5_and_figure4(self, httpd_small):
        rows, stats = table5_rows([httpd_small], partitions_hint=3)
        assert len(rows) == 2  # pointer + dataflow
        pointer = next(r for r in rows if r["analysis"] == "pointer/alias")
        assert pointer["edges_final"] > pointer["edges_initial"]
        series = figure4_series(stats)
        assert len(series) == 2
        assert all(0 <= r["first_half_share"] <= 1 for r in series)

    def test_table6(self, httpd_small):
        rows = table6_rows(
            [httpd_small], memory_bytes=1 << 22, time_budget_seconds=30
        )
        assert all(r["graspan_status"] == "ok" for r in rows)

    def test_graphchi(self, httpd_small):
        rows = graphchi_rows(
            httpd_small, edge_budget=100_000, time_budget_seconds=20
        )
        by_system = {r["system"]: r for r in rows}
        assert by_system["Graspan (merge dedup)"]["status"] == "ok"
        assert by_system["vertex-centric (dedup=none)"]["status"] in (
            "diverged",
            "timeout",
        )

    def test_dataflow_input_has_sources(self, httpd_small):
        graph = dataflow_input(httpd_small)
        assert graph.num_edges > 0


class TestAblations:
    def test_oldnew_same_closure(self, httpd_small):
        rows = ablation_oldnew(httpd_small.pointer, pointsto_grammar_extended())
        full, oldnew = rows
        assert full["final_edges"] == oldnew["final_edges"]

    def test_dedup_variants_agree(self):
        import numpy as np

        rng = np.random.default_rng(1)
        arrays = [
            np.unique(rng.integers(0, 500, 80).astype(np.int64)) for _ in range(4)
        ]
        rows = ablation_dedup_merge(arrays)
        assert len(rows) == 3

    def test_scheduler_ablation(self, httpd_small):
        rows = ablation_scheduler(
            httpd_small.pointer, pointsto_grammar_extended(), partitions_hint=3
        )
        ddm, rr = rows
        assert ddm["final_edges"] == rr["final_edges"]
        assert ddm["supersteps"] <= rr["supersteps"]
