"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.grammar import (
    dyck_grammar,
    nullflow_grammar,
    pointsto_grammar,
    pointsto_grammar_extended,
    reachability_grammar,
)
from repro.graph import MemGraph


@pytest.fixture(scope="session")
def reach():
    return reachability_grammar()


@pytest.fixture(scope="session")
def dyck():
    return dyck_grammar()


@pytest.fixture(scope="session")
def pointsto():
    return pointsto_grammar()


@pytest.fixture(scope="session")
def pointsto_ext():
    return pointsto_grammar_extended()


@pytest.fixture(scope="session")
def nullflow():
    return nullflow_grammar()


@pytest.fixture
def chain_graph():
    """0 -> 1 -> ... -> 9, single label E (id 0)."""
    return MemGraph.from_edges(
        [(i, i + 1, 0) for i in range(9)], label_names=["E"]
    )


@pytest.fixture
def diamond_graph():
    """0 -> {1,2} -> 3, label E."""
    return MemGraph.from_edges(
        [(0, 1, 0), (0, 2, 0), (1, 3, 0), (2, 3, 0)], label_names=["E"]
    )


#: A small but representative MiniC program used across frontend and
#: analysis tests: interprocedural NULL, aliasing through the heap, a
#: guarded deref, and a function pointer.
SAMPLE_SOURCE = """
int *shared;

void *make(void) {
    int *fresh;
    fresh = malloc(8);
    return fresh;
}

void *risky(int n) {
    int *p;
    p = NULL;
    if (n) { p = malloc(8); }
    return p;
}

void sink(void) {
    sleep();
}

void driver(void) {
    int *a;
    int *b;
    int *c;
    void *fp;
    a = make();
    b = risky(0);
    *b = 1;
    c = a;
    if (a) { *a = 2; }
    fp = sink;
    fp();
}
"""


@pytest.fixture(scope="session")
def sample_pg():
    from repro.frontend import compile_program

    return compile_program(SAMPLE_SOURCE, module="sample")


@pytest.fixture(scope="session")
def sample_analyses(sample_pg):
    from repro.checkers import run_analyses

    return run_analyses(sample_pg)
