"""Tests for the semi-naive Datalog engine (the SociaLite stand-in)."""


from repro.baselines import DatalogEngine, Rule, grammar_to_rules, run_datalog
from repro.engine import naive_closure
from repro.graph import MemGraph


class TestRules:
    def test_grammar_to_rules_one_per_production(self, reach):
        rules = grammar_to_rules(reach)
        assert len(rules) == len(reach.productions)

    def test_rule_rendering(self):
        assert str(Rule("R", "E")) == "R(x, y) :- E(x, y)."
        assert str(Rule("R", "R", "E")) == "R(x, z) :- R(x, y), E(y, z)."

    def test_analysis_in_few_lines(self):
        """The paper's '<50 LoC per analysis' claim: our grammars compile
        to a handful of rules."""
        from repro.grammar import nullflow_grammar, pointsto_grammar

        assert len(grammar_to_rules(nullflow_grammar())) == 2
        assert len(grammar_to_rules(pointsto_grammar())) == 7


class TestEvaluation:
    def test_matches_oracle(self, reach, chain_graph):
        result = run_datalog(chain_graph, reach)
        assert result.status == "ok"
        got = {
            (x, y, rel)
            for rel, pairs in result.relations.items()
            for x, y in pairs
        }
        expected = {
            (s, d, reach.label_name(l))
            for s, d, l in naive_closure(chain_graph.edges(), reach)
        }
        assert got == expected

    def test_unary_rule_only(self):
        engine = DatalogEngine()
        engine.add_rule(Rule("B", "A"))
        engine.add_fact("A", 1, 2)
        result = engine.evaluate()
        assert result.relations["B"] == {(1, 2)}

    def test_semi_naive_handles_cycles(self, reach):
        edges = [(0, 1, 0), (1, 2, 0), (2, 0, 0)]
        graph = MemGraph.from_edges(edges, label_names=["E"])
        result = run_datalog(graph, reach)
        assert result.status == "ok"
        assert (0, 0) in result.relations["R"]

    def test_oom_on_tiny_budget(self, reach, chain_graph):
        result = run_datalog(chain_graph, reach, memory_budget_bytes=128)
        assert result.status == "oom"
        assert result.relations is None

    def test_tuples_counted(self, reach, chain_graph):
        result = run_datalog(chain_graph, reach)
        assert result.tuples == sum(len(s) for s in result.relations.values())

    def test_matches_graspan(self, dyck):
        from repro.engine import GraspanEngine

        edges = [(0, 1, 0), (1, 2, 1), (2, 3, 0), (3, 4, 1), (0, 3, 0)]
        graph = MemGraph.from_edges(edges, label_names=["OP", "CL"])
        datalog = run_datalog(graph, dyck)
        graspan = GraspanEngine(dyck).run(graph)
        got = {
            (x, y, rel)
            for rel, pairs in datalog.relations.items()
            for x, y in pairs
        }
        expected = {
            (s, d, dyck.label_name(l)) for s, d, l in graspan.pset.iter_all_edges()
        }
        assert got == expected
