"""Tests for the ODA worklist baseline."""


from repro.baselines import run_oda
from repro.engine import naive_closure
from repro.graph import MemGraph


class TestODA:
    def test_matches_oracle(self, reach, chain_graph):
        result = run_oda(chain_graph, reach)
        assert result.status == "ok"
        assert result.edges == naive_closure(chain_graph.edges(), reach)

    def test_dyck_matches_oracle(self, dyck):
        edges = [(0, 1, 0), (1, 2, 0), (2, 3, 1), (3, 4, 1)]
        graph = MemGraph.from_edges(edges, label_names=["OP", "CL"])
        result = run_oda(graph, dyck)
        assert result.edges == naive_closure(edges, dyck)

    def test_oom_on_tiny_budget(self, reach, chain_graph):
        result = run_oda(chain_graph, reach, memory_budget_bytes=100)
        assert result.status == "oom"
        assert result.edges is None
        assert result.facts > 0

    def test_timeout_on_zero_budget(self, reach):
        # A 200-cycle has a dense (200^2 x 2 facts) closure: far past the
        # timeout-check interval, so a zero budget must trip it.
        edges = [(i, (i + 1) % 200, 0) for i in range(200)]
        graph = MemGraph.from_edges(edges, label_names=["E"])
        result = run_oda(graph, reach, time_budget_seconds=0.0)
        assert result.status == "timeout"
        assert result.edges is None

    def test_peak_bytes_reported(self, reach, chain_graph):
        result = run_oda(chain_graph, reach)
        assert result.peak_bytes > 0

    def test_facts_counted(self, reach, chain_graph):
        result = run_oda(chain_graph, reach)
        assert result.facts == len(result.edges)
