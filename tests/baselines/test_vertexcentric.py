"""Tests for the GraphChi-like vertex-centric baseline (§5.4)."""

import pytest

from repro.baselines import run_vertexcentric
from repro.engine import naive_closure
from repro.graph import MemGraph


@pytest.fixture
def small_graph(chain_graph):
    return chain_graph


class TestDivergence:
    def test_no_dedup_diverges(self, reach, small_graph):
        """The paper's core finding: without duplicate checks the DTC
        workload never terminates (GraphChi)."""
        result = run_vertexcentric(
            small_graph, reach, dedup="none", edge_budget=2000
        )
        assert result.status == "diverged"
        assert result.total_edges > 2000

    def test_buffer_dedup_still_diverges(self, reach, small_graph):
        """The naive buffer-only patch: duplicates flushed to shards are
        invisible, so divergence persists."""
        result = run_vertexcentric(
            small_graph,
            reach,
            dedup="buffer",
            buffer_limit=8,
            edge_budget=2000,
            time_budget_seconds=30,
        )
        assert result.status in ("diverged", "timeout")

    def test_full_dedup_terminates_correctly(self, reach, small_graph):
        result = run_vertexcentric(small_graph, reach, dedup="full")
        assert result.status == "ok"
        assert result.total_edges == len(
            naive_closure(small_graph.edges(), reach)
        )

    def test_full_dedup_dyck(self, dyck):
        edges = [(0, 1, 0), (1, 2, 1), (2, 3, 0), (3, 4, 1)]
        graph = MemGraph.from_edges(edges, label_names=["OP", "CL"])
        result = run_vertexcentric(graph, dyck, dedup="full")
        assert result.status == "ok"
        assert result.total_edges == len(naive_closure(edges, dyck))

    def test_unknown_dedup_mode_rejected(self, reach, small_graph):
        with pytest.raises(ValueError):
            run_vertexcentric(small_graph, reach, dedup="magic")

    def test_buffer_stalls_counted(self, reach, small_graph):
        result = run_vertexcentric(
            small_graph, reach, dedup="none", buffer_limit=4, edge_budget=2000
        )
        assert result.buffer_stalls > 0

    def test_no_matches_terminates_quickly(self, dyck):
        graph = MemGraph.from_edges([(0, 1, 0)], label_names=["OP", "CL"])
        result = run_vertexcentric(graph, dyck, dedup="none", edge_budget=100)
        assert result.status == "ok"
        assert result.edges_added == 0
