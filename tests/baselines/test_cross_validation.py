"""Cross-validation: all four solvers agree on random inputs.

Graspan, the naive oracle, ODA, and the Datalog engine implement the same
semantics through radically different machinery; hypothesis checks they
agree fact-for-fact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import run_datalog, run_oda, run_vertexcentric
from repro.engine import GraspanEngine, naive_closure
from repro.graph import MemGraph
from repro.grammar import dyck_grammar

GRAMMAR = dyck_grammar()


@st.composite
def graphs(draw):
    n = draw(st.integers(2, 10))
    num_edges = draw(st.integers(1, 16))
    edges = [
        (
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, 1)),
        )
        for _ in range(num_edges)
    ]
    return MemGraph.from_edges(edges, num_vertices=n, label_names=["OP", "CL"])


@given(graphs())
@settings(max_examples=25, deadline=None)
def test_all_backends_agree(graph):
    oracle = naive_closure(graph.edges(), GRAMMAR)

    graspan = set(GraspanEngine(GRAMMAR).run(graph).pset.iter_all_edges())
    assert graspan == oracle

    oda = run_oda(graph, GRAMMAR)
    assert oda.status == "ok" and oda.edges == oracle

    datalog = run_datalog(graph, GRAMMAR)
    assert datalog.status == "ok"
    datalog_facts = {
        (x, y, GRAMMAR.label_id(rel))
        for rel, pairs in datalog.relations.items()
        for x, y in pairs
    }
    assert datalog_facts == oracle

    vc = run_vertexcentric(graph, GRAMMAR, dedup="full")
    assert vc.status == "ok" and vc.total_edges == len(oracle)
