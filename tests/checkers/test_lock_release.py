"""Regression tests for unlock handling in the Lock checker.

Covers the alias-release fix (an ``unlock`` through a different name
used to leave the lock marked held forever) and the distinct "unlock of
unheld lock" finding, in both baseline and augmented modes.
"""

from repro.checkers import LockChecker, run_analyses
from repro.frontend import compile_program


def ctx_for(source):
    return run_analyses(compile_program(source, module="m"))


def messages(reports):
    return [r.message for r in reports]


ALIASED_RELEASE = """
void f(void) {
    int *a;
    int *b;
    a = malloc(4);
    b = a;
    lock(a);
    unlock(b);
}
"""


class TestAliasedRelease:
    def test_baseline_cannot_match_aliased_unlock(self):
        """Name-keyed matching sees unlock('b') with only 'a' held: one
        spurious unheld-unlock plus one spurious leak on exit."""
        ctx = ctx_for(ALIASED_RELEASE)
        msgs = messages(LockChecker().check_baseline(ctx))
        assert any("unheld" in m for m in msgs)
        assert any("not released" in m for m in msgs)

    def test_augmented_releases_through_alias(self):
        """Alias resolution pairs unlock('b') with the held lock 'a':
        the function is perfectly balanced, no reports."""
        ctx = ctx_for(ALIASED_RELEASE)
        assert LockChecker().check_augmented(ctx) == []

    def test_exact_name_preferred_over_alias(self):
        """When both an exact-name match and an alias match are held,
        the exact name is released — the aliased pair stays balanced
        and only the genuinely unreleased lock is reported."""
        ctx = ctx_for(
            """
            void f(void) {
                int *a;
                int *b;
                a = malloc(4);
                b = a;
                lock(a);
                lock(b);
                unlock(b);
            }
            """
        )
        reports = LockChecker().check_augmented(ctx)
        leftovers = [r for r in reports if "not released" in r.message]
        assert [r.variable for r in leftovers] == ["a"]


class TestUnheldUnlock:
    def test_reported_in_both_modes(self):
        source = """
            void f(int *l) {
                unlock(l);
            }
        """
        ctx = ctx_for(source)
        for reports in (
            LockChecker().check_baseline(ctx),
            LockChecker().check_augmented(ctx),
        ):
            assert len(reports) == 1
            assert reports[0].variable == "l"
            assert "unheld" in reports[0].message

    def test_distinct_lock_objects_stay_unmatched(self):
        """Two separate allocations: unlock of the wrong one is an
        unheld release even with alias resolution, and the held one
        still leaks."""
        ctx = ctx_for(
            """
            void f(void) {
                int *a;
                int *b;
                a = malloc(4);
                b = malloc(4);
                lock(a);
                unlock(b);
            }
            """
        )
        msgs = messages(LockChecker().check_augmented(ctx))
        assert any("unheld" in m for m in msgs)
        assert any("not released" in m for m in msgs)

    def test_balanced_function_stays_clean(self):
        ctx = ctx_for(
            """
            void f(void) {
                int *a;
                a = malloc(4);
                lock(a);
                unlock(a);
            }
            """
        )
        assert LockChecker().check_baseline(ctx) == []
        assert LockChecker().check_augmented(ctx) == []
