"""Tests for the Async checker: blocking calls reachable from async code."""

from repro.checkers import AsyncChecker, run_analyses
from repro.engine import GraspanEngine
from repro.frontend import compile_program


def ctx_for(source):
    return run_analyses(compile_program(source, module="m"))


def keys(reports):
    return {(r.function, r.variable) for r in reports}


DIRECT = """
async void host(void) {
    sleep();
}
"""

WRAPPED = """
void do_block(void) {
    sleep();
}
async int fetch(void) {
    int r;
    r = 1;
    return r;
}
async void deep(void) {
    int q;
    q = await fetch();
    do_block();
}
"""

SPAWN_DECOY = """
void sleepy(void) {
    sleep();
}
void helper(void) {
    int h;
    h = 3;
}
async void host(void) {
    helper();
    spawn sleepy();
}
"""

SYNC_ONLY = """
void do_block(void) {
    sleep();
}
void caller(void) {
    do_block();
}
"""

FUNCTION_POINTER = """
void do_block(void) {
    sleep();
}
async void host(void) {
    void *fp;
    fp = do_block;
    fp();
}
"""


class TestBaseline:
    def test_detects_direct_sleep_in_async_body(self):
        ctx = ctx_for(DIRECT)
        assert keys(AsyncChecker().check_baseline(ctx)) == {("host", "sleep")}

    def test_misses_wrapped_blocking(self):
        """Only direct sleeps are seen (documented false negative)."""
        ctx = ctx_for(WRAPPED)
        assert AsyncChecker().check_baseline(ctx) == []

    def test_ignores_sync_functions(self):
        ctx = ctx_for(SYNC_ONLY)
        assert AsyncChecker().check_baseline(ctx) == []


class TestAugmented:
    def test_detects_direct_sleep(self):
        ctx = ctx_for(DIRECT)
        assert keys(AsyncChecker().check_augmented(ctx)) == {("host", "sleep")}

    def test_detects_wrapped_blocking(self):
        ctx = ctx_for(WRAPPED)
        reports = AsyncChecker().check_augmented(ctx)
        assert ("deep", "do_block") in keys(reports)
        # the clean coroutine await is not flagged
        assert ("deep", "fetch") not in keys(reports)

    def test_spawn_severs_the_async_extent(self):
        """Work handed to a thread may block; no report."""
        ctx = ctx_for(SPAWN_DECOY)
        assert AsyncChecker().check_augmented(ctx) == []

    def test_blocking_in_sync_code_not_flagged(self):
        ctx = ctx_for(SYNC_ONLY)
        assert AsyncChecker().check_augmented(ctx) == []

    def test_indirect_call_via_function_pointer(self):
        ctx = ctx_for(FUNCTION_POINTER)
        reports = AsyncChecker().check_augmented(ctx)
        assert ("host", "fp") in keys(reports)

    def test_no_extra_engine_runs(self, monkeypatch):
        ctx = ctx_for(WRAPPED)
        calls = []
        original = GraspanEngine.run

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(GraspanEngine, "run", counting)
        reports = AsyncChecker().check_augmented(ctx)
        assert reports
        assert calls == []
