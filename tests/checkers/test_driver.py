"""Tests for the checker driver: running, scoring, module breakdowns."""

import pytest

from repro.checkers import (
    ALL_CHECKERS,
    GroundTruthBug,
    check_program,
    run_analyses,
    run_checkers,
)
from repro.frontend import compile_program

SOURCE = """
void *src(int n) { int *p; p = NULL; if (n) { p = malloc(4); } return p; }
void *mid(int n) { int *x; x = src(n); return x; }
void victim(void) { int *v; v = mid(0); *v = 1; }
void clean(void) { int *u; u = malloc(4); if (u) { *u = 1; } }
"""


@pytest.fixture(scope="module")
def result():
    return check_program(compile_program(SOURCE, module="drivers"))


class TestRunCheckers:
    def test_all_checkers_run(self, result):
        names = {cls.name for cls in ALL_CHECKERS}
        assert set(result.baseline) == names
        assert set(result.augmented) == names

    def test_all_reports_flattens(self, result):
        reports = result.all_reports("augmented")
        assert any(r.checker == "Null" for r in reports)
        assert any(r.checker == "UNTest" for r in reports)

    def test_subset_of_checkers(self):
        from repro.checkers import NullChecker

        ctx = run_analyses(compile_program(SOURCE))
        result = run_checkers(ctx, checkers=[NullChecker()])
        assert set(result.baseline) == {"Null"}


class TestScoring:
    def test_true_positive_scored(self, result):
        truth = [GroundTruthBug("Null", "victim", "v")]
        score = result.score(truth, "augmented", "Null")
        assert score.true_positives == 1
        assert score.false_negatives == 0

    def test_false_positive_scored(self, result):
        score = result.score([], "augmented", "Null")
        assert score.false_positives == score.reported >= 1

    def test_false_negative_scored(self, result):
        truth = [GroundTruthBug("Null", "nowhere", "x")]
        score = result.score(truth, "baseline", "Null")
        assert score.false_negatives == 1

    def test_truth_for_other_checker_ignored(self, result):
        truth = [GroundTruthBug("Free", "victim", "v")]
        score = result.score(truth, "augmented", "Null")
        assert score.true_positives == 0

    def test_module_breakdown(self, result):
        breakdown = result.module_breakdown("augmented", "UNTest")
        assert breakdown.get("drivers", 0) >= 1
