"""Tests for the Taint checker: baseline blind spots vs augmentation."""

from repro.checkers import TaintChecker, run_analyses
from repro.engine import GraspanEngine
from repro.frontend import compile_program


def ctx_for(source):
    return run_analyses(compile_program(source, module="m"))


def keys(reports):
    return {(r.function, r.variable) for r in reports}


DIRECT = """
void handler(void) {
    int v;
    v = input();
    query(v);
}
"""

INTERPROCEDURAL = """
int src(void) {
    int raw;
    raw = input();
    return raw;
}
void victim(void) {
    int q;
    q = src();
    exec(q);
}
"""

SANITIZED = """
void handler(void) {
    int raw;
    int clean;
    raw = input();
    clean = sanitize(raw);
    exec(clean);
}
"""

HEAP_ALIAS = """
void handler(void) {
    int *cell;
    int *alias;
    int tin;
    int tout;
    cell = malloc(8);
    alias = cell;
    tin = input();
    *cell = tin;
    tout = *alias;
    exec(tout);
}
"""


class TestBaseline:
    def test_detects_same_function_flow(self):
        ctx = ctx_for(DIRECT)
        assert keys(TaintChecker().check_baseline(ctx)) == {("handler", "v")}

    def test_misses_interprocedural_flow(self):
        """Name-keyed: the call boundary kills the taint (documented
        false negative)."""
        ctx = ctx_for(INTERPROCEDURAL)
        assert TaintChecker().check_baseline(ctx) == []

    def test_false_alarm_on_sanitized_flow(self):
        """The baseline treats sanitize() like a copy, so the cleansed
        value still looks tainted (documented false positive)."""
        ctx = ctx_for(SANITIZED)
        assert keys(TaintChecker().check_baseline(ctx)) == {("handler", "clean")}

    def test_misses_heap_laundered_flow(self):
        ctx = ctx_for(HEAP_ALIAS)
        assert TaintChecker().check_baseline(ctx) == []


class TestAugmented:
    def test_detects_direct_flow(self):
        ctx = ctx_for(DIRECT)
        assert keys(TaintChecker().check_augmented(ctx)) == {("handler", "v")}

    def test_detects_interprocedural_flow(self):
        ctx = ctx_for(INTERPROCEDURAL)
        reports = TaintChecker().check_augmented(ctx)
        assert keys(reports) == {("victim", "q")}
        assert all(r.interprocedural for r in reports)

    def test_suppresses_sanitized_flow(self):
        ctx = ctx_for(SANITIZED)
        assert TaintChecker().check_augmented(ctx) == []

    def test_detects_heap_laundered_flow(self):
        ctx = ctx_for(HEAP_ALIAS)
        assert keys(TaintChecker().check_augmented(ctx)) == {("handler", "tout")}

    def test_no_extra_engine_runs(self, monkeypatch):
        """The checker is a pure client of the prepared context."""
        ctx = ctx_for(INTERPROCEDURAL)
        calls = []
        original = GraspanEngine.run

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(GraspanEngine, "run", counting)
        reports = TaintChecker().check_augmented(ctx)
        assert reports
        assert calls == []
