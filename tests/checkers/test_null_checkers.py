"""Tests for the Null, PNull, and UNTest checkers."""


from repro.checkers import (
    NullChecker,
    PNullChecker,
    UNTestChecker,
    run_analyses,
)
from repro.frontend import compile_program


def ctx_for(source):
    return run_analyses(compile_program(source, module="m"))


def reports_of(checker, ctx, mode):
    fn = checker.check_baseline if mode == "bl" else checker.check_augmented
    return fn(ctx)


class TestNullChecker:
    def test_baseline_catches_direct_null_return(self):
        ctx = ctx_for(
            """
            void *src(int n) { int *p; p = NULL; if (n) { p = malloc(4); } return p; }
            void victim(void) { int *v; v = src(0); *v = 1; }
            """
        )
        reports = reports_of(NullChecker(), ctx, "bl")
        assert [(r.function, r.variable) for r in reports] == [("victim", "v")]

    def test_baseline_misses_deep_chain(self):
        ctx = ctx_for(
            """
            void *src(int n) { int *p; p = NULL; if (n) { p = malloc(4); } return p; }
            void *mid(int n) { int *x; x = src(n); return x; }
            void victim(void) { int *v; v = mid(0); *v = 1; }
            """
        )
        assert reports_of(NullChecker(), ctx, "bl") == []
        augmented = reports_of(NullChecker(), ctx, "gr")
        assert [(r.function, r.variable) for r in augmented] == [("victim", "v")]
        assert augmented[0].interprocedural

    def test_guarded_deref_not_reported(self):
        ctx = ctx_for(
            """
            void *src(int n) { int *p; p = NULL; if (n) { p = malloc(4); } return p; }
            void safe(void) { int *v; v = src(0); if (v) { *v = 1; } }
            """
        )
        assert reports_of(NullChecker(), ctx, "bl") == []
        assert reports_of(NullChecker(), ctx, "gr") == []

    def test_early_return_guard_idiom_respected(self):
        ctx = ctx_for(
            """
            void *src(void) { int *p; p = NULL; return p; }
            void safe(void) { int *v; v = src(); if (!v) { return; } *v = 1; }
            """
        )
        assert reports_of(NullChecker(), ctx, "gr") == []

    def test_reassignment_clears_baseline_report(self):
        ctx = ctx_for(
            """
            void *src(void) { int *p; p = NULL; return p; }
            void fixed(void) { int *v; v = src(); v = malloc(4); *v = 1; }
            """
        )
        assert reports_of(NullChecker(), ctx, "bl") == []

    def test_augmented_flow_insensitive_fp(self):
        """The documented GR false-positive mode: overwritten NULL."""
        ctx = ctx_for("void f(void) { int *v; v = NULL; v = malloc(4); *v = 1; }")
        assert reports_of(NullChecker(), ctx, "bl") == []
        assert len(reports_of(NullChecker(), ctx, "gr")) == 1

    def test_null_through_parameter(self):
        ctx = ctx_for(
            """
            void use(int *q) { *q = 1; }
            void top(void) { int *p; p = NULL; use(p); }
            """
        )
        augmented = reports_of(NullChecker(), ctx, "gr")
        assert ("use", "q") in [(r.function, r.variable) for r in augmented]


class TestPNullChecker:
    SRC = """
        void *maybe(int n) { int *p; p = NULL; if (n) { p = malloc(4); } return p; }
        void *hop(int n) { int *m; m = maybe(n); return m; }
        void bug(void) { int *b; b = hop(0); *b = 1; if (b) { *b = 2; } }
        void decoy(void) { int *d; d = malloc(4); *d = 1; if (d) { *d = 2; } }
        void nopattern(void) { int *e; e = hop(0); if (e) { *e = 2; } }
    """

    def test_baseline_reports_both(self):
        ctx = ctx_for(self.SRC)
        reports = reports_of(PNullChecker(), ctx, "bl")
        found = {(r.function, r.variable) for r in reports}
        assert found == {("bug", "b"), ("decoy", "d")}

    def test_augmented_filters_never_null(self):
        ctx = ctx_for(self.SRC)
        reports = reports_of(PNullChecker(), ctx, "gr")
        found = {(r.function, r.variable) for r in reports}
        assert found == {("bug", "b")}


class TestUNTestChecker:
    def test_unnecessary_test_found(self):
        ctx = ctx_for(
            "void f(void) { int *u; u = malloc(4); if (u) { *u = 1; } }"
        )
        reports = reports_of(UNTestChecker(), ctx, "gr")
        assert [(r.function, r.variable) for r in reports] == [("f", "u")]

    def test_necessary_test_not_reported(self):
        ctx = ctx_for(
            """
            void *maybe(int n) { int *p; p = NULL; if (n) { p = malloc(4); } return p; }
            void f(void) { int *t; t = maybe(0); if (t) { *t = 1; } }
            """
        )
        assert reports_of(UNTestChecker(), ctx, "gr") == []

    def test_external_call_results_skipped(self):
        ctx = ctx_for(
            "void f(void) { int *x; x = external_thing(); if (x) { *x = 1; } }"
        )
        assert reports_of(UNTestChecker(), ctx, "gr") == []

    def test_root_params_skipped(self):
        ctx = ctx_for("void f(int *p) { if (p) { *p = 1; } }")
        assert reports_of(UNTestChecker(), ctx, "gr") == []

    def test_called_function_params_checked(self):
        ctx = ctx_for(
            """
            void inner(int *p) { if (p) { *p = 1; } }
            void outer(void) { int *m; m = malloc(4); inner(m); }
            """
        )
        reports = reports_of(UNTestChecker(), ctx, "gr")
        assert [(r.function, r.variable) for r in reports] == [("inner", "p")]

    def test_integer_truthiness_not_a_null_test(self):
        ctx = ctx_for("void f(void) { int n; n = 3; if (n) { n = 4; } }")
        assert reports_of(UNTestChecker(), ctx, "gr") == []

    def test_no_baseline(self):
        ctx = ctx_for("void f(void) { }")
        assert reports_of(UNTestChecker(), ctx, "bl") == []
