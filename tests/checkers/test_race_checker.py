"""Tests for the Race checker: baseline blind spots vs augmentation."""

from repro.checkers import RaceChecker, run_analyses
from repro.frontend import compile_program


def ctx_for(source):
    return run_analyses(compile_program(source, module="m"))


def keys(reports):
    return {(r.function, r.variable) for r in reports}


UNGUARDED_GLOBAL = """
int *cell;
void bump(void) { int t; t = *cell; *cell = t + 1; }
void reset(void) { *cell = 0; }
void host(void) {
    cell = malloc(4);
    spawn bump();
    spawn reset();
}
"""

HEAP_PARAM = """
void worker(int *wcell) { *wcell = 1; }
void host(void) {
    int *buf;
    buf = malloc(4);
    spawn worker(buf);
    *buf = 2;
}
"""

ALIASED_LOCK_BAIT = """
int *cell;
int *mu;
void worker(void) {
    int *lkalias;
    lkalias = mu;
    lock(lkalias);
    *cell = 1;
    unlock(lkalias);
}
void host(void) {
    cell = malloc(4);
    mu = malloc(4);
    spawn worker();
    lock(mu);
    *cell = 2;
    unlock(mu);
}
"""


class TestBaseline:
    def test_detects_unguarded_global_race(self):
        ctx = ctx_for(UNGUARDED_GLOBAL)
        reports = RaceChecker().check_baseline(ctx)
        assert keys(reports) == {("bump", "cell"), ("reset", "cell")}

    def test_misses_heap_passed_race(self):
        """Name-keyed: a cell reached through a parameter has no global
        name, so the baseline is blind (documented false negative)."""
        ctx = ctx_for(HEAP_PARAM)
        assert RaceChecker().check_baseline(ctx) == []

    def test_false_alarm_on_aliased_lock(self):
        """Name-keyed locksets look disjoint even though both sides hold
        the same lock object: two false positives."""
        ctx = ctx_for(ALIASED_LOCK_BAIT)
        reports = RaceChecker().check_baseline(ctx)
        assert keys(reports) == {("worker", "cell"), ("host", "cell")}

    def test_no_spawn_no_reports(self):
        ctx = ctx_for(
            """
            int *cell;
            void writer(void) { *cell = 1; }
            void host(void) { cell = malloc(4); writer(); }
            """
        )
        assert RaceChecker().check_baseline(ctx) == []

    def test_same_named_lock_suppresses(self):
        ctx = ctx_for(
            """
            int *cell;
            int *mu;
            void w1(void) { lock(mu); *cell = 1; unlock(mu); }
            void w2(void) { lock(mu); *cell = 2; unlock(mu); }
            void host(void) {
                cell = malloc(4);
                mu = malloc(4);
                spawn w1();
                spawn w2();
            }
            """
        )
        assert RaceChecker().check_baseline(ctx) == []


class TestAugmented:
    def test_detects_unguarded_global_race(self):
        ctx = ctx_for(UNGUARDED_GLOBAL)
        reports = RaceChecker().check_augmented(ctx)
        assert keys(reports) == {("bump", "cell"), ("reset", "cell")}
        assert all(r.interprocedural for r in reports)

    def test_detects_heap_passed_race(self):
        ctx = ctx_for(HEAP_PARAM)
        reports = RaceChecker().check_augmented(ctx)
        assert keys(reports) == {("worker", "wcell"), ("host", "buf")}

    def test_aliased_lock_is_not_a_race(self):
        ctx = ctx_for(ALIASED_LOCK_BAIT)
        assert RaceChecker().check_augmented(ctx) == []

    def test_no_spawn_no_reports(self):
        ctx = ctx_for(
            """
            int *cell;
            void writer(void) { *cell = 1; }
            void host(void) { cell = malloc(4); writer(); }
            """
        )
        assert RaceChecker().check_augmented(ctx) == []

    def test_reuses_precomputed_races_from_context(self):
        """run_analyses precomputes the race facts on the shared pointer
        closure; the checker consumes them instead of recomputing."""
        ctx = ctx_for(UNGUARDED_GLOBAL)
        assert ctx.races is not None
        assert ctx.escape is not None
        via_ctx = RaceChecker().check_augmented(ctx)
        ctx.races = None  # force the fallback recomputation path
        recomputed = RaceChecker().check_augmented(ctx)
        assert keys(via_ctx) == keys(recomputed)
