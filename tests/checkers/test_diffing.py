"""Tests for findings diffing and snapshots."""


from repro.checkers import (
    BugReport,
    check_program,
    diff_reports,
    diff_runs,
    load_findings,
    save_findings,
)
from repro.frontend import compile_program


def report(checker="Null", function="f", variable="p", line=3):
    return BugReport(
        checker=checker,
        function=function,
        module="m",
        line=line,
        variable=variable,
        message="msg",
    )


class TestDiffReports:
    def test_introduced_and_fixed(self):
        before = [report(variable="a"), report(variable="b")]
        after = [report(variable="b"), report(variable="c")]
        diff = diff_reports(before, after)
        assert diff.introduced == [("Null", "f", "c")]
        assert diff.fixed == [("Null", "f", "a")]
        assert diff.persisting == [("Null", "f", "b")]

    def test_line_changes_do_not_count(self):
        """Moving a finding to another line is not a new finding."""
        diff = diff_reports([report(line=3)], [report(line=99)])
        assert diff.is_clean
        assert diff.persisting

    def test_clean_flag(self):
        assert diff_reports([report()], []).is_clean
        assert not diff_reports([], [report()]).is_clean

    def test_summary_format(self):
        diff = diff_reports([], [report()])
        assert "+1 introduced" in diff.summary()


class TestDiffRuns:
    BEFORE = """
        void *src(void) { int *p; p = NULL; return p; }
        void victim(void) { int *v; v = src(); *v = 1; }
    """
    AFTER = """
        void *src(void) { int *p; p = NULL; return p; }
        void victim(void) { int *v; v = src(); if (v) { *v = 1; } }
    """

    def test_fix_detected_end_to_end(self):
        before = check_program(compile_program(self.BEFORE))
        after = check_program(compile_program(self.AFTER))
        diff = diff_runs(before, after)
        assert ("Null", "victim", "v") in diff.fixed
        assert diff.is_clean


class TestSnapshots:
    def test_save_load_roundtrip(self, tmp_path):
        reports = [report(variable="a"), report(checker="Free", variable="b")]
        path = tmp_path / "findings.json"
        save_findings(reports, path)
        loaded = load_findings(path)
        assert loaded == reports

    def test_snapshot_diff_workflow(self, tmp_path):
        """Yesterday's snapshot vs today's run: the daily-dev loop."""
        path = tmp_path / "yesterday.json"
        save_findings([report(variable="old")], path)
        today = [report(variable="old"), report(variable="new")]
        diff = diff_reports(load_findings(path), today)
        assert diff.introduced == [("Null", "f", "new")]
