"""Tests for the Free, Lock, Block, Range, and Size checkers."""


from repro.checkers import (
    BlockChecker,
    FreeChecker,
    LockChecker,
    RangeChecker,
    SizeChecker,
    run_analyses,
)
from repro.frontend import compile_program


def ctx_for(source):
    return run_analyses(compile_program(source, module="m"))


def keys(reports):
    return {(r.function, r.variable) for r in reports}


class TestFreeChecker:
    def test_baseline_same_name_uaf(self):
        ctx = ctx_for("void f(void) { int *a; a = malloc(4); free(a); *a = 1; }")
        assert keys(FreeChecker().check_baseline(ctx)) == {("f", "a")}

    def test_baseline_double_free(self):
        ctx = ctx_for("void f(void) { int *a; a = malloc(4); free(a); free(a); }")
        reports = FreeChecker().check_baseline(ctx)
        assert any("double free" in r.message for r in reports)

    def test_reassignment_stops_baseline(self):
        ctx = ctx_for(
            "void f(void) { int *a; a = malloc(4); free(a); a = malloc(4); *a = 1; }"
        )
        assert FreeChecker().check_baseline(ctx) == []

    def test_alias_uaf_needs_augmentation(self):
        src = """
            void f(void) {
                int *a;
                int *b;
                a = malloc(4);
                b = a;
                free(a);
                *b = 1;
            }
        """
        ctx = ctx_for(src)
        assert FreeChecker().check_baseline(ctx) == []
        augmented = FreeChecker().check_augmented(ctx)
        assert keys(augmented) == {("f", "b")}
        assert all(r.interprocedural for r in augmented)

    def test_unrelated_pointer_not_flagged(self):
        ctx = ctx_for(
            """
            void f(void) {
                int *a;
                int *c;
                a = malloc(4);
                c = malloc(8);
                free(a);
                *c = 1;
            }
            """
        )
        assert FreeChecker().check_augmented(ctx) == []


class TestLockChecker:
    def test_baseline_same_name_double_lock(self):
        ctx = ctx_for("void f(int *l) { lock(l); lock(l); unlock(l); unlock(l); }")
        reports = LockChecker().check_baseline(ctx)
        assert any("double acquisition" in r.message for r in reports)

    def test_baseline_unreleased(self):
        ctx = ctx_for("void f(int *l) { lock(l); }")
        reports = LockChecker().check_baseline(ctx)
        assert any("not released" in r.message for r in reports)

    def test_balanced_clean(self):
        ctx = ctx_for("void f(int *l) { lock(l); unlock(l); }")
        assert LockChecker().check_baseline(ctx) == []

    def test_aliased_double_lock_needs_augmentation(self):
        src = """
            void inner(int *m1, int *m2) { lock(m1); lock(m2); unlock(m1); unlock(m2); }
            void outer(void) { int *mx; mx = malloc(4); inner(mx, mx); }
        """
        ctx = ctx_for(src)
        assert LockChecker().check_baseline(ctx) == []
        augmented = LockChecker().check_augmented(ctx)
        assert keys(augmented) == {("inner", "m2")}

    def test_distinct_locks_not_flagged(self):
        src = """
            void inner(int *m1, int *m2) { lock(m1); lock(m2); unlock(m1); unlock(m2); }
            void outer(void) {
                int *ma;
                int *mb;
                ma = malloc(4);
                mb = malloc(4);
                inner(ma, mb);
            }
        """
        ctx = ctx_for(src)
        assert LockChecker().check_augmented(ctx) == []


class TestBlockChecker:
    def test_baseline_direct_sleep_in_lock(self):
        ctx = ctx_for("void f(int *l) { lock(l); sleep(); unlock(l); }")
        assert len(BlockChecker().check_baseline(ctx)) == 1

    def test_sleep_outside_lock_fine(self):
        ctx = ctx_for("void f(int *l) { sleep(); lock(l); unlock(l); }")
        assert BlockChecker().check_baseline(ctx) == []

    def test_wrapper_needs_augmentation(self):
        src = """
            void wrap(void) { sleep(); }
            void f(int *l) { lock(l); wrap(); unlock(l); }
        """
        ctx = ctx_for(src)
        assert BlockChecker().check_baseline(ctx) == []
        augmented = BlockChecker().check_augmented(ctx)
        assert keys(augmented) == {("f", "wrap")}

    def test_function_pointer_resolved(self):
        src = """
            void sleeper(void) { sleep(); }
            void f(void) {
                int *l;
                void *fp;
                l = malloc(4);
                fp = sleeper;
                lock(l);
                fp();
                unlock(l);
            }
        """
        ctx = ctx_for(src)
        assert BlockChecker().check_baseline(ctx) == []
        augmented = BlockChecker().check_augmented(ctx)
        assert keys(augmented) == {("f", "fp")}

    def test_nonblocking_fp_target_fine(self):
        src = """
            void harmless(void) { }
            void f(void) {
                int *l;
                void *fp;
                l = malloc(4);
                fp = harmless;
                lock(l);
                fp();
                unlock(l);
            }
        """
        ctx = ctx_for(src)
        assert BlockChecker().check_augmented(ctx) == []


class TestRangeChecker:
    def test_baseline_direct_user_index(self):
        ctx = ctx_for(
            "void f(void) { int b[8]; int n; n = get_user(); b[n] = 1; }"
        )
        assert keys(RangeChecker().check_baseline(ctx)) == {("f", "n")}

    def test_bounds_check_suppresses(self):
        ctx = ctx_for(
            "void f(void) { int b[8]; int n; n = get_user(); if (n < 8) { b[n] = 1; } }"
        )
        assert RangeChecker().check_baseline(ctx) == []
        assert RangeChecker().check_augmented(ctx) == []

    def test_transitive_taint_needs_augmentation(self):
        ctx = ctx_for(
            """
            void f(void) {
                int b[8];
                int n;
                int m;
                n = get_user();
                m = n + 1;
                b[m] = 1;
            }
            """
        )
        assert RangeChecker().check_baseline(ctx) == []
        assert keys(RangeChecker().check_augmented(ctx)) == {("f", "m")}

    def test_untainted_index_fine(self):
        ctx = ctx_for("void f(void) { int b[8]; int i; i = 2; b[i] = 1; }")
        assert RangeChecker().check_augmented(ctx) == []


class TestSizeChecker:
    def test_baseline_bad_size_at_site(self):
        ctx = ctx_for("void f(void) { long *p; p = malloc(12); }")
        assert keys(SizeChecker().check_baseline(ctx)) == {("f", "p")}

    def test_multiple_of_elem_size_fine(self):
        ctx = ctx_for("void f(void) { long *p; p = malloc(16); }")
        assert SizeChecker().check_baseline(ctx) == []

    def test_unknown_size_skipped(self):
        ctx = ctx_for("void f(int n) { long *p; p = malloc(n); }")
        assert SizeChecker().check_baseline(ctx) == []

    def test_flow_inconsistency_needs_augmentation(self):
        src = """
            void *mk(void) { int *o; o = malloc(12); return o; }
            void f(void) { long *q; q = mk(); }
        """
        ctx = ctx_for(src)
        assert SizeChecker().check_baseline(ctx) == []
        augmented = SizeChecker().check_augmented(ctx)
        assert ("f", "q") in keys(augmented)

    def test_consistent_flow_fine(self):
        src = """
            void *mk(void) { int *o; o = malloc(16); return o; }
            void f(void) { long *q; q = mk(); }
        """
        ctx = ctx_for(src)
        assert SizeChecker().check_augmented(ctx) == []
