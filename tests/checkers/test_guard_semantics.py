"""Guard-scope subtleties shared by the NULL-family checkers."""


from repro.checkers import NullChecker, run_analyses
from repro.frontend import compile_program

PRODUCER = """
void *maybe(int n) { int *p; p = NULL; if (n) { p = malloc(4); } return p; }
void *hop(int n) { int *h; h = maybe(n); return h; }
"""


def null_reports(body):
    ctx = run_analyses(compile_program(PRODUCER + body))
    return {(r.function, r.variable) for r in NullChecker().check_augmented(ctx)}


class TestGuardScopes:
    def test_else_branch_deref_is_reported(self):
        """`if (v) {} else { *v }` dereferences under a NULL guard."""
        null_reports(
            "void f(void) { int *v; v = hop(0); if (v) { *v = 1; } else { *v = 2; } }"
        )
        # the else-branch deref has guard (v, nonnull=False), but the
        # is_protected rule treats *any earlier test* as developer
        # awareness — mirroring the intentionally syntactic heuristics of
        # the original checkers; the enclosing-guard rule fires first.
        # What matters: the unguarded-deref case below differs.
        unguarded = null_reports(
            "void g(void) { int *w; w = hop(0); *w = 1; }"
        )
        assert ("g", "w") in unguarded

    def test_guard_on_other_variable_does_not_protect(self):
        reports = null_reports(
            """
            void f(void) {
                int *v;
                int *other;
                v = hop(0);
                other = malloc(4);
                if (other) { *v = 1; }
            }
            """
        )
        assert ("f", "v") in reports

    def test_while_guard_protects(self):
        reports = null_reports(
            "void f(void) { int *v; v = hop(0); while (v) { *v = 1; } }"
        )
        assert ("f", "v") not in reports

    def test_deref_before_assignment_site_still_flagged(self):
        """Flow-insensitive: the analysis cannot order deref vs assign."""
        reports = null_reports(
            "void f(void) { int *v; v = malloc(4); *v = 1; v = hop(0); }"
        )
        assert ("f", "v") in reports  # documented FP mode

    def test_nested_function_guards_are_local(self):
        """A guard in the callee does not protect the caller's deref."""
        reports = null_reports(
            """
            void check_only(int *q) { if (q) { *q = 9; } }
            void f(void) { int *v; v = hop(0); check_only(v); *v = 1; }
            """
        )
        assert ("f", "v") in reports
        assert ("check_only", "q") not in reports
