"""Integration: the full checker pipeline running out-of-core.

The paper's point is that these analyses run on developer desktops with
bounded memory; this exercises the same pipeline used by Tables 3-5 with
partitions spilled to disk and verifies the results are identical to the
in-memory run.
"""

import pytest

from repro.checkers import check_program, run_analyses
from repro.workloads import httpd_like


@pytest.fixture(scope="module")
def workload():
    return httpd_like(scale=0.4)


def report_keys(result, mode):
    table = result.baseline if mode == "baseline" else result.augmented
    return {
        name: {r.match_key() for r in reports} for name, reports in table.items()
    }


def test_out_of_core_checkers_match_in_memory(workload, tmp_path):
    pg = workload.compile()
    in_memory = check_program(pg)
    from repro.checkers import run_checkers

    ctx = run_analyses(
        pg, max_edges_per_partition=2000, workdir=tmp_path
    )
    out_of_core = run_checkers(ctx)
    assert report_keys(in_memory, "augmented") == report_keys(
        out_of_core, "augmented"
    )
    assert report_keys(in_memory, "baseline") == report_keys(
        out_of_core, "baseline"
    )


def test_out_of_core_scores_clean(workload, tmp_path):
    pg = workload.compile()
    ctx = run_analyses(pg, max_edges_per_partition=1500, workdir=tmp_path)
    from repro.checkers import run_checkers

    result = run_checkers(ctx)
    score = result.score(workload.ground_truth, "augmented", "Null")
    assert score.false_negatives == 0
