"""Tests for BugReport and the Checker base helpers."""

import pytest

from repro.checkers import BugReport
from repro.checkers.base import Checker
from repro.frontend import lower_program, parse


def lowered_f(src):
    return lower_program(parse(src)).functions["f"]


class TestBugReport:
    def test_match_key_ignores_line_and_message(self):
        a = BugReport("Null", "f", "m", 3, "p", "one")
        b = BugReport("Null", "f", "m", 99, "p", "two")
        assert a.match_key() == b.match_key()

    def test_frozen(self):
        report = BugReport("Null", "f", "m", 3, "p", "msg")
        with pytest.raises(AttributeError):
            report.line = 4


class TestCheckerHelpers:
    def test_deref_sites_order_and_bases(self):
        func = lowered_f(
            "void f(int *a, int *b) { *a = 1; int x; x = *b; *a = 2; }"
        )
        sites = Checker.deref_sites(func)
        assert [base for _, base, _ in sites] == ["a", "b", "a"]
        indices = [i for i, _, _ in sites]
        assert indices == sorted(indices)

    def test_is_protected_by_enclosing_guard(self):
        func = lowered_f("void f(int *p) { if (p) { *p = 1; } }")
        index, base, _ = Checker.deref_sites(func)[0]
        assert Checker.is_protected(func, index, base)

    def test_is_protected_by_earlier_test(self):
        func = lowered_f("void f(int *p) { if (!p) { return; } *p = 1; }")
        index, base, _ = Checker.deref_sites(func)[0]
        assert Checker.is_protected(func, index, base)

    def test_not_protected_without_test(self):
        func = lowered_f("void f(int *p) { *p = 1; if (p) { } }")
        index, base, _ = Checker.deref_sites(func)[0]
        assert not Checker.is_protected(func, index, base)

    def test_reassigned_between(self):
        func = lowered_f(
            "void f(int *p) { free(p); p = malloc(4); *p = 1; }"
        )
        free_index = next(
            i for i, s in enumerate(func.stmts) if s.kind == "free"
        )
        deref_index = Checker.deref_sites(func)[0][0]
        assert Checker.reassigned_between(func, free_index, deref_index, "p")
        assert not Checker.reassigned_between(func, free_index, free_index + 1, "p")

    def test_dedup_by_site(self):
        a = BugReport("Null", "f", "m", 3, "p", "x")
        b = BugReport("Null", "f", "m", 3, "p", "y (different message)")
        c = BugReport("Null", "f", "m", 4, "p", "x")
        assert Checker.dedup([a, b, c]) == [a, c]
