"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph import MemGraph, write_text

BUGGY_SOURCE = """
void *risky(void) { int *p; p = NULL; return p; }
void top(void) { int *v; v = risky(); *v = 1; }
"""

CLEAN_SOURCE = """
void top(void) { int *v; v = malloc(4); *v = 1; }
"""


class TestAnalyze:
    def test_reports_bug_and_exit_code(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(BUGGY_SOURCE)
        code = main(["analyze", str(src)])
        out = capsys.readouterr().out
        assert code == 1
        assert "[AU:Null]" in out
        assert "top" in out

    def test_clean_program_exits_zero(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(CLEAN_SOURCE)
        code = main(["analyze", str(src)])
        assert code == 0

    def test_checker_filter(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(BUGGY_SOURCE)
        main(["analyze", str(src), "--checkers", "Free"])
        out = capsys.readouterr().out
        assert "Null" not in out

    def test_baseline_mode(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(BUGGY_SOURCE)
        main(["analyze", str(src), "--mode", "baseline"])
        out = capsys.readouterr().out
        assert "[BA:" in out or out == ""


class TestClosure:
    def test_closure_label_output(self, tmp_path, capsys):
        graph = MemGraph.from_edges(
            [(0, 1, 0), (1, 2, 0)], label_names=["E"]
        )
        graph_file = tmp_path / "g.tsv"
        write_text(graph, graph_file)
        grammar_file = tmp_path / "g.grammar"
        grammar_file.write_text("R ::= E | R E\n")
        code = main(
            [
                "closure",
                "--graph",
                str(graph_file),
                "--grammar",
                str(grammar_file),
                "--label",
                "R",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0\t2\tR" in out

    def test_closure_out_file(self, tmp_path, capsys):
        from repro.graph import read_text

        graph = MemGraph.from_edges([(0, 1, 0)], label_names=["E"])
        graph_file = tmp_path / "g.tsv"
        write_text(graph, graph_file)
        grammar_file = tmp_path / "g.grammar"
        grammar_file.write_text("R ::= E\n")
        out_file = tmp_path / "closure.tsv"
        main(
            [
                "closure",
                "--graph",
                str(graph_file),
                "--grammar",
                str(grammar_file),
                "--out",
                str(out_file),
            ]
        )
        closure = read_text(out_file)
        assert closure.num_edges == 2  # E + derived R

    def test_out_of_core_flags(self, tmp_path, capsys):
        graph = MemGraph.from_edges(
            [(i, i + 1, 0) for i in range(12)], label_names=["E"]
        )
        graph_file = tmp_path / "g.tsv"
        write_text(graph, graph_file)
        grammar_file = tmp_path / "g.grammar"
        grammar_file.write_text("R ::= E | R E\n")
        code = main(
            [
                "closure",
                "--graph", str(graph_file),
                "--grammar", str(grammar_file),
                "--max-edges-per-partition", "5",
                "--workdir", str(tmp_path / "work"),
            ]
        )
        assert code == 0


class TestDistributedCli:
    def closure_inputs(self, tmp_path):
        graph = MemGraph.from_edges(
            [(i, i + 1, 0) for i in range(12)], label_names=["E"]
        )
        graph_file = tmp_path / "g.tsv"
        write_text(graph, graph_file)
        grammar_file = tmp_path / "g.grammar"
        grammar_file.write_text("R ::= E | R E\n")
        return graph_file, grammar_file

    def test_distributed_backend_matches_serial(self, tmp_path, capsys):
        from repro.graph import read_text

        graph_file, grammar_file = self.closure_inputs(tmp_path)
        serial_out = tmp_path / "serial.tsv"
        code = main(
            [
                "closure",
                "--graph", str(graph_file),
                "--grammar", str(grammar_file),
                "--max-edges-per-partition", "5",
                "--workdir", str(tmp_path / "serial-work"),
                "--out", str(serial_out),
            ]
        )
        assert code == 0
        dist_out = tmp_path / "dist.tsv"
        code = main(
            [
                "closure",
                "--graph", str(graph_file),
                "--grammar", str(grammar_file),
                "--max-edges-per-partition", "5",
                "--workdir", str(tmp_path / "dist-work"),
                "--backend", "distributed",
                "--workers", "2",
                "--out", str(dist_out),
            ]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "distributed: 2 workers" in err
        assert serial_out.read_text() == dist_out.read_text()

    def test_distributed_requires_workdir(self, tmp_path, capsys):
        graph_file, grammar_file = self.closure_inputs(tmp_path)
        with pytest.raises(ValueError, match="workdir"):
            main(
                [
                    "closure",
                    "--graph", str(graph_file),
                    "--grammar", str(grammar_file),
                    "--backend", "distributed",
                ]
            )

    @pytest.mark.parametrize(
        "argv",
        [
            ["closure", "--graph", "g", "--grammar", "r",
             "--backend", "distributed", "--workers", "0"],
            ["closure", "--graph", "g", "--grammar", "r",
             "--backend", "distributed", "--workers", "-2"],
            ["closure", "--graph", "g", "--grammar", "r",
             "--backend", "distributed", "--lease-timeout", "0"],
            ["closure", "--graph", "g", "--grammar", "r",
             "--backend", "distributed", "--lease-timeout", "-1.5"],
            ["closure", "--graph", "g", "--grammar", "r",
             "--backend", "distributed", "--max-inflight", "0"],
            ["serve", "--workdir", "w", "--workers", "0"],
            ["serve", "--workdir", "w", "--max-inflight", "-1"],
            ["coordinator", "--graph", "g", "--grammar", "r",
             "--workdir", "w", "--lease-timeout", "0"],
            ["worker", "--workdir", "w", "--port", "0"],
        ],
    )
    def test_nonpositive_tuning_flags_rejected(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "must be a positive" in err

    def test_workers_flag_accepts_positive(self, tmp_path):
        graph_file, grammar_file = self.closure_inputs(tmp_path)
        code = main(
            [
                "closure",
                "--graph", str(graph_file),
                "--grammar", str(grammar_file),
                "--max-edges-per-partition", "5",
                "--workdir", str(tmp_path / "work"),
                "--backend", "distributed",
                "--workers", "1",
            ]
        )
        assert code == 0


RACY_SOURCE = """
int *cell;
void bump(void) { *cell = 1; }
void reset(void) { *cell = 0; }
void host(void) {
    cell = malloc(4);
    spawn bump();
    spawn reset();
}
"""


class TestRaces:
    def test_reports_race_and_exit_code(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(RACY_SOURCE)
        code = main(["races", str(src)])
        captured = capsys.readouterr()
        assert code == 1
        assert "race on" in captured.out
        assert "bump" in captured.out
        assert "1 closure run" in captured.err

    def test_clean_program_exits_zero(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(CLEAN_SOURCE)
        code = main(["races", str(src)])
        captured = capsys.readouterr()
        assert code == 0
        assert "race on" not in captured.out


TAINTED_SOURCE = """
int fetch(void) {
    int raw;
    raw = input();
    return raw;
}
void handler(void) {
    int q;
    q = fetch();
    query(q);
}
"""

SANITIZED_SOURCE = """
void handler(void) {
    int raw;
    int clean;
    raw = input();
    clean = sanitize(raw);
    exec(clean);
}
"""


class TestTaint:
    def test_reports_flow_and_exit_code(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(TAINTED_SOURCE)
        code = main(["taint", str(src)])
        captured = capsys.readouterr()
        assert code == 1
        assert "injection" in captured.out
        assert "handler" in captured.out
        assert "tainted vertices" in captured.err

    def test_sanitized_program_exits_zero(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(SANITIZED_SOURCE)
        code = main(["taint", str(src)])
        captured = capsys.readouterr()
        assert code == 0
        assert "injection" not in captured.out


class TestWorkload:
    def test_generates_sources_and_truth(self, tmp_path, capsys):
        out = tmp_path / "wl"
        code = main(["workload", "httpd", "--scale", "0.3", "--out", str(out)])
        assert code == 0
        sources = list(out.glob("*.c"))
        assert sources
        truth = json.loads((out / "ground_truth.json").read_text())
        assert truth and {"checker", "function", "variable"} <= set(truth[0])

    def test_generated_sources_reparse(self, tmp_path):
        from repro.frontend import parse_files

        out = tmp_path / "wl"
        main(["workload", "httpd", "--scale", "0.3", "--out", str(out)])
        program = parse_files(
            [(p.stem, p.read_text()) for p in sorted(out.glob("*.c"))]
        )
        assert program.functions
