"""Tests for repro.util.timing."""

import time

import pytest

from repro.util.timing import Stopwatch, TimeBreakdown


class TestStopwatch:
    def test_accumulates_elapsed_time(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        elapsed = sw.stop()
        assert elapsed >= 0.009
        assert sw.elapsed == elapsed

    def test_multiple_intervals_accumulate(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.005)
        first = sw.stop()
        sw.start()
        time.sleep(0.005)
        total = sw.stop()
        assert total > first

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_property(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_reset_clears_state(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running


class TestTimeBreakdown:
    def test_phase_context_manager_accumulates(self):
        tb = TimeBreakdown()
        with tb.phase("io"):
            time.sleep(0.005)
        with tb.phase("io"):
            time.sleep(0.005)
        assert tb.get("io") >= 0.009

    def test_phases_are_independent(self):
        tb = TimeBreakdown()
        with tb.phase("compute"):
            pass
        with tb.phase("io"):
            pass
        assert set(tb.as_dict()) == {"compute", "io"}

    def test_phase_records_even_on_exception(self):
        tb = TimeBreakdown()
        with pytest.raises(ValueError):
            with tb.phase("compute"):
                raise ValueError("boom")
        assert tb.get("compute") >= 0.0
        assert "compute" in tb.as_dict()

    def test_add_and_total(self):
        tb = TimeBreakdown()
        tb.add("io", 1.5)
        tb.add("compute", 0.5)
        assert tb.total() == pytest.approx(2.0)

    def test_unknown_phase_is_zero(self):
        assert TimeBreakdown().get("nothing") == 0.0

    def test_repr_mentions_phases(self):
        tb = TimeBreakdown()
        tb.add("io", 1.0)
        assert "io" in repr(tb)
