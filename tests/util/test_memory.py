"""Tests for repro.util.memory (the baselines' OOM machinery)."""

import pytest

from repro.util.memory import (
    BYTES_PER_EDGE,
    MemoryBudget,
    MemoryBudgetExceeded,
    approx_sizeof_edges,
)


class TestMemoryBudget:
    def test_charge_within_budget(self):
        budget = MemoryBudget(100)
        budget.charge(60)
        assert budget.used == 60

    def test_exceeding_raises_with_details(self):
        budget = MemoryBudget(100)
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            budget.charge(150)
        assert excinfo.value.used_bytes == 150
        assert excinfo.value.budget_bytes == 100

    def test_exception_is_a_memory_error(self):
        assert issubclass(MemoryBudgetExceeded, MemoryError)

    def test_high_water_tracks_peak(self):
        budget = MemoryBudget(100)
        budget.charge(80)
        budget.release(50)
        budget.charge(10)
        assert budget.high_water == 80
        assert budget.used == 40

    def test_release_never_goes_negative(self):
        budget = MemoryBudget(100)
        budget.charge(10)
        budget.release(50)
        assert budget.used == 0

    def test_exact_budget_boundary_is_allowed(self):
        budget = MemoryBudget(100)
        budget.charge(100)  # exactly at budget: fine
        with pytest.raises(MemoryBudgetExceeded):
            budget.charge(1)

    def test_charge_edges_uses_edge_cost(self):
        budget = MemoryBudget(BYTES_PER_EDGE * 10)
        budget.charge_edges(10)
        assert budget.used == BYTES_PER_EDGE * 10

    def test_would_fit_edges(self):
        budget = MemoryBudget(BYTES_PER_EDGE * 10)
        assert budget.would_fit_edges(10)
        assert not budget.would_fit_edges(11)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)


def test_approx_sizeof_edges():
    assert approx_sizeof_edges(0) == 0
    assert approx_sizeof_edges(5) == 5 * BYTES_PER_EDGE
