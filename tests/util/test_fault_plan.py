"""FaultPlan: seeded determinism across processes and env round-trips.

A failing fuzz seed is only replayable if ``FaultPlan.random(seed)``
builds the *same* plan in a fresh interpreter, and if every knob a plan
can carry survives the trip through ``REPRO_FAULT_*`` environment
variables — the channel the ``serve`` subprocess tests and the CI fault
matrix use to hand plans across process boundaries.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.util.faults import FaultPlan

SEEDS = range(24)


class TestRandomDeterminism:
    def test_same_seed_same_plan_in_process(self):
        for seed in SEEDS:
            assert FaultPlan.random(seed) == FaultPlan.random(seed)

    def test_seeds_cover_every_fault_kind(self):
        plans = [FaultPlan.random(seed) for seed in SEEDS]
        assert any(p.crash_at_write is not None for p in plans)
        assert any(p.flip_byte_at_write is not None for p in plans)
        assert any(p.errno_at_write for p in plans)
        assert any(p.errno_at_read for p in plans)

    def test_same_seed_same_plan_across_processes(self):
        script = (
            "import dataclasses, json\n"
            "from repro.util.faults import FaultPlan\n"
            "print(json.dumps([\n"
            f"    dataclasses.asdict(FaultPlan.random(s)) for s in {list(SEEDS)}\n"
            "]))\n"
        )
        src_root = Path(__file__).resolve().parents[2] / "src"
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src_root), "PATH": "/usr/bin:/bin"},
        )
        remote = json.loads(out.stdout)
        local = [dataclasses.asdict(FaultPlan.random(s)) for s in SEEDS]
        # JSON stringifies integer dict keys; normalize before comparing.
        for plans in (remote, local):
            for plan in plans:
                for key in ("errno_at_write", "errno_at_read"):
                    plan[key] = {int(k): v for k, v in plan[key].items()}
        assert remote == local


class TestEnvRoundTrip:
    def test_every_knob_round_trips(self):
        plan = FaultPlan(
            crash_at_write=3,
            flip_byte_at_write=2,
            errno_at_write={2: errno.EIO, 5: errno.ENOSPC},
            errno_at_read={1: errno.EIO},
            crash_before_commit=4,
            crash_after_commit=6,
            kill_worker_at_dispatch=7,
        )
        env = plan.to_env()
        assert set(env) == {
            "REPRO_FAULT_CRASH_WRITE",
            "REPRO_FAULT_FLIP_WRITE",
            "REPRO_FAULT_ERRNO_WRITE",
            "REPRO_FAULT_ERRNO_READ",
            "REPRO_FAULT_CRASH_PRECOMMIT",
            "REPRO_FAULT_CRASH_COMMIT",
            "REPRO_FAULT_KILL_WORKER",
        }
        assert env["REPRO_FAULT_ERRNO_WRITE"] == "2:EIO,5:ENOSPC"
        assert FaultPlan.from_env(env) == plan

    @pytest.mark.parametrize("seed", list(SEEDS))
    def test_random_plans_round_trip(self, seed):
        plan = FaultPlan.random(seed)
        parsed = FaultPlan.from_env(plan.to_env())
        # torn_bytes has no env knob by design; everything else must
        # survive the trip.
        assert dataclasses.replace(parsed, torn_bytes=plan.torn_bytes) == plan

    def test_empty_plan_sets_no_variables(self):
        assert FaultPlan().to_env() == {}
        assert FaultPlan.from_env({}).empty()

    def test_unset_knobs_stay_unset(self):
        env = FaultPlan(crash_at_write=1).to_env()
        assert env == {"REPRO_FAULT_CRASH_WRITE": "1"}
        parsed = FaultPlan.from_env(env)
        assert parsed.flip_byte_at_write is None
        assert parsed.errno_at_write == {}
