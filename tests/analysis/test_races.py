"""Tests for the interprocedural lockset race analysis."""


from repro.analysis import EscapeAnalysis, PointsToAnalysis, RaceAnalysis
from repro.frontend import compile_program


def races_for(source):
    pg = compile_program(source)
    pts = PointsToAnalysis().run(pg)
    return RaceAnalysis().run(pg, pts)


def race_pairs(result):
    return {
        (r.first.function, r.first.var, r.second.function, r.second.var)
        for r in result.reports
    }


class TestThreadModel:
    def test_no_spawn_means_no_threads_no_races(self):
        result = races_for(
            """
            int *cell;
            void writer(void) { *cell = 1; }
            void host(void) { cell = malloc(4); writer(); writer(); }
            """
        )
        assert result.num_threads == 1
        assert result.reports == []

    def test_each_spawn_site_is_a_thread(self):
        result = races_for(
            """
            int *cell;
            void worker(void) { *cell = 1; }
            void host(void) {
                cell = malloc(4);
                spawn worker();
                spawn worker();
            }
            """
        )
        # main + two spawned clones of worker
        assert result.num_threads == 3
        # the two clones race with each other (write/write, no locks)
        assert ("worker", "cell", "worker", "cell") in race_pairs(result)


class TestRaceDetection:
    def test_unguarded_global_counter_races(self):
        result = races_for(
            """
            int *cell;
            void bump(void) { int t; t = *cell; *cell = t + 1; }
            void reset(void) { *cell = 0; }
            void host(void) {
                cell = malloc(4);
                spawn bump();
                spawn reset();
            }
            """
        )
        pairs = race_pairs(result)
        assert ("bump", "cell", "reset", "cell") in pairs

    def test_read_read_is_not_a_race(self):
        result = races_for(
            """
            int *cell;
            void r1(void) { int a; a = *cell; }
            void r2(void) { int b; b = *cell; }
            void host(void) { cell = malloc(4); spawn r1(); spawn r2(); }
            """
        )
        assert result.reports == []

    def test_common_lock_suppresses_race(self):
        result = races_for(
            """
            int *cell;
            int *mu;
            void w1(void) { lock(mu); *cell = 1; unlock(mu); }
            void w2(void) { lock(mu); *cell = 2; unlock(mu); }
            void host(void) {
                cell = malloc(4);
                mu = malloc(4);
                spawn w1();
                spawn w2();
            }
            """
        )
        assert result.reports == []

    def test_aliased_lock_names_suppress_race(self):
        """Two names, one lock object: alias-resolved identity, not
        variable names, decides mutual exclusion."""
        result = races_for(
            """
            int *cell;
            int *mu;
            void w1(void) {
                int *alias;
                alias = mu;
                lock(alias);
                *cell = 1;
                unlock(alias);
            }
            void w2(void) { lock(mu); *cell = 2; unlock(mu); }
            void host(void) {
                cell = malloc(4);
                mu = malloc(4);
                spawn w1();
                spawn w2();
            }
            """
        )
        assert result.reports == []

    def test_distinct_locks_do_not_protect(self):
        result = races_for(
            """
            int *cell;
            int *m1;
            int *m2;
            void w1(void) { lock(m1); *cell = 1; unlock(m1); }
            void w2(void) { lock(m2); *cell = 2; unlock(m2); }
            void host(void) {
                cell = malloc(4);
                m1 = malloc(4);
                m2 = malloc(4);
                spawn w1();
                spawn w2();
            }
            """
        )
        assert ("w1", "cell", "w2", "cell") in race_pairs(result)

    def test_heap_cell_through_parameter_races(self):
        result = races_for(
            """
            void worker(int *cell) { *cell = 1; }
            void host(void) {
                int *buf;
                buf = malloc(4);
                spawn worker(buf);
                *buf = 2;
            }
            """
        )
        assert ("host", "buf", "worker", "cell") in race_pairs(result)

    def test_thread_local_objects_never_race(self):
        """Context-sensitive cloning gives each spawned thread its own
        allocation-site clone: no sharing, no race."""
        result = races_for(
            """
            void worker(void) { int *mine; mine = malloc(4); *mine = 1; }
            void host(void) { spawn worker(); spawn worker(); }
            """
        )
        assert result.reports == []


class TestLocksetPropagation:
    def test_lockset_propagates_into_callees(self):
        """helper's access inherits the lock acquired by its caller
        (summary-based must-hold propagation down the context tree)."""
        result = races_for(
            """
            int *cell;
            int *mu;
            void helper(void) { *cell = 1; }
            void locked_entry(void) { lock(mu); helper(); unlock(mu); }
            void worker(void) { lock(mu); *cell = 2; unlock(mu); }
            void host(void) {
                cell = malloc(4);
                mu = malloc(4);
                spawn worker();
                locked_entry();
            }
            """
        )
        assert result.reports == []

    def test_spawned_thread_starts_with_empty_lockset(self):
        """A lock held while spawning is NOT held by the spawned body."""
        result = races_for(
            """
            int *cell;
            int *mu;
            void worker(void) { *cell = 1; }
            void host(void) {
                cell = malloc(4);
                mu = malloc(4);
                lock(mu);
                spawn worker();
                *cell = 2;
                unlock(mu);
            }
            """
        )
        assert ("host", "cell", "worker", "cell") in race_pairs(result)


class TestClosureReuse:
    def test_accepts_precomputed_escape_result(self):
        source = """
            int *cell;
            void worker(void) { *cell = 1; }
            void host(void) { cell = malloc(4); spawn worker(); *cell = 2; }
        """
        pg = compile_program(source)
        pts = PointsToAnalysis().run(pg)
        escape = EscapeAnalysis().run(pg, pts)
        reused = RaceAnalysis().run(pg, pts, escape=escape)
        fresh = RaceAnalysis().run(pg, pts)
        assert race_pairs(reused) == race_pairs(fresh)
        assert reused.num_reports > 0

    def test_shared_objects_are_reported(self):
        result = races_for(
            """
            int *cell;
            void worker(void) { *cell = 1; }
            void host(void) { cell = malloc(4); spawn worker(); *cell = 2; }
            """
        )
        assert result.num_shared_objects == 1
        (desc,) = result.shared_objects.values()
        assert "alloc@" in desc
