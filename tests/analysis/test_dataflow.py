"""Tests for the NULL/taint source-tracking analyses."""

import pytest

from repro.analysis import (
    NullDataflowAnalysis,
    PointsToAnalysis,
    TaintDataflowAnalysis,
)
from repro.frontend import compile_program

SOURCE = """
void *maybe(int n) {
    int *p;
    p = NULL;
    if (n) { p = malloc(8); }
    return p;
}

void *hop(int n) {
    int *h;
    h = maybe(n);
    return h;
}

void heapflow(void) {
    int *q;
    int *r;
    int *cell;
    int **w1;
    int **w2;
    q = hop(0);
    w1 = &cell;
    w2 = &cell;
    *w1 = q;
    r = *w2;
}

void clean(void) {
    int *s;
    s = malloc(4);
}

void tainted(void) {
    int n;
    int m;
    int k;
    n = get_user();
    m = n + 2;
    k = 7;
}
"""


@pytest.fixture(scope="module")
def setup():
    pg = compile_program(SOURCE)
    pts = PointsToAnalysis().run(pg)
    nulls = NullDataflowAnalysis().run(pg, pointsto=pts)
    taint = TaintDataflowAnalysis().run(pg, pointsto=pts)
    return pg, pts, nulls, taint


class TestNullFlow:
    def test_direct_null(self, setup):
        _, _, nulls, _ = setup
        assert nulls.may_receive("maybe", "p")

    def test_interprocedural_propagation(self, setup):
        _, _, nulls, _ = setup
        assert nulls.may_receive("hop", "h")
        assert nulls.may_receive("heapflow", "q")

    def test_heap_bridge_propagation(self, setup):
        """NULL crosses the store/load pair via the alias bridge."""
        _, _, nulls, _ = setup
        assert nulls.may_receive("heapflow", "r")

    def test_never_receives(self, setup):
        _, _, nulls, _ = setup
        assert nulls.never_receives("clean", "s")
        assert not nulls.never_receives("maybe", "p")

    def test_never_receives_unknown_var_false(self, setup):
        _, _, nulls, _ = setup
        assert not nulls.never_receives("clean", "ghost")

    def test_contexts_reaching(self, setup):
        _, _, nulls, _ = setup
        contexts = nulls.contexts_reaching("maybe", "p")
        assert len(contexts) >= 1

    def test_without_pointsto_no_heap_bridge(self):
        pg = compile_program(SOURCE)
        nulls = NullDataflowAnalysis().run(pg)  # no alias pairs
        assert nulls.may_receive("heapflow", "q")
        assert not nulls.may_receive("heapflow", "r")

    def test_kind_field(self, setup):
        _, _, nulls, taint = setup
        assert nulls.kind == "null"
        assert taint.kind == "taint"


class TestTaintFlow:
    def test_direct_taint(self, setup):
        _, _, _, taint = setup
        assert taint.may_receive("tainted", "n")

    def test_taint_through_arithmetic(self, setup):
        """NULL does not survive `+ 2`, but user data does."""
        _, _, nulls, taint = setup
        assert taint.may_receive("tainted", "m")
        assert not nulls.may_receive("tainted", "m")

    def test_untainted_constant(self, setup):
        _, _, _, taint = setup
        assert not taint.may_receive("tainted", "k")

    def test_null_vars_not_tainted(self, setup):
        _, _, _, taint = setup
        assert not taint.may_receive("maybe", "p")
