"""Tests for the PointsToAnalysis API."""

import pytest

from repro.analysis import PointsToAnalysis
from repro.frontend import compile_program


@pytest.fixture(scope="module")
def result():
    pg = compile_program(
        """
        void *mk(void) { int *o; o = malloc(8); return o; }
        void use(void) {
            int *a;
            int *b;
            int *other;
            int **w1;
            int **w2;
            int *cell;
            a = mk();
            b = a;
            other = malloc(16);
            w1 = &cell;
            w2 = &cell;
            *w1 = a;
            b = *w2;
        }
        void fnptr(void) {
            void *fp;
            fp = mk;
        }
        """
    )
    return pg, PointsToAnalysis().run(pg)


class TestPointsTo:
    def test_var_points_to(self, result):
        pg, pts = result
        targets = pts.var_points_to("use", "a")
        assert len(targets) == 1
        assert "mk::alloc@" in next(iter(targets))

    def test_distinct_objects(self, result):
        pg, pts = result
        a = pts.var_points_to("use", "a")
        other = pts.var_points_to("use", "other")
        assert a.isdisjoint(other)

    def test_vars_may_alias(self, result):
        pg, pts = result
        assert pts.vars_may_alias("use", "a", "use", "b")
        assert not pts.vars_may_alias("use", "a", "use", "other")

    def test_alias_of_unknown_is_false(self, result):
        pg, pts = result
        assert not pts.vars_may_alias("use", "nope", "use", "a")

    def test_deref_alias_pairs_are_derefs(self, result):
        pg, pts = result
        pairs = pts.deref_alias_pairs()
        assert pairs, "the w1/w2 cell aliasing must be found"
        for x, y in pairs:
            assert pg.namer.is_deref_symbol(x)
            assert pg.namer.is_deref_symbol(y)
            assert x != y

    def test_function_pointer_targets(self, result):
        pg, pts = result
        vids = pg.namer.vertices_for("fnptr", "fp")
        targets = set()
        for vid in vids:
            targets |= pts.function_pointer_targets(vid)
        assert targets == {"mk"}

    def test_points_to_of_unknown_vertex_empty(self, result):
        pg, pts = result
        assert pts.points_to(10 ** 6) == frozenset()

    def test_fact_counts_positive(self, result):
        _, pts = result
        assert pts.num_points_to_facts > 0
        assert pts.num_alias_facts > 0

    def test_context_separation(self):
        """Each call site's clone has its own points-to facts: the crux
        of context sensitivity."""
        pg = compile_program(
            """
            void *ident(int *v) { return v; }
            void top(void) {
                int *x;
                int *y;
                int *ox;
                int *oy;
                ox = malloc(4);
                oy = malloc(8);
                x = ident(ox);
                y = ident(oy);
            }
            """
        )
        pts = PointsToAnalysis().run(pg)
        x_objs = pts.var_points_to("top", "x")
        y_objs = pts.var_points_to("top", "y")
        assert len(x_objs) == 1 and len(y_objs) == 1
        assert x_objs != y_objs  # a context-insensitive analysis would merge
