"""Tests for the grammar-driven taint/injection analysis."""

from repro.analysis import PointsToAnalysis, TaintAnalysis
from repro.frontend import compile_program
from repro.grammar import LABEL_TT, taint_grammar


def taint_for(source):
    pg = compile_program(source)
    pts = PointsToAnalysis().run(pg)
    return TaintAnalysis().run(pg, pointsto=pts)


def flow_keys(result):
    return {(f.function, f.sink, f.var) for f in result.flows}


class TestGrammar:
    def test_taint_grammar_shape(self):
        g = taint_grammar()
        assert g.label_id(LABEL_TT) >= 0
        assert g.label_id("TS") >= 0
        assert g.label_id("TD") >= 0


class TestDirectFlow:
    def test_source_to_sink_same_function(self):
        result = taint_for(
            """
            void handler(void) {
                int v;
                v = input();
                query(v);
            }
            """
        )
        assert flow_keys(result) == {("handler", "query", "v")}
        assert result.may_receive("handler", "v")
        assert result.num_tainted > 0

    def test_copies_propagate(self):
        result = taint_for(
            """
            void handler(void) {
                int v;
                int w;
                v = input();
                w = v;
                exec(w);
            }
            """
        )
        assert flow_keys(result) == {("handler", "exec", "w")}

    def test_untainted_sink_argument_is_clean(self):
        result = taint_for(
            """
            void handler(void) {
                int v;
                int c;
                v = input();
                c = 7;
                query(c);
            }
            """
        )
        assert result.flows == []
        # the source result is tainted even though no flow reaches a sink
        assert result.may_receive("handler", "v")


class TestInterproceduralFlow:
    def test_flow_through_call_chain(self):
        result = taint_for(
            """
            int src(void) {
                int raw;
                raw = input();
                return raw;
            }
            int mid(int x) {
                int y;
                y = x;
                return y;
            }
            void victim(void) {
                int a;
                int q;
                a = src();
                q = mid(a);
                query(q);
            }
            """
        )
        assert ("victim", "query", "q") in flow_keys(result)

    def test_contexts_reaching_counts_clones(self):
        result = taint_for(
            """
            int src(void) {
                int raw;
                raw = input();
                return raw;
            }
            void once(void) {
                int a;
                a = src();
                exec(a);
            }
            void twice(void) {
                int b;
                int c;
                b = src();
                c = src();
                query(b);
                query(c);
            }
            """
        )
        assert ("once", "exec", "a") in flow_keys(result)
        assert ("twice", "query", "b") in flow_keys(result)
        assert ("twice", "query", "c") in flow_keys(result)
        assert result.contexts_reaching("once", "a")


class TestHeapFlow:
    def test_taint_through_store_load_alias(self):
        result = taint_for(
            """
            void handler(void) {
                int *cell;
                int *alias;
                int tin;
                int tout;
                cell = malloc(8);
                alias = cell;
                tin = input();
                *cell = tin;
                tout = *alias;
                exec(tout);
            }
            """
        )
        assert ("handler", "exec", "tout") in flow_keys(result)


class TestSanitization:
    def test_sanitize_breaks_the_flow(self):
        result = taint_for(
            """
            void handler(void) {
                int raw;
                int clean;
                raw = input();
                clean = sanitize(raw);
                exec(clean);
            }
            """
        )
        assert result.flows == []
        assert not result.may_receive("handler", "clean")
        # the raw value stays tainted; only the sanitized copy is clean
        assert result.may_receive("handler", "raw")

    def test_sanitize_in_callee_protects_caller(self):
        result = taint_for(
            """
            int scrub(int x) {
                int s;
                s = sanitize(x);
                return s;
            }
            void handler(void) {
                int raw;
                int ok;
                raw = input();
                ok = scrub(raw);
                query(ok);
            }
            """
        )
        assert result.flows == []

    def test_unsanitized_path_still_reported_alongside(self):
        result = taint_for(
            """
            void handler(void) {
                int raw;
                int clean;
                raw = input();
                clean = sanitize(raw);
                exec(clean);
                query(raw);
            }
            """
        )
        assert flow_keys(result) == {("handler", "query", "raw")}


class TestResultApi:
    def test_describe_mentions_sink_and_function(self):
        result = taint_for(
            """
            void handler(void) {
                int v;
                v = input();
                query(v);
            }
            """
        )
        text = result.flows[0].describe()
        assert "query" in text
        assert "handler" in text
        assert "injection" in text

    def test_no_sources_means_no_taint(self):
        result = taint_for(
            """
            void handler(void) {
                int v;
                v = 3;
                query(v);
            }
            """
        )
        assert result.num_tainted == 0
        assert result.flows == []
