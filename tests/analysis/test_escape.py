"""Tests for the escape analysis."""

import pytest

from repro.analysis import EscapeAnalysis, PointsToAnalysis
from repro.frontend import compile_program

SOURCE = """
int *global_slot;

void *returned(void) {
    int *r;
    r = malloc(8);
    return r;
}

void to_global(void) {
    int *g;
    g = malloc(16);
    global_slot = g;
}

void to_heap(int **sink) {
    int *h;
    h = malloc(24);
    *sink = h;
}

void local_only(void) {
    int *a;
    int *b;
    a = malloc(32);
    b = a;
    *b = 1;
}

void passes_down(void) {
    int *d;
    int **box;
    int *cell;
    d = malloc(40);
    box = &cell;
    to_heap(box);
    consume_only(d);
}

void consume_only(int *v) {
    if (v) { *v = 2; }
}

void top(void) {
    int *got;
    got = returned();
}
"""


@pytest.fixture(scope="module")
def result():
    pg = compile_program(SOURCE)
    pts = PointsToAnalysis().run(pg)
    return EscapeAnalysis().run(pg, pts)


class TestEscapeVerdicts:
    def test_returned_object_escapes(self, result):
        assert result.escapes("returned", "alloc@6.1")

    def test_global_store_escapes(self, result):
        assert result.escapes("to_global", "alloc@12.1")

    def test_heap_store_escapes(self, result):
        assert result.escapes("to_heap", "alloc@18.1")

    def test_local_object_does_not_escape(self, result):
        assert not result.escapes("local_only", "alloc@25.1")

    def test_passing_down_is_not_escape(self, result):
        """`d` only flows into a callee (consume_only): its frame dies
        before passes_down's does."""
        assert not result.escapes("passes_down", "alloc@34.1")

    def test_unknown_site_raises(self, result):
        with pytest.raises(KeyError):
            result.escapes("local_only", "alloc@999.9")


class TestEscapeReporting:
    def test_reasons_recorded(self, result):
        by_func = {
            (i.function, i.symbol): i for i in result if i.escapes
        }
        assert "caller" in by_func[("returned", "alloc@6.1")].reasons
        assert "global" in by_func[("to_global", "alloc@12.1")].reasons
        assert "heap" in by_func[("to_heap", "alloc@18.1")].reasons

    def test_stack_allocatable(self, result):
        assert result.stack_allocatable("local_only") == ["alloc@25.1"]
        assert result.stack_allocatable("returned") == []

    def test_counts(self, result):
        assert result.num_objects >= 5
        assert 0 < result.num_escaping < result.num_objects

    def test_summary_by_function(self, result):
        summary = result.summary_by_function()
        esc, total = summary["local_only"]
        assert (esc, total) == (0, 1)

    def test_recursion_group_conservative(self):
        src = """
            void *ping(int n) { int *p; p = malloc(4); if (n) { return pong(n - 1); } return p; }
            void *pong(int n) { return ping(n); }
            void host(void) { int *x; x = ping(2); }
        """
        pg = compile_program(src)
        pts = PointsToAnalysis().run(pg)
        result = EscapeAnalysis().run(pg, pts)
        # the object is returned through the recursion group to host
        assert result.escapes("ping", "alloc@2.1")


def escape_for(source):
    pg = compile_program(source)
    pts = PointsToAnalysis().run(pg)
    return EscapeAnalysis().run(pg, pts)


class TestEscapeReasons:
    def test_recursion_group_reason(self):
        """An object handed to the *other* member of a collapsed mutual-
        recursion group reaches a same-context vertex of a different
        function — frame lifetimes are merged, so that alone escapes,
        and 'recursion' is the only reason."""
        result = escape_for(
            """
            void ping(int n, int *carry) {
                int *p;
                p = malloc(4);
                if (n) { pong(n - 1, p); }
            }
            void pong(int n, int *q) { if (n) { ping(n - 1, q); } }
            void host(void) {
                int *seed;
                seed = malloc(4);
                ping(2, seed);
            }
            """
        )
        infos = [i for i in result if i.function == "ping" and i.escapes]
        assert infos
        assert all(i.reasons == ("recursion",) for i in infos)

    def test_sibling_clone_branch_is_caller_escape(self):
        """Returned to the caller and passed into a *sibling* clone
        (use_it): both hops leave mk's subtree of the clone tree, and
        both classify as 'caller'."""
        result = escape_for(
            """
            void *mk(void) { int *m; m = malloc(4); return m; }
            void use_it(int *u) { int t; t = *u; }
            void host(void) {
                int *got;
                got = mk();
                use_it(got);
            }
            """
        )
        infos = [i for i in result if i.function == "mk"]
        assert infos
        assert all(i.escapes and i.reasons == ("caller",) for i in infos)


class TestThreadEscape:
    def test_crossing_spawn_boundary_escapes(self):
        """Flowing down into a *spawned* clone is an escape: the thread
        may outlive the allocator's frame."""
        result = escape_for(
            """
            void worker(int *w) { int t; t = *w; }
            void host(void) {
                int *b;
                b = malloc(4);
                spawn worker(b);
            }
            """
        )
        infos = [i for i in result if i.function == "host"]
        assert infos
        assert all(i.escapes and "thread" in i.reasons for i in infos)

    def test_plain_call_down_does_not_escape(self):
        """The identical flow through an ordinary call stays thread- and
        frame-local: the callee's frame dies before the allocator's."""
        result = escape_for(
            """
            void worker(int *w) { int t; t = *w; }
            void host(void) {
                int *b;
                b = malloc(4);
                worker(b);
            }
            """
        )
        infos = [i for i in result if i.function == "host"]
        assert infos
        assert not any(i.escapes for i in infos)
