"""Tests for the built-in grammars against hand-derived facts."""

from repro.engine import naive_closure
from repro.grammar import (
    LABEL_A,
    LABEL_ALIAS,
    LABEL_D,
    LABEL_D_BAR,
    LABEL_M,
    LABEL_NF,
    LABEL_OF,
    LABEL_VF,
)


def _ids(grammar, *names):
    return tuple(grammar.label_id(n) for n in names)


class TestPointstoGrammar:
    def test_direct_malloc_is_object_flow(self, pointsto):
        m, of = _ids(pointsto, LABEL_M, LABEL_OF)
        closure = naive_closure([(0, 1, m)], pointsto)
        assert (0, 1, of) in closure

    def test_malloc_through_assignment(self, pointsto):
        m, a, of = _ids(pointsto, LABEL_M, LABEL_A, LABEL_OF)
        closure = naive_closure([(0, 1, m), (1, 2, a)], pointsto)
        assert (0, 2, of) in closure

    def test_paper_alias_example(self, pointsto):
        """The §2.2 narrative: d = &a; t = *d  =>  alias(a, *d).

        Vertices: a=0, &a=1, d=2, *d=3, t=4.
        Edges: D(&a -> a), A(&a -> d), D(d -> *d), A(*d -> t) + inverses.
        """
        a_lab, d_lab, dbar = _ids(pointsto, LABEL_A, LABEL_D, LABEL_D_BAR)
        al = pointsto.label_id(LABEL_ALIAS)
        edges = [
            (1, 0, d_lab),
            (0, 1, dbar),
            (1, 2, a_lab),
            (2, 3, d_lab),
            (3, 2, dbar),
            (3, 4, a_lab),
        ]
        closure = naive_closure(edges, pointsto)
        assert (0, 3, al) in closure  # alias(a, *d)

    def test_value_flows_through_alias(self, pointsto):
        """b = ...; a = b; alias(a, *d); t = *d  =>  VF(b -> t)."""
        a_lab, d_lab, dbar, vf = _ids(
            pointsto, LABEL_A, LABEL_D, LABEL_D_BAR, LABEL_VF
        )
        # b=5 -> a=0 (A); the alias setup from the previous test; t=4.
        edges = [
            (1, 0, d_lab),
            (0, 1, dbar),
            (1, 2, a_lab),
            (2, 3, d_lab),
            (3, 2, dbar),
            (3, 4, a_lab),
            (5, 0, a_lab),
        ]
        closure = naive_closure(edges, pointsto)
        assert (5, 4, vf) in closure

    def test_compact_grammar_misses_two_sided_heap_flow(self, pointsto):
        """p = &g; q = &g; *p and *q do NOT alias under the compact grammar.

        This is the documented limitation that motivates the extended
        grammar (see pointsto_grammar_extended's docstring).
        """
        closure = self._two_sided_closure(pointsto)
        al = pointsto.label_id(LABEL_ALIAS)
        assert (3, 5, al) not in closure

    def test_extended_grammar_finds_two_sided_heap_flow(self, pointsto_ext):
        closure = self._two_sided_closure(pointsto_ext)
        al = pointsto_ext.label_id(LABEL_ALIAS)
        assert (3, 5, al) in closure  # alias(*p, *q)

    @staticmethod
    def _two_sided_closure(grammar):
        """g=0, &g=1, p=2, *p=3, q=4, *q=5."""
        a_lab = grammar.label_id(LABEL_A)
        d_lab = grammar.label_id(LABEL_D)
        dbar = grammar.label_id(LABEL_D_BAR)
        abar = grammar.label_id("A_bar")
        edges = [
            (1, 0, d_lab),
            (0, 1, dbar),
            (1, 2, a_lab),
            (2, 1, abar),
            (1, 4, a_lab),
            (4, 1, abar),
            (2, 3, d_lab),
            (3, 2, dbar),
            (4, 5, d_lab),
            (5, 4, dbar),
        ]
        return naive_closure(edges, grammar)

    def test_extended_is_superset_on_shared_labels(self, pointsto, pointsto_ext):
        """Every compact-grammar fact is also an extended-grammar fact."""
        a_lab, d_lab, dbar, m = _ids(
            pointsto, LABEL_A, LABEL_D, LABEL_D_BAR, LABEL_M
        )
        edges = [
            (0, 1, m),
            (1, 2, a_lab),
            (2, 3, d_lab),
            (3, 2, dbar),
            (2, 4, a_lab),
        ]
        compact = naive_closure(edges, pointsto)
        # remap label ids by name into the extended grammar's interning
        extended = naive_closure(
            [
                (s, d, pointsto_ext.label_id(pointsto.label_name(l)))
                for s, d, l in edges
            ],
            pointsto_ext,
        )
        extended_by_name = {
            (s, d, pointsto_ext.label_name(l)) for s, d, l in extended
        }
        for s, d, l in compact:
            name = pointsto.label_name(l)
            if name == "T":
                continue  # helper nonterminal differs between grammars
            assert (s, d, name) in extended_by_name


class TestNullflowGrammar:
    def test_source_edge_is_flow(self, nullflow):
        n, nf = _ids(nullflow, "N", LABEL_NF)
        closure = naive_closure([(0, 1, n)], nullflow)
        assert (0, 1, nf) in closure

    def test_flow_extends_through_df_chain(self, nullflow):
        n, df, nf = _ids(nullflow, "N", "DF", LABEL_NF)
        edges = [(0, 1, n)] + [(i, i + 1, df) for i in range(1, 5)]
        closure = naive_closure(edges, nullflow)
        assert (0, 5, nf) in closure

    def test_df_alone_is_not_flow(self, nullflow):
        df, nf = _ids(nullflow, "DF", LABEL_NF)
        closure = naive_closure([(0, 1, df), (1, 2, df)], nullflow)
        assert not any(l == nf for _, _, l in closure)

    def test_exactly_two_productions(self, nullflow):
        assert len(nullflow.productions) == 2


class TestDyckGrammar:
    def test_balanced_pair(self, dyck):
        op, cl, s = _ids(dyck, "OP", "CL", "S")
        closure = naive_closure([(0, 1, op), (1, 2, cl)], dyck)
        assert (0, 2, s) in closure

    def test_nested(self, dyck):
        op, cl, s = _ids(dyck, "OP", "CL", "S")
        edges = [(0, 1, op), (1, 2, op), (2, 3, cl), (3, 4, cl)]
        closure = naive_closure(edges, dyck)
        assert (1, 3, s) in closure
        assert (0, 4, s) in closure

    def test_unbalanced_not_derived(self, dyck):
        op, cl, s = _ids(dyck, "OP", "CL", "S")
        closure = naive_closure([(0, 1, op), (1, 2, op), (2, 3, cl)], dyck)
        assert (0, 3, s) not in closure
        assert (1, 3, s) in closure

    def test_concatenation(self, dyck):
        op, cl, s = _ids(dyck, "OP", "CL", "S")
        edges = [(0, 1, op), (1, 2, cl), (2, 3, op), (3, 4, cl)]
        closure = naive_closure(edges, dyck)
        assert (0, 4, s) in closure
