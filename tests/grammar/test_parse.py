"""Tests for the grammar text format."""

import pytest

from repro.engine import GraspanEngine, naive_closure
from repro.graph import MemGraph
from repro.grammar import (
    GrammarError,
    grammar_to_text,
    parse_grammar_text,
    reachability_grammar,
)


class TestParseGrammarText:
    def test_basic(self):
        g = parse_grammar_text("R ::= E\nR ::= R E\n")
        assert g.label_id("R") >= 0
        assert len(g.productions) == 2

    def test_alternatives(self):
        g = parse_grammar_text("R ::= E | R E")
        assert len(g.productions) == 2

    def test_comments_and_blanks(self):
        g = parse_grammar_text("# a comment\n\nR ::= E  # trailing\n")
        assert len(g.productions) == 1

    def test_long_rhs_binarized(self):
        g = parse_grammar_text("S ::= A B C")
        assert all(p.rhs2 is not None for p in g.productions)
        assert len(g.productions) == 2

    def test_missing_arrow_rejected(self):
        with pytest.raises(GrammarError, match="expected"):
            parse_grammar_text("R = E")

    def test_bad_lhs_rejected(self):
        with pytest.raises(GrammarError):
            parse_grammar_text("R S ::= E")

    def test_empty_alternative_rejected(self):
        with pytest.raises(GrammarError, match="epsilon"):
            parse_grammar_text("R ::= E | ")

    def test_empty_text_rejected(self):
        with pytest.raises(GrammarError, match="no productions"):
            parse_grammar_text("# nothing\n")

    def test_parsed_grammar_computes(self):
        g = parse_grammar_text("R ::= E | R E")
        graph = MemGraph.from_edges(
            [(0, 1, 0), (1, 2, 0)], label_names=["E"]
        )
        comp = GraspanEngine(g).run(graph)
        src, dst = comp.edges_with_label_arrays("R")
        assert (0, 2) in list(zip(src.tolist(), dst.tolist()))

    def test_text_semantics_match_builtin(self):
        text_g = parse_grammar_text("R ::= E | R E")
        builtin = reachability_grammar()
        edges = [(0, 1, 0), (1, 2, 0), (2, 0, 0)]

        def by_name(grammar):
            return {
                (s, d, grammar.label_name(l))
                for s, d, l in naive_closure(
                    [(s, d, grammar.label_id("E")) for s, d, _ in edges], grammar
                )
            }

        assert by_name(text_g) == by_name(builtin)


class TestRoundtrip:
    def test_grammar_to_text_reparses(self):
        original = parse_grammar_text("S ::= A B C | A\n")
        text = grammar_to_text(original)
        reparsed = parse_grammar_text(text)

        def named_productions(grammar):
            return {
                (
                    grammar.label_name(p.lhs),
                    grammar.label_name(p.rhs1),
                    None if p.rhs2 is None else grammar.label_name(p.rhs2),
                )
                for p in grammar.productions
            }

        # label interning order may differ; the productions must not
        assert named_productions(reparsed) == named_productions(original)
