"""Tests for grammar binarization (repro.grammar.normalize)."""

import pytest

from repro.engine import naive_closure
from repro.grammar import Grammar, is_intermediate
from repro.grammar.normalize import binarize_long_rules


class TestBinarize:
    def test_three_term_rule(self):
        g = Grammar()
        g.add_rule("S", ["A", "B", "C"])
        frozen = g.freeze()
        assert len(frozen.productions) == 2
        intermediates = [n for n in frozen.names if is_intermediate(n)]
        assert len(intermediates) == 1

    def test_rejects_short_rules(self):
        g = Grammar()
        a, b, s = g.label("A"), g.label("B"), g.label("S")
        with pytest.raises(ValueError):
            binarize_long_rules(g, [(s, (a, b))])

    def test_intermediate_names_are_flagged(self):
        assert is_intermediate("S$0.1")
        assert not is_intermediate("S")

    def test_distinct_rules_get_distinct_intermediates(self):
        g = Grammar()
        g.add_rule("S", ["A", "B", "C"])
        g.add_rule("T", ["A", "B", "C"])
        frozen = g.freeze()
        intermediates = {n for n in frozen.names if is_intermediate(n)}
        assert len(intermediates) == 2

    def test_binarized_semantics_match_direct_chain(self):
        """S ::= A B C accepts exactly label strings 'ABC'."""
        g = Grammar()
        for name in ("A", "B", "C"):
            g.label(name)
        g.add_rule("S", ["A", "B", "C"])
        frozen = g.freeze()
        a, b, c, s = (frozen.label_id(x) for x in ("A", "B", "C", "S"))

        closure = naive_closure([(0, 1, a), (1, 2, b), (2, 3, c)], frozen)
        assert (0, 3, s) in closure
        # wrong order: no S
        closure = naive_closure([(0, 1, b), (1, 2, a), (2, 3, c)], frozen)
        assert not any(l == s for _, _, l in closure)

    def test_five_term_rule(self):
        g = Grammar()
        for name in "ABCDE":
            g.label(name)
        g.add_rule("S", list("ABCDE"))
        frozen = g.freeze()
        ids = [frozen.label_id(x) for x in "ABCDE"]
        edges = [(i, i + 1, lab) for i, lab in enumerate(ids)]
        closure = naive_closure(edges, frozen)
        assert (0, 5, frozen.label_id("S")) in closure
        # a proper prefix must not derive S
        closure = naive_closure(edges[:-1], frozen)
        assert not any(l == frozen.label_id("S") for _, _, l in closure)
