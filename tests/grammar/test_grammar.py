"""Tests for repro.grammar.grammar: interning, productions, tables."""

import numpy as np
import pytest

from repro.grammar import Grammar, GrammarError, MAX_LABELS, bar_name


class TestLabelInterning:
    def test_labels_get_dense_ids(self):
        g = Grammar()
        assert g.label("A") == 0
        assert g.label("B") == 1
        assert g.label("A") == 0  # idempotent

    def test_label_name_roundtrip(self):
        g = Grammar()
        lid = g.label("valueFlow")
        assert g.label_name(lid) == "valueFlow"

    def test_empty_name_rejected(self):
        with pytest.raises(GrammarError):
            Grammar().label("")

    def test_too_many_labels_rejected(self):
        g = Grammar()
        for i in range(MAX_LABELS):
            g.label(f"L{i}")
        with pytest.raises(GrammarError):
            g.label("one-too-many")

    def test_unknown_label_id_rejected(self):
        g = Grammar()
        g.label("A")
        with pytest.raises(GrammarError):
            g.add_constraint(5, 0)

    def test_has_label(self):
        g = Grammar()
        g.label("A")
        assert g.has_label("A")
        assert not g.has_label("B")


class TestBarName:
    def test_bar_is_involution(self):
        assert bar_name("D") == "D_bar"
        assert bar_name("D_bar") == "D"
        assert bar_name(bar_name("X")) == "X"


class TestAddConstraint:
    def test_unary_production(self):
        g = Grammar()
        p = g.add_constraint("R", "E")
        assert p.is_unary
        assert p.rhs2 is None

    def test_binary_production(self):
        g = Grammar()
        p = g.add_constraint("R", "R", "E")
        assert not p.is_unary

    def test_accepts_label_ids(self):
        g = Grammar()
        e = g.label("E")
        r = g.label("R")
        p = g.add_constraint(r, e)
        assert p.lhs == r and p.rhs1 == e


class TestAddRule:
    def test_epsilon_rejected(self):
        with pytest.raises(GrammarError):
            Grammar().add_rule("S", [])

    def test_short_rules_become_constraints(self):
        g = Grammar()
        g.add_rule("R", ["E"])
        g.add_rule("R", ["R", "E"])
        frozen = g.freeze()
        assert len(frozen.productions) == 2

    def test_long_rule_binarized_on_freeze(self):
        g = Grammar()
        g.add_rule("S", ["A", "B", "C", "D"])
        frozen = g.freeze()
        # 4 terms -> 3 binary productions with 2 fresh intermediates
        assert len(frozen.productions) == 3
        assert all(not p.is_unary for p in frozen.productions)
        assert frozen.num_labels == 5 + 2  # A B C D S + 2 intermediates


class TestFrozenGrammar:
    def test_unary_closure_includes_self(self, reach):
        e = reach.label_id("E")
        assert e in reach.closure_of(e)

    def test_unary_closure_follows_chains(self):
        g = Grammar()
        g.add_constraint("B", "A")
        g.add_constraint("C", "B")
        frozen = g.freeze()
        names = {frozen.label_name(x) for x in frozen.closure_of("A")}
        assert names == {"A", "B", "C"}

    def test_unary_closure_handles_cycles(self):
        g = Grammar()
        g.add_constraint("A", "B")
        g.add_constraint("B", "A")
        frozen = g.freeze()
        assert set(frozen.closure_of("A")) == set(frozen.closure_of("B"))

    def test_binary_lookup(self, reach):
        r, e = reach.label_id("R"), reach.label_id("E")
        produced = reach.produced_by_pair(r, e)
        assert reach.label_id("R") in produced

    def test_binary_lookup_miss(self, reach):
        e = reach.label_id("E")
        # E E is not a production in R ::= E | R E ... but E derives R, so
        # the (R, E) pair covers it; the raw (E, E) cell must be empty.
        assert reach.produced_by_pair(e, e) == ()

    def test_binary_results_closed_under_unary(self):
        g = Grammar()
        g.add_constraint("R", "A", "B")
        g.add_constraint("S", "R")  # unary on the output
        frozen = g.freeze()
        produced = {
            frozen.label_name(x)
            for x in frozen.produced_by_pair(
                frozen.label_id("A"), frozen.label_id("B")
            )
        }
        assert produced == {"R", "S"}

    def test_head_and_continuation_masks(self, reach):
        heads = reach.head_labels()
        conts = reach.continuation_labels()
        r, e = reach.label_id("R"), reach.label_id("E")
        assert heads[r] and not heads[e]
        assert conts[e] and not conts[r]

    def test_label_id_unknown_raises(self, reach):
        with pytest.raises(GrammarError):
            reach.label_id("nope")

    def test_num_binary_pairs(self, reach):
        assert reach.num_binary_pairs == 1

    def test_binary_index_is_dense_matrix(self, reach):
        assert reach.binary_index.shape == (reach.num_labels, reach.num_labels)
        assert reach.binary_index.dtype == np.int16
