"""Property-based tests (hypothesis) for grammar invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar import Grammar
from repro.grammar.grammar import FrozenGrammar

MAX_TEST_LABELS = 8


@st.composite
def random_grammars(draw) -> FrozenGrammar:
    """Small random grammars over labels L0..L7."""
    num_labels = draw(st.integers(2, MAX_TEST_LABELS))
    g = Grammar()
    names = [f"L{i}" for i in range(num_labels)]
    for name in names:
        g.label(name)
    num_rules = draw(st.integers(1, 10))
    for _ in range(num_rules):
        lhs = draw(st.sampled_from(names))
        rhs_len = draw(st.integers(1, 4))
        rhs = [draw(st.sampled_from(names)) for _ in range(rhs_len)]
        g.add_rule(lhs, rhs)
    return g.freeze()


@given(random_grammars())
@settings(max_examples=60, deadline=None)
def test_unary_closure_is_transitively_closed(grammar):
    """closure(closure(l)) == closure(l) for every label."""
    for label in range(grammar.num_labels):
        closure = set(grammar.unary_closure[label])
        for derived in closure:
            assert set(grammar.unary_closure[derived]) <= closure


@given(random_grammars())
@settings(max_examples=60, deadline=None)
def test_unary_closure_contains_self(grammar):
    for label in range(grammar.num_labels):
        assert label in grammar.unary_closure[label]


@given(random_grammars())
@settings(max_examples=60, deadline=None)
def test_binary_results_closed_under_unary(grammar):
    """Whatever a pair produces includes the unary closure of each LHS."""
    for l1 in range(grammar.num_labels):
        for l2 in range(grammar.num_labels):
            produced = set(grammar.produced_by_pair(l1, l2))
            for lhs in produced:
                assert set(grammar.unary_closure[lhs]) <= produced


@given(random_grammars())
@settings(max_examples=60, deadline=None)
def test_every_binary_production_is_in_tables(grammar):
    for p in grammar.productions:
        if p.is_unary:
            assert p.lhs in grammar.unary_closure[p.rhs1]
        else:
            assert p.lhs in grammar.produced_by_pair(p.rhs1, p.rhs2)


@given(random_grammars())
@settings(max_examples=60, deadline=None)
def test_masks_agree_with_index(grammar):
    heads = grammar.head_labels()
    conts = grammar.continuation_labels()
    for l1 in range(grammar.num_labels):
        for l2 in range(grammar.num_labels):
            if grammar.binary_index[l1, l2] >= 0:
                assert heads[l1]
                assert conts[l2]
