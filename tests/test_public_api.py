"""The documented public API surface: imports, quickstart flow, examples."""

import subprocess
import sys
from pathlib import Path

import pytest

import repro

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quickstart, verbatim in spirit."""
        pg = repro.compile_program(
            """
            void *risky(void) { int *p; p = NULL; return p; }
            void main_fn(void) { int *v; v = risky(); *v = 1; }
            """
        )
        pts = repro.PointsToAnalysis().run(pg)
        nulls = repro.NullDataflowAnalysis().run(pg, pointsto=pts)
        assert nulls.may_receive("main_fn", "v")

    def test_taint_flow(self):
        """The five-client closure story: taint as a public analysis."""
        pg = repro.compile_program(
            """
            int src(void) { int raw; raw = input(); return raw; }
            void handler(void) { int q; q = src(); query(q); }
            """
        )
        pts = repro.PointsToAnalysis().run(pg)
        taint = repro.TaintAnalysis().run(pg, pointsto=pts)
        assert taint.may_receive("handler", "q")
        assert [f.sink for f in taint.flows] == ["query"]

    def test_checker_registry_exports(self):
        from repro.checkers import ALL_CHECKERS

        names = {cls.name for cls in ALL_CHECKERS}
        assert {"Race", "Taint", "Async"} <= names
        assert repro.TaintChecker in ALL_CHECKERS
        assert repro.AsyncChecker in ALL_CHECKERS

    def test_grammar_engine_flow(self):
        g = repro.Grammar()
        g.add_constraint("R", "E")
        g.add_constraint("R", "R", "E")
        frozen = g.freeze()
        graph = repro.MemGraph.from_edges(
            [(0, 1, 0), (1, 2, 0)], label_names=["E"]
        )
        comp = repro.GraspanEngine(frozen).run(graph)
        src, dst = comp.edges_with_label_arrays("R")
        assert (0, 2) in list(zip(src.tolist(), dst.tolist()))


@pytest.mark.parametrize(
    "script,args",
    [
        ("quickstart.py", []),
        ("custom_analysis.py", []),
        ("kernel_bug_hunt.py", ["0.08"]),
        ("compare_backends.py", ["httpd", "0.4"]),
        ("escape_analysis.py", ["0.08"]),
    ],
)
def test_examples_run(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=480,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
