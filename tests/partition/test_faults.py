"""Fault-injection units: checksums, torn writes, retries, the journal.

Covers the durability building blocks in isolation (DESIGN.md §9):
CRC32 corruption detection, the torn-tmp crash model and startup scrub,
transient-``OSError`` retry with backoff, deferred deletes, the
``FaultPlan`` environment parsing, and ``RunJournal`` replay/commit.
"""

import errno
import json

import numpy as np
import pytest

from repro.engine.checkpoint import CheckpointError, RunJournal
from repro.partition import (
    Interval,
    Partition,
    PartitionCorruptError,
    PartitionStore,
    load_partition,
    save_partition,
)
from repro.partition.storage import HEADER_BYTES, PARTITION_MAGIC
from repro.util.faults import (
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    faulty_store,
    flip_payload_byte,
)
from repro.util.retry import TRANSIENT_ERRNOS, RetryPolicy


def sample_partition(lo=0, hi=15):
    return Partition.from_triples(
        Interval(lo, hi), [(1, 5, 0), (1, 9, 1), (7, 2, 0), (hi, 0, 2)]
    )


class TestRetryPolicy:
    def test_transient_error_is_retried_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError(errno.EIO, "injected")
            return "ok"

        policy = RetryPolicy(base_delay=0.0)
        assert policy.call(flaky, sleep=lambda _: None) == "ok"
        assert len(attempts) == 3

    def test_non_transient_error_raises_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise OSError(errno.EPERM, "nope")

        with pytest.raises(OSError):
            RetryPolicy(base_delay=0.0).call(broken, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_file_not_found_is_not_retried(self):
        attempts = []

        def missing():
            attempts.append(1)
            raise FileNotFoundError(errno.ENOENT, "gone")

        with pytest.raises(FileNotFoundError):
            RetryPolicy(base_delay=0.0).call(missing, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_exhaustion_raises_the_last_error(self):
        def always():
            raise OSError(errno.ENOSPC, "full")

        with pytest.raises(OSError) as excinfo:
            RetryPolicy(attempts=4, base_delay=0.0).call(
                always, sleep=lambda _: None
            )
        assert excinfo.value.errno == errno.ENOSPC

    def test_on_retry_called_per_backoff(self):
        seen = []

        def always():
            raise OSError(errno.EIO, "io")

        with pytest.raises(OSError):
            RetryPolicy(attempts=3, base_delay=0.0).call(
                always, on_retry=lambda exc, i: seen.append(i), sleep=lambda _: None
            )
        assert len(seen) == 2  # two retries after the first failure

    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3]

    def test_transient_errno_set(self):
        assert errno.EIO in TRANSIENT_ERRNOS
        assert errno.ENOSPC in TRANSIENT_ERRNOS
        assert errno.ENOENT not in TRANSIENT_ERRNOS


class TestFaultPlan:
    def test_from_env_parses_all_knobs(self):
        plan = FaultPlan.from_env(
            {
                "REPRO_FAULT_CRASH_WRITE": "3",
                "REPRO_FAULT_FLIP_WRITE": "5",
                "REPRO_FAULT_ERRNO_WRITE": "2:EIO,4:ENOSPC",
                "REPRO_FAULT_ERRNO_READ": "1:EIO",
                "REPRO_FAULT_CRASH_PRECOMMIT": "7",
                "REPRO_FAULT_CRASH_COMMIT": "8",
                "REPRO_FAULT_KILL_WORKER": "2",
            }
        )
        assert plan.crash_at_write == 3
        assert plan.flip_byte_at_write == 5
        assert plan.errno_at_write == {2: errno.EIO, 4: errno.ENOSPC}
        assert plan.errno_at_read == {1: errno.EIO}
        assert plan.crash_before_commit == 7
        assert plan.crash_after_commit == 8
        assert plan.kill_worker_at_dispatch == 2
        assert not plan.empty()

    def test_from_env_empty_environment(self):
        assert FaultPlan.from_env({}).empty()

    def test_unknown_errno_name_rejected(self):
        with pytest.raises(ValueError, match="unknown errno"):
            FaultPlan.from_env({"REPRO_FAULT_ERRNO_WRITE": "1:EWHAT"})

    def test_random_is_deterministic_per_seed(self):
        assert FaultPlan.random(7) == FaultPlan.random(7)
        assert not FaultPlan.random(7).empty()


class TestChecksum:
    def test_flipped_payload_byte_detected(self, tmp_path):
        path = tmp_path / "p.gp"
        save_partition(sample_partition(), path)
        flip_payload_byte(path)
        with pytest.raises(PartitionCorruptError, match="checksum mismatch"):
            load_partition(path)

    def test_flipped_byte_detected_in_copy_mode(self, tmp_path):
        path = tmp_path / "p.gp"
        save_partition(sample_partition(), path)
        flip_payload_byte(path, offset=HEADER_BYTES)
        with pytest.raises(PartitionCorruptError, match="checksum mismatch"):
            load_partition(path, mmap=False)

    def test_verify_off_skips_checksum(self, tmp_path):
        path = tmp_path / "p.gp"
        save_partition(sample_partition(), path)
        flip_payload_byte(path)
        load_partition(path, verify=False)  # structural checks only

    def test_truncated_payload_reports_sizes(self, tmp_path):
        path = tmp_path / "p.gp"
        save_partition(sample_partition(), path)
        full = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(full - 8)
        with pytest.raises(
            PartitionCorruptError, match="expected .* bytes, found"
        ):
            load_partition(path)

    def test_garbage_with_valid_magic_is_corrupt_not_valueerror(self, tmp_path):
        path = tmp_path / "p.gp"
        path.write_bytes(PARTITION_MAGIC + b"\x00" * 4)
        with pytest.raises(PartitionCorruptError):
            load_partition(path)

    def test_corrupt_error_is_a_value_error(self):
        assert issubclass(PartitionCorruptError, ValueError)

    def test_store_read_surfaces_corruption(self, tmp_path):
        store = PartitionStore(workdir=tmp_path)
        path = store.write(sample_partition())
        flip_payload_byte(path)
        with pytest.raises(PartitionCorruptError):
            store.read(path)


class TestTornWriteAndScrub:
    def test_crash_at_write_leaves_torn_tmp_only(self, tmp_path):
        store = faulty_store(tmp_path, FaultPlan(crash_at_write=1, torn_bytes=10))
        with pytest.raises(InjectedCrash):
            store.write(sample_partition())
        tmps = list(tmp_path.glob("*.tmp"))
        assert len(tmps) == 1
        assert tmps[0].stat().st_size == 10
        assert not list(tmp_path.glob("partition-*.gp"))

    def test_new_store_scrubs_torn_tmp(self, tmp_path):
        store = faulty_store(tmp_path, FaultPlan(crash_at_write=1))
        with pytest.raises(InjectedCrash):
            store.write(sample_partition())
        fresh = PartitionStore(workdir=tmp_path)
        assert fresh.tmp_scrubbed == 1
        assert not list(tmp_path.glob("*.tmp"))

    def test_file_id_counter_resumes_past_existing_files(self, tmp_path):
        store = PartitionStore(workdir=tmp_path)
        first = store.write(sample_partition())
        fresh = PartitionStore(workdir=tmp_path)
        second = fresh.write(sample_partition())
        assert second != first
        assert first.exists() and second.exists()


class TestStoreRetries:
    def test_transient_write_error_absorbed(self, tmp_path):
        store = faulty_store(tmp_path, FaultPlan(errno_at_write={1: errno.EIO}))
        path = store.write(sample_partition())
        assert path.exists()
        assert store.io_retries == 1
        assert store.injector.injected_errors == 1

    def test_transient_read_error_absorbed(self, tmp_path):
        store = faulty_store(tmp_path, FaultPlan(errno_at_read={1: errno.EIO}))
        path = store.write(sample_partition())
        loaded = store.read(path)
        assert np.array_equal(loaded.keys, sample_partition().keys)
        assert store.io_retries == 1

    def test_persistent_errors_exhaust_retries(self, tmp_path):
        schedule = {i: errno.EIO for i in range(1, 10)}
        store = faulty_store(
            tmp_path,
            FaultPlan(errno_at_write=schedule),
            retry=RetryPolicy(attempts=3, base_delay=0.0),
        )
        with pytest.raises(OSError):
            store.write(sample_partition())
        assert store.io_retries == 2


class TestRetireAndPurge:
    def test_retired_files_survive_until_purge(self, tmp_path):
        store = PartitionStore(workdir=tmp_path)
        path = store.write(sample_partition())
        store.retire(path)
        assert path.exists()
        assert store.purge_retired() == 1
        assert not path.exists()
        assert store.files_purged == 1

    def test_delete_is_immediate(self, tmp_path):
        store = PartitionStore(workdir=tmp_path)
        path = store.write(sample_partition())
        store.delete(path)
        assert not path.exists()


class TestRunJournal:
    def test_append_and_replay(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append({"event": "begin", "superstep": 0})
        journal.append({"event": "commit", "superstep": 1})
        events = list(journal.events())
        assert [e["event"] for e in events] == ["begin", "commit"]

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.append({"event": "begin"})
        with open(journal.journal_path, "a") as fh:
            fh.write('{"event": "com')  # crash mid-append
        assert [e["event"] for e in journal.events()] == ["begin"]

    def test_commit_replaces_manifest_atomically(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.commit({"format": 1, "superstep": 3})
        journal.commit({"format": 1, "superstep": 4})
        assert journal.load_manifest()["superstep"] == 4
        assert not list(tmp_path.glob("*.tmp"))
        commits = [e for e in journal.events() if e["event"] == "commit"]
        assert [c["superstep"] for c in commits] == [3, 4]

    def test_missing_manifest_returns_none(self, tmp_path):
        assert RunJournal(tmp_path).load_manifest() is None

    def test_unreadable_manifest_raises(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.manifest_path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            journal.load_manifest()

    def test_wrong_format_rejected(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.manifest_path.write_text(json.dumps({"format": 999}))
        with pytest.raises(CheckpointError, match="unsupported manifest format"):
            journal.load_manifest()

    def test_crash_before_commit_preserves_old_manifest(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.commit({"format": 1, "superstep": 1})
        crashy = RunJournal(
            tmp_path, injector=FaultInjector(FaultPlan(crash_before_commit=1))
        )
        with pytest.raises(InjectedCrash):
            crashy.commit({"format": 1, "superstep": 2})
        assert RunJournal(tmp_path).load_manifest()["superstep"] == 1


class TestInjectorCounters:
    def test_counters_track_operations(self, tmp_path):
        store = faulty_store(tmp_path, FaultPlan())
        path = store.write(sample_partition())
        store.read(path)
        assert store.injector.writes == 1
        assert store.injector.reads == 1
        assert store.injector.injected_errors == 0
        assert store.injector.injected_crashes == 0
