"""Tests for preprocessing (sharding, §4.1)."""

import numpy as np
import pytest

from repro.graph import MemGraph
from repro.partition import balanced_intervals, choose_num_partitions, preprocess


class TestChooseNumPartitions:
    def test_explicit_count_wins(self):
        assert choose_num_partitions(100, max_edges_per_partition=10, num_partitions=3) == 3

    def test_from_max_edges(self):
        assert choose_num_partitions(100, 30, None) == 4

    def test_default_is_two(self):
        """No sizing hints -> the paper's in-memory two-partition mode."""
        assert choose_num_partitions(100, None, None) == 2

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            choose_num_partitions(10, None, 0)
        with pytest.raises(ValueError):
            choose_num_partitions(10, 0, None)


class TestBalancedIntervals:
    def test_balances_edge_mass(self):
        # all edges come from vertex 0-1; a naive vertex split would put
        # all mass in partition 0
        edges = [(0, i, 0) for i in range(2, 50)] + [(1, i, 0) for i in range(2, 50)]
        g = MemGraph.from_edges(edges)
        vit = balanced_intervals(g, 2)
        assert vit.partition_of(0) == 0
        assert vit.partition_of(1) == 1  # mass split between the two hubs

    def test_covers_all_vertices(self):
        g = MemGraph.from_edges([(0, 1, 0)], num_vertices=17)
        vit = balanced_intervals(g, 4)
        assert vit.num_vertices == 17
        for v in range(17):
            vit.partition_of(v)

    def test_empty_graph_rejected(self):
        g = MemGraph.from_edges([], num_vertices=0)
        with pytest.raises(ValueError):
            balanced_intervals(g, 2)

    def test_partitions_capped_by_vertices(self):
        g = MemGraph.from_edges([(0, 1, 0)], num_vertices=2)
        vit = balanced_intervals(g, 10)
        assert vit.num_partitions <= 2


class TestPreprocess:
    def test_edge_conservation(self):
        g = MemGraph.from_edges(
            [(i, (i * 7) % 20, i % 3) for i in range(20)], label_names=["A", "B", "C"]
        )
        pset = preprocess(g, num_partitions=4)
        assert pset.total_edges() == g.num_edges
        assert sorted(pset.iter_all_edges()) == sorted(g.edges())

    def test_edges_assigned_by_source(self):
        g = MemGraph.from_edges([(0, 9, 0), (9, 0, 0)], num_vertices=10)
        pset = preprocess(g, num_partitions=2)
        for pid in range(pset.num_partitions):
            interval = pset.vit.interval(pid)
            for src, _, _ in pset.acquire(pid).edges():
                assert src in interval

    def test_ddm_counts_are_exact(self):
        g = MemGraph.from_edges(
            [(0, 5, 0), (1, 5, 0), (5, 0, 0), (5, 6, 0)], num_vertices=8
        )
        pset = preprocess(g, num_partitions=2)
        n = pset.vit.num_partitions
        expected = np.zeros((n, n), dtype=np.int64)
        for src, dst, _ in g.edges():
            expected[pset.vit.partition_of(src), pset.vit.partition_of(dst)] += 1
        assert np.array_equal(pset.ddm.counts, expected)

    def test_degree_files_present(self):
        g = MemGraph.from_edges([(0, 1, 0), (1, 0, 0), (1, 2, 0)])
        pset = preprocess(g, num_partitions=2)
        assert list(pset.out_degrees) == [1, 2, 0]
        assert list(pset.in_degrees) == [1, 1, 1]

    def test_timers_record_preprocess_phase(self):
        g = MemGraph.from_edges([(0, 1, 0)])
        pset = preprocess(g, num_partitions=1)
        assert pset.store.timers.get("preprocess") > 0
