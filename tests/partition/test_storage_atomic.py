"""Regression tests for atomic partition writes and zero-copy loads.

A crash mid-``save_partition`` used to leave a truncated ``.npz`` at the
final path, which a later superstep would try to load; writes now land
in a ``*.tmp`` sibling and are renamed into place with ``os.replace``.
"""

import numpy as np
import pytest

from repro.graph import from_pairs
from repro.partition import Interval, Partition, load_partition, save_partition
from repro.partition import storage


def make_partition():
    return Partition(
        Interval(0, 9),
        {1: from_pairs([(2, 0), (3, 1)]), 4: from_pairs([(1, 0)])},
    )


class CrashMidWrite(RuntimeError):
    pass


@pytest.fixture
def crashing_write(monkeypatch):
    """A payload writer that emits some real bytes, then dies (torn write)."""

    def boom(fh, partition):
        fh.write(b"GRSPART1 partial payload bytes")
        raise CrashMidWrite("disk full")

    monkeypatch.setattr(storage, "_write_payload", boom)


class TestAtomicSave:
    def test_roundtrip_still_works(self, tmp_path):
        p = make_partition()
        path = tmp_path / "p.npz"
        save_partition(p, path)
        loaded = load_partition(path)
        assert loaded.interval == p.interval
        assert list(loaded.edges()) == list(p.edges())
        assert list(tmp_path.iterdir()) == [path]  # no tmp leftovers

    def test_crash_leaves_no_file(self, tmp_path, crashing_write):
        path = tmp_path / "p.gp"
        with pytest.raises(CrashMidWrite):
            save_partition(make_partition(), path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # tmp sibling cleaned up too

    def test_crash_preserves_previous_version(self, tmp_path, monkeypatch):
        p = make_partition()
        path = tmp_path / "p.gp"
        save_partition(p, path)

        real_write = storage._write_payload

        def boom(fh, partition):
            real_write(fh, partition)
            fh.truncate(storage.HEADER_BYTES + 8)  # tear the payload
            raise CrashMidWrite("power loss")

        monkeypatch.setattr(storage, "_write_payload", boom)
        with pytest.raises(CrashMidWrite):
            save_partition(Partition(Interval(0, 9), {}), path)
        # the old complete file is still there, fully readable
        loaded = load_partition(path)
        assert list(loaded.edges()) == list(p.edges())
        assert list(tmp_path.iterdir()) == [path]


class TestZeroCopyLoad:
    def test_rows_share_one_buffer(self, tmp_path):
        """Adjacency rows are slices of the loaded keys array, not copies."""
        path = tmp_path / "p.npz"
        save_partition(make_partition(), path)
        loaded = load_partition(path)
        bases = {id(row.base) for row in loaded.adjacency.values()}
        assert all(row.base is not None for row in loaded.adjacency.values())
        assert len(bases) == 1

    def test_merge_after_load_does_not_corrupt_siblings(self, tmp_path):
        """Merging into one row must not disturb rows sharing the buffer."""
        path = tmp_path / "p.npz"
        save_partition(make_partition(), path)
        loaded = load_partition(path)
        before = {v: row.copy() for v, row in loaded.adjacency.items()}
        loaded.merge_new_edges(1, from_pairs([(7, 1)]))
        assert np.array_equal(loaded.adjacency[4], before[4])
        assert len(loaded.adjacency[1]) == len(before[1]) + 1
