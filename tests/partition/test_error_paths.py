"""Error paths and invariant guards in the partition layer."""

import numpy as np
import pytest

from repro.graph import MemGraph
from repro.partition import (
    DestinationDistributionMap,
    Partition,
    PartitionSet,
    PartitionStore,
    VertexIntervalTable,
    preprocess,
)


class TestPartitionSetGuards:
    def test_vit_partition_mismatch_rejected(self):
        vit = VertexIntervalTable.even(10, 2)
        ddm = DestinationDistributionMap(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="disagree"):
            PartitionSet(vit, ddm, [Partition(vit.interval(0), {})], PartitionStore())

    def test_note_mutated_requires_residency(self, tmp_path):
        g = MemGraph.from_edges([(0, 1, 0), (2, 3, 0)], label_names=["E"])
        pset = preprocess(g, num_partitions=2, workdir=tmp_path)
        with pytest.raises(RuntimeError, match="not resident"):
            pset.note_mutated(0)

    def test_acquire_missing_everything_fails(self, tmp_path):
        g = MemGraph.from_edges([(0, 1, 0), (2, 3, 0)], label_names=["E"])
        pset = preprocess(g, num_partitions=2, workdir=tmp_path)
        path = pset._slots[0].path
        path.unlink()
        with pytest.raises(FileNotFoundError):
            pset.acquire(0)

    def test_evict_of_nonresident_is_noop(self, tmp_path):
        g = MemGraph.from_edges([(0, 1, 0)], label_names=["E"])
        pset = preprocess(g, num_partitions=1, workdir=tmp_path)
        pset.evict(0)
        pset.evict(0)  # second eviction: nothing to do, no error

    def test_repr_smoke(self, tmp_path):
        g = MemGraph.from_edges([(0, 1, 0)], label_names=["E"])
        pset = preprocess(g, num_partitions=1)
        assert "PartitionSet" in repr(pset)
        assert "Partition" in repr(pset.acquire(0))
        assert "DestinationDistributionMap" in repr(pset.ddm)


class TestIntervalsExhaustive:
    def test_even_partitions_cover_exactly(self):
        for n in (1, 2, 7, 100):
            for k in (1, 2, 3, n):
                vit = VertexIntervalTable.even(n, k)
                seen = []
                for iv in vit.intervals():
                    seen.extend(range(iv.lo, iv.hi + 1))
                assert seen == list(range(n)), (n, k)

    def test_single_vertex_graph(self):
        g = MemGraph.from_edges([(0, 0, 0)], label_names=["E"])
        pset = preprocess(g, num_partitions=1)
        assert pset.total_edges() == 1
