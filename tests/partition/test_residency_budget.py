"""Unit tests for the byte-budgeted LRU residency manager.

These exercise :class:`ResidencyManager` in isolation and the
:class:`PartitionSet` budget behaviour on a small disk-backed set,
without running any closure.
"""

import numpy as np
import pytest

from repro.graph.graph import MemGraph
from repro.partition.preprocess import preprocess
from repro.partition.pset import ResidencyManager, _Slot


def small_graph(num_vertices=24, fanout=4):
    src = np.repeat(np.arange(num_vertices), fanout)
    dst = (src * 7 + np.tile(np.arange(fanout), num_vertices)) % num_vertices
    labels = np.zeros(len(src), dtype=np.int64)
    return MemGraph.from_arrays(
        src, dst, labels, num_vertices=num_vertices, label_names=("e",)
    )


def make_pset(tmp_path, memory_budget=None, num_partitions=4):
    return preprocess(
        small_graph(),
        num_partitions=num_partitions,
        workdir=tmp_path,
        memory_budget=memory_budget,
    )


class TestResidencyManager:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ResidencyManager(0)
        with pytest.raises(ValueError):
            ResidencyManager(-5)
        ResidencyManager(None)  # unlimited is fine
        ResidencyManager(1)

    def test_touch_counts_hits_and_loads(self):
        rm = ResidencyManager()
        slot = _Slot(partition=None, path=None, edge_count=0)
        rm.touch(slot, hit=False)
        rm.touch(slot, hit=True)
        rm.touch(slot, hit=True)
        assert rm.loads == 1
        assert rm.cache_hits == 2
        assert slot.last_used == 3  # monotone clock

    def test_select_victim_is_lru_and_skips_pinned(self):
        rm = ResidencyManager()
        marker = object()  # stands in for a resident Partition
        slots = [
            _Slot(partition=marker, path=None, edge_count=0) for _ in range(4)
        ]
        for slot in (slots[2], slots[0], slots[3], slots[1]):
            rm.touch(slot, hit=True)
        # slot 2 is oldest, but pin it; slot 0 is next-oldest.
        slots[2].pinned = True
        assert rm.select_victim(slots) == 0
        # Non-resident slots are never victims.
        slots[0].partition = None
        assert rm.select_victim(slots) == 3
        # Everything pinned or absent -> no victim.
        slots[3].pinned = slots[1].pinned = True
        assert rm.select_victim(slots) is None

    def test_over_budget_and_headroom(self):
        rm = ResidencyManager(100)
        assert not rm.over_budget(100)
        assert rm.over_budget(101)
        assert rm.over_budget(60, headroom=41)
        assert not ResidencyManager(None).over_budget(10**12)

    def test_observe_tracks_peak(self):
        rm = ResidencyManager()
        marker = object()
        slots = [_Slot(partition=marker, path=None, edge_count=0, nbytes=40)]
        assert rm.observe(slots) == 40
        slots.append(_Slot(partition=marker, path=None, edge_count=0, nbytes=60))
        assert rm.observe(slots) == 100
        slots[1].partition = None  # evicted bytes don't count
        assert rm.observe(slots) == 40
        assert rm.peak_resident_bytes == 100


class TestPartitionSetBudget:
    def test_unbudgeted_set_never_auto_evicts(self, tmp_path):
        pset = make_pset(tmp_path, memory_budget=None)
        for pid in range(pset.num_partitions):
            pset.acquire(pid)
        assert len(pset.resident_pids()) == pset.num_partitions
        pset.enforce_budget()  # no-op without a budget
        assert len(pset.resident_pids()) == pset.num_partitions

    def test_acquire_evicts_lru_to_stay_under_budget(self, tmp_path):
        pset = make_pset(tmp_path, memory_budget=None)
        per_part = max(s.nbytes for s in pset._slots)
        # Rebuild with room for ~2 partitions.
        pset = make_pset(tmp_path / "b", memory_budget=2 * per_part)
        for pid in range(pset.num_partitions):
            pset.acquire(pid)
            assert pset.resident_bytes() <= pset.memory_budget
        # The most recently used partitions survive, the LRU ones don't.
        resident = pset.resident_pids()
        assert pset.num_partitions - 1 in resident
        assert 0 not in resident
        assert pset.residency.evictions > 0

    def test_pinned_partitions_survive_pressure(self, tmp_path):
        pset = make_pset(tmp_path, memory_budget=None)
        per_part = max(s.nbytes for s in pset._slots)
        pset = make_pset(tmp_path / "b", memory_budget=2 * per_part)
        pset.acquire(0)
        with pset.pinned(0):
            for pid in range(1, pset.num_partitions):
                pset.acquire(pid)
            assert pset.is_resident(0)  # pinned through all the churn
        pset.enforce_budget()
        assert pset.resident_bytes() <= pset.memory_budget

    def test_reacquire_counts_cache_hit(self, tmp_path):
        pset = make_pset(tmp_path, memory_budget=None)
        pset.acquire(1)
        before = pset.residency.cache_hits
        pset.acquire(1)
        assert pset.residency.cache_hits == before + 1

    def test_dirty_eviction_writes_back(self, tmp_path):
        pset = make_pset(tmp_path)
        partition = pset.acquire(0)
        fresh_key = np.asarray([int(partition.keys.max()) + (1 << 8)], dtype=np.int64)
        assert partition.merge_new_edges(int(partition.vertices[0]), fresh_key) == 1
        pset.note_mutated(0)
        writes_before = pset.store.writes
        pset.evict(0)
        assert pset.store.writes == writes_before + 1
        reloaded = pset.acquire(0)
        assert reloaded.num_edges == pset.edge_count(0)

    def test_clean_eviction_skips_write(self, tmp_path):
        pset = make_pset(tmp_path)
        pset.acquire(0)  # fresh load, clean
        writes_before = pset.store.writes
        pset.evict(0)
        assert pset.store.writes == writes_before  # delayed write-back (§4.3)

    def test_peak_resident_bytes_tracked(self, tmp_path):
        pset = make_pset(tmp_path)
        for pid in range(pset.num_partitions):
            pset.acquire(pid)
        assert pset.residency.peak_resident_bytes >= pset.resident_bytes() > 0
        assert pset.residency.max_partition_bytes == max(
            s.nbytes for s in pset._slots
        )
