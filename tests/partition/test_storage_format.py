"""Round-trip and compatibility tests for the raw partition format.

The on-disk layout is header + the three CSR arrays verbatim, so a
round-trip must reproduce ``(vertices, indptr, keys)`` byte-identically.
Legacy ``.npz`` archives (the pre-raw format) must keep loading.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import packed
from repro.partition import Interval, Partition, load_partition, save_partition
from repro.partition.storage import PARTITION_MAGIC, PartitionStore


def triples_strategy(lo=0, hi=31):
    return st.lists(
        st.tuples(
            st.integers(lo, hi),  # src within the interval
            st.integers(0, 200),  # target
            st.integers(0, 7),  # label
        ),
        max_size=80,
    )


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(triples=triples_strategy())
    def test_csr_arrays_survive_byte_identically(self, triples, tmp_path_factory):
        partition = Partition.from_triples(Interval(0, 31), triples)
        path = tmp_path_factory.mktemp("rt") / "p.gp"
        save_partition(partition, path)
        loaded = load_partition(path)
        assert loaded.interval == partition.interval
        assert np.array_equal(loaded.vertices, partition.vertices)
        assert np.array_equal(loaded.indptr, partition.indptr)
        assert np.array_equal(loaded.keys, partition.keys)

    def test_empty_partition_round_trips(self, tmp_path):
        """Regression: empty partitions used to break the npz writer."""
        empty = Partition(Interval(3, 9), {})
        path = tmp_path / "empty.gp"
        save_partition(empty, path)
        loaded = load_partition(path)
        assert loaded.interval == Interval(3, 9)
        assert loaded.num_edges == 0
        assert loaded.num_source_vertices == 0
        assert len(loaded.indptr) == 1

    def test_mmap_and_copy_loads_agree(self, tmp_path):
        partition = Partition.from_triples(
            Interval(0, 9), [(1, 5, 0), (1, 6, 1), (8, 2, 0)]
        )
        path = tmp_path / "p.gp"
        save_partition(partition, path)
        mapped = load_partition(path, mmap=True)
        copied = load_partition(path, mmap=False)
        assert np.array_equal(mapped.keys, copied.keys)
        assert np.array_equal(mapped.vertices, copied.vertices)
        assert np.array_equal(mapped.indptr, copied.indptr)

    def test_mmap_load_is_zero_copy(self, tmp_path):
        partition = Partition.from_triples(Interval(0, 9), [(1, 5, 0), (8, 2, 0)])
        path = tmp_path / "p.gp"
        save_partition(partition, path)
        loaded = load_partition(path)
        assert isinstance(loaded.keys.base, np.memmap)
        assert loaded.keys.base is loaded.vertices.base  # one mapping

    def test_header_carries_magic(self, tmp_path):
        path = tmp_path / "p.gp"
        save_partition(Partition(Interval(0, 3), {}), path)
        assert path.read_bytes()[:8] == PARTITION_MAGIC


class TestRejection:
    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.gp"
        path.write_bytes(b"definitely not a partition")
        with pytest.raises(ValueError, match="not a Graspan partition"):
            load_partition(path)

    def test_short_file_rejected(self, tmp_path):
        path = tmp_path / "short.gp"
        path.write_bytes(b"GR")
        with pytest.raises(ValueError):
            load_partition(path)


class TestFormatVersioning:
    def test_header_carries_version_and_checksum(self, tmp_path):
        from repro.partition.storage import FORMAT_VERSION, _HEADER_STRUCT

        partition = Partition.from_triples(Interval(0, 9), [(1, 5, 0), (8, 2, 1)])
        path = tmp_path / "p.gp"
        save_partition(partition, path)
        head = path.read_bytes()[: _HEADER_STRUCT.size]
        magic, version, crc, lo, hi, nv, ne = _HEADER_STRUCT.unpack(head)
        assert magic == PARTITION_MAGIC
        assert version == FORMAT_VERSION
        assert crc != 0
        assert (lo, hi) == (0, 9)
        assert ne == partition.num_edges

    def test_unknown_version_rejected(self, tmp_path):
        import struct

        from repro.partition.storage import _HEADER_STRUCT, PartitionCorruptError

        partition = Partition.from_triples(Interval(0, 9), [(1, 5, 0)])
        path = tmp_path / "p.gp"
        save_partition(partition, path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, 8, 99)  # version field
        path.write_bytes(bytes(data))
        with pytest.raises(PartitionCorruptError, match="version 99"):
            load_partition(path)

    def test_legacy_grspart1_still_loads(self, tmp_path):
        """Files written before the checksum header must keep loading."""
        import numpy as _np

        from repro.partition.storage import _LEGACY_HEADER_STRUCT, LEGACY_MAGIC

        partition = Partition.from_triples(
            Interval(0, 15), [(2, 9, 1), (2, 3, 0), (11, 0, 2)]
        )
        path = tmp_path / "old.gp"
        with open(path, "wb") as fh:
            fh.write(
                _LEGACY_HEADER_STRUCT.pack(
                    LEGACY_MAGIC,
                    partition.interval.lo,
                    partition.interval.hi,
                    len(partition.vertices),
                    len(partition.keys),
                )
            )
            for array in partition.csr():
                fh.write(_np.ascontiguousarray(array, dtype=_np.int64).data)
        loaded = load_partition(path)
        assert loaded.interval == partition.interval
        assert np.array_equal(loaded.vertices, partition.vertices)
        assert np.array_equal(loaded.indptr, partition.indptr)
        assert np.array_equal(loaded.keys, partition.keys)

    def test_legacy_grspart1_truncation_still_detected(self, tmp_path):
        from repro.partition.storage import _LEGACY_HEADER_STRUCT, LEGACY_MAGIC
        from repro.partition.storage import PartitionCorruptError

        path = tmp_path / "old.gp"
        path.write_bytes(
            _LEGACY_HEADER_STRUCT.pack(LEGACY_MAGIC, 0, 7, 3, 10)
        )  # header promises payload bytes that are not there
        with pytest.raises(PartitionCorruptError, match="truncated"):
            load_partition(path)


class TestLegacyNpz:
    def make_legacy(self, path, partition):
        with open(path, "wb") as fh:
            np.savez(
                fh,
                lo=np.asarray([partition.interval.lo], dtype=np.int64),
                hi=np.asarray([partition.interval.hi], dtype=np.int64),
                vertices=partition.vertices,
                indptr=partition.indptr,
                keys=partition.keys,
            )

    def test_legacy_npz_still_loads(self, tmp_path):
        partition = Partition.from_triples(
            Interval(0, 15), [(2, 9, 1), (2, 3, 0), (11, 0, 2)]
        )
        path = tmp_path / "old.npz"
        self.make_legacy(path, partition)
        loaded = load_partition(path)
        assert loaded.interval == partition.interval
        assert np.array_equal(loaded.keys, partition.keys)
        assert list(loaded.edges()) == list(partition.edges())

    def test_legacy_empty_indptr_normalized(self, tmp_path):
        path = tmp_path / "old-empty.npz"
        with open(path, "wb") as fh:
            np.savez(
                fh,
                lo=np.asarray([0], dtype=np.int64),
                hi=np.asarray([7], dtype=np.int64),
                vertices=packed.EMPTY,
                indptr=np.empty(0, dtype=np.int64),
                keys=packed.EMPTY,
            )
        loaded = load_partition(path)
        assert loaded.num_edges == 0
        assert len(loaded.indptr) == 1


class TestStoreCounters:
    def test_bytes_and_ops_counted(self, tmp_path):
        store = PartitionStore(workdir=tmp_path)
        partition = Partition.from_triples(Interval(0, 9), [(1, 2, 0), (4, 1, 1)])
        path = store.write(partition)
        assert path.suffix == ".gp"
        assert store.writes == 1
        assert store.bytes_written == path.stat().st_size > 0
        loaded = store.read(path)
        assert store.reads == 1
        assert store.bytes_read == store.bytes_written
        assert np.array_equal(loaded.keys, partition.keys)
