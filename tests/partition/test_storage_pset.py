"""Tests for partition persistence and the PartitionSet residency logic."""

import pytest

from repro.graph import MemGraph, from_pairs
from repro.partition import (
    Interval,
    Partition,
    PartitionStore,
    load_partition,
    preprocess,
    save_partition,
)


class TestStorage:
    def test_save_load_roundtrip(self, tmp_path):
        p = Partition(
            Interval(2, 6),
            {2: from_pairs([(3, 1), (4, 0)]), 5: from_pairs([(2, 0)])},
        )
        path = tmp_path / "p.npz"
        save_partition(p, path)
        loaded = load_partition(path)
        assert loaded.interval == p.interval
        assert list(loaded.edges()) == list(p.edges())

    def test_empty_partition_roundtrip(self, tmp_path):
        p = Partition(Interval(0, 3), {})
        path = tmp_path / "e.npz"
        save_partition(p, path)
        loaded = load_partition(path)
        assert loaded.num_edges == 0

    def test_store_tracks_io(self, tmp_path):
        store = PartitionStore(workdir=tmp_path)
        p = Partition(Interval(0, 1), {0: from_pairs([(1, 0)])})
        path = store.write(p)
        store.read(path)
        assert store.bytes_written > 0
        assert store.bytes_read > 0
        assert store.timers.get("io") > 0

    def test_memory_store_cannot_allocate(self):
        store = PartitionStore()
        assert not store.disk_backed
        with pytest.raises(RuntimeError):
            store.allocate_path()


@pytest.fixture
def graph():
    return MemGraph.from_edges(
        [(0, 1, 0), (0, 4, 0), (1, 2, 0), (1, 3, 0), (4, 2, 0), (5, 6, 0), (6, 0, 0)],
        label_names=["E"],
    )


class TestPartitionSetResidency:
    def test_in_memory_never_evicts(self, graph):
        pset = preprocess(graph, num_partitions=3)
        assert len(pset.resident_pids()) == 3
        pset.evict(0)
        assert pset.is_resident(0)

    def test_disk_backed_starts_evicted(self, graph, tmp_path):
        pset = preprocess(graph, num_partitions=3, workdir=tmp_path)
        assert pset.resident_pids() == []

    def test_acquire_loads_and_stays(self, graph, tmp_path):
        pset = preprocess(graph, num_partitions=3, workdir=tmp_path)
        p0 = pset.acquire(0)
        assert pset.is_resident(0)
        assert p0.num_edges == pset.edge_count(0)

    def test_delayed_writeback(self, graph, tmp_path):
        """Dirty partitions are written only on eviction (§4.3)."""
        pset = preprocess(graph, num_partitions=2, workdir=tmp_path)
        p0 = pset.acquire(0)
        p0.merge_new_edges(0, from_pairs([(6, 0)]))
        pset.note_mutated(0)
        written_before = pset.store.bytes_written
        # re-acquire without evicting: no I/O
        pset.acquire(0)
        assert pset.store.bytes_written == written_before
        pset.evict(0)
        assert pset.store.bytes_written > written_before
        # the write persisted the new edge
        assert pset.acquire(0).num_edges == p0.num_edges

    def test_clean_partition_eviction_skips_write(self, graph, tmp_path):
        pset = preprocess(graph, num_partitions=2, workdir=tmp_path)
        pset.acquire(0)
        before = pset.store.bytes_written
        pset.evict(0)  # never mutated
        assert pset.store.bytes_written == before

    def test_total_edges_without_loads(self, graph, tmp_path):
        pset = preprocess(graph, num_partitions=3, workdir=tmp_path)
        assert pset.total_edges() == graph.num_edges
        assert pset.resident_pids() == []  # counting didn't load anything

    def test_iter_all_edges_matches_graph(self, graph, tmp_path):
        pset = preprocess(graph, num_partitions=3, workdir=tmp_path)
        assert sorted(pset.iter_all_edges()) == sorted(graph.edges())

    def test_to_memgraph_roundtrip(self, graph):
        pset = preprocess(graph, num_partitions=3)
        back = pset.to_memgraph()
        assert sorted(back.edges()) == sorted(graph.edges())


class TestPartitionSetSplit:
    def test_split_updates_everything(self, graph, tmp_path):
        pset = preprocess(graph, num_partitions=2, workdir=tmp_path)
        edges_before = pset.total_edges()
        parts_before = pset.num_partitions
        pid = 0
        pset.acquire(pid)
        left, right = pset.split(pid)
        assert (left, right) == (pid, pid + 1)
        assert pset.num_partitions == parts_before + 1
        assert pset.vit.num_partitions == parts_before + 1
        assert pset.ddm.num_partitions == parts_before + 1
        assert pset.total_edges() == edges_before
        assert sorted(pset.iter_all_edges()) == sorted(graph.edges())
