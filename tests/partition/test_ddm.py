"""Tests for the destination distribution map (scheduling + termination)."""

import numpy as np
import pytest

from repro.partition import DestinationDistributionMap


def ddm3(counts=None):
    if counts is None:
        counts = [[1, 2, 0], [0, 1, 3], [0, 0, 0]]
    return DestinationDistributionMap(np.asarray(counts, dtype=np.int64))


class TestInitialState:
    def test_initial_deltas_equal_counts(self):
        """Never-co-loaded pairs score their full percentage (§4.3)."""
        ddm = ddm3()
        assert ddm.pair_score(0, 1) == 2  # 2 + 0
        assert ddm.pair_score(1, 2) == 3

    def test_initially_dirty_where_edges_exist(self):
        ddm = ddm3()
        assert ddm.pair_dirty(0, 0)  # self-edges exist
        assert ddm.pair_dirty(0, 1)
        assert not ddm.pair_dirty(2, 2)  # no edges at all
        assert not ddm.pair_dirty(0, 2)  # no cross edges

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            DestinationDistributionMap(np.zeros((2, 3), dtype=np.int64))


class TestSyncAndTermination:
    def test_mark_synced_clears_pair(self):
        ddm = ddm3()
        ddm.mark_synced([0, 1])
        assert not ddm.pair_dirty(0, 1)
        assert not ddm.pair_dirty(0, 0)
        assert ddm.pair_dirty(1, 2)  # untouched pair still dirty

    def test_finished_after_all_pairs_synced(self):
        ddm = ddm3()
        ddm.mark_synced([0, 1])
        ddm.mark_synced([1, 2])
        assert ddm.finished()

    def test_new_edges_redirty_synced_pairs(self):
        ddm = ddm3()
        ddm.mark_synced([0, 1])
        ddm.record_new_edges(0, 1, 5)
        assert ddm.pair_dirty(0, 1)
        assert ddm.pair_score(0, 1) == 5

    def test_internal_edge_dirties_cross_pair(self):
        """A new edge inside p must re-dirty (p, q) pairs even though the
        p->q percentage never changed — the version-counter case from the
        DDM docstring."""
        ddm = ddm3()
        ddm.mark_synced([0, 1])
        ddm.mark_synced([1, 2])
        assert ddm.finished()
        # new edge entirely inside partition 1 (e.g. added while (1, x)
        # was loaded elsewhere)
        ddm.record_new_edges(1, 1, 1)
        # pair (0,1) interacts (counts[0][1] = 2) and p1's version moved
        assert ddm.pair_dirty(0, 1)
        # pair (0,2) still has no interaction
        assert not ddm.pair_dirty(0, 2)

    def test_dirty_pairs_enumeration(self):
        ddm = ddm3()
        pairs = ddm.dirty_pairs()
        assert (0, 1) in pairs
        assert (0, 2) not in pairs
        assert all(p <= q for p, q in pairs)


class TestSplit:
    def test_split_grows_matrices(self):
        ddm = ddm3()
        left = np.asarray([1, 0, 2, 0], dtype=np.int64)
        right = np.asarray([0, 0, 0, 0], dtype=np.int64)
        ddm.split_partition(0, left, right)
        assert ddm.num_partitions == 4
        assert list(ddm.counts[0]) == list(left)
        assert list(ddm.counts[1]) == list(right)

    def test_split_preserves_other_rows(self):
        ddm = ddm3()
        before_row2 = ddm.counts[1].copy()  # old partition 1
        ddm.split_partition(
            0,
            np.zeros(4, dtype=np.int64),
            np.zeros(4, dtype=np.int64),
        )
        after = ddm.counts[2]  # old partition 1 shifted to index 2
        # the column for old partition 0 was duplicated into 0 and 1
        assert after[0] == before_row2[0]
        assert after[1] == before_row2[0]
        assert after[2] == before_row2[1]

    def test_split_keeps_sync_state(self):
        ddm = ddm3()
        ddm.mark_synced([0, 1])
        ddm.split_partition(
            1,
            np.zeros(4, dtype=np.int64),
            np.zeros(4, dtype=np.int64),
        )
        # splitting adds no edges: previously synced pairs stay clean
        assert not ddm.pair_dirty(0, 1)
        assert not ddm.pair_dirty(0, 2)

    def test_set_exact_row(self):
        ddm = ddm3()
        ddm.set_exact_row(0, np.asarray([9, 9, 9], dtype=np.int64))
        assert list(ddm.counts[0]) == [9, 9, 9]
