"""Reconstruction of the paper's Figure 2(a)/(b) partition layout.

Figure 2(a) is a 7-vertex directed graph; Figure 2(b) shows its
partition layout for vertex intervals 0-2, 3-4, 5-6, where each
partition holds the edges whose *source* falls in the interval, sorted
by source then target (§4.1).  This test pins that exact layout.
"""

from repro.graph import MemGraph
from repro.partition import preprocess

#: Figure 2(a): a small directed graph (labels are irrelevant to the
#: layout, so everything carries label 0).
FIGURE2_EDGES = [
    (0, 1, 0),
    (0, 4, 0),
    (1, 2, 0),
    (1, 3, 0),
    (2, 5, 0),
    (3, 0, 0),
    (4, 2, 0),
    (4, 6, 0),
    (5, 6, 0),
    (6, 3, 0),
]


def figure2_pset():
    graph = MemGraph.from_edges(FIGURE2_EDGES, num_vertices=7, label_names=["E"])
    # Pin the paper's exact intervals from Figure 2(b).
    pset = preprocess(graph, intervals=[(0, 2), (3, 4), (5, 6)])
    assert pset.vit.as_tuples() == [(0, 2), (3, 4), (5, 6)]
    return pset


def test_partition_intervals_match_figure():
    figure2_pset()


def test_partition_contents_match_figure():
    pset = figure2_pset()
    expected = {
        0: [(0, 1, 0), (0, 4, 0), (1, 2, 0), (1, 3, 0), (2, 5, 0)],
        1: [(3, 0, 0), (4, 2, 0), (4, 6, 0)],
        2: [(5, 6, 0), (6, 3, 0)],
    }
    for pid, edges in expected.items():
        assert list(pset.acquire(pid).edges()) == edges


def test_edge_lists_sorted_by_target_within_source():
    pset = figure2_pset()
    p0 = pset.acquire(0)
    # vertex 0's list: targets 1 then 4 (sorted on target ids, §4.1)
    from repro.graph import targets_of

    assert list(targets_of(p0.out_keys(0))) == [1, 4]


def test_new_edge_goes_to_source_partition():
    """'When a new edge is found ... it is always added to the partition
    to which the source of the edge belongs' (§4.1)."""
    pset = figure2_pset()
    from repro.graph import from_pairs

    p1 = pset.acquire(1)
    p1.merge_new_edges(3, from_pairs([(6, 0)]))
    pset.note_mutated(1)
    assert (3, 6, 0) in list(p1.edges())
    assert pset.edge_count(1) == 4
