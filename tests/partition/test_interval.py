"""Tests for vertex intervals and the VIT."""

import pytest

from repro.partition import Interval, VertexIntervalTable


class TestInterval:
    def test_contains(self):
        iv = Interval(2, 5)
        assert 2 in iv and 5 in iv
        assert 1 not in iv and 6 not in iv

    def test_len(self):
        assert len(Interval(0, 0)) == 1
        assert len(Interval(3, 7)) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_split_at(self):
        left, right = Interval(0, 9).split_at(3)
        assert (left.lo, left.hi) == (0, 3)
        assert (right.lo, right.hi) == (4, 9)

    def test_split_at_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 9).split_at(9)  # right half would be empty
        with pytest.raises(ValueError):
            Interval(5, 9).split_at(4)


class TestVertexIntervalTable:
    def test_single(self):
        vit = VertexIntervalTable.single(100)
        assert vit.num_partitions == 1
        assert vit.num_vertices == 100

    def test_even_split(self):
        vit = VertexIntervalTable.even(10, 3)
        assert vit.num_partitions == 3
        assert vit.as_tuples() == [(0, 2), (3, 6), (7, 9)]

    def test_even_more_partitions_than_vertices(self):
        vit = VertexIntervalTable.even(2, 5)
        assert vit.num_partitions == 2

    def test_partition_of(self):
        vit = VertexIntervalTable.even(10, 3)
        assert vit.partition_of(0) == 0
        assert vit.partition_of(3) == 1
        assert vit.partition_of(9) == 2

    def test_partition_of_out_of_range(self):
        vit = VertexIntervalTable.even(10, 3)
        with pytest.raises(KeyError):
            vit.partition_of(10)
        with pytest.raises(KeyError):
            vit.partition_of(-1)

    def test_non_contiguous_rejected(self):
        with pytest.raises(ValueError):
            VertexIntervalTable([Interval(0, 2), Interval(4, 6)])

    def test_split_shifts_later_partitions(self):
        vit = VertexIntervalTable.even(12, 3)  # [0-3][4-7][8-11]
        left, right = vit.split(1, 5)
        assert (left, right) == (1, 2)
        assert vit.num_partitions == 4
        assert vit.as_tuples() == [(0, 3), (4, 5), (6, 7), (8, 11)]
        assert vit.partition_of(6) == 2
        assert vit.partition_of(8) == 3

    def test_coverage_invariant_after_splits(self):
        vit = VertexIntervalTable.single(20)
        vit.split(0, 9)
        vit.split(1, 14)
        for v in range(20):
            pid = vit.partition_of(v)
            assert v in vit.interval(pid)
