"""Tests for the Partition data structure."""

import pytest

from repro.graph import from_pairs, pack_one
from repro.partition import Interval, Partition, VertexIntervalTable


@pytest.fixture
def partition():
    return Partition(
        Interval(0, 4),
        {
            0: from_pairs([(1, 0), (4, 0)]),
            1: from_pairs([(2, 0), (3, 0)]),
            4: from_pairs([(2, 0)]),
        },
    )


class TestPartition:
    def test_counts(self, partition):
        assert partition.num_edges == 5
        assert partition.num_source_vertices == 3

    def test_vertex_outside_interval_rejected(self):
        with pytest.raises(ValueError):
            Partition(Interval(0, 2), {5: from_pairs([(0, 0)])})

    def test_out_keys_missing_vertex(self, partition):
        assert len(partition.out_keys(3)) == 0

    def test_edges_iteration_sorted(self, partition):
        edges = list(partition.edges())
        assert edges == [(0, 1, 0), (0, 4, 0), (1, 2, 0), (1, 3, 0), (4, 2, 0)]

    def test_merge_new_edges_dedups(self, partition):
        added = partition.merge_new_edges(0, from_pairs([(1, 0), (5, 0)]))
        assert added == 1  # (1,0) already exists
        assert partition.num_edges == 6

    def test_merge_new_edges_empty(self, partition):
        assert partition.merge_new_edges(0, from_pairs([])) == 0

    def test_merge_outside_interval_rejected(self, partition):
        with pytest.raises(ValueError):
            partition.merge_new_edges(9, from_pairs([(1, 0)]))

    def test_out_degree_file(self, partition):
        assert partition.out_degree_file() == {0: 2, 1: 2, 4: 1}

    def test_destination_counts(self, partition):
        vit = VertexIntervalTable([Interval(0, 2), Interval(3, 4)])
        counts = partition.destination_counts(vit)
        # targets: 1,4,2,3,2 -> interval0: {1,2,2}=3, interval1: {4,3}=2
        assert list(counts) == [3, 2]

    def test_split(self, partition):
        left, right = partition.split(0)
        assert left.interval == Interval(0, 0)
        assert right.interval == Interval(1, 4)
        assert left.num_edges == 2
        assert right.num_edges == 3

    def test_median_split_point_balances_edges(self, partition):
        mid = partition.median_split_point()
        left, right = partition.split(mid)
        assert abs(left.num_edges - right.num_edges) <= partition.num_edges // 2

    def test_median_split_unsplittable(self):
        p = Partition(Interval(3, 3), {3: from_pairs([(0, 0)])})
        with pytest.raises(ValueError):
            p.median_split_point()

    def test_from_triples(self):
        p = Partition.from_triples(Interval(0, 1), [(0, 3, 1), (0, 3, 1), (1, 0, 0)])
        assert p.num_edges == 2
        assert p.out_keys(0)[0] == pack_one(3, 1)
