"""Pipelined supersteps (DESIGN.md §10): equivalence, crash safety, telemetry.

The contract under test: turning the I/O pipeline on changes *when* disk
work happens, never *what* is computed or what survives a crash.  The
equivalence matrix runs the same workload with the pipeline off and on,
with and without a memory budget, and across an injected crash during an
in-flight async flush — every variant must produce the byte-identical
closure.  The misprediction test forces the scheduler's lookahead wrong
and checks that speculative loads are cancelled/evicted and accounted.
"""

import numpy as np
import pytest

from repro.engine.engine import GraspanEngine
from repro.engine.pipeline import IoPipeline
from repro.engine.scheduler import Scheduler
from repro.frontend.graphs import pointer_graph
from repro.grammar.builtin import pointsto_grammar_extended
from repro.util.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.workloads.programs import workload_by_name


@pytest.fixture(scope="module")
def graph():
    workload = workload_by_name("postgresql", scale=0.05)
    return pointer_graph(workload.compile())


@pytest.fixture(scope="module")
def grammar():
    return pointsto_grammar_extended()


@pytest.fixture(scope="module")
def max_edges(graph):
    # Small partitions -> tens of supersteps -> real prefetch traffic.
    return max(100, graph.num_edges // 2)


def run_closure(graph, grammar, max_edges, workdir, **kwargs):
    resume = kwargs.pop("resume", False)
    engine = GraspanEngine(
        grammar,
        max_edges_per_partition=max_edges,
        workdir=workdir,
        **kwargs,
    )
    return engine.run(graph, resume=resume)


@pytest.fixture(scope="module")
def sequential(graph, grammar, max_edges, tmp_path_factory):
    workdir = tmp_path_factory.mktemp("sequential")
    computation = run_closure(
        graph, grammar, max_edges, workdir, pipeline=False
    )
    closure = computation.to_memgraph()
    return {
        "src": np.asarray(closure.src).copy(),
        "keys": np.asarray(closure.keys).copy(),
        "supersteps": computation.stats.num_supersteps,
        "checkpoints": computation.stats.checkpoints_written,
    }


def assert_same_closure(reference, computation):
    closure = computation.to_memgraph()
    assert np.array_equal(reference["src"], np.asarray(closure.src))
    assert np.array_equal(reference["keys"], np.asarray(closure.keys))


class TestEquivalenceMatrix:
    def test_pipeline_defaults_on_with_workdir(
        self, graph, grammar, max_edges, tmp_path
    ):
        computation = run_closure(graph, grammar, max_edges, tmp_path)
        assert computation.stats.pipeline_enabled

    def test_pipeline_off_without_workdir(self, graph, grammar):
        computation = GraspanEngine(grammar).run(graph)
        assert not computation.stats.pipeline_enabled

    def test_pipeline_requires_workdir(self, grammar):
        with pytest.raises(ValueError, match="pipeline requires a workdir"):
            GraspanEngine(grammar, pipeline=True)

    def test_pipelined_closure_is_byte_identical(
        self, graph, grammar, max_edges, sequential, tmp_path
    ):
        computation = run_closure(
            graph, grammar, max_edges, tmp_path, pipeline=True
        )
        assert_same_closure(sequential, computation)
        stats = computation.stats
        assert stats.pipeline_enabled
        assert stats.checkpoints_written == stats.num_supersteps + 1
        # The pipeline must see the same schedule as the sequential run:
        # speculative residency is hidden from the scheduler tie-break.
        assert stats.num_supersteps == sequential["supersteps"]

    def test_pipelined_closure_identical_under_memory_budget(
        self, graph, grammar, max_edges, sequential, tmp_path
    ):
        budgets = {}
        for mode, pipeline in (("off", False), ("on", True)):
            computation = run_closure(
                graph,
                grammar,
                max_edges,
                tmp_path / mode,
                pipeline=pipeline,
                memory_budget=1 << 20,
            )
            assert_same_closure(sequential, computation)
            budgets[mode] = computation.stats
        on = budgets["on"]
        # Speculative loads are charged against the budget up front, so
        # the budgeted overshoot bound survives the pipeline.
        assert (
            on.peak_resident_bytes
            <= (1 << 20) + on.max_partition_bytes
        )

    def test_per_superstep_records_carry_pipeline_deltas(
        self, graph, grammar, max_edges, tmp_path
    ):
        computation = run_closure(
            graph, grammar, max_edges, tmp_path, pipeline=True
        )
        records = computation.stats.supersteps
        assert sum(r.prefetch_issued for r in records) == (
            computation.stats.prefetch_issued
        )
        assert all(
            r.prefetch_hits + r.prefetch_wasted <= r.prefetch_issued + 2
            for r in records
        )


class TestCrashDuringAsyncFlush:
    def test_crash_mid_flush_resumes_byte_identical(
        self, graph, grammar, max_edges, sequential, tmp_path
    ):
        """Crash inside an in-flight background write, then resume.

        The async flush runs on the I/O thread; the InjectedCrash is
        captured by its future and must re-raise at the commit drain —
        before the manifest could replace its predecessor.  The torn
        ``*.tmp`` is scrubbed on resume and the closure is unchanged.
        """
        crashed = 0
        for write_index in (6, 11):
            workdir = tmp_path / f"flush-crash-{write_index}"
            injector = FaultInjector(FaultPlan(crash_at_write=write_index))
            with pytest.raises(InjectedCrash):
                run_closure(
                    graph,
                    grammar,
                    max_edges,
                    workdir,
                    pipeline=True,
                    fault_injector=injector,
                )
            crashed += 1
            assert list(workdir.glob("*.tmp")), "torn tmp file expected"
            resumed = run_closure(
                graph, grammar, max_edges, workdir, pipeline=True, resume=True
            )
            assert_same_closure(sequential, resumed)
            assert resumed.stats.resumed_from_superstep is not None
        assert crashed == 2

    def test_crash_after_commit_watermark_matches_sequential(
        self, graph, grammar, max_edges, sequential, tmp_path
    ):
        """The lagged commit preserves the occurrence→watermark mapping.

        Commit #N (1-indexed) checkpoints superstep N-1 whether the
        flush ran synchronously or a superstep behind.
        """
        commit = 4
        workdir = tmp_path / "post-commit-crash"
        injector = FaultInjector(FaultPlan(crash_after_commit=commit))
        with pytest.raises(InjectedCrash):
            run_closure(
                graph,
                grammar,
                max_edges,
                workdir,
                pipeline=True,
                fault_injector=injector,
            )
        resumed = run_closure(
            graph, grammar, max_edges, workdir, pipeline=True, resume=True
        )
        assert_same_closure(sequential, resumed)
        assert resumed.stats.resumed_from_superstep == commit - 1
        assert (
            resumed.stats.num_supersteps
            <= sequential["supersteps"] - (commit - 1)
        )


class _WrongPeekScheduler(Scheduler):
    """Scheduler whose lookahead deliberately predicts a wrong pair.

    ``peek_pair`` returns the *last* dirty pair instead of the first-best
    one, so almost every prefetch is a misprediction the engine must
    cancel or evict.
    """

    def peek_pair(self, ddm, resident_pids, assume_synced=None):
        ps, qs, _ = ddm.pair_scores(assume_synced=assume_synced)
        if len(ps) == 0:
            return None
        return int(ps[-1]), int(qs[-1])


class TestMisprediction:
    def test_mispredicted_prefetches_are_evicted_and_accounted(
        self, graph, grammar, max_edges, sequential, tmp_path
    ):
        computation = run_closure(
            graph,
            grammar,
            max_edges,
            tmp_path,
            pipeline=True,
            scheduler=_WrongPeekScheduler(),
        )
        # Wrong guesses never hurt correctness...
        assert_same_closure(sequential, computation)
        stats = computation.stats
        # ...but they are all settled: every speculative load was either
        # consumed or reconciled away, and the wasted ones were counted.
        assert stats.prefetch_issued > 0
        assert stats.prefetch_wasted > 0
        assert (
            stats.prefetch_hits + stats.prefetch_wasted
            <= stats.prefetch_issued
        )
        # Mispredicted residents are evicted rather than left squatting.
        assert stats.evictions > 0


class TestIoPipelineUnit:
    def test_overlap_accounting(self):
        with IoPipeline() as io:
            future = io.submit(sum, (1, 2, 3))
            assert io.wait_load(future) == 6
            assert io.busy_seconds > 0.0
            assert io.load_wait_seconds >= 0.0
            assert 0.0 <= io.overlap_fraction <= 1.0

    def test_submit_after_close_raises(self):
        io = IoPipeline()
        io.close()
        with pytest.raises(RuntimeError, match="closed"):
            io.submit(sum, (1, 2))

    def test_snapshot_keys_are_stable(self):
        with IoPipeline() as io:
            snap = io.snapshot()
        assert set(snap) == {
            "busy_seconds",
            "load_wait_seconds",
            "flush_wait_seconds",
            "prefetch_issued",
            "prefetch_hits",
            "prefetch_wasted",
        }
