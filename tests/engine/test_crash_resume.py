"""Crash/resume integration: the tentpole durability guarantees.

The contract under test (DESIGN.md §9): a checkpointed out-of-core run
killed at *any* point — after any manifest commit, before a commit, or
mid-partition-write with a torn tmp file — resumes from the last
committed superstep watermark and produces a closure byte-identical to
an uninterrupted run.  Corrupted partition bytes are detected at load,
never silently joined; a SIGKILLed pool worker is respawned and the
superstep still completes.

The workload is the scaled-down ``postgresql_like`` pointer graph used
elsewhere in the engine tests, partitioned small enough to force many
supersteps so the crash matrix has real boundaries to hit.
"""

import os

import numpy as np
import pytest

from repro.engine.checkpoint import CheckpointError
from repro.engine.engine import GraspanEngine
from repro.frontend.graphs import pointer_graph
from repro.grammar.builtin import pointsto_grammar_extended
from repro.partition.storage import PartitionCorruptError
from repro.util.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.workloads.programs import workload_by_name


@pytest.fixture(scope="module")
def graph():
    workload = workload_by_name("postgresql", scale=0.05)
    return pointer_graph(workload.compile())


@pytest.fixture(scope="module")
def grammar():
    return pointsto_grammar_extended()


@pytest.fixture(scope="module")
def max_edges(graph):
    # Small partitions -> tens of supersteps -> a real crash matrix.
    return max(100, graph.num_edges // 2)


def make_engine(grammar, max_edges, workdir, injector=None, **kwargs):
    return GraspanEngine(
        grammar,
        max_edges_per_partition=max_edges,
        workdir=workdir,
        fault_injector=injector,
        **kwargs,
    )


@pytest.fixture(scope="module")
def baseline(graph, grammar, max_edges, tmp_path_factory):
    workdir = tmp_path_factory.mktemp("baseline")
    computation = make_engine(grammar, max_edges, workdir).run(graph)
    closure = computation.to_memgraph()
    return {
        "src": np.asarray(closure.src).copy(),
        "keys": np.asarray(closure.keys).copy(),
        "supersteps": computation.stats.num_supersteps,
        "checkpoints": computation.stats.checkpoints_written,
    }


def assert_same_closure(baseline, computation):
    closure = computation.to_memgraph()
    assert np.array_equal(baseline["src"], np.asarray(closure.src))
    assert np.array_equal(baseline["keys"], np.asarray(closure.keys))


class TestCrashMatrix:
    def test_crash_after_every_commit_resumes_byte_identical(
        self, graph, grammar, max_edges, baseline, tmp_path
    ):
        """Kill the run after every single manifest commit and resume.

        Commit #1 is the post-preprocess checkpoint (superstep 0);
        commit #K+1 lands after superstep K.  Every resume must
        reproduce the uninterrupted closure exactly and skip the
        already-committed supersteps.
        """
        assert baseline["checkpoints"] == baseline["supersteps"] + 1
        for commit in range(1, baseline["checkpoints"] + 1):
            workdir = tmp_path / f"crash-{commit}"
            injector = FaultInjector(FaultPlan(crash_after_commit=commit))
            with pytest.raises(InjectedCrash):
                make_engine(grammar, max_edges, workdir, injector).run(graph)
            resumed = make_engine(grammar, max_edges, workdir).run(
                graph, resume=True
            )
            assert_same_closure(baseline, resumed)
            completed_before_crash = commit - 1
            assert resumed.stats.resumed_from_superstep == completed_before_crash
            # The committed supersteps are genuinely skipped on resume.
            # The resumed scheduler starts with a cold in-memory partition
            # cache, so its pair order may differ slightly from the
            # uninterrupted run's tail — allow a small scheduling slack.
            assert (
                resumed.stats.num_supersteps
                <= baseline["supersteps"] - completed_before_crash + 2
            )

    def test_crash_before_commit_falls_back_to_previous_watermark(
        self, graph, grammar, max_edges, baseline, tmp_path
    ):
        workdir = tmp_path / "precommit"
        injector = FaultInjector(FaultPlan(crash_before_commit=4))
        with pytest.raises(InjectedCrash):
            make_engine(grammar, max_edges, workdir, injector).run(graph)
        resumed = make_engine(grammar, max_edges, workdir).run(graph, resume=True)
        assert_same_closure(baseline, resumed)
        # Commit #4 never landed, so the watermark is superstep 2
        # (commit #3 = checkpoint after superstep 2).
        assert resumed.stats.resumed_from_superstep == 2

    @pytest.mark.parametrize("write_index", [1, 4, 9])
    def test_crash_mid_write_leaves_torn_tmp_and_resumes(
        self, graph, grammar, max_edges, baseline, tmp_path, write_index
    ):
        workdir = tmp_path / f"torn-{write_index}"
        injector = FaultInjector(FaultPlan(crash_at_write=write_index))
        with pytest.raises(InjectedCrash):
            make_engine(grammar, max_edges, workdir, injector).run(graph)
        assert list(workdir.glob("*.tmp")), "crash must leave a torn tmp file"
        resumed = make_engine(grammar, max_edges, workdir).run(graph, resume=True)
        assert_same_closure(baseline, resumed)
        assert resumed.stats.tmp_scrubbed >= 1


class TestResumeSemantics:
    def test_resume_of_finished_run_is_a_noop_with_same_closure(
        self, graph, grammar, max_edges, baseline, tmp_path
    ):
        workdir = tmp_path / "finished"
        make_engine(grammar, max_edges, workdir).run(graph)
        resumed = make_engine(grammar, max_edges, workdir).run(graph, resume=True)
        assert_same_closure(baseline, resumed)
        assert resumed.stats.num_supersteps == 0
        assert resumed.stats.resumed_from_superstep == baseline["supersteps"]

    def test_resume_into_empty_workdir_runs_fresh(
        self, graph, grammar, max_edges, baseline, tmp_path
    ):
        resumed = make_engine(grammar, max_edges, tmp_path / "fresh").run(
            graph, resume=True
        )
        assert_same_closure(baseline, resumed)
        assert resumed.stats.resumed_from_superstep is None

    def test_resume_under_different_grammar_refused(
        self, graph, grammar, max_edges, tmp_path
    ):
        from repro.grammar.builtin import pointsto_grammar

        workdir = tmp_path / "mismatch"
        injector = FaultInjector(FaultPlan(crash_after_commit=2))
        with pytest.raises(InjectedCrash):
            make_engine(grammar, max_edges, workdir, injector).run(graph)
        other = make_engine(pointsto_grammar(), max_edges, workdir)
        with pytest.raises(CheckpointError, match="different grammar"):
            other.run(graph, resume=True)

    def test_resume_under_different_graph_refused(
        self, graph, grammar, max_edges, tmp_path
    ):
        workdir = tmp_path / "othergraph"
        injector = FaultInjector(FaultPlan(crash_after_commit=2))
        with pytest.raises(InjectedCrash):
            make_engine(grammar, max_edges, workdir, injector).run(graph)
        other_graph = pointer_graph(
            workload_by_name("httpd", scale=0.1).compile()
        )
        with pytest.raises(CheckpointError, match="different input graph"):
            make_engine(grammar, max_edges, workdir).run(other_graph, resume=True)

    def test_checkpoint_requires_workdir(self, grammar):
        with pytest.raises(ValueError, match="workdir"):
            GraspanEngine(grammar, checkpoint=True)

    def test_no_checkpoint_writes_no_manifest(
        self, graph, grammar, max_edges, tmp_path
    ):
        workdir = tmp_path / "nockpt"
        computation = make_engine(
            grammar, max_edges, workdir, checkpoint=False
        ).run(graph)
        assert not (workdir / "manifest.json").exists()
        assert computation.stats.checkpoints_written == 0
        assert not computation.stats.checkpoint_enabled


class TestCorruptionDetection:
    def test_flipped_payload_byte_never_silently_joined(
        self, graph, grammar, max_edges, tmp_path
    ):
        """A bit flip in a committed partition file must surface as
        PartitionCorruptError on the next load — not as wrong edges."""
        workdir = tmp_path / "flip"
        injector = FaultInjector(FaultPlan(flip_byte_at_write=1))
        with pytest.raises(PartitionCorruptError, match="checksum mismatch"):
            make_engine(grammar, max_edges, workdir, injector).run(graph)
        assert injector.flipped_writes == 1


_REAL_WORKER_JOIN = None


def _slow_worker_join(task):
    """Module-level (picklable) wrapper that makes pool tasks slow enough
    for the dead-worker poll to observe the damage deterministically."""
    import time

    time.sleep(0.3)
    return _REAL_WORKER_JOIN(task)


@pytest.fixture
def chain_setup():
    """A chain graph + ``R ::= E E`` grammar big enough for the pool path."""
    import repro.engine.parallel as par
    from repro import Grammar
    from repro.engine.join import CsrView
    from repro.graph import packed

    if not par.shared_memory_available():
        pytest.skip("process backend unavailable")
    g = Grammar()
    g.add_constraint("R", "E", "E")
    frozen = g.freeze()
    e_label = frozen.names.index("E")
    n = 600
    adjacency = {
        i: packed.pack(np.array([i + 1]), np.array([e_label]))
        for i in range(n)
    }
    view = CsrView.from_dict(adjacency)
    serial = par.make_backend("serial", frozen)
    serial.begin_superstep()
    expected = serial.join_views(view, [view])
    assert len(expected[0]) == n - 1  # R edges i -> i+2
    return frozen, view, expected


class TestWorkerRecovery:
    def test_killed_pool_worker_run_still_completes_correctly(
        self, graph, grammar, max_edges, baseline, tmp_path
    ):
        """Engine level: a SIGKILLed worker never corrupts the closure.

        Whether the map is saved by the pool's own repopulation or by a
        full backend respawn is timing-dependent; the invariant is the
        run completes with the exact baseline closure either way."""
        from repro.engine.parallel import shared_memory_available

        if not shared_memory_available():
            pytest.skip("process backend unavailable")
        injector = FaultInjector(FaultPlan(kill_worker_at_dispatch=1))
        computation = make_engine(
            grammar,
            max_edges,
            tmp_path / "killer",
            injector,
            num_threads=2,
            parallel_backend="process",
        ).run(graph)
        assert injector.killed_workers == 1
        assert not computation.stats.backend_degraded
        assert_same_closure(baseline, computation)

    def test_dead_worker_is_detected_and_pool_respawned(
        self, chain_setup, monkeypatch
    ):
        """Backend level, deterministic: tasks slow enough that the kill
        is always observed mid-map, forcing the respawn-and-retry path."""
        global _REAL_WORKER_JOIN
        import repro.engine.parallel as par

        frozen, view, expected = chain_setup
        _REAL_WORKER_JOIN = par._worker_join
        monkeypatch.setattr(par, "_worker_join", _slow_worker_join)
        backend = par.make_backend("process", frozen, num_workers=2)
        backend.injector = FaultInjector(FaultPlan(kill_worker_at_dispatch=1))
        backend.respawn_base_delay = 0.0
        try:
            backend.begin_superstep()
            result = backend.join_views(view, [view])
            assert backend.worker_respawns >= 1
            assert not backend._degraded
            assert np.array_equal(result[0], expected[0])
            assert np.array_equal(result[1], expected[1])
            assert backend.telemetry.worker_respawns >= 1
        finally:
            backend.close()

    def test_respawn_exhaustion_degrades_to_inline_joins(
        self, chain_setup, monkeypatch
    ):
        """When every respawn finds the pool damaged again, the backend
        gives up loudly and completes the join inline."""
        global _REAL_WORKER_JOIN
        import repro.engine.parallel as par

        frozen, view, expected = chain_setup
        _REAL_WORKER_JOIN = par._worker_join
        monkeypatch.setattr(par, "_worker_join", _slow_worker_join)
        monkeypatch.setattr(
            par.ProcessJoinBackend, "_pool_damaged", lambda self, pids: True
        )
        backend = par.make_backend("process", frozen, num_workers=2)
        backend.max_respawns = 1
        backend.respawn_base_delay = 0.0
        try:
            backend.begin_superstep()
            result = backend.join_views(view, [view])
            assert backend._degraded
            assert backend.telemetry.backend_degraded
            assert "degraded" in backend.display_name
            assert np.array_equal(result[0], expected[0])
            assert np.array_equal(result[1], expected[1])
        finally:
            backend.close()


class TestSeededFaultMatrix:
    def test_seeded_random_fault_is_survivable_or_detected(
        self, graph, grammar, max_edges, baseline, tmp_path
    ):
        """The CI fault-tolerance job's entry point: one seeded fault per
        run (REPRO_FAULT_SEED).  Crashes must be resumable, transient
        errnos absorbed, corruption detected — never a wrong closure."""
        seed = int(os.environ.get("REPRO_FAULT_SEED", "1"))
        plan = FaultPlan.random(seed)
        workdir = tmp_path / "seeded"
        injector = FaultInjector(plan)
        try:
            computation = make_engine(grammar, max_edges, workdir, injector).run(
                graph
            )
        except InjectedCrash:
            computation = make_engine(grammar, max_edges, workdir).run(
                graph, resume=True
            )
            # A crash during preprocess predates the first manifest
            # commit; the resume is then legitimately a fresh run.
            if injector.commits > 0:
                assert computation.stats.resumed_from_superstep is not None
        except PartitionCorruptError:
            assert plan.flip_byte_at_write is not None
            return  # detection is the guarantee for corruption faults
        assert_same_closure(baseline, computation)
        if plan.errno_at_write or plan.errno_at_read:
            assert computation.stats.io_retries >= 1
