"""Tests for the pluggable join backends (serial / thread / process).

The contract: chunking and process boundaries must not change the
result — every backend produces the same closure, bit for bit, because
duplicate elimination happens downstream during the sorted merge.
"""

import numpy as np
import pytest

import repro.engine.parallel as parallel
from repro.engine import GraspanEngine, naive_closure
from repro.engine.parallel import (
    JoinTelemetry,
    ProcessJoinBackend,
    SerialJoinBackend,
    ThreadJoinBackend,
    make_backend,
    plan_row_chunks,
    plan_span_chunks,
    shared_memory_available,
)
from repro.frontend import pointer_graph
from repro.grammar.builtin import pointsto_grammar_extended
from repro.workloads import httpd_like

#: (parallel_backend, num_threads) triples every identity test runs.
CONFIGS = [("serial", 1), ("thread", 3), ("process", 2)]


@pytest.fixture(scope="module")
def httpd_pointer():
    """The httpd-like pointer graph + grammar, compiled once."""
    workload = httpd_like(scale=0.5)
    return pointer_graph(workload.compile()), pointsto_grammar_extended()


def run_counts(graph, grammar, backend, threads, workdir=None, max_edges=None):
    engine = GraspanEngine(
        grammar,
        max_edges_per_partition=max_edges,
        workdir=workdir,
        num_threads=threads,
        parallel_backend=backend,
    )
    comp = engine.run(graph)
    return comp.count_by_label(), comp.stats


class TestBackendIdentity:
    def test_in_memory_identical(self, httpd_pointer):
        graph, grammar = httpd_pointer
        results = {}
        for backend, threads in CONFIGS:
            counts, stats = run_counts(graph, grammar, backend, threads)
            results[backend] = counts
            assert stats.supersteps[-1].backend.startswith(backend)
        assert results["serial"] == results["thread"] == results["process"]
        assert sum(results["serial"].values()) > graph.num_edges

    def test_disk_backed_identical(self, httpd_pointer, tmp_path):
        graph, grammar = httpd_pointer
        max_edges = max(1000, graph.num_edges // 4)
        results = {}
        for backend, threads in CONFIGS:
            counts, _ = run_counts(
                graph,
                grammar,
                backend,
                threads,
                workdir=tmp_path / backend,
                max_edges=max_edges,
            )
            results[backend] = counts
        assert results["serial"] == results["thread"] == results["process"]

    def test_process_fallback_when_no_shared_memory(
        self, httpd_pointer, monkeypatch
    ):
        """No shared memory -> thread substitution, identical result."""
        graph, grammar = httpd_pointer
        serial, _ = run_counts(graph, grammar, "serial", 1)
        monkeypatch.setattr(parallel, "shared_memory_available", lambda: False)
        counts, stats = run_counts(graph, grammar, "process", 2)
        assert counts == serial
        assert all("fallback" in r.backend for r in stats.supersteps)

    def test_telemetry_recorded(self, httpd_pointer):
        graph, grammar = httpd_pointer
        _, stats = run_counts(graph, grammar, "thread", 3)
        par = stats.parallelism_summary()
        assert par["backend"] == "thread"
        assert par["chunks"] > 0
        assert par["worst_chunk_balance"] >= 1.0
        assert par["pool_s"] > 0.0
        assert stats.summary()["backend"] == "thread"


class TestProcessBackend:
    @pytest.mark.skipif(
        not shared_memory_available(), reason="no POSIX shared memory"
    )
    def test_pool_released_on_engine_error(self, reach, chain_graph):
        """The context manager shuts the pool down even when run() raises."""
        engine = GraspanEngine(
            reach,
            parallel_backend="process",
            num_threads=2,
            max_supersteps=1,
            max_edges_per_partition=3,
        )
        with pytest.raises(RuntimeError, match="max_supersteps"):
            engine.run(chain_graph)
        # a fresh run on the same engine object still works
        engine.max_supersteps = 1_000_000
        comp = engine.run(chain_graph)
        assert comp.num_edges > chain_graph.num_edges

    @pytest.mark.skipif(
        not shared_memory_available(), reason="no POSIX shared memory"
    )
    def test_degrades_inline_on_publish_failure(self, reach, monkeypatch):
        """A mid-run shm failure degrades to inline joins, not a crash."""
        e = reach.label_id("E")
        edges = [(i, i + 1, e) for i in range(300)]
        adjacency = {}
        for s, d, l in edges:
            adjacency.setdefault(s, []).append((d, l))
        from repro.graph import from_pairs, packed

        adjacency = {v: from_pairs(p) for v, p in adjacency.items()}
        backend = ProcessJoinBackend(reach, num_workers=2)

        def boom(arrays):
            raise OSError("no shm")

        monkeypatch.setattr(backend, "_publish_arrays", boom)
        with backend:
            from repro.engine.superstep import run_superstep

            result = run_superstep(adjacency, reach, backend=backend)
        assert backend._degraded
        assert backend.telemetry.backend == "process(degraded)"
        out = {
            (int(v), int(k))
            for v, keys in result.adjacency.items()
            for k in keys
        }
        expected = {
            (s, (d << packed.LABEL_BITS) | l)
            for s, d, l in naive_closure(edges, reach)
        }
        assert out == expected


class TestChunkPlanners:
    def test_row_chunks_cover_all_rows(self):
        indptr = np.asarray([0, 5, 6, 7, 20, 21], dtype=np.int64)
        chunks = plan_row_chunks(indptr, 3)
        assert chunks[0][0] == 0 and chunks[-1][1] == 5
        for (_, a_hi), (b_lo, _) in zip(chunks, chunks[1:]):
            assert a_hi == b_lo

    def test_row_chunks_edge_balanced(self):
        # 100 rows, one edge each: 4 chunks of 25 rows
        indptr = np.arange(101, dtype=np.int64)
        chunks = plan_row_chunks(indptr, 4)
        assert chunks == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_row_chunks_empty(self):
        assert plan_row_chunks(np.zeros(1, dtype=np.int64), 4) == []
        assert plan_row_chunks(np.asarray([0, 0, 0], dtype=np.int64), 4) == []

    def test_span_chunks_partition_the_range(self):
        chunks = plan_span_chunks(10, 3)
        assert chunks[0][0] == 0 and chunks[-1][1] == 10
        assert sum(hi - lo for lo, hi in chunks) == 10

    def test_span_chunks_empty_and_tiny(self):
        assert plan_span_chunks(0, 4) == []
        assert plan_span_chunks(2, 8) == [(0, 1), (1, 2)]


class TestTelemetry:
    def test_balance_of_even_chunks(self):
        t = JoinTelemetry()
        t.record_chunks([10, 10, 10])
        assert t.chunk_balance == 1.0

    def test_balance_of_skewed_chunks(self):
        t = JoinTelemetry()
        t.record_chunks([10, 30])
        assert t.chunk_balance == pytest.approx(1.5)

    def test_balance_without_chunks(self):
        assert JoinTelemetry().chunk_balance == 1.0

    def test_speedup_estimate(self):
        t = JoinTelemetry(pool_seconds=2.0, serial_estimate_seconds=6.0)
        assert t.speedup_estimate == pytest.approx(3.0)
        assert JoinTelemetry().speedup_estimate == 1.0


class TestMakeBackend:
    def test_auto_selects_serial_then_thread(self, reach):
        assert isinstance(make_backend(None, reach, 1), SerialJoinBackend)
        assert isinstance(make_backend(None, reach, 4), ThreadJoinBackend)

    def test_unknown_name_rejected(self, reach):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            make_backend("gpu", reach, 2)

    def test_engine_rejects_unknown_backend(self, reach):
        with pytest.raises(ValueError, match="unknown parallel_backend"):
            GraspanEngine(reach, parallel_backend="gpu")

    def test_process_fallback_labeled(self, reach, monkeypatch):
        monkeypatch.setattr(parallel, "shared_memory_available", lambda: False)
        backend = make_backend("process", reach, 2)
        assert isinstance(backend, ThreadJoinBackend)
        assert backend.display_name == "thread(process-fallback)"

    def test_backends_are_context_managers(self, reach):
        for name in ("serial", "thread"):
            with make_backend(name, reach, 2) as backend:
                assert backend.telemetry is not None
