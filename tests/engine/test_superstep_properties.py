"""Property-based tests for superstep invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import naive_closure, run_superstep
from repro.graph import from_pairs, packed
from repro.grammar import dyck_grammar, reachability_grammar

DYCK = dyck_grammar()
REACH = reachability_grammar()


@st.composite
def edge_sets(draw, num_labels=2, max_vertices=10, max_edges=18):
    n = draw(st.integers(2, max_vertices))
    count = draw(st.integers(1, max_edges))
    return [
        (
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, num_labels - 1)),
        )
        for _ in range(count)
    ]


def adjacency_of(edges):
    by_src = {}
    for s, d, l in edges:
        by_src.setdefault(s, []).append((d, l))
    return {v: from_pairs(pairs) for v, pairs in by_src.items()}


def edges_of(result):
    out = set()
    for v, keys in result.adjacency.items():
        for d, l in packed.to_pairs(keys):
            out.add((v, d, l))
    return out


@given(edge_sets())
@settings(max_examples=50, deadline=None)
def test_superstep_equals_oracle(edges):
    result = run_superstep(adjacency_of(edges), DYCK)
    assert result.completed
    assert edges_of(result) == naive_closure(edges, DYCK)


@given(edge_sets())
@settings(max_examples=50, deadline=None)
def test_adjacency_stays_sorted_unique(edges):
    result = run_superstep(adjacency_of(edges), DYCK)
    for keys in result.adjacency.values():
        assert np.all(np.diff(keys) > 0)  # strictly increasing = sorted+unique


@given(edge_sets())
@settings(max_examples=50, deadline=None)
def test_original_edges_preserved(edges):
    result = run_superstep(adjacency_of(edges), DYCK)
    assert set(edges) <= edges_of(result)


@given(edge_sets())
@settings(max_examples=40, deadline=None)
def test_added_count_consistent(edges):
    result = run_superstep(adjacency_of(edges), DYCK)
    assert result.edges_added == len(edges_of(result)) - len(set(edges))


@given(edge_sets(num_labels=1), st.integers(5, 60))
@settings(max_examples=30, deadline=None)
def test_memory_limited_run_is_sound_prefix(edges, limit):
    """Stopping early must never invent edges."""
    edges = [(s, d, 0) for s, d, _ in edges]
    result = run_superstep(adjacency_of(edges), REACH, memory_limit_edges=limit)
    oracle = naive_closure(edges, REACH)
    assert edges_of(result) <= oracle
    if result.completed:
        assert edges_of(result) == oracle
