"""Tests for EngineStats (the Table 5 / Figure 4 raw material)."""

import pytest

from repro.engine.stats import EngineStats, SuperstepRecord


def record(edges_added, pair=(0, 1)):
    return SuperstepRecord(
        pair=pair,
        iterations=2,
        edges_added=edges_added,
        seconds=0.1,
        completed=True,
        num_partitions_after=2,
    )


class TestEngineStats:
    def test_growth_factor(self):
        s = EngineStats(original_edges=100, final_edges=450)
        assert s.growth_factor == pytest.approx(4.5)

    def test_growth_factor_empty_graph(self):
        assert EngineStats().growth_factor == 0.0

    def test_total_edges_added(self):
        s = EngineStats(original_edges=10)
        s.supersteps = [record(5), record(3), record(0)]
        assert s.total_edges_added == 8
        assert s.num_supersteps == 3

    def test_added_fraction_series(self):
        s = EngineStats(original_edges=10)
        s.supersteps = [record(5), record(20)]
        assert s.added_fraction_series() == [0.5, 2.0]

    def test_cumulative_added_fraction_is_monotone(self):
        s = EngineStats(original_edges=10)
        s.supersteps = [record(5), record(2), record(0), record(3)]
        cumulative = s.cumulative_added_fraction()
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(1.0)

    def test_summary_keys(self):
        s = EngineStats(original_edges=10, final_edges=20, num_vertices=5)
        summary = s.summary()
        for key in ("edges_before", "edges_after", "growth", "supersteps",
                    "compute_s", "io_s", "total_s"):
            assert key in summary
        assert summary["growth"] == 2.0
