"""Tests for the superstep fixed point (Algorithm 1)."""

import numpy as np

from repro.engine import naive_closure, run_superstep
from repro.graph import from_pairs, packed


def adjacency_of(edges):
    by_src = {}
    for s, d, l in edges:
        by_src.setdefault(s, []).append((d, l))
    return {v: from_pairs(pairs) for v, pairs in by_src.items()}


def closure_edges(result):
    out = set()
    for v, keys in result.adjacency.items():
        for d, l in packed.to_pairs(keys):
            out.add((v, d, l))
    return out


class TestFixpoint:
    def test_chain_closure(self, reach):
        e = reach.label_id("E")
        edges = [(i, i + 1, e) for i in range(6)]
        result = run_superstep(adjacency_of(edges), reach)
        assert result.completed
        assert closure_edges(result) == naive_closure(edges, reach)

    def test_cycle_terminates(self, reach):
        e = reach.label_id("E")
        edges = [(0, 1, e), (1, 2, e), (2, 0, e)]
        result = run_superstep(adjacency_of(edges), reach)
        assert result.completed
        assert closure_edges(result) == naive_closure(edges, reach)

    def test_self_loop(self, reach):
        e = reach.label_id("E")
        edges = [(0, 0, e)]
        result = run_superstep(adjacency_of(edges), reach)
        assert closure_edges(result) == naive_closure(edges, reach)

    def test_empty_adjacency(self, reach):
        result = run_superstep({}, reach)
        assert result.completed
        assert result.edges_added == 0
        assert result.iterations == 0

    def test_no_matches_single_iteration(self, dyck):
        op = dyck.label_id("OP")
        result = run_superstep(adjacency_of([(0, 1, op)]), dyck)
        assert result.completed
        assert result.edges_added == 0
        assert result.iterations == 1

    def test_added_arrays_match_delta(self, reach):
        e = reach.label_id("E")
        edges = [(0, 1, e), (1, 2, e)]
        result = run_superstep(adjacency_of(edges), reach)
        added = {
            (int(s), int(k) >> packed.LABEL_BITS, int(k) & packed.LABEL_MASK)
            for s, k in zip(result.added_src, result.added_keys)
        }
        expected = naive_closure(edges, reach) - set(edges)
        assert added == expected

    def test_dyck_closure(self, dyck):
        op, cl = dyck.label_id("OP"), dyck.label_id("CL")
        edges = [(0, 1, op), (1, 2, op), (2, 3, cl), (3, 4, cl), (4, 5, op), (5, 6, cl)]
        result = run_superstep(adjacency_of(edges), dyck)
        assert closure_edges(result) == naive_closure(edges, dyck)


class TestMemoryLimit:
    def test_early_stop_sets_incomplete(self, reach):
        e = reach.label_id("E")
        edges = [(i, i + 1, e) for i in range(30)]
        result = run_superstep(adjacency_of(edges), reach, memory_limit_edges=40)
        assert not result.completed
        # partial state is still sound: a subset of the true closure
        oracle = naive_closure(edges, reach)
        assert closure_edges(result) <= oracle
        assert set(edges) <= closure_edges(result)

    def test_limit_zero_disables(self, reach):
        e = reach.label_id("E")
        edges = [(i, i + 1, e) for i in range(30)]
        result = run_superstep(adjacency_of(edges), reach, memory_limit_edges=0)
        assert result.completed


class TestGroupCandidates:
    def test_empty_input_returns_no_groups(self, reach):
        """Regression: empty candidate arrays must short-circuit cleanly."""
        from repro.engine.superstep import _group_candidates

        assert _group_candidates(packed.EMPTY, packed.EMPTY) == []

    def test_groups_cover_all_sources(self):
        from repro.engine.superstep import _group_candidates

        src = np.asarray([3, 1, 3, 2], dtype=np.int64)
        keys = np.asarray([30, 10, 31, 20], dtype=np.int64)
        groups = _group_candidates(src, keys)
        assert {v for v, _ in groups} == {1, 2, 3}
        by_v = {v: sorted(int(k) for k in ks) for v, ks in groups}
        assert by_v[3] == [30, 31]


class TestThreads:
    def test_threaded_matches_sequential(self, dyck):
        import random

        rnd = random.Random(5)
        edges = list(
            {
                (rnd.randrange(15), rnd.randrange(15), rnd.randrange(2))
                for _ in range(50)
            }
        )
        seq = run_superstep(adjacency_of(edges), dyck, num_threads=1)
        par = run_superstep(adjacency_of(edges), dyck, num_threads=4)
        assert closure_edges(seq) == closure_edges(par)
        assert seq.edges_added == par.edges_added


class TestFreshPairsFastPath:
    """The compound-searchsorted merge must match the flag-lexsort oracle."""

    @staticmethod
    def _random_case(rng, big_ids=False):
        from repro.engine.join import CsrView
        from repro.engine.superstep import _dedup_pairs

        high = 2**35 if big_ids else 50
        n_base = int(rng.integers(1, 40))
        n_cand = int(rng.integers(1, 40))
        b_src = rng.integers(0, high, size=n_base)
        b_keys = rng.integers(0, 200, size=n_base)
        b_src, b_keys = _dedup_pairs(b_src, b_keys)
        # Overlap candidates with base so both outcomes occur.
        c_src = np.concatenate([b_src[: n_base // 2], rng.integers(0, high, size=n_cand)])
        c_keys = np.concatenate([b_keys[: n_base // 2], rng.integers(0, 200, size=n_cand)])
        c_src, c_keys = _dedup_pairs(c_src, c_keys)
        return c_src, c_keys, CsrView.from_flat(b_src, b_keys)

    def test_matches_lexsort_oracle(self):
        from repro.engine.superstep import _fresh_pairs

        rng = np.random.default_rng(11)
        for trial in range(30):
            c_src, c_keys, base = self._random_case(rng)
            fast_src, fast_keys = _fresh_pairs(c_src, c_keys, base)
            oracle_src, oracle_keys = self._oracle(c_src, c_keys, base)
            assert np.array_equal(fast_src, oracle_src), f"trial {trial}"
            assert np.array_equal(fast_keys, oracle_keys), f"trial {trial}"

    def test_large_ids_take_lexsort_fallback_and_agree(self):
        from repro.engine.superstep import _fresh_pairs

        rng = np.random.default_rng(13)
        for trial in range(10):
            c_src, c_keys, base = self._random_case(rng, big_ids=True)
            got_src, got_keys = _fresh_pairs(c_src, c_keys, base)
            oracle_src, oracle_keys = self._oracle(c_src, c_keys, base)
            assert np.array_equal(got_src, oracle_src), f"trial {trial}"
            assert np.array_equal(got_keys, oracle_keys), f"trial {trial}"

    def test_boundary_ids_agree_with_oracle(self):
        """Ids at and just past the fast path's packing limits (source
        2**31, key bound 2**32) must agree with the oracle on both sides
        of each boundary."""
        from repro.engine.join import CsrView
        from repro.engine.superstep import _dedup_pairs, _fresh_pairs

        for src_hi in (2**31 - 1, 2**31):
            for key_hi in (2**32 - 1, 2**32):
                b_src = np.asarray([0, 3, src_hi], dtype=np.int64)
                b_keys = np.asarray([key_hi, 7, key_hi], dtype=np.int64)
                b_src, b_keys = _dedup_pairs(b_src, b_keys)
                base = CsrView.from_flat(b_src, b_keys)
                # One duplicate of base, one fresh key on a boundary
                # source, one fresh boundary key on a small source.
                c_src = np.asarray([0, 3, src_hi], dtype=np.int64)
                c_keys = np.asarray([key_hi, key_hi, 5], dtype=np.int64)
                c_src, c_keys = _dedup_pairs(c_src, c_keys)
                got_src, got_keys = _fresh_pairs(c_src, c_keys, base)
                want_src, want_keys = self._oracle(c_src, c_keys, base)
                assert np.array_equal(got_src, want_src), (src_hi, key_hi)
                assert np.array_equal(got_keys, want_keys), (src_hi, key_hi)

    def test_explicit_key_bound_matches_rescan(self):
        """Passing the precomputed per-superstep key bound must give the
        same answer as the per-call max rescan it replaces."""
        from repro.engine.superstep import _fresh_pairs

        rng = np.random.default_rng(17)
        for trial in range(10):
            c_src, c_keys, base = self._random_case(rng)
            bound = int(max(c_keys.max(), base.keys.max())) + 1
            plain = _fresh_pairs(c_src, c_keys, base)
            bounded = _fresh_pairs(c_src, c_keys, base, key_bound=bound)
            assert np.array_equal(plain[0], bounded[0]), f"trial {trial}"
            assert np.array_equal(plain[1], bounded[1]), f"trial {trial}"

    @staticmethod
    def _oracle(c_src, c_keys, base):
        """Brute-force set difference over Python tuples."""
        present = set()
        for i, v in enumerate(base.vertices):
            row = base.keys[base.indptr[i] : base.indptr[i + 1]]
            present.update((int(v), int(k)) for k in row)
        kept = [
            (int(s), int(k))
            for s, k in zip(c_src, c_keys)
            if (int(s), int(k)) not in present
        ]
        if not kept:
            return packed.EMPTY, packed.EMPTY
        src = np.asarray([s for s, _ in kept], dtype=np.int64)
        keys = np.asarray([k for _, k in kept], dtype=np.int64)
        return src, keys


class TestFlattenAdjacency:
    """Dict input must be normalised to the sorted/dup-free invariant."""

    def test_unsorted_dict_rows_are_repaired(self, reach):
        """Regression: an unsorted, duplicated per-vertex key array used
        to flow into the merge machinery unchecked, silently corrupting
        the closure; it must now give the same result as clean input."""
        e = reach.label_id("E")
        clean = adjacency_of([(0, 1, e), (0, 2, e), (1, 2, e), (2, 3, e)])
        messy = dict(clean)
        # Vertex 0's row: reversed order plus a duplicate edge.
        messy[0] = np.asarray(
            [packed.pack(2, e), packed.pack(1, e), packed.pack(2, e)],
            dtype=np.int64,
        )
        got = run_superstep(messy, reach)
        want = run_superstep(clean, reach)
        assert closure_edges(got) == closure_edges(want)
        assert got.edges_added == want.edges_added

    def test_flatten_sorts_and_dedups(self, reach):
        from repro.engine.superstep import _flatten_adjacency

        e = reach.label_id("E")
        src, keys = _flatten_adjacency(
            {4: np.asarray([packed.pack(9, e), packed.pack(1, e), packed.pack(9, e)], dtype=np.int64)}
        )
        assert list(src) == [4, 4]
        assert list(keys) == [packed.pack(1, e), packed.pack(9, e)]
