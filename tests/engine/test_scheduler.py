"""Tests for the DDM-delta scheduler."""

import numpy as np
import pytest

from repro.engine import RoundRobinScheduler, Scheduler
from repro.partition import DestinationDistributionMap


def ddm_from(counts):
    return DestinationDistributionMap(np.asarray(counts, dtype=np.int64))


class TestScheduler:
    def test_none_when_finished(self):
        ddm = ddm_from([[1, 0], [0, 0]])
        ddm.mark_synced([0, 1])
        assert Scheduler().choose_pair(ddm, []) is None

    def test_picks_highest_delta_pair(self):
        ddm = ddm_from([[0, 1, 0], [0, 0, 9], [0, 0, 0]])
        pair = Scheduler(slack=0.0).choose_pair(ddm, [])
        assert pair == (1, 2)

    def test_residency_breaks_ties(self):
        ddm = ddm_from([[0, 5, 0, 0], [0, 0, 0, 0], [0, 0, 0, 5], [0, 0, 0, 0]])
        pair = Scheduler(slack=0.1).choose_pair(ddm, [2])
        assert pair == (2, 3)

    def test_residency_cannot_override_large_gap(self):
        ddm = ddm_from([[0, 100, 0, 0], [0, 0, 0, 0], [0, 0, 0, 1], [0, 0, 0, 0]])
        pair = Scheduler(slack=0.1).choose_pair(ddm, [2, 3])
        assert pair == (0, 1)

    def test_self_pair_allowed(self):
        ddm = ddm_from([[3, 0], [0, 0]])
        pair = Scheduler().choose_pair(ddm, [])
        assert pair == (0, 0)

    def test_deterministic_on_equal_scores(self):
        ddm = ddm_from([[0, 2, 0], [0, 0, 2], [0, 0, 0]])
        pairs = {Scheduler().choose_pair(ddm, []) for _ in range(5)}
        assert len(pairs) == 1


class TestSlackValidation:
    @pytest.mark.parametrize("slack", [-0.1, -1.0, 1.0, 1.5])
    def test_out_of_range_slack_rejected(self, slack):
        """Regression: slack >= 1 made every dirty pair 'within slack' of
        the best, so residency silently overrode the DDM priorities."""
        with pytest.raises(ValueError, match="slack"):
            Scheduler(slack=slack)

    @pytest.mark.parametrize("slack", [0.0, 0.1, 0.99])
    def test_valid_slack_accepted(self, slack):
        assert Scheduler(slack=slack).slack == slack


class TestRoundRobin:
    def test_cycles_through_dirty_pairs(self):
        ddm = ddm_from([[1, 1], [1, 1]])
        scheduler = RoundRobinScheduler()
        seen = {scheduler.choose_pair(ddm, []) for _ in range(6)}
        assert seen == {(0, 0), (0, 1), (1, 1)}

    def test_none_when_finished(self):
        ddm = ddm_from([[1, 0], [0, 0]])
        ddm.mark_synced([0, 1])
        assert RoundRobinScheduler().choose_pair(ddm, []) is None
