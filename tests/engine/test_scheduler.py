"""Tests for the DDM-delta scheduler."""

import numpy as np
import pytest

from repro.engine import RoundRobinScheduler, Scheduler
from repro.partition import DestinationDistributionMap


def ddm_from(counts):
    return DestinationDistributionMap(np.asarray(counts, dtype=np.int64))


class TestScheduler:
    def test_none_when_finished(self):
        ddm = ddm_from([[1, 0], [0, 0]])
        ddm.mark_synced([0, 1])
        assert Scheduler().choose_pair(ddm, []) is None

    def test_picks_highest_delta_pair(self):
        ddm = ddm_from([[0, 1, 0], [0, 0, 9], [0, 0, 0]])
        pair = Scheduler(slack=0.0).choose_pair(ddm, [])
        assert pair == (1, 2)

    def test_residency_breaks_ties(self):
        ddm = ddm_from([[0, 5, 0, 0], [0, 0, 0, 0], [0, 0, 0, 5], [0, 0, 0, 0]])
        pair = Scheduler(slack=0.1).choose_pair(ddm, [2])
        assert pair == (2, 3)

    def test_residency_cannot_override_large_gap(self):
        ddm = ddm_from([[0, 100, 0, 0], [0, 0, 0, 0], [0, 0, 0, 1], [0, 0, 0, 0]])
        pair = Scheduler(slack=0.1).choose_pair(ddm, [2, 3])
        assert pair == (0, 1)

    def test_self_pair_allowed(self):
        ddm = ddm_from([[3, 0], [0, 0]])
        pair = Scheduler().choose_pair(ddm, [])
        assert pair == (0, 0)

    def test_deterministic_on_equal_scores(self):
        ddm = ddm_from([[0, 2, 0], [0, 0, 2], [0, 0, 0]])
        pairs = {Scheduler().choose_pair(ddm, []) for _ in range(5)}
        assert len(pairs) == 1


class TestSlackValidation:
    @pytest.mark.parametrize("slack", [-0.1, -1.0, 1.0, 1.5])
    def test_out_of_range_slack_rejected(self, slack):
        """Regression: slack >= 1 made every dirty pair 'within slack' of
        the best, so residency silently overrode the DDM priorities."""
        with pytest.raises(ValueError, match="slack"):
            Scheduler(slack=slack)

    @pytest.mark.parametrize("slack", [0.0, 0.1, 0.99])
    def test_valid_slack_accepted(self, slack):
        assert Scheduler(slack=slack).slack == slack


class TestRoundRobin:
    def test_cycles_through_dirty_pairs(self):
        ddm = ddm_from([[1, 1], [1, 1]])
        scheduler = RoundRobinScheduler()
        seen = {scheduler.choose_pair(ddm, []) for _ in range(6)}
        assert seen == {(0, 0), (0, 1), (1, 1)}

    def test_none_when_finished(self):
        ddm = ddm_from([[1, 0], [0, 0]])
        ddm.mark_synced([0, 1])
        assert RoundRobinScheduler().choose_pair(ddm, []) is None


class TestPeekPair:
    """The lookahead used by the I/O pipeline's speculative prefetch."""

    def test_peek_without_assumption_matches_choose(self):
        ddm = ddm_from([[0, 3, 0], [0, 0, 9], [2, 0, 0]])
        scheduler = Scheduler()
        assert scheduler.peek_pair(ddm, []) == scheduler.choose_pair(ddm, [])

    def test_peek_predicts_pair_after_current_completes(self):
        ddm = ddm_from([[0, 1, 0], [0, 0, 9], [0, 0, 0]])
        scheduler = Scheduler(slack=0.0)
        current = scheduler.choose_pair(ddm, [])
        assert current == (1, 2)
        predicted = scheduler.peek_pair(ddm, [], assume_synced=current)
        # Simulate the real sync and check the prediction was exact.
        ddm.mark_synced(current)
        assert predicted == scheduler.choose_pair(ddm, [])

    def test_peek_does_not_mutate_the_ddm(self):
        ddm = ddm_from([[0, 4, 0], [0, 0, 7], [1, 0, 0]])
        before = (
            ddm.counts.copy(),
            ddm.added_since_sync.copy(),
            ddm.version.copy(),
            ddm.synced_version.copy(),
        )
        Scheduler().peek_pair(ddm, [0], assume_synced=(1, 2))
        assert np.array_equal(before[0], ddm.counts)
        assert np.array_equal(before[1], ddm.added_since_sync)
        assert np.array_equal(before[2], ddm.version)
        assert np.array_equal(before[3], ddm.synced_version)

    def test_peek_none_when_assumed_sync_finishes_everything(self):
        ddm = ddm_from([[0, 5], [0, 0]])
        assert Scheduler().peek_pair(ddm, [], assume_synced=(0, 1)) is None

    def test_peek_respects_residency_tiebreak(self):
        ddm = ddm_from(
            [[0, 5, 0, 0], [0, 0, 0, 0], [0, 0, 0, 5], [0, 0, 0, 0]]
        )
        assert Scheduler(slack=0.1).peek_pair(ddm, [2]) == (2, 3)
        assert Scheduler(slack=0.1).peek_pair(ddm, [0]) == (0, 1)


class TestVectorizedScoring:
    """pair_scores must replicate the scalar pair_dirty/pair_score pair."""

    def test_pair_scores_matches_scalar_oracle(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n = int(rng.integers(2, 7))
            counts = rng.integers(0, 4, size=(n, n))
            ddm = ddm_from(counts)
            # Randomize sync state a little.
            for _ in range(int(rng.integers(0, 3))):
                pids = rng.choice(n, size=2, replace=True)
                ddm.mark_synced([int(p) for p in set(pids)])
                ddm.record_new_edges(
                    int(rng.integers(0, n)), int(rng.integers(0, n)), 1
                )
            expected = [
                (p, q, ddm.pair_score(p, q))
                for p in range(n)
                for q in range(p, n)
                if ddm.pair_dirty(p, q)
            ]
            ps, qs, scores = ddm.pair_scores()
            got = list(zip(ps.tolist(), qs.tolist(), scores.tolist()))
            assert got == expected


class TestExcludePids:
    """The coordinator's disjoint-lease filter (`exclude_pids`)."""

    def counts(self):
        return [
            [0, 9, 0, 0],
            [0, 0, 0, 0],
            [0, 0, 0, 7],
            [0, 0, 0, 0],
        ]

    def test_no_exclusions_is_the_plain_policy(self):
        ddm = ddm_from(self.counts())
        s = Scheduler(slack=0.0)
        assert s.choose_pair(ddm, [], exclude_pids=()) == s.choose_pair(ddm, [])

    def test_excluding_best_pair_yields_next_disjoint_pair(self):
        ddm = ddm_from(self.counts())
        s = Scheduler(slack=0.0)
        first = s.choose_pair(ddm, [])
        assert first == (0, 1)
        second = s.choose_pair(ddm, [], exclude_pids=first)
        assert second == (2, 3)
        assert not set(first) & set(second)

    def test_all_pairs_busy_returns_none_without_finishing(self):
        # Every dirty pair overlaps an in-flight lease: the scheduler
        # answers None (the coordinator's "wait"), but the same call
        # without exclusions still sees the work.
        ddm = ddm_from(self.counts())
        s = Scheduler(slack=0.0)
        assert s.choose_pair(ddm, [], exclude_pids=(0, 2)) is None
        assert s.choose_pair(ddm, []) is not None

    def test_self_pair_excluded_by_its_single_pid(self):
        ddm = ddm_from([[5, 0], [0, 0]])
        s = Scheduler(slack=0.0)
        assert s.choose_pair(ddm, []) == (0, 0)
        assert s.choose_pair(ddm, [], exclude_pids=(0,)) is None

    def test_exclusion_does_not_mutate_future_choices(self):
        # choose_pair is stateless: an excluded call in between must not
        # perturb the unexcluded sequence (RoundRobin's cursor is why the
        # coordinator records fixpoint verdicts itself).
        ddm = ddm_from(self.counts())
        s = Scheduler(slack=0.0)
        before = s.choose_pair(ddm, [])
        s.choose_pair(ddm, [], exclude_pids=(0, 1, 2, 3))
        assert s.choose_pair(ddm, []) == before


class TestPeekChooseOutOfOrder:
    """peek_pair and choose_pair must agree when leases complete out of
    issue order — the distributed coordinator issues pair B while pair A
    is still in flight, and B may finish (and sync) first."""

    def counts(self):
        return [
            [0, 9, 0, 0, 0],
            [0, 0, 0, 0, 0],
            [0, 0, 0, 7, 0],
            [0, 0, 0, 0, 5],
            [0, 0, 0, 0, 0],
        ]

    def test_peek_predicts_choice_after_out_of_order_sync(self):
        ddm = ddm_from(self.counts())
        s = Scheduler(slack=0.0)
        first = s.choose_pair(ddm, [])
        second = s.choose_pair(ddm, [], exclude_pids=first)
        assert first == (0, 1) and second == (2, 3)
        # The *second* lease completes first.  Peek's simulation of that
        # sync must match the real choice after the DDM actually syncs.
        predicted = s.peek_pair(ddm, [], assume_synced=second)
        ddm.mark_synced(second)
        assert s.choose_pair(ddm, []) == predicted

    def test_agreement_holds_for_every_completion_order(self):
        s = Scheduler(slack=0.0)
        for completes_first in ((0, 1), (2, 3)):
            ddm = ddm_from(self.counts())
            predicted = s.peek_pair(ddm, [], assume_synced=completes_first)
            ddm.mark_synced(completes_first)
            assert s.choose_pair(ddm, []) == predicted

    def test_later_choices_independent_of_completion_order(self):
        # Two in-flight leases; whichever completes first, the set of
        # pairs the scheduler hands out next is the same (confluence at
        # the scheduling level, with deterministic per-state choices).
        s = Scheduler(slack=0.0)
        orders = [((0, 1), (2, 3)), ((2, 3), (0, 1))]
        chosen = []
        for first_done, second_done in orders:
            ddm = ddm_from(self.counts())
            ddm.mark_synced(first_done)
            ddm.mark_synced(second_done)
            chosen.append(s.choose_pair(ddm, []))
        assert chosen[0] == chosen[1] == (3, 4)
