"""Extra determinism/thread coverage on the full analysis pipeline."""


from repro.analysis import PointsToAnalysis
from repro.frontend import compile_program

SOURCE = """
void *a1(void) { int *x; x = malloc(4); return x; }
void *a2(int *v) { int *y; y = v; return y; }
void top(void) {
    int *p;
    int *q;
    p = a1();
    q = a2(p);
    *q = 1;
}
"""


class TestPipelineDeterminism:
    def test_threaded_pointsto_matches_sequential(self):
        pg = compile_program(SOURCE)
        seq = PointsToAnalysis(num_threads=1).run(pg)
        par = PointsToAnalysis(num_threads=4).run(pg)
        assert seq.num_points_to_facts == par.num_points_to_facts
        assert set(seq.alias_edges()) == set(par.alias_edges())

    def test_out_of_core_pointsto_matches_in_memory(self, tmp_path):
        pg = compile_program(SOURCE)
        mem = PointsToAnalysis().run(pg)
        ooc = PointsToAnalysis(
            max_edges_per_partition=8, workdir=tmp_path
        ).run(pg)
        assert mem.num_points_to_facts == ooc.num_points_to_facts
        assert mem.var_points_to("top", "q") == ooc.var_points_to("top", "q")

    def test_two_compiles_give_identical_vertex_ids(self):
        a = compile_program(SOURCE)
        b = compile_program(SOURCE)
        assert a.namer.vertices_for("top", "q") == b.namer.vertices_for("top", "q")
        assert a.num_edges == b.num_edges
