"""Fuzz the vectorized join against a plain-Python reference join."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.join import CsrView, join_edges
from repro.graph import from_pairs, packed
from repro.grammar import dyck_grammar

DYCK = dyck_grammar()


@st.composite
def join_inputs(draw):
    n = draw(st.integers(1, 8))
    num_left = draw(st.integers(0, 10))
    left = [
        (
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, DYCK.num_labels - 1)),
        )
        for _ in range(num_left)
    ]
    num_right = draw(st.integers(0, 12))
    right = {}
    for _ in range(num_right):
        v = draw(st.integers(0, n - 1))
        d = draw(st.integers(0, n - 1))
        l = draw(st.integers(0, DYCK.num_labels - 1))
        right.setdefault(v, set()).add((d, l))
    return left, right


def reference_join(left, right):
    """The obvious nested-loop join."""
    out = set()
    for src, mid, l1 in left:
        for dst, l2 in right.get(mid, ()):
            for lhs in DYCK.produced_by_pair(l1, l2):
                out.add((src, dst, lhs))
    return out


@given(join_inputs())
@settings(max_examples=120, deadline=None)
def test_vectorized_join_equals_reference(inputs):
    left, right = inputs
    import numpy as np

    left_src = np.asarray([s for s, _, _ in left], dtype=np.int64)
    left_keys = (
        np.asarray([(m << packed.LABEL_BITS) | l for _, m, l in left], dtype=np.int64)
        if left
        else packed.EMPTY
    )
    view = CsrView.from_dict(
        {v: from_pairs(sorted(pairs)) for v, pairs in right.items()}
    )
    src, keys = join_edges(left_src, left_keys, view, DYCK, DYCK.head_labels())
    got = {
        (int(s), int(k) >> packed.LABEL_BITS, int(k) & packed.LABEL_MASK)
        for s, k in zip(src, keys)
    }
    assert got == reference_join(left, right)
