"""Acceptance tests for the memory-budgeted residency manager.

The contract (ISSUE 3): with a budget set, a full linux-like closure
must (a) keep the tracked peak resident bytes within budget + one
partition (the evict-before-load rule), (b) actually evict, and
(c) produce the byte-identical edge set of an unbudgeted run.
"""

import numpy as np
import pytest

from repro.engine.engine import GraspanEngine
from repro.frontend.graphs import pointer_graph
from repro.grammar.builtin import pointsto_grammar_extended
from repro.util.memory import MemoryBudgetExceeded
from repro.workloads.programs import workload_by_name


@pytest.fixture(scope="module")
def linux_graph():
    workload = workload_by_name("linux", scale=0.12)
    return pointer_graph(workload.compile())


@pytest.fixture(scope="module")
def grammar():
    return pointsto_grammar_extended()


def run_closure(graph, grammar, workdir, memory_budget=None):
    engine = GraspanEngine(
        grammar,
        max_edges_per_partition=max(1000, graph.num_edges // 6),
        workdir=workdir,
        memory_budget=memory_budget,
    )
    return engine.run(graph)


class TestBudgetedClosure:
    def test_budgeted_run_matches_unbudgeted(self, linux_graph, grammar, tmp_path):
        baseline = run_closure(linux_graph, grammar, tmp_path / "w0")
        budget = 3 * baseline.stats.max_partition_bytes
        assert budget > 0

        budgeted = run_closure(
            linux_graph, grammar, tmp_path / "w1", memory_budget=budget
        )
        stats = budgeted.stats

        # (a) peak residency bounded by budget + one partition
        assert stats.memory_budget == budget
        assert stats.peak_resident_bytes <= budget + stats.max_partition_bytes
        # (b) the budget actually cycled partitions through disk
        assert stats.evictions > 0
        assert stats.partition_loads > 0
        assert stats.bytes_read > 0 and stats.bytes_written > 0
        # (c) byte-identical closure
        g0 = baseline.to_memgraph()
        g1 = budgeted.to_memgraph()
        assert np.array_equal(g0.src, g1.src)
        assert np.array_equal(g0.keys, g1.keys)
        assert stats.final_edges == baseline.stats.final_edges

    def test_counters_surface_in_summary(self, linux_graph, grammar, tmp_path):
        comp = run_closure(
            linux_graph, grammar, tmp_path / "w", memory_budget=4 * 1024 * 1024
        )
        summary = comp.stats.summary()
        for key in (
            "memory_budget",
            "peak_resident_bytes",
            "max_partition_bytes",
            "evictions",
            "cache_hits",
            "partition_loads",
            "bytes_read",
            "bytes_written",
        ):
            assert key in summary


class TestBudgetValidation:
    def test_budget_requires_workdir(self, grammar):
        with pytest.raises(ValueError, match="workdir"):
            GraspanEngine(grammar, memory_budget=1 << 20)

    def test_budget_must_be_positive(self, grammar, tmp_path):
        with pytest.raises(ValueError):
            GraspanEngine(grammar, workdir=tmp_path, memory_budget=0)


class TestLoadResident:
    def test_load_resident_refuses_oversized_closure(
        self, linux_graph, grammar, tmp_path
    ):
        comp = run_closure(linux_graph, grammar, tmp_path / "w")
        # Shrink the budget below the closure's total size after the run.
        comp.pset.residency.budget_bytes = comp.pset.total_bytes() // 4
        with pytest.raises(MemoryBudgetExceeded):
            comp.load_resident()
        assert not comp.pset.resident_pids()  # nothing was pulled in

    def test_load_resident_within_budget_loads_clean(
        self, linux_graph, grammar, tmp_path
    ):
        comp = run_closure(linux_graph, grammar, tmp_path / "w")
        comp.pset.residency.budget_bytes = 2 * comp.pset.total_bytes()
        comp.load_resident()
        assert len(comp.pset.resident_pids()) == comp.pset.num_partitions
        # Loaded copies match disk; a later eviction must not rewrite.
        assert all(not slot.dirty for slot in comp.pset._slots)
