"""Incremental delta re-closure through the closure store (DESIGN.md §14).

The contract under test: after an edit that only *adds* input edges over
the same vertex set, the store seeds the old fixed point with the delta
and re-runs supersteps from there — producing the byte-identical closure
a cold run computes, in strictly fewer (< 50%) supersteps.  Edits that
delete edges or renumber vertices fall back to a cold run.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.engine.checkpoint import graph_fingerprint
from repro.engine.store import ClosureStore, edge_diff
from repro.frontend.graphs import pointer_graph
from repro.grammar.builtin import pointsto_grammar_extended
from repro.graph import MemGraph
from repro.workloads.programs import workload_by_name

#: Small enough to finish quickly, big enough for multiple partitions.
WORKLOAD_SCALES = {"linux": 0.1, "postgresql": 0.06, "httpd": 0.15}


def function_edit(pg, graph):
    """The graph image of an edit to one function.

    Adds new assignment (``A``) flows between two variables of a single
    function, wired in every clone context — the kind of delta a one-line
    edit to that function's body produces.  Same vertex set, additions
    only, so the store's incremental path applies.
    """
    label = graph.label_names.index("A")
    namer = pg.namer
    for fname in sorted(pg.lowered.functions):
        func = pg.lowered.functions[fname]
        names = sorted(set(func.params) | set(func.locals))
        if len(names) < 2:
            continue
        for a, b in itertools.combinations(names, 2):
            by_ctx = {namer.context(v): v for v in namer.vertices_for(fname, a)}
            extra = []
            for vb in namer.vertices_for(fname, b):
                va = by_ctx.get(namer.context(vb))
                if va is not None and not graph.has_edge(va, vb, label):
                    extra.append((va, vb, label))
            if extra:
                return fname, graph.with_edges(extra)
    raise RuntimeError("no function with two connectable variables")


def closure_arrays(computation):
    final = computation.load_resident().to_memgraph()
    return final.src, final.keys, final.num_vertices


# ---------------------------------------------------------------------------
# edge_diff — the additions/deletions classifier
# ---------------------------------------------------------------------------


class TestEdgeDiff:
    def test_pure_additions(self):
        base = MemGraph.from_edges([(0, 1, 0), (1, 2, 0)], label_names=["E"])
        new = MemGraph.from_edges(
            [(0, 1, 0), (1, 2, 0), (2, 3, 0)], label_names=["E"]
        )
        added_mask, deleted = edge_diff(base.src, base.keys, new.src, new.keys)
        assert deleted == 0
        assert list(new.src[added_mask]) == [2]

    def test_deletion_detected(self):
        base = MemGraph.from_edges([(0, 1, 0), (1, 2, 0)], label_names=["E"])
        new = MemGraph.from_edges([(0, 1, 0)], label_names=["E"])
        _, deleted = edge_diff(base.src, base.keys, new.src, new.keys)
        assert deleted == 1

    def test_identical_graphs(self):
        g = MemGraph.from_edges([(0, 1, 0), (1, 2, 1)], label_names=["E", "F"])
        added_mask, deleted = edge_diff(g.src, g.keys, g.src, g.keys)
        assert deleted == 0
        assert not added_mask.any()

    def test_label_change_is_add_plus_delete(self):
        base = MemGraph.from_edges([(0, 1, 0)], label_names=["E", "F"])
        new = MemGraph.from_edges([(0, 1, 1)], label_names=["E", "F"])
        added_mask, deleted = edge_diff(base.src, base.keys, new.src, new.keys)
        assert deleted == 1
        assert added_mask.sum() == 1


# ---------------------------------------------------------------------------
# graph_fingerprint — satellite: the key covers the partition layout
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_partition_table_changes_key(self, chain_graph):
        plain = graph_fingerprint(chain_graph)
        one = graph_fingerprint(chain_graph, partition_table=[[0, 10]])
        two = graph_fingerprint(
            chain_graph, partition_table=[[0, 5], [5, 10]]
        )
        assert len({plain, one, two}) == 3

    def test_same_table_same_key(self, chain_graph):
        table = [[0, 5], [5, 10]]
        assert graph_fingerprint(
            chain_graph, partition_table=table
        ) == graph_fingerprint(chain_graph, partition_table=[list(t) for t in table])


# ---------------------------------------------------------------------------
# the store resolution paths, per workload
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOAD_SCALES))
def test_single_function_edit_recloses_incrementally(name, tmp_path):
    """Cold → edit one function → byte-identical closure, < 50% supersteps."""
    pg = workload_by_name(name, scale=WORKLOAD_SCALES[name]).compile()
    graph = pointer_graph(pg)
    grammar = pointsto_grammar_extended()
    max_edges = max(64, graph.num_edges // 4)

    store = ClosureStore(tmp_path / "store", max_edges_per_partition=max_edges)
    cold_base = store.closure(grammar, graph)
    assert cold_base.stats.closure_source == "cold"
    cold_supersteps = cold_base.stats.num_supersteps
    assert cold_supersteps > 0

    fname, mutated = function_edit(pg, graph)
    assert mutated.num_vertices == graph.num_vertices
    assert mutated.num_edges > graph.num_edges

    incremental = store.closure(grammar, mutated)
    stats = incremental.stats
    assert stats.closure_source == "incremental"
    assert stats.delta_added_edges == mutated.num_edges - graph.num_edges
    assert stats.delta_seed_partitions >= 1

    # A fresh store never saw the base: its run on the mutated graph is
    # the from-scratch reference the incremental result must match.
    reference_store = ClosureStore(
        tmp_path / "reference", max_edges_per_partition=max_edges
    )
    reference = reference_store.closure(grammar, mutated)
    assert reference.stats.closure_source == "cold"

    inc_src, inc_keys, inc_nv = closure_arrays(incremental)
    ref_src, ref_keys, ref_nv = closure_arrays(reference)
    assert inc_nv == ref_nv
    assert np.array_equal(inc_src, ref_src)
    assert np.array_equal(inc_keys, ref_keys)

    # The delta re-closure must beat half the cold superstep count (the
    # edit touched one function, not the whole program).
    assert 0 < stats.num_supersteps * 2 < reference.stats.num_supersteps, (
        f"{name}: incremental took {stats.num_supersteps} supersteps "
        f"vs cold {reference.stats.num_supersteps}"
    )

    # Third resolution path: asking again is an exact cache hit — the
    # finished entry restores with zero supersteps.
    again = store.closure(grammar, mutated)
    assert again.stats.closure_source == "cache"
    assert again.stats.num_supersteps == 0
    hit_src, hit_keys, _ = closure_arrays(again)
    assert np.array_equal(hit_src, ref_src)
    assert np.array_equal(hit_keys, ref_keys)

    sources = [m["source"] for m in store.entries()]
    assert sorted(sources) == ["cold", "incremental"]


def test_deletion_falls_back_to_cold(tmp_path, reach):
    base = MemGraph.from_edges(
        [(i, i + 1, 0) for i in range(8)], label_names=["E"]
    )
    store = ClosureStore(tmp_path / "store", max_edges_per_partition=4)
    first = store.closure(reach, base)
    assert first.stats.closure_source == "cold"

    # Drop one edge and add another: deletions break the monotone
    # seeding argument, so the store must recompute from scratch.
    smaller = MemGraph.from_edges(
        [(i, i + 1, 0) for i in range(7)] + [(7, 0, 0)],
        label_names=["E"],
        num_vertices=base.num_vertices,
    )
    second = store.closure(reach, smaller)
    assert second.stats.closure_source == "cold"
    assert second.stats.delta_added_edges == 0


def test_vertex_renumbering_falls_back_to_cold(tmp_path, reach):
    base = MemGraph.from_edges(
        [(i, i + 1, 0) for i in range(8)], label_names=["E"]
    )
    store = ClosureStore(tmp_path / "store", max_edges_per_partition=4)
    store.closure(reach, base)

    grown = MemGraph.from_edges(
        [(i, i + 1, 0) for i in range(9)], label_names=["E"]
    )
    assert grown.num_vertices != base.num_vertices
    second = store.closure(reach, grown)
    assert second.stats.closure_source == "cold"


def test_incremental_noop_delta_is_cache_hit(tmp_path, reach, chain_graph):
    """The same graph twice resolves as a cache hit, not a re-closure."""
    store = ClosureStore(tmp_path / "store", max_edges_per_partition=4)
    first = store.closure(reach, chain_graph)
    second = store.closure(reach, chain_graph)
    assert first.stats.closure_source == "cold"
    assert second.stats.closure_source == "cache"
    a_src, a_keys, _ = closure_arrays(first)
    b_src, b_keys, _ = closure_arrays(second)
    assert np.array_equal(a_src, b_src)
    assert np.array_equal(a_keys, b_keys)


def test_sizing_keys_separate_entries(tmp_path, reach, chain_graph):
    """Different partition sizing must not share cached manifests."""
    coarse = ClosureStore(tmp_path / "store", max_edges_per_partition=100)
    fine = ClosureStore(tmp_path / "store", max_edges_per_partition=3)
    a = coarse.closure(reach, chain_graph)
    b = fine.closure(reach, chain_graph)
    # Same root, different sizing: the second store may reuse the first
    # entry *incrementally* (same grammar, zero-delta) but never as an
    # exact hit, and both must agree on the closure.
    assert b.stats.closure_source != "cache"
    a_g = a.load_resident().to_memgraph()
    b_g = b.load_resident().to_memgraph()
    assert np.array_equal(a_g.src, b_g.src)
    assert np.array_equal(a_g.keys, b_g.keys)
