"""Out-of-core edge cases: partial supersteps, single partitions, growth."""


from repro.engine import GraspanEngine, naive_closure
from repro.graph import MemGraph


def closure_set(comp):
    return set(comp.pset.iter_all_edges())


class TestPartialSupersteps:
    def test_mid_superstep_bailout_still_correct(self, reach, tmp_path):
        """Tiny partitions force the mid-superstep memory check to trip;
        the pair stays dirty and the computation still converges."""
        edges = [(i, i + 1, 0) for i in range(60)] + [(7, 3, 0), (40, 20, 0)]
        graph = MemGraph.from_edges(edges, label_names=["E"])
        comp = GraspanEngine(
            reach, max_edges_per_partition=6, workdir=tmp_path
        ).run(graph)
        assert closure_set(comp) == naive_closure(edges, reach)
        # at least one superstep must have bailed out early
        assert any(not r.completed for r in comp.stats.supersteps) or (
            comp.stats.repartition_count > 0
        )

    def test_single_initial_partition(self, reach, tmp_path):
        edges = [(i, i + 1, 0) for i in range(5)]
        graph = MemGraph.from_edges(edges, label_names=["E"])
        comp = GraspanEngine(
            reach, num_partitions=1, workdir=tmp_path
        ).run(graph)
        assert closure_set(comp) == naive_closure(edges, reach)

    def test_more_partitions_than_needed(self, reach, tmp_path):
        edges = [(0, 1, 0), (1, 2, 0)]
        graph = MemGraph.from_edges(edges, num_vertices=20, label_names=["E"])
        comp = GraspanEngine(
            reach, num_partitions=8, workdir=tmp_path
        ).run(graph)
        assert closure_set(comp) == naive_closure(edges, reach)


class TestDegenerateGrammars:
    def test_unary_only_grammar(self):
        from repro.grammar import Grammar

        g = Grammar()
        g.add_constraint("B", "A")
        g.add_constraint("C", "B")
        frozen = g.freeze()
        graph = MemGraph.from_edges([(0, 1, 0)], label_names=["A"])
        comp = GraspanEngine(frozen).run(graph)
        labels = {frozen.label_name(l) for _, _, l in comp.pset.iter_all_edges()}
        assert labels == {"A", "B", "C"}
        assert comp.stats.num_supersteps >= 1

    def test_grammar_with_unmatched_labels(self, dyck):
        """Edges whose labels never participate still survive the run."""
        graph = MemGraph.from_edges(
            [(0, 1, 0), (1, 2, 0)], label_names=["OP", "CL"]
        )  # only opens: nothing to derive
        comp = GraspanEngine(dyck).run(graph)
        assert closure_set(comp) == {(0, 1, 0), (1, 2, 0)}

    def test_self_loop_fixpoint(self, reach):
        graph = MemGraph.from_edges([(0, 0, 0)], label_names=["E"])
        comp = GraspanEngine(reach).run(graph)
        assert closure_set(comp) == naive_closure([(0, 0, 0)], reach)


class TestGrowthAccounting:
    def test_final_edges_equals_pset_total(self, reach, chain_graph, tmp_path):
        comp = GraspanEngine(
            reach, max_edges_per_partition=4, workdir=tmp_path
        ).run(chain_graph)
        assert comp.stats.final_edges == comp.pset.total_edges()

    def test_superstep_added_sums_to_growth(self, reach, chain_graph):
        comp = GraspanEngine(reach).run(chain_graph)
        assert (
            comp.stats.original_edges + comp.stats.total_edges_added
            == comp.stats.final_edges
        )

    def test_edge_counts_survive_eviction_cycles(self, reach, tmp_path):
        edges = [(i, (i + 3) % 15, 0) for i in range(15)]
        graph = MemGraph.from_edges(edges, label_names=["E"])
        comp = GraspanEngine(
            reach, max_edges_per_partition=8, workdir=tmp_path
        ).run(graph)
        # reload everything from disk and recount
        fresh_total = sum(1 for _ in comp.pset.iter_all_edges())
        assert fresh_total == comp.stats.final_edges
