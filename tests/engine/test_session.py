"""The ClosureSession lifecycle: open → step/run → query → close.

The session is the tentpole extraction from the old monolithic
``GraspanEngine.run``; these tests pin down the lifecycle contract
(state errors, idempotence, context management), the equivalence of
stepping and running, and the thread-safety of the session-scoped
stats accumulation.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine.engine import GraspanEngine
from repro.engine.session import SessionStateError
from repro.engine.stats import EngineStats, SuperstepRecord
from repro.graph import MemGraph


def closure_graph(computation):
    return computation.load_resident().to_memgraph()


class TestLifecycle:
    def test_run_matches_engine_run(self, reach, chain_graph):
        reference = GraspanEngine(reach).run(chain_graph)
        session = GraspanEngine(reach).session(chain_graph)
        try:
            session.open()
            computation = session.run()
        finally:
            session.close()
        ref = closure_graph(reference)
        got = closure_graph(computation)
        assert np.array_equal(got.src, ref.src)
        assert np.array_equal(got.keys, ref.keys)

    def test_context_manager(self, reach, diamond_graph):
        with GraspanEngine(reach).session(diamond_graph) as session:
            computation = session.run()
        assert computation.stats.num_supersteps > 0
        # R-closure of the diamond: 0 reaches every other vertex.
        assert computation.stats.final_edges > diamond_graph.num_edges

    def test_manual_stepping_reaches_same_fixpoint(self, reach, chain_graph):
        reference = GraspanEngine(reach).run(chain_graph)
        with GraspanEngine(reach).session(chain_graph) as session:
            steps = 0
            while session.step():
                steps += 1
            computation = session.run()  # already at fixpoint: finalizes
        assert steps == computation.stats.num_supersteps
        ref = closure_graph(reference)
        got = closure_graph(computation)
        assert np.array_equal(got.src, ref.src)
        assert np.array_equal(got.keys, ref.keys)

    def test_step_before_open_raises(self, reach, chain_graph):
        session = GraspanEngine(reach).session(chain_graph)
        with pytest.raises(SessionStateError):
            session.step()
        with pytest.raises(SessionStateError):
            session.run()

    def test_open_is_idempotent(self, reach, chain_graph):
        with GraspanEngine(reach).session(chain_graph) as session:
            assert session.open() is session
            session.run()

    def test_reopen_after_close_raises(self, reach, chain_graph):
        session = GraspanEngine(reach).session(chain_graph)
        session.open()
        session.run()
        session.close()
        session.close()  # idempotent
        with pytest.raises(SessionStateError):
            session.open()

    def test_empty_graph_short_circuits(self, reach):
        empty = MemGraph.from_edges([], label_names=["E"])
        with GraspanEngine(reach).session(empty) as session:
            computation = session.run()
        assert computation.stats.num_supersteps == 0
        assert computation.num_edges == 0

    def test_engine_run_delegates_to_session(self, reach, chain_graph):
        """The engine facade is now a thin session wrapper."""
        computation = GraspanEngine(reach).run(chain_graph)
        # 10-vertex chain: R-closure is all ordered pairs plus E edges.
        assert computation.stats.final_edges == 9 + 45

    def test_out_of_core_session(self, reach, chain_graph, tmp_path):
        with GraspanEngine(
            reach, max_edges_per_partition=4, workdir=tmp_path
        ).session(chain_graph) as session:
            computation = session.run()
        reference = GraspanEngine(reach).run(chain_graph)
        ref = closure_graph(reference)
        got = closure_graph(computation)
        assert np.array_equal(got.src, ref.src)
        assert np.array_equal(got.keys, ref.keys)
        assert computation.stats.checkpoints_written > 0


class TestConcurrentSessions:
    def test_sessions_do_not_share_stats(self, reach):
        """Each session accumulates into its own EngineStats."""
        engine = GraspanEngine(reach)
        graphs = [
            MemGraph.from_edges(
                [(i, i + 1, 0) for i in range(n)], label_names=["E"]
            )
            for n in (5, 9)
        ]
        results = [None, None]
        errors = []

        def work(idx):
            try:
                with engine.session(graphs[idx]) as session:
                    results[idx] = session.run()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        small, big = results
        assert small.stats is not big.stats
        assert small.stats.final_edges == 5 + 15  # 5-chain pairs
        assert big.stats.final_edges == 9 + 45  # 9-chain pairs


class TestStatsAccumulation:
    def test_add_counter_is_atomic_under_contention(self):
        stats = EngineStats()
        rounds, workers = 500, 8

        def bump():
            for _ in range(rounds):
                stats.add_counter("repartition_count")

        threads = [threading.Thread(target=bump) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.repartition_count == rounds * workers

    def test_max_counter_keeps_high_water_mark(self):
        stats = EngineStats()

        def raise_to(values):
            for v in values:
                stats.max_counter("peak_resident_edges", v)

        threads = [
            threading.Thread(target=raise_to, args=(range(i, 400, 7),))
            for i in range(7)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.peak_resident_edges == max(
            max(range(i, 400, 7)) for i in range(7)
        )

    def test_record_superstep_is_lossless_under_contention(self):
        stats = EngineStats()
        per_thread, workers = 200, 6

        def record():
            for i in range(per_thread):
                stats.record_superstep(
                    SuperstepRecord(
                        pair=(0, 0),
                        iterations=1,
                        edges_added=i,
                        seconds=0.0,
                        completed=True,
                        num_partitions_after=1,
                    )
                )

        threads = [threading.Thread(target=record) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.num_supersteps == per_thread * workers

    def test_summary_reports_delta_fields(self):
        stats = EngineStats()
        stats.closure_source = "incremental"
        stats.delta_added_edges = 3
        stats.delta_seed_partitions = 1
        summary = stats.summary()
        assert summary["closure_source"] == "incremental"
        assert summary["delta_added_edges"] == 3
        assert summary["delta_seed_partitions"] == 1
