"""Tests for the GraspanEngine driver: in-memory, out-of-core, alignment."""

import pytest

from repro.engine import GraspanEngine, RoundRobinScheduler, naive_closure
from repro.graph import MemGraph
from repro.grammar import GrammarError


def closure_set(computation):
    return set(computation.pset.iter_all_edges())


class TestInMemory:
    def test_chain(self, reach, chain_graph):
        comp = GraspanEngine(reach).run(chain_graph)
        assert closure_set(comp) == naive_closure(chain_graph.edges(), reach)

    def test_stats_populated(self, reach, chain_graph):
        comp = GraspanEngine(reach).run(chain_graph)
        s = comp.stats
        assert s.original_edges == chain_graph.num_edges
        assert s.final_edges == comp.num_edges
        assert s.num_supersteps >= 1
        assert s.growth_factor > 1.0
        assert s.initial_partitions == 2  # in-memory mode default

    def test_result_queries(self, reach, chain_graph):
        comp = GraspanEngine(reach).run(chain_graph)
        src, dst = comp.edges_with_label_arrays("R")
        r_edges = list(zip(src.tolist(), dst.tolist()))
        assert (0, 9) in r_edges
        src, dst = comp.edges_with_label_arrays("R")
        assert set(zip(src.tolist(), dst.tolist())) == set(r_edges)
        counts = comp.count_by_label()
        assert counts["R"] == len(r_edges)

    def test_empty_label_query(self, reach, chain_graph):
        comp = GraspanEngine(reach).run(chain_graph)
        with pytest.raises(GrammarError):
            comp.edges_with_label_arrays("nope")

    def test_iter_edges_deprecated_but_equivalent(self, reach, chain_graph):
        comp = GraspanEngine(reach).run(chain_graph)
        with pytest.warns(DeprecationWarning):
            pairs = list(comp.iter_edges_with_label("R"))
        src, dst = comp.edges_with_label_arrays("R")
        assert pairs == list(zip(src.tolist(), dst.tolist()))


class TestOutOfCore:
    def test_matches_in_memory(self, reach, chain_graph, tmp_path):
        mem = GraspanEngine(reach).run(chain_graph)
        ooc = GraspanEngine(
            reach, max_edges_per_partition=3, workdir=tmp_path
        ).run(chain_graph)
        assert closure_set(ooc) == closure_set(mem)

    def test_repartitioning_triggered(self, reach, tmp_path):
        edges = [(i, i + 1, 0) for i in range(40)]
        graph = MemGraph.from_edges(edges, label_names=["E"])
        comp = GraspanEngine(
            reach, max_edges_per_partition=15, workdir=tmp_path
        ).run(graph)
        assert comp.stats.repartition_count > 0
        assert comp.stats.final_partitions > comp.stats.initial_partitions
        assert closure_set(comp) == naive_closure(edges, reach)

    def test_round_robin_scheduler_agrees(self, reach, chain_graph, tmp_path):
        ddm = GraspanEngine(
            reach, max_edges_per_partition=4, workdir=tmp_path / "a"
        ).run(chain_graph)
        rr = GraspanEngine(
            reach,
            max_edges_per_partition=4,
            workdir=tmp_path / "b",
            scheduler=RoundRobinScheduler(),
        ).run(chain_graph)
        assert closure_set(ddm) == closure_set(rr)

    def test_io_time_recorded(self, reach, chain_graph, tmp_path):
        comp = GraspanEngine(
            reach, max_edges_per_partition=3, workdir=tmp_path
        ).run(chain_graph)
        assert comp.stats.timers.get("io") > 0

    def test_load_resident_survives_workdir(self, reach, chain_graph, tmp_path):
        import shutil

        comp = GraspanEngine(
            reach, max_edges_per_partition=3, workdir=tmp_path / "w"
        ).run(chain_graph).load_resident()
        shutil.rmtree(tmp_path / "w")
        src, dst = comp.edges_with_label_arrays("R")
        assert (0, 9) in list(zip(src.tolist(), dst.tolist()))

    def test_max_supersteps_guard(self, reach, chain_graph, tmp_path):
        engine = GraspanEngine(
            reach,
            max_edges_per_partition=3,
            workdir=tmp_path,
            max_supersteps=1,
        )
        with pytest.raises(RuntimeError, match="max_supersteps"):
            engine.run(chain_graph)


class TestLabelAlignment:
    def test_graph_labels_remapped_by_name(self, reach):
        # graph interned E with a different id position than the grammar
        graph = MemGraph.from_edges([(0, 1, 1)], label_names=["R", "E"])
        comp = GraspanEngine(reach).run(graph)
        assert (0, 1, reach.label_id("E")) in closure_set(comp)

    def test_unknown_label_rejected(self, reach):
        graph = MemGraph.from_edges([(0, 1, 0)], label_names=["Z"])
        with pytest.raises(GrammarError):
            GraspanEngine(reach).run(graph)

    def test_missing_label_names_rejected(self, reach):
        graph = MemGraph.from_edges([(0, 1, 0)])
        with pytest.raises(ValueError):
            GraspanEngine(reach).run(graph)

    def test_aligned_graph_passthrough(self, reach):
        graph = MemGraph.from_edges([(0, 1, 0)], label_names=list(reach.names))
        comp = GraspanEngine(reach).run(graph)
        assert comp.num_edges >= 1


class TestMidSuperstepLimit:
    def test_limit_is_twice_partition_budget(self, reach):
        """Regression: the budget was doubled twice (2 * max * growth * 2),
        silently quadrupling the documented resident-edge ceiling."""
        engine = GraspanEngine(
            reach, max_edges_per_partition=15, repartition_growth=2.0
        )
        assert engine.mid_superstep_limit() == 60  # 2 * 15 * 2.0

    def test_limit_disabled_in_memory_mode(self, reach):
        assert GraspanEngine(reach).mid_superstep_limit() == 0

    def test_growth_below_one_clamped(self, reach):
        engine = GraspanEngine(
            reach, max_edges_per_partition=10, repartition_growth=0.5
        )
        assert engine.mid_superstep_limit() == 20

    def test_limit_triggers_incomplete_supersteps(self, reach, tmp_path):
        """With small partitions the bail-out must actually fire — at the
        quadrupled limit this run completed every superstep in one go."""
        edges = [(i, i + 1, 0) for i in range(40)]
        graph = MemGraph.from_edges(edges, label_names=["E"])
        comp = GraspanEngine(
            reach, max_edges_per_partition=15, workdir=tmp_path
        ).run(graph)
        assert any(not r.completed for r in comp.stats.supersteps)
        assert closure_set(comp) == naive_closure(edges, reach)


class TestThreadsAndDeterminism:
    def test_num_threads_same_result(self, dyck, tmp_path):
        import random

        rnd = random.Random(11)
        edges = [(rnd.randrange(12), rnd.randrange(12), rnd.randrange(2)) for _ in range(40)]
        graph = MemGraph.from_edges(edges, num_vertices=12, label_names=["OP", "CL"])
        one = GraspanEngine(dyck, num_threads=1).run(graph)
        four = GraspanEngine(dyck, num_threads=4).run(graph)
        assert closure_set(one) == closure_set(four)

    def test_runs_are_deterministic(self, dyck):
        import random

        rnd = random.Random(13)
        edges = [(rnd.randrange(10), rnd.randrange(10), rnd.randrange(2)) for _ in range(30)]
        graph = MemGraph.from_edges(edges, num_vertices=10, label_names=["OP", "CL"])
        a = GraspanEngine(dyck).run(graph)
        b = GraspanEngine(dyck).run(graph)
        assert closure_set(a) == closure_set(b)
        assert a.stats.num_supersteps == b.stats.num_supersteps
