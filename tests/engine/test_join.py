"""Tests for the vectorized edge-pair join core."""

import numpy as np

from repro.engine.join import CsrView, apply_unary_closure, join_edges
from repro.graph import from_pairs, packed
from repro.grammar import Grammar


class TestCsrView:
    def test_from_dict(self):
        view = CsrView.from_dict(
            {3: from_pairs([(1, 0)]), 1: from_pairs([(2, 0), (3, 0)])}
        )
        assert list(view.vertices) == [1, 3]
        assert view.num_edges == 3

    def test_empty(self):
        view = CsrView.from_dict({})
        assert view.num_edges == 0

    def test_skips_empty_lists(self):
        view = CsrView.from_dict({1: packed.EMPTY, 2: from_pairs([(0, 0)])})
        assert list(view.vertices) == [2]

    def test_rows_for(self):
        view = CsrView.from_dict({1: from_pairs([(0, 0)]), 5: from_pairs([(0, 0)])})
        rows, valid = view.rows_for(np.asarray([0, 1, 5, 9], dtype=np.int64))
        assert list(valid) == [False, True, True, False]
        assert rows[1] == 0 and rows[2] == 1


class TestApplyUnaryClosure:
    def test_noop_without_unary_rules(self):
        g = Grammar()
        g.add_constraint("S", "A", "B")
        frozen = g.freeze()
        keys = from_pairs([(1, frozen.label_id("A"))])
        assert np.array_equal(apply_unary_closure(keys, frozen), keys)

    def test_expands_derivable_labels(self, reach):
        e, r = reach.label_id("E"), reach.label_id("R")
        keys = from_pairs([(1, e)])
        expanded = apply_unary_closure(keys, reach)
        assert packed.to_pairs(expanded) == [(1, e), (1, r)]

    def test_idempotent(self, reach):
        keys = from_pairs([(1, reach.label_id("E")), (7, reach.label_id("E"))])
        once = apply_unary_closure(keys, reach)
        twice = apply_unary_closure(once, reach)
        assert np.array_equal(once, twice)

    def test_empty_input(self, reach):
        assert len(apply_unary_closure(packed.EMPTY, reach)) == 0


class TestJoinEdges:
    def test_basic_join(self, reach):
        e, r = reach.label_id("E"), reach.label_id("R")
        # left: 0 -R-> 1 ; right: 1 -E-> 2  =>  0 -R-> 2
        left_src = np.asarray([0], dtype=np.int64)
        left_keys = from_pairs([(1, r)])
        right = CsrView.from_dict({1: from_pairs([(2, e)])})
        src, keys = join_edges(left_src, left_keys, right, reach, reach.head_labels())
        assert packed.to_pairs(keys) == [(2, r)]
        assert list(src) == [0]

    def test_no_match_on_wrong_labels(self, reach):
        e = reach.label_id("E")
        # E cannot be rhs1 in R ::= R E (only R can); E alone derives R
        # via the unary rule — but raw E-E pairs have no binary cell.
        left_src = np.asarray([0], dtype=np.int64)
        left_keys = from_pairs([(1, e)])
        right = CsrView.from_dict({1: from_pairs([(2, e)])})
        src, keys = join_edges(left_src, left_keys, right, reach, reach.head_labels())
        assert len(src) == 0

    def test_missing_target_vertex_skipped(self, reach):
        r = reach.label_id("R")
        left_src = np.asarray([0], dtype=np.int64)
        left_keys = from_pairs([(9, r)])  # vertex 9 not in right view
        right = CsrView.from_dict({1: from_pairs([(2, reach.label_id("E"))])})
        src, _ = join_edges(left_src, left_keys, right, reach, reach.head_labels())
        assert len(src) == 0

    def test_fan_out(self, reach):
        e, r = reach.label_id("E"), reach.label_id("R")
        left_src = np.asarray([0], dtype=np.int64)
        left_keys = from_pairs([(1, r)])
        right = CsrView.from_dict({1: from_pairs([(2, e), (3, e), (4, e)])})
        src, keys = join_edges(left_src, left_keys, right, reach, reach.head_labels())
        assert sorted(packed.targets_of(keys)) == [2, 3, 4]

    def test_empty_inputs(self, reach):
        right = CsrView.from_dict({})
        src, keys = join_edges(
            packed.EMPTY, packed.EMPTY, right, reach, reach.head_labels()
        )
        assert len(src) == 0 and len(keys) == 0

    def test_matched_slot_with_empty_results_returns_empty(self):
        """Regression: a matched slot with an empty result set must yield
        the empty candidate arrays, not ``ValueError: need at least one
        array to concatenate``."""
        g = Grammar()
        g.add_constraint("X", "A", "B")
        frozen = g.freeze()
        a, b = frozen.label_id("A"), frozen.label_id("B")
        # Degenerate grammar: the (A, B) cell matches but produces nothing.
        frozen.binary_results[int(frozen.binary_index[a, b])] = packed.EMPTY
        left_src = np.asarray([0], dtype=np.int64)
        left_keys = from_pairs([(1, a)])
        right = CsrView.from_dict({1: from_pairs([(2, b)])})
        src, keys = join_edges(
            left_src, left_keys, right, frozen, frozen.head_labels()
        )
        assert len(src) == 0 and len(keys) == 0

    def test_multi_lhs_production(self):
        """A pair producing two labels yields both edges."""
        g = Grammar()
        g.add_constraint("X", "A", "B")
        g.add_constraint("Y", "A", "B")
        frozen = g.freeze()
        a, b = frozen.label_id("A"), frozen.label_id("B")
        left_src = np.asarray([0], dtype=np.int64)
        left_keys = from_pairs([(1, a)])
        right = CsrView.from_dict({1: from_pairs([(2, b)])})
        src, keys = join_edges(left_src, left_keys, right, frozen, frozen.head_labels())
        labels = sorted(
            frozen.label_name(int(l)) for l in packed.labels_of(keys)
        )
        assert labels == ["X", "Y"]
