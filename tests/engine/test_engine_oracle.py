"""Property-based equivalence: the engine vs the brute-force closure.

The single most important invariant in the repository: for ANY graph and
ANY grammar, the EP-centric engine — in-memory or out-of-core, with any
partitioning — must produce exactly the closure the naive reference
computes.  hypothesis drives random graphs through both.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import GraspanEngine, naive_closure
from repro.graph import MemGraph
from repro.grammar import dyck_grammar, pointsto_grammar, reachability_grammar

from repro.grammar import pointsto_grammar_extended

GRAMMARS = {
    "reach": reachability_grammar(),
    "dyck": dyck_grammar(),
    "pointsto": pointsto_grammar(),
    "pointsto_ext": pointsto_grammar_extended(),
}


def random_edges(draw, num_vertices, num_edges, num_labels):
    return [
        (
            draw(st.integers(0, num_vertices - 1)),
            draw(st.integers(0, num_vertices - 1)),
            draw(st.integers(0, num_labels - 1)),
        )
        for _ in range(num_edges)
    ]


@st.composite
def reach_graphs(draw):
    n = draw(st.integers(2, 12))
    edges = random_edges(draw, n, draw(st.integers(1, 20)), 1)
    return MemGraph.from_edges(edges, num_vertices=n, label_names=["E"])


@st.composite
def dyck_graphs(draw):
    n = draw(st.integers(2, 12))
    edges = random_edges(draw, n, draw(st.integers(1, 22)), 2)
    return MemGraph.from_edges(edges, num_vertices=n, label_names=["OP", "CL"])


@st.composite
def pointsto_graphs(draw):
    """Random graphs over the six pointer-terminal labels, with inverse
    edges added the way the frontend would."""
    grammar = GRAMMARS["pointsto"]
    n = draw(st.integers(2, 10))
    base = random_edges(draw, n, draw(st.integers(1, 14)), 3)  # M, A, D
    edges = []
    for s, d, l in base:
        name = grammar.label_name(l)
        edges.append((s, d, l))
        edges.append((d, s, grammar.label_id(name + "_bar")))
    return MemGraph.from_edges(
        edges, num_vertices=n, label_names=list(grammar.names[:6])
    )


def engine_closure(graph, grammar, **engine_opts):
    comp = GraspanEngine(grammar, **engine_opts).run(graph)
    return set(comp.pset.iter_all_edges())


def oracle_closure(graph, grammar):
    from repro.engine.engine import align_graph_labels

    aligned = align_graph_labels(graph, grammar)
    return naive_closure(aligned.edges(), grammar)


@given(reach_graphs())
@settings(max_examples=40, deadline=None)
def test_reachability_matches_oracle(graph):
    grammar = GRAMMARS["reach"]
    assert engine_closure(graph, grammar) == oracle_closure(graph, grammar)


@given(dyck_graphs())
@settings(max_examples=40, deadline=None)
def test_dyck_matches_oracle(graph):
    grammar = GRAMMARS["dyck"]
    assert engine_closure(graph, grammar) == oracle_closure(graph, grammar)


@given(pointsto_graphs())
@settings(max_examples=30, deadline=None)
def test_pointsto_matches_oracle(graph):
    grammar = GRAMMARS["pointsto"]
    assert engine_closure(graph, grammar) == oracle_closure(graph, grammar)


@st.composite
def small_pointsto_graphs(draw):
    """Tiny graphs for the extended grammar (its VA relation is dense)."""
    grammar = GRAMMARS["pointsto_ext"]
    n = draw(st.integers(2, 7))
    base = random_edges(draw, n, draw(st.integers(1, 9)), 3)
    edges = []
    for s, d, l in base:
        name = grammar.label_name(l)
        edges.append((s, d, l))
        edges.append((d, s, grammar.label_id(name + "_bar")))
    return MemGraph.from_edges(
        edges, num_vertices=n, label_names=list(grammar.names[:6])
    )


@given(small_pointsto_graphs())
@settings(max_examples=25, deadline=None)
def test_extended_pointsto_matches_oracle(graph):
    grammar = GRAMMARS["pointsto_ext"]
    assert engine_closure(graph, grammar) == oracle_closure(graph, grammar)


@given(graph=dyck_graphs(), max_edges=st.integers(2, 8))
@settings(max_examples=20, deadline=None)
def test_out_of_core_matches_oracle(graph, max_edges, tmp_path_factory):
    """Any partitioning must not change the answer."""
    grammar = GRAMMARS["dyck"]
    workdir = tmp_path_factory.mktemp("ooc")
    got = engine_closure(
        graph, grammar, max_edges_per_partition=max_edges, workdir=workdir
    )
    assert got == oracle_closure(graph, grammar)


@given(dyck_graphs(), st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_partition_count_is_irrelevant(graph, num_partitions):
    grammar = GRAMMARS["dyck"]
    got = engine_closure(graph, grammar, num_partitions=num_partitions)
    assert got == oracle_closure(graph, grammar)
