"""Matmul backend equivalence: byte-identical to the serial edge-pair join.

The contract (DESIGN.md §11): lowering an iteration to per-label boolean
sparse matrix products changes *how* candidate edges are produced, never
*which* deduplicated candidates survive the sorted merge — so every
observable output (per-iteration state, iteration counts, memory-limit
early-stop boundaries, resumed closures) must match the serial backend
bit for bit.
"""

import os

import numpy as np
import pytest

import repro.engine.matmul as matmul_mod
from repro.engine import GraspanEngine, run_superstep
from repro.engine.join import CsrView
from repro.engine.matmul import MatmulJoinBackend, scipy_available
from repro.engine.parallel import SerialJoinBackend, make_backend
from repro.frontend import pointer_graph
from repro.graph import from_pairs, packed
from repro.partition.storage import PartitionCorruptError
from repro.util.faults import FaultInjector, FaultPlan, InjectedCrash
from repro.workloads import workload_by_name

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="scipy not installed"
)

#: (workload name, scale) pairs for the engine-level equivalence matrix.
WORKLOADS = [("httpd", 0.3), ("postgresql", 0.05), ("linux", 0.05)]


def adjacency_of(edges):
    by_src = {}
    for s, d, l in edges:
        by_src.setdefault(s, []).append((d, l))
    return {v: from_pairs(pairs) for v, pairs in by_src.items()}


def assert_results_identical(serial, mm):
    """Superstep results must match byte for byte, not just as sets."""
    assert serial.completed == mm.completed
    assert serial.iterations == mm.iterations
    assert serial.edges_added == mm.edges_added
    assert np.array_equal(serial.added_src, mm.added_src)
    assert np.array_equal(serial.added_keys, mm.added_keys)
    assert set(serial.adjacency) == set(mm.adjacency)
    for v, keys in serial.adjacency.items():
        assert np.array_equal(keys, mm.adjacency[v]), f"vertex {v}"


def run_both(adjacency, grammar, **kwargs):
    serial = run_superstep(dict(adjacency), grammar, **kwargs)
    with make_backend("matmul", grammar, 1) as backend:
        mm = run_superstep(dict(adjacency), grammar, backend=backend, **kwargs)
    return serial, mm, backend


@pytest.fixture(scope="module")
def graphs():
    return {
        name: pointer_graph(workload_by_name(name, scale=scale).compile())
        for name, scale in WORKLOADS
    }


def closure_arrays(graph, grammar, backend, **kwargs):
    engine = GraspanEngine(grammar, parallel_backend=backend, **kwargs)
    comp = engine.run(graph)
    mem = comp.to_memgraph()
    return np.asarray(mem.src).copy(), np.asarray(mem.keys).copy(), comp.stats


@needs_scipy
class TestSuperstepEquivalence:
    """Byte-identity at the run_superstep level, grammar by grammar."""

    def test_random_graphs_all_grammars(self, reach, dyck, pointsto_ext):
        import random

        rnd = random.Random(29)
        for grammar, num_labels in ((reach, 1), (dyck, 2), (pointsto_ext, 4)):
            for trial in range(4):
                edges = list(
                    {
                        (
                            rnd.randrange(25),
                            rnd.randrange(25),
                            rnd.randrange(num_labels),
                        )
                        for _ in range(60)
                    }
                )
                serial, mm, _ = run_both(adjacency_of(edges), grammar)
                assert_results_identical(serial, mm)

    def test_memory_limit_early_stop_identical(self, reach):
        """The mid-superstep bail-out must trip at the same iteration with
        the same partial state — matmul may not change the growth order."""
        e = reach.label_id("E")
        edges = [(i, i + 1, e) for i in range(30)]
        serial, mm, _ = run_both(
            adjacency_of(edges), reach, memory_limit_edges=40
        )
        assert not serial.completed
        assert_results_identical(serial, mm)

    def test_unary_closure_only(self, reach):
        """A superstep whose only derivations are unary (E => R) yields
        no binary product nonzeros; the closure must still match."""
        e = reach.label_id("E")
        serial, mm, backend = run_both({0: from_pairs([(1, e)])}, reach)
        assert_results_identical(serial, mm)
        assert backend.telemetry.matmul_nnz == 0

    def test_empty_adjacency(self, reach):
        serial, mm, _ = run_both({}, reach)
        assert_results_identical(serial, mm)
        assert mm.iterations == 0

    def test_empty_operands_short_circuit(self, reach):
        """Empty left arrays / empty right views return EMPTY directly."""
        with make_backend("matmul", reach, 1) as backend:
            backend.begin_superstep()
            backend.begin_iteration()
            view = CsrView.from_dict({})
            src, keys = backend.join_edge_list(
                packed.EMPTY, packed.EMPTY, view, [view]
            )
            assert len(src) == 0 and len(keys) == 0

    def test_dim_guard_falls_back_to_edge_pairs(self, reach, monkeypatch):
        """Vertex ids past MAX_MATMUL_DIM take the inline edge-pair path
        per call — same closure, zero products formed."""
        monkeypatch.setattr(matmul_mod, "MAX_MATMUL_DIM", 8)
        e = reach.label_id("E")
        edges = [(i * 7, (i + 1) * 7, e) for i in range(6)]
        serial, mm, backend = run_both(adjacency_of(edges), reach)
        assert_results_identical(serial, mm)
        assert backend.telemetry.matmul_products == 0

    def test_block_reuse_across_iterations(self, reach):
        """A multi-iteration fixed point must reuse O's untouched label
        blocks via note_union instead of rebuilding every snapshot."""
        e = reach.label_id("E")
        edges = [(i, i + 1, e) for i in range(12)]
        _, _, backend = run_both(adjacency_of(edges), reach)
        t = backend.telemetry
        assert t.matmul_products > 0
        assert t.matmul_nnz > 0
        assert t.matmul_blocks_built > 0
        assert t.matmul_blocks_reused > 0


@needs_scipy
class TestEngineEquivalence:
    """Closure arrays identical to serial across the workload matrix."""

    def test_in_memory_identical(self, graphs, pointsto_ext):
        for name, graph in graphs.items():
            s_src, s_keys, _ = closure_arrays(graph, pointsto_ext, "serial")
            m_src, m_keys, stats = closure_arrays(graph, pointsto_ext, "matmul")
            assert np.array_equal(s_src, m_src), name
            assert np.array_equal(s_keys, m_keys), name
            assert all(r.backend == "matmul" for r in stats.supersteps)
            mm = stats.matmul_summary()
            assert mm["products"] > 0 and mm["blocks_built"] > 0

    def test_out_of_core_with_budget_identical(self, graphs, pointsto_ext, tmp_path):
        name, graph = "postgresql", graphs["postgresql"]
        max_edges = max(100, graph.num_edges // 2)
        kwargs = dict(
            max_edges_per_partition=max_edges,
            memory_budget=1 << 22,
        )
        s_src, s_keys, _ = closure_arrays(
            graph, pointsto_ext, "serial", workdir=tmp_path / "serial", **kwargs
        )
        m_src, m_keys, stats = closure_arrays(
            graph, pointsto_ext, "matmul", workdir=tmp_path / "matmul", **kwargs
        )
        assert np.array_equal(s_src, m_src), name
        assert np.array_equal(s_keys, m_keys), name
        assert stats.evictions >= 0  # budget path actually engaged

    def test_crash_resume_identical(self, graphs, pointsto_ext, tmp_path):
        """Crash a matmul run after a commit; the matmul resume must land
        on the serial uninterrupted closure byte for byte."""
        graph = graphs["postgresql"]
        max_edges = max(100, graph.num_edges // 2)
        s_src, s_keys, _ = closure_arrays(
            graph,
            pointsto_ext,
            "serial",
            max_edges_per_partition=max_edges,
            workdir=tmp_path / "serial",
        )
        workdir = tmp_path / "crash"
        injector = FaultInjector(FaultPlan(crash_after_commit=2))
        with pytest.raises(InjectedCrash):
            GraspanEngine(
                pointsto_ext,
                parallel_backend="matmul",
                max_edges_per_partition=max_edges,
                workdir=workdir,
                fault_injector=injector,
            ).run(graph)
        resumed = GraspanEngine(
            pointsto_ext,
            parallel_backend="matmul",
            max_edges_per_partition=max_edges,
            workdir=workdir,
        ).run(graph, resume=True)
        mem = resumed.to_memgraph()
        assert np.array_equal(s_src, np.asarray(mem.src))
        assert np.array_equal(s_keys, np.asarray(mem.keys))
        assert resumed.stats.resumed_from_superstep is not None

    def test_seeded_random_fault_is_survivable_or_detected(
        self, graphs, pointsto_ext, tmp_path
    ):
        """The CI matmul-backend job's fault variant: one seeded random
        fault (REPRO_FAULT_SEED) through the matmul data plane.  Crashes
        must be resumable, transient errnos absorbed, corruption
        detected — never a wrong closure."""
        graph = graphs["postgresql"]
        max_edges = max(100, graph.num_edges // 2)
        s_src, s_keys, _ = closure_arrays(
            graph, pointsto_ext, "serial", max_edges_per_partition=max_edges,
            workdir=tmp_path / "serial",
        )
        seed = int(os.environ.get("REPRO_FAULT_SEED", "1"))
        plan = FaultPlan.random(seed)
        workdir = tmp_path / "seeded"

        def engine(injector=None):
            return GraspanEngine(
                pointsto_ext,
                parallel_backend="matmul",
                max_edges_per_partition=max_edges,
                workdir=workdir,
                fault_injector=injector,
            )

        injector = FaultInjector(plan)
        try:
            computation = engine(injector).run(graph)
        except InjectedCrash:
            computation = engine().run(graph, resume=True)
            if injector.commits > 0:
                assert computation.stats.resumed_from_superstep is not None
        except PartitionCorruptError:
            assert plan.flip_byte_at_write is not None
            return  # detection is the guarantee for corruption faults
        mem = computation.to_memgraph()
        assert np.array_equal(s_src, np.asarray(mem.src))
        assert np.array_equal(s_keys, np.asarray(mem.keys))


class TestScipyFallback:
    def test_make_backend_degrades_to_serial(self, reach, monkeypatch, caplog):
        monkeypatch.setattr(matmul_mod, "_sparse", None)
        with caplog.at_level("WARNING"):
            backend = make_backend("matmul", reach, 1)
        assert isinstance(backend, SerialJoinBackend)
        assert backend.display_name == "serial(matmul-fallback)"
        assert any("scipy" in r.message for r in caplog.records)

    def test_constructor_requires_scipy(self, reach, monkeypatch):
        monkeypatch.setattr(matmul_mod, "_sparse", None)
        with pytest.raises(RuntimeError, match="scipy"):
            MatmulJoinBackend(reach)

    def test_fallback_engine_still_closes(self, reach, chain_graph, monkeypatch):
        monkeypatch.setattr(matmul_mod, "_sparse", None)
        comp = GraspanEngine(reach, parallel_backend="matmul").run(chain_graph)
        assert comp.num_edges > chain_graph.num_edges
        assert all(
            r.backend == "serial(matmul-fallback)"
            for r in comp.stats.supersteps
        )
