"""Direct tests for the brute-force reference closure (the oracle itself).

The oracle verifies everything else, so it gets hand-computed cases of
its own.
"""

from repro.engine import naive_closure
from repro.grammar import Grammar


def grammar_rs():
    g = Grammar()
    g.add_constraint("R", "E")
    g.add_constraint("R", "R", "E")
    return g.freeze()


class TestNaiveClosure:
    def test_empty(self):
        assert naive_closure([], grammar_rs()) == set()

    def test_single_edge(self):
        g = grammar_rs()
        e, r = g.label_id("E"), g.label_id("R")
        assert naive_closure([(0, 1, e)], g) == {(0, 1, e), (0, 1, r)}

    def test_two_hop_chain_hand_computed(self):
        g = grammar_rs()
        e, r = g.label_id("E"), g.label_id("R")
        got = naive_closure([(0, 1, e), (1, 2, e)], g)
        assert got == {
            (0, 1, e),
            (1, 2, e),
            (0, 1, r),
            (1, 2, r),
            (0, 2, r),
        }

    def test_cycle_closes_completely(self):
        g = grammar_rs()
        e, r = g.label_id("E"), g.label_id("R")
        got = naive_closure([(0, 1, e), (1, 0, e)], g)
        r_facts = {(s, d) for s, d, l in got if l == r}
        assert r_facts == {(0, 1), (1, 0), (0, 0), (1, 1)}

    def test_duplicate_input_edges_harmless(self):
        g = grammar_rs()
        e = g.label_id("E")
        a = naive_closure([(0, 1, e), (0, 1, e)], g)
        b = naive_closure([(0, 1, e)], g)
        assert a == b

    def test_backward_extension(self):
        """A fact discovered late must extend edges that arrived earlier
        (the `incoming` half of the worklist step)."""
        g = Grammar()
        g.add_constraint("S", "A", "B")
        g.add_constraint("B", "C")  # B derived late via unary rule
        frozen = g.freeze()
        a, c, s = (frozen.label_id(x) for x in ("A", "C", "S"))
        got = naive_closure([(0, 1, a), (1, 2, c)], frozen)
        assert (0, 2, s) in got
