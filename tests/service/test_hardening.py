"""Hardened service tier: backpressure, deadlines, drain, degradation.

These tests drive the daemon over real sockets in hostile conditions —
oversized frames, saturation, corrupt store entries, mid-request
restarts — and assert the failure modes are *typed and bounded*: every
request ends in a result, a typed shed (``overloaded`` / ``draining`` /
``deadline`` / ``protocol-error``), or a :class:`ServiceUnavailable`
after the client's retry budget, never a silently dropped connection or
a wrong answer.
"""

from __future__ import annotations

import socket
import threading
import time
import warnings

import numpy as np
import pytest

from repro.engine.checkpoint import MANIFEST_NAME
from repro.engine.store import ClosureStore
from repro.grammar.builtin import reachability_grammar
from repro.graph.graph import MemGraph
from repro.service import (
    ServiceClient,
    ServiceError,
    ServiceThread,
    ServiceUnavailable,
    decode_message,
    encode_message,
)
from repro.util.retry import RetryPolicy

from tests.service.test_daemon import SERVICE_SOURCE, make_daemon

def _variant(i):
    source = SERVICE_SOURCE
    for name in ("shared", "make", "risky", "handle"):
        source = source.replace(name, f"{name}_{i}")
    return source


#: A load that takes long enough (~0.4s) to observably occupy the
#: daemon: many modules, each a renamed copy of the service program so
#: the linked graph stays collision-free.
SLOW_SOURCES = [(f"mod{i}", _variant(i)) for i in range(16)]

#: No retries: the typed first response is the assertion target.
ONE_SHOT = RetryPolicy(attempts=1)


def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# oversized frames
# ---------------------------------------------------------------------------


class TestOversizedFrames:
    def test_typed_error_and_connection_survives(self, tmp_path):
        daemon = make_daemon(tmp_path, max_message_bytes=2048)
        with ServiceThread(daemon) as (host, port):
            with socket.create_connection((host, port), timeout=30) as sock:
                fh = sock.makefile("rwb")
                fh.write(b"x" * 5000 + b"\n")
                fh.flush()
                response = decode_message(fh.readline())
                assert response["ok"] is False
                assert response["kind"] == "protocol-error"
                assert response["limit"] == 2048
                # The same connection keeps working: the daemon drained
                # the oversized payload instead of desyncing or closing.
                fh.write(encode_message({"op": "ping"}))
                fh.flush()
                assert decode_message(fh.readline())["ok"] is True
            assert daemon.oversized_count == 1

    def test_two_oversized_frames_back_to_back(self, tmp_path):
        daemon = make_daemon(tmp_path, max_message_bytes=1024)
        with ServiceThread(daemon) as (host, port):
            with socket.create_connection((host, port), timeout=30) as sock:
                fh = sock.makefile("rwb")
                for _ in range(2):
                    fh.write(b"y" * 3000 + b"\n")
                    fh.flush()
                    assert (
                        decode_message(fh.readline())["kind"]
                        == "protocol-error"
                    )
                fh.write(encode_message({"op": "health"}))
                fh.flush()
                health = decode_message(fh.readline())
                assert health["ok"] and health["oversized_frames"] == 2


# ---------------------------------------------------------------------------
# backpressure and deadlines
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_excess_load_is_shed_with_typed_response(self, tmp_path):
        daemon = make_daemon(tmp_path, max_inflight=1, num_workers=2)
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port, retry=ONE_SHOT) as probe:
                slow = threading.Thread(
                    target=lambda: ServiceClient(host, port).load(
                        "slow", sources=SLOW_SOURCES
                    )
                )
                slow.start()
                try:
                    assert wait_for(
                        lambda: probe.health()["inflight"] >= 1
                    ), "the slow load never became in-flight"
                    with pytest.raises(ServiceUnavailable) as err:
                        probe.load("extra", source=SERVICE_SOURCE)
                    assert err.value.response["kind"] == "overloaded"
                    assert err.value.response["max_inflight"] == 1
                finally:
                    slow.join()
                health = probe.health()
                assert health["shed"] >= 1
                assert health["inflight"] == 0
            assert daemon.shed_count >= 1

    def test_health_is_never_shed(self, tmp_path):
        daemon = make_daemon(tmp_path, max_inflight=1)
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port) as client:
                health = client.health()
                assert health["ok"] is True
                assert health["inflight"] == 0
                assert health["draining"] is False
                assert health["shed"] == 0
                assert health["deadline_hits"] == 0
                assert health["degraded_to_cold"] == 0
                assert health["max_inflight"] == 1

    def test_client_retry_absorbs_transient_overload(self, tmp_path):
        daemon = make_daemon(tmp_path, max_inflight=1, num_workers=2)
        patient = RetryPolicy(
            attempts=10, base_delay=0.2, multiplier=1.5, max_delay=2.0,
            jitter=0.2,
        )
        with ServiceThread(daemon) as (host, port):
            slow = threading.Thread(
                target=lambda: ServiceClient(host, port).load(
                    "slow", sources=SLOW_SOURCES
                )
            )
            with ServiceClient(host, port, retry=ONE_SHOT) as probe:
                slow.start()
                try:
                    assert wait_for(lambda: probe.health()["inflight"] >= 1)
                    with ServiceClient(host, port, retry=patient) as client:
                        # Shed at first, admitted once the slot frees:
                        # the bounded backoff rides out the overload.
                        reports = client.check("slow", checker="Taint")
                        assert reports
                        assert client.retries >= 1
                finally:
                    slow.join()


class TestDeadlines:
    def test_deadline_exceeded_is_typed_and_counted(self, tmp_path):
        daemon = make_daemon(tmp_path, request_timeout=0.05)
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port, retry=ONE_SHOT) as client:
                with pytest.raises(ServiceError) as err:
                    client.load("svc", sources=SLOW_SOURCES)
                assert not isinstance(err.value, ServiceUnavailable)
                assert err.value.response["kind"] == "deadline"
                assert daemon.deadline_count == 1
                # The worker thread finishes in the background and the
                # in-flight slot is released — no load is silently lost
                # to a leaked slot.
                assert wait_for(lambda: client.health()["inflight"] == 0)


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_finishes_inflight_and_sheds_new_work(self, tmp_path):
        daemon = make_daemon(tmp_path, max_inflight=4, drain_grace=60.0)
        thread = ServiceThread(daemon)
        host, port = thread.start()
        slow_result = {}

        def run_slow():
            with ServiceClient(host, port) as c:
                slow_result["response"] = c.load("slow", sources=SLOW_SOURCES)

        try:
            with ServiceClient(host, port, retry=ONE_SHOT) as probe:
                slow = threading.Thread(target=run_slow)
                slow.start()
                assert wait_for(lambda: probe.health()["inflight"] >= 1)
                daemon.request_drain()
                assert wait_for(lambda: probe.health()["draining"])
                # New blocking work is refused with the draining kind...
                with pytest.raises(ServiceUnavailable) as err:
                    probe.load("late", source=SERVICE_SOURCE)
                assert err.value.response["kind"] == "draining"
                slow.join()
            # ...but the in-flight load ran to completion before the
            # server stopped.
            assert slow_result["response"]["ok"] is True
        finally:
            thread.stop()

    def test_drain_with_no_inflight_stops_promptly(self, tmp_path):
        daemon = make_daemon(tmp_path, drain_grace=60.0)
        thread = ServiceThread(daemon)
        host, port = thread.start()
        with ServiceClient(host, port) as client:
            assert client.ping()
        daemon.request_drain()
        thread._thread.join(timeout=30)
        assert not thread._thread.is_alive()


# ---------------------------------------------------------------------------
# client retry surface
# ---------------------------------------------------------------------------


class TestClientRetry:
    def test_service_unavailable_after_daemon_stops(self, tmp_path):
        daemon = make_daemon(tmp_path)
        thread = ServiceThread(daemon)
        host, port = thread.start()
        quick = RetryPolicy(attempts=2, base_delay=0.01)
        client = ServiceClient(host, port, retry=quick)
        assert client.ping()
        thread.stop()
        with pytest.raises(ServiceUnavailable, match="after 2 attempts"):
            client.ping()
        assert client.retries >= 1
        client.close()

    def test_definitive_errors_are_not_retried(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port) as client:
                before = client.retries
                with pytest.raises(ServiceError, match="unknown op"):
                    client.request({"op": "nope"})
                with pytest.raises(ServiceError, match="not loaded"):
                    client.check("ghost")
                assert client.retries == before


# ---------------------------------------------------------------------------
# store degradation
# ---------------------------------------------------------------------------


class TestStoreDegradation:
    GRAPH = [(0, 1, 0), (1, 2, 0), (2, 3, 0)]

    def make_store(self, tmp_path):
        store = ClosureStore(tmp_path / "store", max_edges_per_partition=2)
        grammar = reachability_grammar()
        graph = MemGraph.from_edges(
            self.GRAPH, num_vertices=4, label_names=["E"]
        )
        return store, grammar, graph

    def corrupt_entry(self, store, grammar, graph):
        from repro.engine.engine import align_graph_labels

        aligned = align_graph_labels(graph, grammar)
        entry = store.entry_dir(*store.graph_key(grammar, aligned))
        (entry / MANIFEST_NAME).write_text("{ not json")
        return entry

    def test_corrupt_entry_degrades_to_cold_with_one_shot_warning(
        self, tmp_path
    ):
        store, grammar, graph = self.make_store(tmp_path)
        first = store.closure(grammar, graph)
        reference = frozenset(first.pset.iter_all_edges())
        assert first.stats.closure_source == "cold"

        self.corrupt_entry(store, grammar, graph)
        with pytest.warns(RuntimeWarning, match="degrading to a cold"):
            second = store.closure(grammar, graph)
        assert store.degraded_to_cold == 1
        assert second.stats.closure_source == "cold"
        assert frozenset(second.pset.iter_all_edges()) == reference
        srt = second.to_memgraph()
        frt = first.to_memgraph()
        assert np.array_equal(srt.src, frt.src)
        assert np.array_equal(srt.keys, frt.keys)

        # The warning is one-shot; the counter keeps counting.
        self.corrupt_entry(store, grammar, graph)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            third = store.closure(grammar, graph)
        assert not [w for w in caught if w.category is RuntimeWarning]
        assert store.degraded_to_cold == 2
        assert frozenset(third.pset.iter_all_edges()) == reference

    def test_healthy_entries_still_hit_the_cache(self, tmp_path):
        store, grammar, graph = self.make_store(tmp_path)
        store.closure(grammar, graph)
        again = store.closure(grammar, graph)
        assert again.stats.closure_source == "cache"
        assert store.degraded_to_cold == 0
