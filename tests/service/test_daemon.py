"""Closure daemon tests: protocol, queries, concurrency, crash recovery.

The in-process tests run the daemon on a background thread
(:class:`~repro.service.daemon.ServiceThread`) against real sockets; the
subprocess test drives ``python -m repro serve`` end to end, kills it
mid-closure with an injected fault, and verifies a restarted daemon
resumes the interrupted store entry from its committed watermark.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.service import (
    ClosureDaemon,
    ProtocolError,
    ServiceClient,
    ServiceError,
    ServiceThread,
    decode_message,
    encode_message,
)
from repro.service.daemon import CRASH_EXIT_STATUS
from repro.util.faults import FaultInjector, FaultPlan

#: Interprocedural aliasing, NULL flow, and an unsanitized taint flow —
#: every analysis has something to find.
SERVICE_SOURCE = """
int *shared;

void *make(void) {
    int *fresh;
    fresh = malloc(8);
    return fresh;
}

void *risky(int n) {
    int *p;
    p = NULL;
    if (n) { p = malloc(8); }
    return p;
}

void handle(void) {
    int *a;
    int *b;
    int t;
    a = make();
    b = risky(0);
    *b = 1;
    t = input();
    *a = t;
    query(*a);
}
"""

ALL_CHECKER_NAMES = [
    "Block",
    "Null",
    "Range",
    "Lock",
    "Free",
    "Size",
    "PNull",
    "UNTest",
    "Race",
    "Taint",
    "Async",
]


def make_daemon(tmp_path, **kwargs):
    kwargs.setdefault("max_edges_per_partition", 32)
    return ClosureDaemon(tmp_path / "store", **kwargs)


# ---------------------------------------------------------------------------
# the wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_roundtrip(self):
        message = {"op": "load", "name": "x", "source": "int main() {}"}
        assert decode_message(encode_message(message)) == message

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1,2,3]\n")

    def test_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{not json\n")

    def test_unknown_op_is_an_error_response(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError, match="unknown op"):
                    client.request({"op": "frobnicate"})


# ---------------------------------------------------------------------------
# load / check / status over a live socket
# ---------------------------------------------------------------------------


class TestDaemonQueries:
    def test_ping_load_check_status(self, tmp_path):
        daemon = make_daemon(tmp_path, memory_budget=1 << 20)
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port) as client:
                assert client.ping()

                loaded = client.load("svc", source=SERVICE_SOURCE)
                assert loaded["program"] == "svc"
                assert set(loaded["closures"]) == {
                    "pointsto",
                    "nullflow",
                    "taintflow",
                    "taint",
                }
                assert all(
                    c["source"] in ("cold", "cache", "incremental")
                    for c in loaded["closures"].values()
                )

                response = client.request(
                    {"op": "check", "program": "svc", "mode": "augmented"}
                )
                assert response["checkers"] == ALL_CHECKER_NAMES
                reports = response["reports"]
                assert any(r["checker"] == "Taint" for r in reports)
                assert all(
                    {"checker", "function", "line", "message"} <= set(r)
                    for r in reports
                )

                null_only = client.check("svc", checker="Null")
                assert all(r["checker"] == "Null" for r in null_only)
                baseline = client.check("svc", checker="Null", mode="baseline")
                assert all(not r["interprocedural"] for r in baseline)

                status = client.status()
                svc = status["programs"]["svc"]
                assert svc["closures"]["pointsto"]["memory_budget"] == 1 << 20
                assert status["store_entries"] >= 1
                assert status["crashed"] is None

    def test_errors_do_not_kill_the_server(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError, match="not loaded"):
                    client.check("missing")
                with pytest.raises(ServiceError, match="needs source"):
                    client.request({"op": "load", "name": "empty"})
                with pytest.raises(ServiceError, match="unknown checker"):
                    client.load("svc", source=SERVICE_SOURCE)
                    client.check("svc", checker="Nonesuch")
                assert client.ping()  # still serving

    def test_reload_hits_the_cache(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port) as client:
                first = client.load("svc", source=SERVICE_SOURCE)
                assert any(
                    c["source"] == "cold" for c in first["closures"].values()
                )
                second = client.load("svc", source=SERVICE_SOURCE)
                assert all(
                    c["source"] == "cache" for c in second["closures"].values()
                )
                assert all(
                    c["supersteps"] == 0 for c in second["closures"].values()
                )


class TestConcurrentQueries:
    def test_eight_concurrent_clients_within_budget(self, tmp_path):
        budget = 64 * 1024
        daemon = make_daemon(
            tmp_path, memory_budget=budget, num_workers=8
        )
        with ServiceThread(daemon) as (host, port):
            with ServiceClient(host, port) as client:
                client.load("svc", source=SERVICE_SOURCE)

            errors = []
            reports_seen = []

            def hammer(checker):
                try:
                    with ServiceClient(host, port) as c:
                        for _ in range(3):
                            reports_seen.append(len(c.check("svc", checker=checker)))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            checkers = ["Null", "Taint", "Free", "Race", None, None, None, None]
            threads = [
                threading.Thread(target=hammer, args=(c,)) for c in checkers
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors

            with ServiceClient(host, port) as client:
                status = client.status()
            for label, closure in status["programs"]["svc"]["closures"].items():
                assert closure["memory_budget"] == budget
                # The serving-tier residency invariant: pinning plus
                # query loads never exceed budget + one partition.
                assert closure["peak_resident_bytes"] <= (
                    budget + closure["largest_partition_bytes"]
                ), label


# ---------------------------------------------------------------------------
# crash and recovery
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_injected_crash_reported_then_resumed(self, tmp_path):
        plan = FaultPlan(crash_after_commit=2)
        crashy = make_daemon(
            tmp_path, fault_injector=FaultInjector(plan), crash_mode="raise"
        )
        thread = ServiceThread(crashy)
        host, port = thread.start()
        try:
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError, match="injected crash") as err:
                    client.load("svc", source=SERVICE_SOURCE)
                assert err.value.response.get("crashed") is True
        finally:
            thread.stop()
        assert crashy.crashed is not None

        # A fresh daemon over the same store resumes the interrupted
        # entry from its committed watermark and completes the load.
        recovered = make_daemon(tmp_path)
        with ServiceThread(recovered) as (host, port):
            with ServiceClient(host, port) as client:
                loaded = client.load("svc", source=SERVICE_SOURCE)
                resumed = [
                    c
                    for c in loaded["closures"].values()
                    if c["resumed_from"] is not None
                ]
                assert resumed, "no closure resumed from the crashed entry"
                assert client.check("svc", checker="Taint")


@pytest.mark.slow
class TestServeSubprocess:
    def test_kill_restart_reserve(self, tmp_path):
        """The CLI daemon: killed mid-closure by a fault, restarted, re-served."""
        store = tmp_path / "store"
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"),
            REPRO_FAULT_CRASH_COMMIT="2",
        )
        args = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            str(store),
            "--port",
            "0",
            "--max-edges-per-partition",
            "32",
        ]
        proc = subprocess.Popen(
            args, env=env, stderr=subprocess.PIPE, text=True
        )
        try:
            port = None
            for line in proc.stderr:
                if line.startswith("serving on "):
                    port = int(line.rsplit(":", 1)[1])
                    break
            assert port is not None, "daemon never announced its port"
            with ServiceClient("127.0.0.1", port, timeout=120) as client:
                with pytest.raises(ServiceError, match="connection closed"):
                    client.load("svc", source=SERVICE_SOURCE)
            assert proc.wait(timeout=60) == CRASH_EXIT_STATUS
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # Restart without the fault: the interrupted entry resumes.
        env.pop("REPRO_FAULT_CRASH_COMMIT")
        proc = subprocess.Popen(
            args, env=env, stderr=subprocess.PIPE, text=True
        )
        try:
            port = None
            for line in proc.stderr:
                if line.startswith("serving on "):
                    port = int(line.rsplit(":", 1)[1])
                    break
            assert port is not None
            with ServiceClient("127.0.0.1", port, timeout=300) as client:
                loaded = client.load("svc", source=SERVICE_SOURCE)
                assert any(
                    c["resumed_from"] is not None
                    for c in loaded["closures"].values()
                )
                assert client.check("svc", checker="Taint")
                client.shutdown()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
