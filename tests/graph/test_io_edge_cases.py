"""Edge cases in the disk formats."""


from repro.graph import MemGraph, read_text, write_text


class TestTextFormatEdgeCases:
    def test_unnamed_label_falls_back_to_number(self, tmp_path):
        # only one name for two labels: label 1 renders as its number
        g = MemGraph.from_edges([(0, 1, 0), (0, 1, 1)], label_names=["A"])
        path = tmp_path / "g.tsv"
        write_text(g, path)
        assert "\t1\n" in path.read_text()

    def test_large_vertex_ids(self, tmp_path):
        g = MemGraph.from_edges([(10**9, 2 * 10**9, 0)], label_names=["E"])
        path = tmp_path / "g.tsv"
        write_text(g, path)
        loaded = read_text(path)
        assert list(loaded.edges()) == [(10**9, 2 * 10**9, 0)]

    def test_empty_graph_text_roundtrip(self, tmp_path):
        g = MemGraph.from_edges([], num_vertices=0, label_names=["E"])
        path = tmp_path / "g.tsv"
        write_text(g, path)
        loaded = read_text(path)
        assert loaded.num_edges == 0
        assert loaded.label_names == ("E",)
