"""Property-based tests for the packed sorted-array operations.

The engine's correctness hinges on these primitives agreeing with plain
Python set semantics; hypothesis hunts the edge cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import packed

key_arrays = st.lists(
    st.integers(0, 500), min_size=0, max_size=60
).map(lambda xs: np.unique(np.asarray(xs, dtype=np.int64)))


@given(st.lists(key_arrays, min_size=0, max_size=6))
@settings(max_examples=100, deadline=None)
def test_merge_unique_equals_set_union(arrays):
    merged = packed.merge_unique(arrays)
    expected = sorted(set().union(*[set(a.tolist()) for a in arrays]) if arrays else set())
    assert merged.tolist() == expected


@given(st.lists(key_arrays, min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_heap_merge_matches_vectorized(arrays):
    assert np.array_equal(
        packed.merge_unique(arrays), packed.heap_merge_unique(arrays)
    )


@given(key_arrays, key_arrays)
@settings(max_examples=100, deadline=None)
def test_setdiff_equals_set_difference(a, b):
    got = packed.setdiff_sorted(a, b).tolist()
    assert got == sorted(set(a.tolist()) - set(b.tolist()))


@given(key_arrays, key_arrays)
@settings(max_examples=100, deadline=None)
def test_isin_equals_membership(needles, hay)    :
    mask = packed.isin_sorted(needles, hay)
    hay_set = set(hay.tolist())
    assert [bool(m) for m in mask] == [x in hay_set for x in needles.tolist()]


@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(0, 255)),
        min_size=0,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_pack_roundtrip(pairs):
    keys = packed.from_pairs(pairs)
    assert packed.to_pairs(keys) == sorted(set(pairs))
