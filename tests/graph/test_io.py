"""Tests for the text and binary edge-list disk formats."""

import pytest

from repro.graph import (
    MemGraph,
    read_binary,
    read_text,
    write_binary,
    write_text,
)


@pytest.fixture
def graph():
    return MemGraph.from_edges(
        [(0, 1, 0), (1, 2, 1), (2, 0, 0)],
        num_vertices=4,
        label_names=["A", "D"],
    )


class TestTextFormat:
    def test_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.tsv"
        write_text(graph, path)
        loaded = read_text(path)
        assert list(loaded.edges()) == list(graph.edges())
        assert loaded.label_names == graph.label_names

    def test_human_readable_labels(self, graph, tmp_path):
        path = tmp_path / "g.tsv"
        write_text(graph, path)
        body = path.read_text()
        assert "\tA\n" in body and "\tD\n" in body

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("not an edge list\n")
        with pytest.raises(ValueError, match="not a graspan"):
            read_text(path)

    def test_malformed_line_rejected(self, graph, tmp_path):
        path = tmp_path / "g.tsv"
        write_text(graph, path)
        with path.open("a") as f:
            f.write("1 2 3\n")  # spaces, not tabs
        with pytest.raises(ValueError, match="malformed"):
            read_text(path)

    def test_unknown_label_rejected(self, graph, tmp_path):
        path = tmp_path / "g.tsv"
        write_text(graph, path)
        with path.open("a") as f:
            f.write("1\t2\tZZZ\n")
        with pytest.raises(ValueError, match="unknown label"):
            read_text(path)

    def test_comments_and_blanks_skipped(self, graph, tmp_path):
        path = tmp_path / "g.tsv"
        write_text(graph, path)
        with path.open("a") as f:
            f.write("\n# a comment\n")
        assert read_text(path).num_edges == graph.num_edges


class TestBinaryFormat:
    def test_roundtrip(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        write_binary(graph, path)
        loaded = read_binary(path)
        assert list(loaded.edges()) == list(graph.edges())
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.label_names == graph.label_names

    def test_empty_graph_roundtrip(self, tmp_path):
        g = MemGraph.from_edges([], num_vertices=5, label_names=["E"])
        path = tmp_path / "empty.npz"
        write_binary(g, path)
        loaded = read_binary(path)
        assert loaded.num_edges == 0
        assert loaded.num_vertices == 5
