"""Tests for MemGraph construction and queries."""

import numpy as np
import pytest

from repro.graph import MemGraph, add_inverse_edges


class TestConstruction:
    def test_from_edges_sorts_and_dedups(self):
        g = MemGraph.from_edges([(2, 0, 1), (0, 1, 0), (0, 1, 0)])
        assert g.num_edges == 2
        assert list(g.edges()) == [(0, 1, 0), (2, 0, 1)]

    def test_num_vertices_inferred(self):
        g = MemGraph.from_edges([(0, 7, 0)])
        assert g.num_vertices == 8

    def test_num_vertices_explicit_isolated(self):
        g = MemGraph.from_edges([(0, 1, 0)], num_vertices=10)
        assert g.num_vertices == 10
        assert g.out_degree(9) == 0

    def test_empty_graph(self):
        g = MemGraph.from_edges([], num_vertices=3)
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_label_names_kept(self):
        g = MemGraph.from_edges([(0, 1, 0)], label_names=["E"])
        assert g.label_names == ("E",)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            MemGraph(
                np.zeros(2, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                2,
                (),
            )


class TestQueries:
    @pytest.fixture
    def graph(self):
        return MemGraph.from_edges(
            [(0, 1, 0), (0, 2, 1), (1, 2, 0), (2, 0, 0)], label_names=["E", "F"]
        )

    def test_out_keys_sorted(self, graph):
        keys = graph.out_keys(0)
        assert len(keys) == 2
        assert np.all(np.diff(keys) > 0)

    def test_out_degrees(self, graph):
        assert list(graph.out_degrees()) == [2, 1, 1]

    def test_in_degrees(self, graph):
        assert list(graph.in_degrees()) == [1, 1, 2]

    def test_has_edge(self, graph):
        assert graph.has_edge(0, 1, 0)
        assert not graph.has_edge(0, 1, 1)
        assert not graph.has_edge(1, 0, 0)

    def test_edges_with_label(self, graph):
        assert list(graph.edges_with_label(1)) == [(0, 2)]

    def test_count_by_label(self, graph):
        assert graph.count_by_label() == {0: 3, 1: 1}

    def test_with_edges_adds(self, graph):
        g2 = graph.with_edges([(1, 0, 1)])
        assert g2.num_edges == graph.num_edges + 1
        assert g2.has_edge(1, 0, 1)
        # original untouched
        assert not graph.has_edge(1, 0, 1)

    def test_with_edges_noop_on_empty(self, graph):
        assert graph.with_edges([]) is graph


class TestInverseEdges:
    def test_adds_bar_edges(self):
        edges = [(0, 1, 0), (1, 2, 1)]
        out = add_inverse_edges(edges, {0: 2, 1: 3})
        assert (1, 0, 2) in out
        assert (2, 1, 3) in out
        assert len(out) == 4

    def test_labels_without_inverse_skipped(self):
        out = add_inverse_edges([(0, 1, 5)], {0: 2})
        assert out == [(0, 1, 5)]
