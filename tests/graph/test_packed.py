"""Tests for packed edge keys and sorted-array set operations."""

import numpy as np

from repro.graph import packed


class TestPacking:
    def test_roundtrip(self):
        targets = np.asarray([0, 5, 123456], dtype=np.int64)
        labels = np.asarray([0, 3, 255], dtype=np.int64)
        keys = packed.pack(targets, labels)
        assert np.array_equal(packed.targets_of(keys), targets)
        assert np.array_equal(packed.labels_of(keys), labels)

    def test_pack_one(self):
        key = packed.pack_one(7, 3)
        assert key == (7 << packed.LABEL_BITS) | 3

    def test_sort_order_is_target_major(self):
        # (target=1, label=255) < (target=2, label=0)
        assert packed.pack_one(1, 255) < packed.pack_one(2, 0)

    def test_unpack(self):
        keys = packed.from_pairs([(4, 1), (2, 0)])
        targets, labels = packed.unpack(keys)
        assert list(targets) == [2, 4]
        assert list(labels) == [0, 1]

    def test_max_vertex_id_fits(self):
        key = packed.pack_one(packed.MAX_VERTEX_ID, packed.LABEL_MASK)
        assert key > 0  # no sign overflow
        assert packed.targets_of(np.asarray([key]))[0] == packed.MAX_VERTEX_ID


class TestMergeUnique:
    def test_empty_inputs(self):
        assert len(packed.merge_unique([])) == 0
        assert len(packed.merge_unique([packed.EMPTY, packed.EMPTY])) == 0

    def test_single_array_deduped(self):
        a = np.asarray([1, 1, 2], dtype=np.int64)
        assert list(packed.merge_unique([a])) == [1, 2]

    def test_cross_array_duplicates_collapse(self):
        a = packed.from_pairs([(1, 0), (2, 0)])
        b = packed.from_pairs([(2, 0), (3, 0)])
        merged = packed.merge_unique([a, b])
        assert list(packed.targets_of(merged)) == [1, 2, 3]

    def test_heap_merge_matches_vectorized(self):
        rng = np.random.default_rng(3)
        arrays = [
            np.unique(rng.integers(0, 100, size=20).astype(np.int64))
            for _ in range(5)
        ]
        assert np.array_equal(
            packed.merge_unique(arrays), packed.heap_merge_unique(arrays)
        )

    def test_result_is_sorted(self):
        arrays = [packed.from_pairs([(5, 0), (1, 1)]), packed.from_pairs([(3, 0)])]
        merged = packed.merge_unique(arrays)
        assert np.all(np.diff(merged) > 0)


class TestIsinSorted:
    def test_membership(self):
        hay = np.asarray([1, 3, 5, 7], dtype=np.int64)
        needles = np.asarray([0, 1, 4, 7, 9], dtype=np.int64)
        mask = packed.isin_sorted(needles, hay)
        assert list(mask) == [False, True, False, True, False]

    def test_empty_haystack(self):
        needles = np.asarray([1, 2], dtype=np.int64)
        assert not packed.isin_sorted(needles, packed.EMPTY).any()

    def test_empty_needles(self):
        hay = np.asarray([1], dtype=np.int64)
        assert len(packed.isin_sorted(packed.EMPTY, hay)) == 0

    def test_needle_beyond_max(self):
        hay = np.asarray([1, 2], dtype=np.int64)
        needles = np.asarray([99], dtype=np.int64)
        assert not packed.isin_sorted(needles, hay).any()


class TestSetdiffSorted:
    def test_difference(self):
        a = np.asarray([1, 2, 3, 4], dtype=np.int64)
        b = np.asarray([2, 4], dtype=np.int64)
        assert list(packed.setdiff_sorted(a, b)) == [1, 3]

    def test_disjoint(self):
        a = np.asarray([1, 3], dtype=np.int64)
        b = np.asarray([2], dtype=np.int64)
        assert list(packed.setdiff_sorted(a, b)) == [1, 3]

    def test_complete_overlap(self):
        a = np.asarray([1, 2], dtype=np.int64)
        assert len(packed.setdiff_sorted(a, a)) == 0

    def test_empty_operands(self):
        a = np.asarray([1], dtype=np.int64)
        assert list(packed.setdiff_sorted(a, packed.EMPTY)) == [1]
        assert len(packed.setdiff_sorted(packed.EMPTY, a)) == 0


class TestPairs:
    def test_from_pairs_sorts_and_dedups(self):
        keys = packed.from_pairs([(3, 1), (1, 0), (3, 1)])
        assert packed.to_pairs(keys) == [(1, 0), (3, 1)]
