"""Tests for the vertex namer (id <-> source translation, §4.4)."""

from repro.frontend import VertexNamer


class TestContexts:
    def test_root_context_exists(self):
        namer = VertexNamer()
        assert namer.num_contexts == 1
        assert namer.context_chain(0) == []

    def test_context_chain(self):
        namer = VertexNamer()
        c1 = namer.new_context(0, "main:3->f")
        c2 = namer.new_context(c1, "f:7->g")
        assert namer.context_chain(c2) == ["main:3->f", "f:7->g"]


class TestVertices:
    def test_dense_ids(self):
        namer = VertexNamer()
        assert namer.new_vertex("f", 0, "p") == 0
        assert namer.new_vertex("f", 0, "q") == 1
        assert namer.num_vertices == 2

    def test_info_roundtrip(self):
        namer = VertexNamer()
        vid = namer.new_vertex("f", 0, "*p", line=12)
        info = namer.info(vid)
        assert (info.function, info.context, info.symbol, info.line) == (
            "f",
            0,
            "*p",
            12,
        )

    def test_clones_share_lookup_key(self):
        namer = VertexNamer()
        c1 = namer.new_context(0, "a")
        c2 = namer.new_context(0, "b")
        v1 = namer.new_vertex("f", c1, "p")
        v2 = namer.new_vertex("f", c2, "p")
        assert namer.vertices_for("f", "p") == [v1, v2]

    def test_unknown_lookup_is_empty(self):
        assert VertexNamer().vertices_for("f", "p") == []

    def test_is_deref_symbol(self):
        namer = VertexNamer()
        deref = namer.new_vertex("f", 0, "*p")
        plain = namer.new_vertex("f", 0, "p")
        assert namer.is_deref_symbol(deref)
        assert not namer.is_deref_symbol(plain)

    def test_describe_readable(self):
        namer = VertexNamer()
        vid = namer.new_vertex("f", 0, "p")
        gid = namer.new_vertex("", 0, "@g")
        assert "f::p" in namer.describe(vid)
        assert "<global>" in namer.describe(gid)

    def test_iter_vertices(self):
        namer = VertexNamer()
        namer.new_vertex("f", 0, "a")
        namer.new_vertex("f", 0, "b")
        assert [v.symbol for v in namer.iter_vertices()] == ["a", "b"]
