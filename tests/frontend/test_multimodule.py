"""Multi-file programs: cross-module calls, globals, and error paths."""

import pytest

from repro.analysis import PointsToAnalysis
from repro.frontend import compile_program, lower_program, parse_files
from repro.frontend.parser import parse

ALLOC_MODULE = """
int *registry;

void *alloc_obj(void) {
    int *fresh;
    fresh = malloc(64);
    registry = fresh;
    return fresh;
}
"""

USER_MODULE = """
void consume(void) {
    int *mine;
    int *shared;
    mine = alloc_obj();
    shared = registry;
    *mine = 1;
}
"""


class TestMultiModule:
    def test_cross_module_calls_resolve(self):
        pg = compile_program([("mm", ALLOC_MODULE), ("fs", USER_MODULE)])
        pts = PointsToAnalysis().run(pg)
        assert pts.var_points_to("consume", "mine")

    def test_globals_link_modules(self):
        pg = compile_program([("mm", ALLOC_MODULE), ("fs", USER_MODULE)])
        pts = PointsToAnalysis().run(pg)
        # `shared` reads the global written in the other module
        assert pts.vars_may_alias("consume", "shared", "consume", "mine")

    def test_module_labels_preserved(self):
        program = parse_files([("mm", ALLOC_MODULE), ("fs", USER_MODULE)])
        assert program.function("alloc_obj").module == "mm"
        assert program.function("consume").module == "fs"

    def test_duplicate_function_rejected(self):
        program = parse_files(
            [("a", "void f(void) { }"), ("b", "void f(void) { }")]
        )
        with pytest.raises(ValueError, match="duplicate function"):
            lower_program(program)

    def test_unknown_function_lookup(self):
        program = parse("void f(void) { }")
        with pytest.raises(KeyError):
            program.function("ghost")

    def test_loc_counts_lines(self):
        program = parse("void f(void) {\n int x;\n x = 1;\n}\n")
        assert program.loc() >= 3
