"""Tests for context-sensitive graph generation (inlining, §3)."""

import pytest

from repro.frontend import compile_program
from repro.frontend.graphgen import InlineBudgetExceeded


class TestInlining:
    def test_one_clone_per_call_site(self):
        pg = compile_program(
            """
            void *leaf(void) { int *o; o = malloc(4); return o; }
            void top(void) { int *a; int *b; a = leaf(); b = leaf(); }
            """
        )
        assert pg.inline_count == 2
        assert len(pg.namer.vertices_for("leaf", "o")) == 2

    def test_transitive_cloning_multiplies(self):
        """top calls mid twice, mid calls leaf twice -> 4 leaf clones."""
        pg = compile_program(
            """
            void *leaf(void) { int *o; o = malloc(4); return o; }
            void *mid(void) { int *x; int *y; x = leaf(); y = leaf(); return x; }
            void top(void) { int *a; int *b; a = mid(); b = mid(); }
            """
        )
        assert len(pg.namer.vertices_for("leaf", "o")) == 4
        assert pg.inline_count == 2 + 4  # 2 mid clones + 4 leaf clones

    def test_two_roots_clone_shared_callee(self):
        pg = compile_program(
            """
            void *shared(void) { int *s; s = malloc(4); return s; }
            void root1(void) { int *a; a = shared(); }
            void root2(void) { int *b; b = shared(); }
            """
        )
        assert len(pg.namer.vertices_for("shared", "s")) == 2

    def test_recursion_not_cloned(self):
        pg = compile_program(
            """
            void *walk(int *node, int d) {
                int *nx;
                nx = node;
                if (d) { nx = walk(node, d - 1); }
                return nx;
            }
            void host(void) { int *seed; int *r; seed = malloc(4); r = walk(seed, 3); }
            """
        )
        # one clone of walk for the host call; the recursive call wires
        # back into the same instance
        assert len(pg.namer.vertices_for("walk", "nx")) == 1

    def test_mutual_recursion_instantiated_as_group(self):
        pg = compile_program(
            """
            void *even(int *v, int d) { int *a; a = v; if (d) { a = odd(v, d - 1); } return a; }
            void *odd(int *v, int d) { int *b; b = v; if (d) { b = even(v, d - 1); } return b; }
            void host(void) { int *s; int *r; s = malloc(4); r = even(s, 4); }
            """
        )
        assert len(pg.namer.vertices_for("even", "a")) == 1
        assert len(pg.namer.vertices_for("odd", "b")) == 1

    def test_uncalled_cycle_still_instantiated(self):
        pg = compile_program(
            """
            void ping(int n) { if (n) { pong(n - 1); } }
            void pong(int n) { if (n) { ping(n - 1); } }
            """
        )
        assert len(pg.namer.vertices_for("ping", "n")) >= 0  # compiled at all
        assert pg.num_vertices > 0

    def test_inline_budget_enforced(self):
        src = ["void *l0(void) { int *p; p = malloc(4); return p; }"]
        for i in range(1, 12):
            src.append(
                f"void *l{i}(void) {{ int *a; int *b; "
                f"a = l{i - 1}(); b = l{i - 1}(); return a; }}"
            )
        src.append("void top(void) { int *r; r = l11(); }")
        with pytest.raises(InlineBudgetExceeded):
            compile_program("\n".join(src), max_inlines=100)

    def test_globals_shared_across_clones(self):
        pg = compile_program(
            """
            int *g;
            void touch(void) { int *l; l = g; }
            void top(void) { touch(); touch(); }
            """
        )
        assert len(pg.namer.vertices_for("", "@g")) == 1
        assert len(pg.namer.vertices_for("touch", "l")) == 2


class TestEdgeKinds:
    def test_edge_kind_arrays(self):
        pg = compile_program(
            """
            void f(void) {
                int x;
                int *p;
                int *q;
                int n;
                p = &x;
                *p = 1;
                q = p;
                n = get_user();
                n = n + 1;
            }
            """
        )
        m_src, _ = pg.edges_of_kind("M")
        a_src, _ = pg.edges_of_kind("A")
        d_src, _ = pg.edges_of_kind("D")
        u_src, _ = pg.edges_of_kind("U")
        tf_src, _ = pg.edges_of_kind("TF")
        assert len(a_src) > 0 and len(d_src) > 0
        assert len(u_src) == 1
        assert len(tf_src) == 2  # n + 1: both operands flow

    def test_null_edges(self):
        pg = compile_program("void f(void) { int *p; p = NULL; }")
        n_src, n_dst = pg.edges_of_kind("N")
        assert len(n_src) == 1
        assert pg.namer.symbol(int(n_src[0])) == "NULL"
        assert pg.namer.symbol(int(n_dst[0])) == "p"

    def test_indirect_call_instances_cloned(self):
        pg = compile_program(
            """
            void t(void) { }
            void caller(void) { void *fp; fp = t; fp(); }
            void top(void) { caller(); caller(); }
            """
        )
        # caller is also a root? no: it is called -> two clones; plus no
        # root instance since it has callers
        assert len(pg.indirect_call_instances) == 2

    def test_alloc_sizes_in_templates(self):
        pg = compile_program("void f(void) { long *p; p = malloc(24); }")
        template = pg.templates["f"]
        assert list(template.alloc_sizes.values()) == [24]
