"""Tests for the taint intrinsics and async/await frontend support."""

import pytest

from repro.frontend import ParseError, compile_program, parse
from repro.frontend.graphgen import KIND_TS, SYM_TAINT
from repro.frontend.lower import lower_program


class TestParsing:
    def test_async_function_flag(self):
        prog = parse("async void f(void) { }\nvoid g(void) { }\n")
        assert prog.function("f").is_async
        assert not prog.function("g").is_async

    def test_await_call_flag(self):
        prog = parse(
            """
            async int fetch(void) { int r; r = 1; return r; }
            async void f(void) { int x; x = await fetch(); }
            """
        )
        stmt = prog.function("f").body[1]
        assert stmt.rhs.awaited
        assert "await" in str(stmt.rhs)

    def test_async_on_global_is_an_error(self):
        with pytest.raises(ParseError, match="applies to function definitions"):
            parse("async int g;")

    def test_await_non_call_is_an_error(self):
        with pytest.raises(ParseError, match="must be applied to a call"):
            parse("async void f(void) { int x; x = await 3; }")


class TestLowering:
    def test_sink_statement(self):
        lowered = lower_program(
            parse("void f(void) { int v; v = input(); query(v); }")
        )
        sinks = lowered.functions["f"].statements_of_kind("sink")
        assert len(sinks) == 1
        assert sinks[0].callee == "query"
        assert list(sinks[0].args) == ["v"]

    def test_sanitize_statement(self):
        lowered = lower_program(
            parse("void f(void) { int v; int c; v = input(); c = sanitize(v); }")
        )
        cleans = lowered.functions["f"].statements_of_kind("sanitize")
        assert len(cleans) == 1
        assert cleans[0].lhs == "c"
        assert cleans[0].rhs == "v"

    def test_awaited_call_marked(self):
        lowered = lower_program(
            parse(
                """
                async int fetch(void) { int r; r = 1; return r; }
                async void f(void) { int x; x = await fetch(); }
                """
            )
        )
        calls = lowered.functions["f"].statements_of_kind("call")
        assert [c.awaited for c in calls] == [True]
        assert lowered.functions["f"].is_async


class TestGraphGeneration:
    def test_input_emits_taint_source_edge(self):
        pg = compile_program("void f(void) { int v; v = input(); }")
        src, dst = pg.edges_of_kind(KIND_TS)
        assert len(src) == 1
        taint_vid = pg.namer.vertices_for("", SYM_TAINT)[0]
        assert src[0] == taint_vid

    def test_sink_and_sanitize_emit_no_edges(self):
        pg = compile_program(
            """
            void f(void) {
                int v;
                int c;
                v = input();
                c = sanitize(v);
                query(c);
            }
            """
        )
        # exactly the one TS edge; sanitize contributes no assignment edge
        src, dst = pg.edges_of_kind(KIND_TS)
        assert len(src) == 1


class TestAsyncContexts:
    def test_callee_of_async_function_is_async_context(self):
        pg = compile_program(
            """
            void leaf(void) { int x; x = 1; }
            async void host(void) { leaf(); }
            """
        )
        assert pg.async_contexts
        for ctx in pg.async_contexts:
            assert pg.context_call_sites[ctx].callee == "leaf"

    def test_async_extends_transitively(self):
        pg = compile_program(
            """
            void inner(void) { int x; x = 1; }
            void outer(void) { inner(); }
            async void host(void) { outer(); }
            """
        )
        callees = {pg.context_call_sites[c].callee for c in pg.async_contexts}
        assert callees == {"outer", "inner"}

    def test_spawn_severs_async_extent(self):
        pg = compile_program(
            """
            void worker(void) { int x; x = 1; }
            async void host(void) { spawn worker(); }
            """
        )
        assert pg.async_contexts == set()

    def test_sync_call_chain_has_no_async_contexts(self):
        pg = compile_program(
            """
            void inner(void) { int x; x = 1; }
            void outer(void) { inner(); }
            """
        )
        assert pg.async_contexts == set()

    def test_async_callee_is_async_even_from_sync_caller(self):
        pg = compile_program(
            """
            async void coro(void) { int x; x = 1; }
            void driver(void) { coro(); }
            """
        )
        callees = {pg.context_call_sites[c].callee for c in pg.async_contexts}
        assert callees == {"coro"}
