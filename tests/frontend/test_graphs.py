"""Tests for pointer/dataflow graph assembly from generated edges."""

import pytest

from repro.frontend import compile_program, dataflow_graph, pointer_graph
from repro.frontend.graphs import DATAFLOW_LABELS, POINTER_LABELS


@pytest.fixture(scope="module")
def pg():
    return compile_program(
        """
        void f(void) {
            int x;
            int *p;
            int *q;
            int n;
            p = &x;
            *p = 1;
            q = p;
            q = NULL;
            n = get_user();
            n = n + 1;
        }
        """
    )


class TestPointerGraph:
    def test_labels(self, pg):
        g = pointer_graph(pg)
        assert g.label_names == POINTER_LABELS

    def test_every_terminal_has_inverse(self, pg):
        g = pointer_graph(pg)
        names = list(g.label_names)
        edges = set(g.edges())
        for src, dst, lab in edges:
            name = names[lab]
            bar = name[:-4] if name.endswith("_bar") else name + "_bar"
            assert (dst, src, names.index(bar)) in edges

    def test_null_and_taint_edges_excluded(self, pg):
        g = pointer_graph(pg)
        # exactly 2x the M/A/D edge count (each with an inverse)
        m = len(pg.edges_of_kind("M")[0])
        a = len(pg.edges_of_kind("A")[0])
        d = len(pg.edges_of_kind("D")[0])
        assert g.num_edges == 2 * (m + a + d)


class TestDataflowGraph:
    def test_labels(self, pg):
        g = dataflow_graph(pg)
        assert g.label_names == DATAFLOW_LABELS

    def test_null_mode_sources(self, pg):
        g = dataflow_graph(pg, taint=False)
        n_label = DATAFLOW_LABELS.index("N")
        sources = list(g.edges_with_label(n_label))
        assert len(sources) == 1  # the single `q = NULL`

    def test_taint_mode_sources_and_arith(self, pg):
        null_g = dataflow_graph(pg, taint=False)
        taint_g = dataflow_graph(pg, taint=True)
        # taint adds TF (arithmetic) edges on top of the A edges
        df = DATAFLOW_LABELS.index("DF")
        assert len(list(taint_g.edges_with_label(df))) > len(
            list(null_g.edges_with_label(df))
        )

    def test_alias_bridges_bidirectional(self, pg):
        g = dataflow_graph(pg, alias_pairs=[(3, 7)])
        df = DATAFLOW_LABELS.index("DF")
        edges = set(g.edges_with_label(df))
        assert (3, 7) in edges and (7, 3) in edges

    def test_empty_alias_pairs_ok(self, pg):
        g = dataflow_graph(pg, alias_pairs=[])
        assert g.num_edges > 0
