"""Tests for the MiniC lexer."""

import pytest

from repro.frontend import LexError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestTokenize:
    def test_keywords_vs_idents(self):
        toks = kinds("int foo while whilex")
        assert toks == [
            ("keyword", "int"),
            ("ident", "foo"),
            ("keyword", "while"),
            ("ident", "whilex"),
        ]

    def test_numbers(self):
        assert kinds("42 007") == [("number", "42"), ("number", "007")]

    def test_two_char_symbols_win(self):
        assert [t for _, t in kinds("a==b")] == ["a", "==", "b"]
        assert [t for _, t in kinds("p->f")] == ["p", "->", "f"]
        assert [t for _, t in kinds("a!=b<=c>=d")] == ["a", "!=", "b", "<=", "c", ">=", "d"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        lines = {t.text: t.line for t in toks if t.kind == "ident"}
        assert lines == {"a": 1, "b": 2, "c": 4}

    def test_line_comments_skipped(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comments_skipped_and_lines_counted(self):
        toks = tokenize("a /* x\ny */ b")
        b = [t for t in toks if t.text == "b"][0]
        assert b.line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* oops")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"

    def test_null_is_keyword(self):
        assert kinds("NULL")[0] == ("keyword", "NULL")
