"""Reconstruction of the paper's Figure 1 expression-graph example (§2.2).

The paper's narrative derives, for its example program: a valueFlow path
from ``&a`` to ``d``; an alias path from ``a`` to ``*d``; valueFlow
paths from ``b`` and ``&c`` to ``t``; and an objectFlow path from the
allocation to a variable that received the object *through the heap
cell*.  This MiniC program recreates those flows; the assertions check
every derived fact by name, end to end through the frontend, the
engine, and the pointer grammar.
"""

import pytest

from repro.analysis import PointsToAnalysis
from repro.engine import GraspanEngine
from repro.frontend import compile_program, pointer_graph
from repro.grammar import LABEL_ALIAS, LABEL_OF, LABEL_VF, pointsto_grammar

FIGURE1_SOURCE = """
void fig1(void) {
    int c;
    int *a;
    int **d;
    int *b;
    int *t;
    int *e;
    int *y;
    d = &a;
    b = &c;
    a = b;
    t = *d;
    e = malloc(4);
    a = e;
    y = *d;
}
"""


@pytest.fixture(scope="module")
def fig1():
    pg = compile_program(FIGURE1_SOURCE)
    grammar = pointsto_grammar()  # the paper's compact five-production form
    comp = GraspanEngine(grammar).run(pointer_graph(pg))
    facts = set()
    for src, dst, lab in comp.pset.iter_all_edges():
        facts.add(
            (
                pg.namer.symbol(src),
                pg.namer.symbol(dst),
                grammar.label_name(lab),
            )
        )
    return pg, facts


def test_valueflow_from_addrof_a_to_d(fig1):
    _, facts = fig1
    assert ("&a", "d", LABEL_VF) in facts


def test_alias_a_and_deref_d(fig1):
    _, facts = fig1
    assert ("a", "*d", LABEL_ALIAS) in facts


def test_valueflow_b_to_t_through_the_alias(fig1):
    _, facts = fig1
    assert ("b", "t", LABEL_VF) in facts


def test_valueflow_addrof_c_to_t(fig1):
    _, facts = fig1
    assert ("&c", "t", LABEL_VF) in facts


def test_objectflow_reaches_heap_loaded_variable(fig1):
    """The malloc'd object, stored into cell `a` and loaded via `*d`,
    flows to `y`: objectFlow(A, y) — the paper's headline derivation."""
    _, facts = fig1
    of_targets = {dst for src, dst, lab in facts if lab == LABEL_OF and src.startswith("alloc@")}
    assert {"e", "a", "*d", "t", "y"} <= of_targets


def test_no_spurious_objectflow_to_unrelated_vars(fig1):
    _, facts = fig1
    of_targets = {dst for src, dst, lab in facts if lab == LABEL_OF}
    assert "c" not in of_targets
    assert "b" not in of_targets


def test_points_to_api_agrees(fig1):
    pg, _ = fig1
    pts = PointsToAnalysis(grammar=pointsto_grammar()).run(pg)
    targets = pts.var_points_to("fig1", "y")
    assert len(targets) == 1
    assert "alloc@" in next(iter(targets))
