"""Tests for three-address lowering."""


from repro.frontend import lower_program, parse


def lowered(src):
    return lower_program(parse(src))


def stmts_of(src, name="f"):
    return lowered(src).functions[name].stmts


class TestBasicForms:
    def test_copy(self):
        s = stmts_of("void f(int *a, int *b) { a = b; }")
        assert [(x.kind, x.lhs, x.rhs) for x in s] == [("copy", "a", "b")]

    def test_load(self):
        s = stmts_of("void f(int *a, int **b) { a = *b; }")
        assert s[0].kind == "load" and s[0].lhs == "a" and s[0].rhs == "b"

    def test_store(self):
        s = stmts_of("void f(int *a, int *b) { *a = b; }")
        assert s[0].kind == "store" and s[0].lhs == "a" and s[0].rhs == "b"

    def test_addrof(self):
        s = stmts_of("void f(void) { int x; int *p; p = &x; }")
        assert s[0].kind == "addrof" and s[0].lhs == "p" and s[0].rhs == "x"

    def test_alloc_with_size(self):
        s = stmts_of("void f(void) { int *p; p = malloc(12); }")
        assert s[0].kind == "alloc" and s[0].size == 12

    def test_null(self):
        s = stmts_of("void f(void) { int *p; p = NULL; }")
        assert s[0].kind == "null" and s[0].lhs == "p"

    def test_nested_deref_uses_temps(self):
        s = stmts_of("void f(int ***t, int *a) { a = **t; }")
        loads = [x for x in s if x.kind == "load"]
        assert len(loads) == 2
        assert loads[0].lhs.startswith("%t")
        assert loads[1].rhs == loads[0].lhs

    def test_store_of_expression(self):
        s = stmts_of("void f(int *a) { *a = 1 + 2; }")
        kinds = [x.kind for x in s]
        assert kinds[-1] == "store"
        assert "binop" in kinds


class TestCallsAndReturns:
    def test_direct_call_with_lhs(self):
        s = stmts_of("void g(int x) { } void f(void) { int r; r = g(1); }")
        call = [x for x in s if x.kind == "call"][0]
        assert call.callee == "g" and call.lhs == "r"
        assert len(call.args) == 1

    def test_effect_call_has_no_lhs(self):
        s = stmts_of("void g(void) { } void f(void) { g(); }")
        call = [x for x in s if x.kind == "call"][0]
        assert call.lhs is None

    def test_builtins(self):
        src = "void f(int *p) { free(p); lock(p); unlock(p); }"
        kinds = [x.kind for x in stmts_of(src)]
        assert kinds == ["free", "lock", "unlock"]

    def test_funcref(self):
        s = stmts_of("void g(void) { } void f(void) { void *fp; fp = g; }")
        assert s[0].kind == "funcref" and s[0].callee == "g"

    def test_return_vars_collected(self):
        lp = lowered("int *f(int n) { int *p; p = NULL; if (n) { return p; } return p; }")
        assert lp.functions["f"].return_vars() == ["p", "p"]

    def test_return_expression_gets_temp(self):
        lp = lowered("int *f(void) { return malloc(4); }")
        f = lp.functions["f"]
        assert f.return_vars()[0].startswith("%t")
        assert f.stmts[0].kind == "alloc"


class TestGuards:
    def test_then_branch_guarded(self):
        s = stmts_of("void f(int *p) { if (p) { *p = 1; } }")
        store = [x for x in s if x.kind == "store"][0]
        assert [(g.var, g.nonnull) for g in store.guards] == [("p", True)]

    def test_else_branch_negated(self):
        s = stmts_of("void f(int *p, int *q) { if (p) { *p = 1; } else { *q = 2; } }")
        stores = [x for x in s if x.kind == "store"]
        assert [(g.var, g.nonnull) for g in stores[1].guards] == [("p", False)]

    def test_nested_guards_stack(self):
        s = stmts_of("void f(int *p, int *q) { if (p) { if (q) { *p = 1; } } }")
        store = [x for x in s if x.kind == "store"][0]
        assert len(store.guards) == 2

    def test_guard_popped_after_branch(self):
        s = stmts_of("void f(int *p) { if (p) { *p = 1; } *p = 2; }")
        stores = [x for x in s if x.kind == "store"]
        assert stores[1].guards == ()

    def test_test_stmt_emitted(self):
        s = stmts_of("void f(int *p) { if (!p) { return; } }")
        test = [x for x in s if x.kind == "test"][0]
        assert test.rhs == "p" and test.nonnull is False

    def test_rangetest_emitted(self):
        s = stmts_of("void f(int n) { if (n < 4) { n = 0; } }")
        assert [x for x in s if x.kind == "rangetest"][0].rhs == "n"

    def test_while_guard(self):
        s = stmts_of("void f(int *p) { while (p) { *p = 1; } }")
        store = [x for x in s if x.kind == "store"][0]
        assert store.guards[0].var == "p"


class TestIndicesAndMetadata:
    def test_index_var_on_store(self):
        s = stmts_of("void f(void) { int b[4]; int i; b[i] = 1; }")
        store = [x for x in s if x.kind == "store"][0]
        assert store.index_var == "i"

    def test_index_var_on_load(self):
        s = stmts_of("void f(void) { int b[4]; int i; int x; x = b[i]; }")
        load = [x for x in s if x.kind == "load"][0]
        assert load.index_var == "i"

    def test_pointer_vars_and_sizes(self):
        lp = lowered("void f(long *p, int n) { char *q; q = NULL; }")
        f = lp.functions["f"]
        assert f.pointer_vars == {"p", "q"}
        assert f.var_sizes["p"] == 8
        assert f.var_sizes["q"] == 1
        assert f.var_sizes["n"] == 4

    def test_globals_listed(self):
        lp = lowered("int *g;\nvoid f(void) { }")
        assert lp.global_vars == ["g"]
