"""Tests for bounded context sensitivity (§3's inlining-criteria knob)."""


from repro.analysis import PointsToAnalysis
from repro.frontend import compile_program

SOURCE = """
void *ident(int *v) { return v; }
void *hop(int *w) { int *h; h = ident(w); return h; }
void top(void) {
    int *x;
    int *y;
    int *ox;
    int *oy;
    ox = malloc(4);
    oy = malloc(8);
    x = hop(ox);
    y = hop(oy);
}
"""


class TestContextDepth:
    def test_full_sensitivity_separates_contexts(self):
        pg = compile_program(SOURCE, context_depth=None)
        pts = PointsToAnalysis().run(pg)
        assert pts.var_points_to("top", "x") != pts.var_points_to("top", "y")
        assert len(pts.var_points_to("top", "x")) == 1

    def test_depth_zero_merges_everything(self):
        pg = compile_program(SOURCE, context_depth=0)
        pts = PointsToAnalysis().run(pg)
        x = pts.var_points_to("top", "x")
        assert x == pts.var_points_to("top", "y")
        assert len(x) == 2  # both objects merged: context-insensitive

    def test_depth_one_keeps_first_level(self):
        """hop clones per call site; ident (depth 2) is shared."""
        pg = compile_program(SOURCE, context_depth=1)
        assert len(pg.namer.vertices_for("hop", "h")) == 2
        assert len(pg.namer.vertices_for("ident", "v")) == 1

    def test_depth_reduces_graph_size(self):
        full = compile_program(SOURCE, context_depth=None)
        bounded = compile_program(SOURCE, context_depth=0)
        assert bounded.num_vertices < full.num_vertices
        assert bounded.inline_count <= full.inline_count

    def test_bounded_is_sound_overapproximation(self):
        """Everything the precise analysis finds, the bounded one finds."""
        full_pts = PointsToAnalysis().run(compile_program(SOURCE))
        loose_pg = compile_program(SOURCE, context_depth=0)
        loose_pts = PointsToAnalysis().run(loose_pg)
        for func, var in (("top", "x"), ("top", "y")):
            # compare by allocation site symbol (clone ids differ)
            def site_names(pts, f, v):
                return {s.split("[")[0] for s in pts.var_points_to(f, v)}

            assert site_names(full_pts, func, var) <= site_names(
                loose_pts, func, var
            )

    def test_recursion_with_bounded_depth(self):
        src = """
            void *walk(int *n, int d) { int *r; r = n; if (d) { r = walk(n, d - 1); } return r; }
            void a(void) { int *s; int *o; s = malloc(4); o = walk(s, 3); }
            void b(void) { int *t; int *p; t = malloc(8); p = walk(t, 2); }
        """
        pg = compile_program(src, context_depth=0)
        assert len(pg.namer.vertices_for("walk", "r")) == 1
