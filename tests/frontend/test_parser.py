"""Tests for the MiniC parser."""

import pytest

from repro.frontend import ParseError, parse
from repro.frontend import ast


class TestTopLevel:
    def test_globals_and_functions(self):
        prog = parse("int *g;\nvoid f(void) { }\n")
        assert prog.global_names() == ["g"]
        assert prog.function_names() == ["f"]
        assert prog.globals[0].is_pointer

    def test_multi_declarator_global(self):
        prog = parse("int a, *b, c;")
        assert [(g.name, g.is_pointer) for g in prog.globals] == [
            ("a", False),
            ("b", True),
            ("c", False),
        ]

    def test_function_params(self):
        prog = parse("void f(int *a, char b) { }")
        f = prog.function("f")
        assert f.params == ["a", "b"]
        assert f.pointer_params == [True, False]
        assert f.param_sizes == [4, 1]

    def test_returns_pointer(self):
        prog = parse("int *f(void) { return NULL; }")
        assert prog.function("f").returns_pointer

    def test_module_attached(self):
        prog = parse("void f(void) { }", module="drivers")
        assert prog.function("f").module == "drivers"

    def test_struct_type(self):
        prog = parse("struct foo *f(struct bar x) { return NULL; }")
        assert prog.function("f").returns_pointer


class TestStatements:
    def test_declarations_with_init(self):
        prog = parse("void f(void) { int *p = NULL; int q = 3, r; }")
        body = prog.function("f").body
        assert isinstance(body[0], ast.Decl)
        assert isinstance(body[0].init, ast.Null)
        assert len(body) == 3

    def test_array_declarator_decays_to_pointer(self):
        prog = parse("void f(void) { int buf[8]; }")
        decl = prog.function("f").body[0]
        assert decl.is_pointer

    def test_if_else_chain(self):
        prog = parse(
            "void f(int n) { if (n) { n = 1; } else if (n < 3) { n = 2; } else { n = 3; } }"
        )
        outer = prog.function("f").body[0]
        assert isinstance(outer, ast.If)
        inner = outer.else_body[0]
        assert isinstance(inner, ast.If)
        assert inner.else_body

    def test_while(self):
        prog = parse("void f(int n) { while (n > 0) { n = n - 1; } }")
        loop = prog.function("f").body[0]
        assert isinstance(loop, ast.While)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f(void) { int x }")


class TestExpressions:
    def body(self, stmt_src):
        return parse(f"void f(int *p, int n) {{ {stmt_src} }}").function("f").body

    def test_deref_assignment(self):
        stmt = self.body("*p = 3;")[0]
        assert isinstance(stmt.lhs, ast.Deref)

    def test_addr_of(self):
        stmt = self.body("int *q; q = &n;")[1]
        assert isinstance(stmt.rhs, ast.AddrOf)

    def test_arrow_lowered_to_deref(self):
        stmt = self.body("n = p->field;")[0]
        assert isinstance(stmt.rhs, ast.Deref)

    def test_dot_is_transparent(self):
        stmt = self.body("n = p.field;")[0]
        assert isinstance(stmt.rhs, ast.Var)

    def test_array_index_becomes_deref(self):
        stmt = self.body("n = p[n];")[0]
        assert isinstance(stmt.rhs, ast.Deref)
        assert isinstance(stmt.rhs.operand, ast.BinOp)
        assert stmt.rhs.operand.op == "[]"

    def test_malloc_with_size(self):
        stmt = self.body("p = malloc(16);")[0]
        assert isinstance(stmt.rhs, ast.Malloc)
        assert stmt.rhs.size == 16

    def test_malloc_without_literal_size(self):
        stmt = self.body("p = malloc(n);")[0]
        assert stmt.rhs.size is None

    def test_call_args(self):
        stmt = self.body("g(p, n + 1);")[0]
        assert isinstance(stmt.expr, ast.Call)
        assert len(stmt.expr.args) == 2

    def test_nested_parens(self):
        stmt = self.body("n = (n + 1) - 2;")[0]
        assert isinstance(stmt.rhs, ast.BinOp)


class TestConds:
    def cond(self, text):
        return parse(f"void f(int *p, int n) {{ if ({text}) {{ }} }}").function(
            "f"
        ).body[0].cond

    def test_plain_pointer_test(self):
        c = self.cond("p")
        assert c.var == "p" and c.nonnull_when_true

    def test_negated_test(self):
        c = self.cond("!p")
        assert c.var == "p" and not c.nonnull_when_true

    def test_eq_null(self):
        c = self.cond("p == NULL")
        assert c.var == "p" and not c.nonnull_when_true

    def test_ne_null(self):
        c = self.cond("p != NULL")
        assert c.var == "p" and c.nonnull_when_true

    def test_range_comparison(self):
        c = self.cond("n < 10")
        assert c.var is None
        assert c.range_var == "n"

    def test_range_comparison_var_on_right(self):
        c = self.cond("0 < n")
        assert c.range_var == "n"

    def test_opaque_condition(self):
        c = self.cond("g(n)")
        assert c.var is None and c.range_var is None
