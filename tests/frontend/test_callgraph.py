"""Tests for call-graph construction and SCC collapsing."""


from repro.frontend import build_callgraph, lower_program, parse


def callgraph(src):
    return build_callgraph(lower_program(parse(src)))


class TestDirectCalls:
    def test_edges_collected(self):
        cg = callgraph(
            "void a(void) { b(); b(); } void b(void) { c(); } void c(void) { }"
        )
        assert [s.callee for s in cg.callees["a"]] == ["b", "b"]
        assert [s.callee for s in cg.callees["b"]] == ["c"]
        assert cg.callees["c"] == []

    def test_roots(self):
        cg = callgraph("void a(void) { b(); } void b(void) { } void z(void) { }")
        assert sorted(cg.roots()) == ["a", "z"]

    def test_external_callees(self):
        cg = callgraph("void a(void) { printk(); }")
        assert "printk" in cg.external_callees

    def test_indirect_via_local(self):
        cg = callgraph(
            "void t(void) { } void a(void) { void *fp; fp = t; fp(); }"
        )
        assert len(cg.indirect_sites) == 1
        assert cg.indirect_sites[0].pointer_var == "fp"

    def test_indirect_via_global(self):
        cg = callgraph("int *gfp;\nvoid a(void) { gfp(); }")
        assert len(cg.indirect_sites) == 1


class TestSCCs:
    def test_self_recursion(self):
        cg = callgraph("void a(int n) { if (n) { a(n - 1); } }")
        assert cg.is_recursive_call("a", "a")
        assert cg.scc_members("a") == ["a"]

    def test_mutual_recursion_collapsed(self):
        cg = callgraph(
            "void a(int n) { b(n); } void b(int n) { if (n) { a(n - 1); } }"
        )
        assert cg.scc_of["a"] == cg.scc_of["b"]
        assert sorted(cg.scc_members("a")) == ["a", "b"]

    def test_non_recursive_in_own_scc(self):
        cg = callgraph("void a(void) { b(); } void b(void) { }")
        assert cg.scc_of["a"] != cg.scc_of["b"]
        assert not cg.is_recursive_call("a", "b")

    def test_three_cycle(self):
        cg = callgraph(
            "void a(int n) { b(n); } void b(int n) { c(n); } "
            "void c(int n) { if (n) { a(n - 1); } }"
        )
        assert len({cg.scc_of[f] for f in "abc"}) == 1

    def test_topo_order_callees_first(self):
        cg = callgraph(
            "void a(void) { b(); c(); } void b(void) { c(); } void c(void) { }"
        )
        order = cg.topo_order
        pos = {scc: i for i, scc in enumerate(order)}
        assert pos[cg.scc_of["c"]] < pos[cg.scc_of["b"]] < pos[cg.scc_of["a"]]

    def test_deep_chain_no_recursion_limit(self):
        """Tarjan must be iterative: 5000-deep call chains are realistic."""
        n = 5000
        parts = [f"void f{i}(void) {{ f{i + 1}(); }}" for i in range(n - 1)]
        parts.append(f"void f{n - 1}(void) {{ }}")
        cg = callgraph("\n".join(parts))
        assert len(cg.sccs) == n
