"""Tests for `for` loops (desugared to init + while)."""


from repro.analysis import TaintDataflowAnalysis, PointsToAnalysis
from repro.frontend import compile_program, lower_program, parse
from repro.frontend import ast


class TestForParsing:
    def test_desugars_to_while(self):
        prog = parse("void f(void) { int i; for (i = 0; i < 4; i = i + 1) { } }")
        body = prog.function("f").body
        # decl, init assign, while
        assert isinstance(body[-2], ast.Assign)
        assert isinstance(body[-1], ast.While)

    def test_step_runs_inside_body(self):
        prog = parse(
            "void f(void) { int i; int s; for (i = 0; i < 4; i = i + 1) { s = i; } }"
        )
        loop = prog.function("f").body[-1]
        assert isinstance(loop, ast.While)
        assert len(loop.body) == 2  # original statement + the step
        assert isinstance(loop.body[-1], ast.Assign)

    def test_empty_clauses(self):
        prog = parse("void f(void) { for (;;) { } }")
        loop = prog.function("f").body[0]
        assert isinstance(loop, ast.While)

    def test_condition_becomes_guard(self):
        src = "void f(int *p) { for (; p; ) { *p = 1; } }"
        lowered = lower_program(parse(src))
        store = [s for s in lowered.functions["f"].stmts if s.kind == "store"][0]
        assert store.guards[0].var == "p"

    def test_range_condition_detected(self):
        src = "void f(void) { int b[8]; int i; for (i = 0; i < 8; i = i + 1) { b[i] = 0; } }"
        lowered = lower_program(parse(src))
        kinds = [s.kind for s in lowered.functions["f"].stmts]
        assert "rangetest" in kinds

    def test_call_step(self):
        prog = parse("void g(void) { } void f(void) { for (; ; g()) { } }")
        loop = prog.function("f").body[0]
        assert isinstance(loop.body[-1], ast.ExprStmt)


class TestForSemantics:
    def test_taint_through_loop(self):
        pg = compile_program(
            """
            void f(void) {
                int acc;
                int i;
                acc = 0;
                for (i = get_user(); i < 8; i = i + 1) {
                    acc = acc + i;
                }
            }
            """
        )
        pts = PointsToAnalysis().run(pg)
        taint = TaintDataflowAnalysis().run(pg, pointsto=pts)
        assert taint.may_receive("f", "i")
        assert taint.may_receive("f", "acc")

    def test_pointer_flow_through_loop(self):
        pg = compile_program(
            """
            void f(void) {
                int *cur;
                int *start;
                int i;
                start = malloc(8);
                cur = start;
                for (i = 0; i < 3; i = i + 1) {
                    cur = start;
                }
            }
            """
        )
        pts = PointsToAnalysis().run(pg)
        assert pts.vars_may_alias("f", "cur", "f", "start")
