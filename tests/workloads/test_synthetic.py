"""Tests for the synthetic workload generator."""

import pytest

from repro.workloads import LINUX_MODULE_WEIGHTS, WorkloadSpec, generate


@pytest.fixture(scope="module")
def tiny():
    return generate(WorkloadSpec(name="tiny", seed=3, num_roots=3, layers=3,
                                 layer_width=4, fanout=2))


class TestGeneration:
    def test_deterministic_in_seed(self):
        spec = WorkloadSpec(name="w", seed=9, num_roots=2, layers=2, layer_width=3)
        a, b = generate(spec), generate(spec)
        assert a.sources == b.sources
        assert a.ground_truth == b.ground_truth

    def test_different_seeds_differ(self):
        s1 = WorkloadSpec(name="w", seed=1, num_roots=3, layers=3, layer_width=4)
        s2 = WorkloadSpec(name="w", seed=2, num_roots=3, layers=3, layer_width=4)
        assert generate(s1).sources != generate(s2).sources

    def test_parses_and_compiles(self, tiny):
        pg = tiny.compile()
        assert pg.num_vertices > 0
        assert pg.inline_count > 0

    def test_ground_truth_covers_all_checkers(self, tiny):
        checkers = {t.checker for t in tiny.ground_truth}
        assert {"Null", "UNTest", "Free", "Lock", "Block", "Range", "Size", "PNull"} <= checkers

    def test_truth_for_filters(self, tiny):
        nulls = tiny.truth_for("Null")
        assert nulls and all(t.checker == "Null" for t in nulls)

    def test_loc_positive(self, tiny):
        assert tiny.loc > 100

    def test_modules_used(self, tiny):
        modules = {m for m, _ in tiny.sources}
        assert len(modules) >= 3
        assert modules <= set(LINUX_MODULE_WEIGHTS)

    def test_ground_truth_functions_exist(self, tiny):
        pg = tiny.compile()
        defined = set(pg.lowered.functions)
        for t in tiny.ground_truth:
            assert t.function in defined, t


class TestScaling:
    def test_scaled_grows(self):
        base = WorkloadSpec(name="w", seed=1, num_roots=10, layer_width=10)
        big = base.scaled(2.0)
        small = base.scaled(0.3)
        assert big.num_roots > base.num_roots > small.num_roots
        assert small.num_roots >= 2

    def test_scaled_keeps_gadgets_at_least_one(self):
        base = WorkloadSpec(name="w", seed=1)
        tiny = base.scaled(0.01)
        assert tiny.null_deep >= 1
        assert tiny.untest >= 1

    def test_inline_growth_with_depth(self):
        """Inline counts grow multiplicatively with call-graph depth."""
        shallow = generate(
            WorkloadSpec(name="s", seed=5, num_roots=4, layers=2, layer_width=4, fanout=2)
        ).compile()
        deep = generate(
            WorkloadSpec(name="d", seed=5, num_roots=4, layers=6, layer_width=4, fanout=2)
        ).compile()
        # gadget functions contribute a constant to both, so compare the
        # multiplicative trend loosely
        assert deep.inline_count > 3 * shallow.inline_count
