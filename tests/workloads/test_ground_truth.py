"""End-to-end ground-truth integration: every injected defect is found.

The Tables 3/4 pipeline at test scale: generate -> compile -> analyses ->
checkers -> score.  The augmented checkers must find every injected bug
(zero false negatives); their false positives must come only from the
decoy gadgets; and the baseline checkers must miss the interprocedural
bugs by design.
"""

import pytest

from repro.checkers import ALL_CHECKERS, check_program
from repro.workloads import httpd_like


@pytest.fixture(scope="module")
def scored():
    workload = httpd_like(scale=0.6)
    result = check_program(workload.compile())
    return workload, result


ALIAS_CHECKERS = ("Free", "Lock", "Block", "Size", "Range", "Null", "PNull")


class TestAugmentedFindsEverything:
    @pytest.mark.parametrize("checker", [cls.name for cls in ALL_CHECKERS])
    def test_zero_false_negatives(self, scored, checker):
        workload, result = scored
        score = result.score(workload.ground_truth, "augmented", checker)
        assert score.false_negatives == 0, checker

    def test_untest_no_false_positives(self, scored):
        workload, result = scored
        score = result.score(workload.ground_truth, "augmented", "UNTest")
        assert score.false_positives == 0

    def test_null_fp_rate_bounded(self, scored):
        """FPs come only from the injected flow-insensitivity decoys."""
        workload, result = scored
        score = result.score(workload.ground_truth, "augmented", "Null")
        spec = workload.spec
        assert score.false_positives <= spec.null_decoys + spec.null_shallow_decoys


class TestBaselineBlindSpots:
    def test_baseline_null_misses_deep_bugs(self, scored):
        workload, result = scored
        score = result.score(workload.ground_truth, "baseline", "Null")
        assert score.true_positives == 0  # every real bug is deep

    def test_baseline_finds_fewer_than_augmented(self, scored):
        workload, result = scored
        for checker in ALIAS_CHECKERS:
            bl = result.score(workload.ground_truth, "baseline", checker)
            gr = result.score(workload.ground_truth, "augmented", checker)
            assert gr.true_positives >= bl.true_positives, checker

    def test_pnull_augmentation_reduces_fps(self, scored):
        workload, result = scored
        bl = result.score(workload.ground_truth, "baseline", "PNull")
        gr = result.score(workload.ground_truth, "augmented", "PNull")
        assert gr.false_positives < bl.reported
        assert gr.true_positives == bl.true_positives  # no real bug lost
