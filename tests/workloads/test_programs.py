"""Tests for the named evaluation workloads (Table 2 stand-ins)."""

import pytest

from repro.workloads import (
    ALL_WORKLOADS,
    PAPER_TABLE2,
    httpd_like,
    linux_like,
    postgresql_like,
    workload_by_name,
)


@pytest.fixture(scope="module")
def small():
    return {
        "linux": linux_like(scale=0.15),
        "postgresql": postgresql_like(scale=0.3),
        "httpd": httpd_like(scale=0.5),
    }


class TestNamedWorkloads:
    def test_all_compile(self, small):
        for name, wl in small.items():
            pg = wl.compile()
            assert pg.inline_count > 0, name

    def test_table2_ordering_preserved(self, small):
        """linux >> postgresql > httpd in inline counts, as in the paper."""
        inlines = {n: wl.compile().inline_count for n, wl in small.items()}
        assert inlines["linux"] > inlines["postgresql"] > inlines["httpd"]

    def test_paper_reference_values_present(self):
        assert PAPER_TABLE2["linux"]["inlines"] == 317_000_000
        assert set(PAPER_TABLE2) == {"linux", "postgresql", "httpd"}

    def test_workload_by_name(self):
        wl = workload_by_name("httpd", scale=0.4)
        assert wl.name == "httpd-like"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            workload_by_name("solaris")

    def test_registry_complete(self):
        assert set(ALL_WORKLOADS) == {"linux", "postgresql", "httpd"}

    def test_linux_modules_match_taxonomy(self, small):
        modules = {m for m, _ in small["linux"].sources}
        assert "drivers" in modules

    def test_postgres_has_own_taxonomy(self, small):
        modules = {m for m, _ in small["postgresql"].sources}
        assert "backend" in modules
