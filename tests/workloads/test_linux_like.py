"""Linux-like workload specifics: module taxonomy and Table 4 shape."""

import pytest

from repro.checkers import check_program
from repro.workloads import linux_like


@pytest.fixture(scope="module")
def tiny_linux():
    return linux_like(scale=0.2)


class TestLinuxShape:
    def test_module_taxonomy(self, tiny_linux):
        modules = {m for m, _ in tiny_linux.sources}
        assert "drivers" in modules
        assert len(modules) >= 8

    def test_drivers_gets_most_source_mass(self, tiny_linux):
        sizes = {m: len(src) for m, src in tiny_linux.sources}
        assert max(sizes, key=sizes.get) == "drivers"

    def test_untest_mass_scales(self):
        small = linux_like(scale=0.2)
        big = linux_like(scale=0.5)
        assert len(big.truth_for("UNTest")) > len(small.truth_for("UNTest"))

    def test_table4_shape_at_tiny_scale(self, tiny_linux):
        """drivers should lead the UNTest breakdown even at small scale."""
        result = check_program(tiny_linux.compile())
        breakdown = result.module_breakdown("augmented", "UNTest")
        assert breakdown
        top = max(breakdown, key=breakdown.get)
        assert top == "drivers"

    def test_null_return_plumbing_present(self, tiny_linux):
        text = tiny_linux.source_text()
        assert "err0 = NULL" in text  # error-path gadgets exist

    def test_recursion_gadgets_present(self, tiny_linux):
        text = tiny_linux.source_text()
        assert "rec_even_" in text and "rec_odd_" in text
