"""Tests for the taint/async workload gadgets and ``truth_for`` validation."""

import pytest

from repro.workloads import WorkloadSpec, generate
from repro.workloads.synthetic import SyntheticProgramBuilder


def spec(**overrides):
    base = dict(
        name="tg",
        seed=5,
        num_roots=2,
        layers=2,
        layer_width=3,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


@pytest.fixture(scope="module")
def workload():
    return generate(spec())


class TestTruthForValidation:
    def test_known_checker_filters(self, workload):
        taints = workload.truth_for("Taint")
        assert taints and all(t.checker == "Taint" for t in taints)

    def test_unknown_checker_raises_keyerror(self, workload):
        with pytest.raises(KeyError, match="unknown checker 'Tanit'"):
            workload.truth_for("Tanit")

    def test_error_lists_valid_names(self, workload):
        with pytest.raises(KeyError, match="Async"):
            workload.truth_for("")


class TestTaintGadgets:
    def test_direct_gadget_records_truth(self):
        builder = SyntheticProgramBuilder(spec())
        builder._emit_taint_direct()
        assert len(builder.truth) == 1
        assert builder.truth[0].checker == "Taint"
        assert builder.truth[0].function.startswith("td_host_")

    def test_flow_gadget_uses_chain_length(self):
        builder = SyntheticProgramBuilder(spec(taint_flow_chain=4))
        builder._emit_taint_flow()
        text = "\n".join(t for _, t in builder.sources.finish())
        for hop in range(4):
            assert f"tf_mid_1_{hop}" in text
        assert len(builder.truth) == 1

    def test_sanitizer_decoy_records_no_truth(self):
        """The decoy is a correct program: sanitize() guards every sink."""
        builder = SyntheticProgramBuilder(spec())
        builder._emit_taint_sanitizer_decoy()
        assert builder.truth == []
        assert len(builder.decoys) == 2
        assert all(f.startswith("tsd_") for f in builder.decoys)
        text = "\n".join(t for _, t in builder.sources.finish())
        assert "sanitize(" in text

    def test_heap_gadget_records_truth(self):
        builder = SyntheticProgramBuilder(spec())
        builder._emit_taint_heap()
        assert [t.checker for t in builder.truth] == ["Taint"]


class TestAsyncGadgets:
    def test_direct_gadget_records_truth(self):
        builder = SyntheticProgramBuilder(spec())
        builder._emit_async_direct()
        assert [t.checker for t in builder.truth] == ["Async"]
        assert builder.truth[0].variable == "sleep"

    def test_deep_gadget_uses_await(self):
        builder = SyntheticProgramBuilder(spec())
        builder._emit_async_deep()
        text = "\n".join(t for _, t in builder.sources.finish())
        assert "await " in text
        assert [t.checker for t in builder.truth] == ["Async"]
        assert builder.truth[0].variable.startswith("aw_block_")

    def test_safe_decoy_spawns_and_records_no_truth(self):
        builder = SyntheticProgramBuilder(spec())
        builder._emit_async_safe_decoy()
        assert builder.truth == []
        assert len(builder.decoys) == 1
        text = "\n".join(t for _, t in builder.sources.finish())
        assert "spawn as_sleepy_" in text


class TestWorkloadIntegration:
    def test_decoy_functions_surface_on_workload(self, workload):
        assert workload.decoy_functions
        defined = set()
        for _, text in workload.sources:
            defined.update(
                line.split("(")[0].split()[-1]
                for line in text.splitlines()
                if line.startswith(("void ", "int ", "async "))
            )
        for decoy in workload.decoy_functions:
            assert decoy in defined

    def test_gadgets_compile(self, workload):
        pg = workload.compile()
        assert pg.async_contexts
        src, dst = pg.edges_of_kind("TS")
        assert len(src) > 0

    def test_scaled_keeps_new_gadgets_at_least_one(self):
        small = spec().scaled(0.01)
        for name in (
            "taint_direct",
            "taint_flow",
            "taint_heap",
            "taint_sanitizer_decoys",
            "async_direct",
            "async_deep",
            "async_safe_decoys",
        ):
            assert getattr(small, name) >= 1

    def test_deterministic_in_seed(self):
        a, b = generate(spec()), generate(spec())
        assert a.sources == b.sources
        assert a.decoy_functions == b.decoy_functions
