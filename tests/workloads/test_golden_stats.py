"""Golden regression pins for the generated workloads.

Seeded generation must stay reproducible across refactors: the bench
numbers in EXPERIMENTS.md are only comparable run-to-run if the
workloads do not silently drift.  If a deliberate generator change trips
these, regenerate the pinned values AND rerun the benchmarks.
"""

import pytest

from repro.workloads import httpd_like


@pytest.fixture(scope="module")
def wl():
    return httpd_like(scale=0.5)


@pytest.fixture(scope="module")
def pg(wl):
    return wl.compile()


class TestGoldenHttpdHalfScale:
    def test_structure_counts_are_stable(self, wl, pg):
        assert len(pg.lowered.functions) == len(set(pg.lowered.functions))
        # pin the broad strokes, not every byte
        assert 40 <= len(pg.lowered.functions) <= 90
        assert 50 <= pg.inline_count <= 200
        assert 15 <= len(wl.ground_truth) <= 80

    def test_generation_is_stable_across_calls(self, wl):
        again = httpd_like(scale=0.5)
        assert again.source_text() == wl.source_text()
        assert again.ground_truth == wl.ground_truth

    def test_compile_is_deterministic(self, wl, pg):
        pg2 = wl.compile()
        assert pg2.num_vertices == pg.num_vertices
        assert pg2.num_edges == pg.num_edges
        assert pg2.inline_count == pg.inline_count

    def test_pointer_graph_deterministic(self, wl, pg):
        from repro.frontend import pointer_graph

        a = pointer_graph(pg)
        b = pointer_graph(wl.compile())
        assert a.num_edges == b.num_edges
        assert list(a.src[:50]) == list(b.src[:50])
