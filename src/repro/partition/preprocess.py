"""Preprocessing: shard an edge-list graph into partitions (§4.1).

Vertices are divided into contiguous intervals balanced by *edge mass*
(out-degree), so partitions start with similar numbers of edges.  For each
partition we materialize sorted per-vertex adjacency, the degree metadata,
and its DDM row.  With no sizing hints the graph gets two partitions —
the paper's in-memory configuration, where both stay resident.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.graph.graph import MemGraph
from repro.partition.ddm import DestinationDistributionMap
from repro.partition.interval import Interval, VertexIntervalTable
from repro.partition.partition import Partition
from repro.partition.pset import PartitionSet
from repro.partition.storage import PartitionStore
from repro.util.timing import TimeBreakdown

PathLike = Union[str, Path]


def choose_num_partitions(
    num_edges: int,
    max_edges_per_partition: Optional[int],
    num_partitions: Optional[int],
) -> int:
    """Resolve the partition count from user sizing hints.

    ``max_edges_per_partition`` models "the amount of memory available to
    Graspan" (§4.1): only two partitions are resident at a time, so the
    per-partition budget is roughly half the usable memory.
    """
    if num_partitions is not None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        return num_partitions
    if max_edges_per_partition is not None:
        if max_edges_per_partition < 1:
            raise ValueError("max_edges_per_partition must be >= 1")
        return max(1, math.ceil(num_edges / max_edges_per_partition))
    return 2


def balanced_intervals(graph: MemGraph, num_partitions: int) -> VertexIntervalTable:
    """Intervals with roughly equal out-edge mass per partition."""
    n = graph.num_vertices
    if n == 0:
        raise ValueError("cannot partition an empty graph")
    num_partitions = min(num_partitions, n)
    degrees = graph.out_degrees().astype(np.float64)
    # Weight empty vertices slightly so bounds always advance.
    cumulative = np.cumsum(degrees + 1e-9)
    total = cumulative[-1]
    bounds: List[int] = [0]
    for i in range(1, num_partitions):
        target = total * i / num_partitions
        cut = int(np.searchsorted(cumulative, target))
        # Pick whichever side of the target mass is closer.
        if cut < n - 1:
            below = cumulative[cut - 1] if cut > 0 else 0.0
            if abs(cumulative[cut] - target) <= abs(below - target):
                cut += 1
        cut = max(cut, bounds[-1] + 1)  # keep intervals non-empty
        cut = min(cut, n - (num_partitions - i))  # leave room for the rest
        bounds.append(cut)
    bounds.append(n)
    intervals = [Interval(bounds[i], bounds[i + 1] - 1) for i in range(num_partitions)]
    return VertexIntervalTable(intervals)


def planned_partition_table(
    graph: MemGraph,
    max_edges_per_partition: Optional[int] = None,
    num_partitions: Optional[int] = None,
) -> List[List[int]]:
    """The ``[[lo, hi], ...]`` interval table :func:`preprocess` would build.

    Deterministic in the graph and the sizing hints, and cheap (one
    cumulative sum — no partitions are materialized).  This is what the
    closure cache folds into its graph fingerprint: a repartitioned but
    edge-identical configuration plans a different table and therefore
    keys a different cache entry (see
    :func:`repro.engine.checkpoint.graph_fingerprint`).
    """
    if graph.num_vertices == 0:
        return []
    count = choose_num_partitions(
        graph.num_edges, max_edges_per_partition, num_partitions
    )
    vit = balanced_intervals(graph, count)
    return [[iv.lo, iv.hi] for iv in vit.intervals()]


def preprocess(
    graph: MemGraph,
    max_edges_per_partition: Optional[int] = None,
    num_partitions: Optional[int] = None,
    workdir: Optional[PathLike] = None,
    timers: Optional[TimeBreakdown] = None,
    intervals: Optional[List] = None,
    memory_budget: Optional[int] = None,
    store: Optional[PartitionStore] = None,
) -> PartitionSet:
    """Shard ``graph`` into a :class:`PartitionSet`.

    If ``workdir`` is given the store is disk-backed and every partition
    is written out and evicted — the out-of-core starting state.  Without
    it everything stays resident (in-memory mode).  ``intervals`` (a list
    of ``(lo, hi)`` tuples) overrides the automatic edge-mass balancing.
    ``memory_budget`` (bytes) caps how many partitions the set keeps
    resident at once; see :class:`repro.partition.pset.ResidencyManager`.
    ``store`` supplies a pre-configured :class:`PartitionStore` (retry
    policy, fault injector, durability flags); its workdir wins over the
    ``workdir`` argument.
    """
    timers = timers if timers is not None else TimeBreakdown()
    with timers.phase("preprocess"):
        if intervals is not None:
            vit = VertexIntervalTable([Interval(lo, hi) for lo, hi in intervals])
        else:
            count = choose_num_partitions(
                graph.num_edges, max_edges_per_partition, num_partitions
            )
            vit = balanced_intervals(graph, count)
        partitions = _build_partitions(graph, vit)
        counts = np.zeros((vit.num_partitions, vit.num_partitions), dtype=np.int64)
        for pid, partition in enumerate(partitions):
            counts[pid, :] = partition.destination_counts(vit)
        ddm = DestinationDistributionMap(counts)
        if store is None:
            store = PartitionStore(workdir=workdir, timers=timers)
        pset = PartitionSet(
            vit,
            ddm,
            partitions,
            store,
            label_names=graph.label_names,
            out_degrees=graph.out_degrees(),
            in_degrees=graph.in_degrees(),
            memory_budget=memory_budget,
        )
    if store.disk_backed:
        pset.evict_all_except(())
    return pset


def _build_partitions(graph: MemGraph, vit: VertexIntervalTable) -> List[Partition]:
    """Slice the graph's flat columnar arrays into per-interval partitions.

    ``graph.src`` is sorted, so each interval is one ``searchsorted``
    range; the key slice is copied so the partition owns its arrays
    independently of the (possibly huge) source graph.
    """
    partitions: List[Partition] = []
    for interval in vit.intervals():
        lo = int(np.searchsorted(graph.src, interval.lo, side="left"))
        hi = int(np.searchsorted(graph.src, interval.hi, side="right"))
        partitions.append(
            Partition.from_flat(
                interval,
                graph.src[lo:hi].copy(),
                graph.keys[lo:hi].copy(),
            )
        )
    return partitions
