"""The partition set: VIT + DDM + partition slots (resident or on disk).

:class:`PartitionSet` is the engine's view of the whole sharded graph.
Each partition occupies a *slot* that holds either the resident
:class:`Partition` object or the path of its file.  Residency is owned
by a :class:`ResidencyManager`: every acquire charges the partition's
actual byte size against an optional memory budget, and when the budget
is exceeded the least-recently-used unpinned partition is evicted
(writing it back first if dirty).  Callers no longer need to pair every
``acquire`` with a manual ``evict`` — they pin what must stay and let
the manager keep the total under budget (§4.1's "two partitions in
memory" generalized to "as many as the budget allows").

Splits (:meth:`split`) rewrite the VIT and grow the DDM in place.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.partition.ddm import DestinationDistributionMap
from repro.partition.interval import VertexIntervalTable
from repro.partition.partition import Partition
from repro.partition.storage import PartitionStore


@dataclass
class _Slot:
    """Where one partition currently lives."""

    partition: Optional[Partition]  # resident copy, if any
    path: Optional[Path]  # on-disk copy, if any
    edge_count: int  # tracked so totals never require a load
    dirty: bool = False  # resident copy differs from the disk copy
    nbytes: int = 0  # size of the (last seen) resident CSR arrays
    last_used: int = 0  # LRU clock stamp of the latest acquire/touch
    pinned: bool = False  # never auto-evicted while pinned


class ResidencyManager:
    """Byte-accounted LRU residency policy over a slot list.

    Promotes :class:`repro.util.memory.MemoryBudget`-style accounting
    from the baselines into the engine: each resident partition is
    charged its real array bytes; ``budget_bytes=None`` means unlimited
    (the manager still counts).  Victims are chosen least-recently-used
    among resident, unpinned slots, so the loaded superstep pair can be
    pinned while everything else cycles through memory.
    """

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.budget_bytes = budget_bytes
        self._clock = 0
        self.loads = 0
        self.evictions = 0
        self.cache_hits = 0
        self.peak_resident_bytes = 0
        self.max_partition_bytes = 0

    # -- accounting ------------------------------------------------------
    def touch(self, slot: _Slot, hit: bool) -> None:
        """Stamp an acquire: ``hit`` when the slot was already resident."""
        self._clock += 1
        slot.last_used = self._clock
        if hit:
            self.cache_hits += 1
        else:
            self.loads += 1

    def recharge(self, slot: _Slot) -> None:
        """Refresh a resident slot's byte size (after load or mutation)."""
        if slot.partition is not None:
            slot.nbytes = slot.partition.nbytes
            self.max_partition_bytes = max(self.max_partition_bytes, slot.nbytes)

    def observe(self, slots: List[_Slot]) -> int:
        """Record the current resident total; returns it."""
        total = sum(s.nbytes for s in slots if s.partition is not None)
        self.peak_resident_bytes = max(self.peak_resident_bytes, total)
        return total

    # -- policy ----------------------------------------------------------
    def select_victim(self, slots: List[_Slot]) -> Optional[int]:
        """Index of the LRU resident unpinned slot, or None."""
        victim = None
        victim_stamp = None
        for i, slot in enumerate(slots):
            if slot.partition is None or slot.pinned:
                continue
            if victim_stamp is None or slot.last_used < victim_stamp:
                victim, victim_stamp = i, slot.last_used
        return victim

    def over_budget(self, resident_bytes: int, headroom: int = 0) -> bool:
        if self.budget_bytes is None:
            return False
        return resident_bytes + headroom > self.budget_bytes

    def stats(self) -> Dict[str, object]:
        return {
            "memory_budget": self.budget_bytes,
            "peak_resident_bytes": self.peak_resident_bytes,
            "max_partition_bytes": self.max_partition_bytes,
            "partition_loads": self.loads,
            "evictions": self.evictions,
            "cache_hits": self.cache_hits,
        }


class PartitionSet:
    """All partitions of one graph plus their metadata."""

    def __init__(
        self,
        vit: VertexIntervalTable,
        ddm: DestinationDistributionMap,
        partitions: List[Partition],
        store: PartitionStore,
        label_names: Tuple[str, ...] = (),
        out_degrees: Optional[np.ndarray] = None,
        in_degrees: Optional[np.ndarray] = None,
        memory_budget: Optional[int] = None,
    ) -> None:
        if vit.num_partitions != len(partitions):
            raise ValueError("VIT and partition list disagree")
        self.vit = vit
        self.ddm = ddm
        self.store = store
        self.label_names = tuple(label_names)
        # The paper's per-partition degree files, kept as two global arrays
        # (used for array pre-sizing in C++; here they feed stats/tests).
        self.out_degrees = out_degrees
        self.in_degrees = in_degrees
        self.residency = ResidencyManager(memory_budget)
        # With checkpointing on, superseded partition files must outlive
        # the next manifest commit (the last durable manifest still
        # references them); the engine flips this and purges after commit.
        self.defer_deletes = False
        self._slots: List[_Slot] = [
            _Slot(
                partition=p,
                path=None,
                edge_count=p.num_edges,
                dirty=True,
                nbytes=p.nbytes,
            )
            for p in partitions
        ]
        self.residency.observe(self._slots)
        for slot in self._slots:
            self.residency.recharge(slot)

    @classmethod
    def from_disk(
        cls,
        vit: VertexIntervalTable,
        ddm: DestinationDistributionMap,
        entries: List[Tuple[Path, int, int]],
        store: PartitionStore,
        label_names: Tuple[str, ...] = (),
        out_degrees: Optional[np.ndarray] = None,
        in_degrees: Optional[np.ndarray] = None,
        memory_budget: Optional[int] = None,
    ) -> "PartitionSet":
        """Rebuild a set whose partitions all live on disk (checkpoint resume).

        ``entries`` is one ``(path, edge_count, nbytes)`` triple per
        partition, in VIT order.  Every slot starts evicted and clean;
        partitions load lazily on first :meth:`acquire`.
        """
        if vit.num_partitions != len(entries):
            raise ValueError("VIT and entry list disagree")
        self = cls.__new__(cls)
        self.vit = vit
        self.ddm = ddm
        self.store = store
        self.label_names = tuple(label_names)
        self.out_degrees = out_degrees
        self.in_degrees = in_degrees
        self.residency = ResidencyManager(memory_budget)
        self.defer_deletes = False
        self._slots = [
            _Slot(
                partition=None,
                path=Path(path),
                edge_count=int(edge_count),
                dirty=False,
                nbytes=int(nbytes),
            )
            for path, edge_count, nbytes in entries
        ]
        return self

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self._slots)

    @property
    def num_vertices(self) -> int:
        return self.vit.num_vertices

    @property
    def memory_budget(self) -> Optional[int]:
        return self.residency.budget_bytes

    def total_edges(self) -> int:
        return sum(slot.edge_count for slot in self._slots)

    def edge_count(self, pid: int) -> int:
        return self._slots[pid].edge_count

    def is_resident(self, pid: int) -> bool:
        return self._slots[pid].partition is not None

    def slot_state(self, pid: int) -> Dict[str, object]:
        """Checkpoint-facing view of one slot (path, edges, bytes, dirty)."""
        slot = self._slots[pid]
        return {
            "path": slot.path,
            "edges": slot.edge_count,
            "nbytes": slot.nbytes,
            "dirty": slot.dirty,
        }

    def resident_pids(self) -> List[int]:
        return [i for i, s in enumerate(self._slots) if s.partition is not None]

    def resident_bytes(self) -> int:
        return sum(s.nbytes for s in self._slots if s.partition is not None)

    def total_bytes(self) -> int:
        """Byte size of every partition, resident or not.

        Evicted slots report the size remembered from their last
        residency, so this is exact without touching disk.
        """
        return sum(s.nbytes for s in self._slots)

    # ------------------------------------------------------------------
    # residency management
    # ------------------------------------------------------------------
    def acquire(self, pid: int) -> Partition:
        """Return the partition, loading it from disk if needed.

        Budgeted sets make room *before* reading: the incoming size is
        known from the slot's last residency, so the load itself never
        has to overshoot by more than the incoming partition.
        """
        slot = self._slots[pid]
        if slot.partition is not None:
            self.residency.touch(slot, hit=True)
            return slot.partition
        if slot.path is None:
            raise RuntimeError(f"partition {pid} has neither memory nor disk copy")
        self._make_room(incoming=slot.nbytes, keep=(pid,))
        slot.partition = self.store.read(slot.path)
        slot.dirty = False
        self.residency.touch(slot, hit=False)
        self.residency.recharge(slot)
        self.residency.observe(self._slots)
        return slot.partition

    def note_mutated(self, pid: int) -> None:
        """Record that the resident copy of ``pid`` changed."""
        slot = self._slots[pid]
        if slot.partition is None:
            raise RuntimeError(f"partition {pid} not resident")
        slot.edge_count = slot.partition.num_edges
        slot.dirty = True
        self.residency.recharge(slot)
        self.residency.observe(self._slots)

    def pin(self, pids: Tuple[int, ...]) -> None:
        """Protect ``pids`` from automatic eviction (the loaded pair)."""
        for pid in pids:
            self._slots[pid].pinned = True

    def unpin(self, pids: Tuple[int, ...]) -> None:
        for pid in pids:
            self._slots[pid].pinned = False

    @contextmanager
    def pinned(self, *pids: int) -> Iterator[None]:
        self.pin(tuple(pids))
        try:
            yield
        finally:
            # Splits may have replaced slot objects; unpin defensively.
            for slot in self._slots:
                slot.pinned = False

    def enforce_budget(self) -> None:
        """Evict LRU unpinned partitions until within budget (if any)."""
        self._make_room(incoming=0, keep=())

    def _discard(self, path: Optional[Path]) -> None:
        """Drop a superseded partition file — deferred when checkpointing."""
        if path is None:
            return
        if self.defer_deletes:
            self.store.retire(path)
        else:
            self.store.delete(path)

    def flush_dirty(self) -> int:
        """Write every dirty resident partition to disk; returns the count.

        Unlike :meth:`evict`, the resident copies stay in memory — this
        is the durability half of a checkpoint, not a residency decision.
        After it, every slot has an up-to-date disk copy and the run
        manifest may safely commit.  Superseded files are discarded via
        :meth:`_discard` (deferred under checkpointing).
        """
        if not self.store.disk_backed:
            return 0
        flushed = 0
        for slot in self._slots:
            if slot.path is not None and not slot.dirty:
                continue
            if slot.partition is None:
                if slot.path is None:
                    raise RuntimeError("slot has neither memory nor disk copy")
                continue
            old_path = slot.path
            slot.path = self.store.write(slot.partition)
            slot.dirty = False
            self._discard(old_path)
            flushed += 1
        return flushed

    def _make_room(self, incoming: int, keep: Tuple[int, ...]) -> None:
        if self.residency.budget_bytes is None or not self.store.disk_backed:
            return
        while self.residency.over_budget(self.resident_bytes(), incoming):
            victim = self.residency.select_victim(
                [
                    s if i not in keep else _PINNED_SENTINEL
                    for i, s in enumerate(self._slots)
                ]
            )
            if victim is None:
                break  # everything left is pinned; bounded overshoot
            self.evict(victim)

    def evict(self, pid: int) -> None:
        """Drop the resident copy, writing it out first if dirty.

        Writing is *delayed* until eviction so a partition rechosen by the
        scheduler pays no I/O (§4.3).  In-memory stores never evict.
        """
        slot = self._slots[pid]
        if slot.partition is None:
            return
        if not self.store.disk_backed:
            return
        if slot.dirty or slot.path is None:
            old_path = slot.path
            slot.path = self.store.write(slot.partition)
            self._discard(old_path)
        slot.nbytes = slot.partition.nbytes  # remembered for pre-load sizing
        slot.partition = None
        slot.dirty = False
        self.residency.evictions += 1

    def evict_all_except(self, keep: Tuple[int, ...] = ()) -> None:
        for pid in self.resident_pids():
            if pid not in keep:
                self.evict(pid)

    # ------------------------------------------------------------------
    # repartitioning (§4.3)
    # ------------------------------------------------------------------
    def split(self, pid: int) -> Tuple[int, int]:
        """Split resident partition ``pid`` at its median edge mass.

        Updates the VIT, the slot list, and the DDM (exact rows for both
        halves).  Returns the two new partition ids (``pid``, ``pid+1``).
        """
        partition = self.acquire(pid)
        mid = partition.median_split_point()
        self.vit.split(pid, mid)
        left, right = partition.split(mid)
        old_slot = self._slots[pid]
        halves = [
            _Slot(
                partition=half,
                path=None,
                edge_count=half.num_edges,
                dirty=True,
                nbytes=half.nbytes,
                last_used=old_slot.last_used,
                pinned=old_slot.pinned,
            )
            for half in (left, right)
        ]
        self._slots[pid : pid + 1] = halves
        self._discard(old_slot.path)
        for slot in halves:
            self.residency.recharge(slot)
        self.ddm.split_partition(
            pid,
            left_row=left.destination_counts(self.vit),
            right_row=right.destination_counts(self.vit),
        )
        return pid, pid + 1

    # ------------------------------------------------------------------
    # whole-graph export (for result queries and tests)
    # ------------------------------------------------------------------
    def iter_all_edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate every edge, loading partitions one at a time."""
        for pid in range(self.num_partitions):
            was_resident = self.is_resident(pid)
            partition = self.acquire(pid)
            yield from partition.edges()
            if not was_resident and self.memory_budget is None:
                self.evict(pid)

    def to_memgraph(self):
        """Materialize the full (possibly large) graph in memory.

        Column-wise: each partition contributes its flat ``(src, keys)``
        arrays, so no per-edge Python iteration happens.
        """
        from repro.graph import packed
        from repro.graph.graph import MemGraph

        src_parts: List[np.ndarray] = []
        key_parts: List[np.ndarray] = []
        for pid in range(self.num_partitions):
            was_resident = self.is_resident(pid)
            partition = self.acquire(pid)
            if partition.num_edges:
                src_parts.append(
                    np.repeat(partition.vertices, partition.row_lengths())
                )
                key_parts.append(np.asarray(partition.keys))
            if not was_resident and self.memory_budget is None:
                self.evict(pid)
        if src_parts:
            src = np.concatenate(src_parts)
            keys = np.concatenate(key_parts)
        else:
            src, keys = packed.EMPTY, packed.EMPTY
        return MemGraph.from_arrays(
            src,
            packed.targets_of(keys),
            packed.labels_of(keys),
            num_vertices=self.num_vertices,
            label_names=self.label_names,
        )

    def __repr__(self) -> str:
        resident = len(self.resident_pids())
        return (
            f"PartitionSet({self.num_partitions} partitions, "
            f"{self.total_edges()} edges, {resident} resident)"
        )


#: Stand-in slot used to mask ``keep`` pids from victim selection.
_PINNED_SENTINEL = _Slot(partition=None, path=None, edge_count=0)
