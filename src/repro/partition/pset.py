"""The partition set: VIT + DDM + partition slots (resident or on disk).

:class:`PartitionSet` is the engine's view of the whole sharded graph.
Each partition occupies a *slot* that holds either the resident
:class:`Partition` object or the path of its file.  The engine asks for
partitions with :meth:`acquire` and gives them back with :meth:`evict`;
splits (:meth:`split`) rewrite the VIT and grow the DDM in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.partition.ddm import DestinationDistributionMap
from repro.partition.interval import VertexIntervalTable
from repro.partition.partition import Partition
from repro.partition.storage import PartitionStore


@dataclass
class _Slot:
    """Where one partition currently lives."""

    partition: Optional[Partition]  # resident copy, if any
    path: Optional[Path]  # on-disk copy, if any
    edge_count: int  # tracked so totals never require a load
    dirty: bool = False  # resident copy differs from the disk copy


class PartitionSet:
    """All partitions of one graph plus their metadata."""

    def __init__(
        self,
        vit: VertexIntervalTable,
        ddm: DestinationDistributionMap,
        partitions: List[Partition],
        store: PartitionStore,
        label_names: Tuple[str, ...] = (),
        out_degrees: Optional[np.ndarray] = None,
        in_degrees: Optional[np.ndarray] = None,
    ) -> None:
        if vit.num_partitions != len(partitions):
            raise ValueError("VIT and partition list disagree")
        self.vit = vit
        self.ddm = ddm
        self.store = store
        self.label_names = tuple(label_names)
        # The paper's per-partition degree files, kept as two global arrays
        # (used for array pre-sizing in C++; here they feed stats/tests).
        self.out_degrees = out_degrees
        self.in_degrees = in_degrees
        self._slots: List[_Slot] = [
            _Slot(partition=p, path=None, edge_count=p.num_edges, dirty=True)
            for p in partitions
        ]

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self._slots)

    @property
    def num_vertices(self) -> int:
        return self.vit.num_vertices

    def total_edges(self) -> int:
        return sum(slot.edge_count for slot in self._slots)

    def edge_count(self, pid: int) -> int:
        return self._slots[pid].edge_count

    def is_resident(self, pid: int) -> bool:
        return self._slots[pid].partition is not None

    def resident_pids(self) -> List[int]:
        return [i for i, s in enumerate(self._slots) if s.partition is not None]

    # ------------------------------------------------------------------
    # residency management
    # ------------------------------------------------------------------
    def acquire(self, pid: int) -> Partition:
        """Return the partition, loading it from disk if needed."""
        slot = self._slots[pid]
        if slot.partition is None:
            if slot.path is None:
                raise RuntimeError(f"partition {pid} has neither memory nor disk copy")
            slot.partition = self.store.read(slot.path)
            slot.dirty = False
        return slot.partition

    def note_mutated(self, pid: int) -> None:
        """Record that the resident copy of ``pid`` changed."""
        slot = self._slots[pid]
        if slot.partition is None:
            raise RuntimeError(f"partition {pid} not resident")
        slot.edge_count = slot.partition.num_edges
        slot.dirty = True

    def evict(self, pid: int) -> None:
        """Drop the resident copy, writing it out first if dirty.

        Writing is *delayed* until eviction so a partition rechosen by the
        scheduler pays no I/O (§4.3).  In-memory stores never evict.
        """
        slot = self._slots[pid]
        if slot.partition is None:
            return
        if not self.store.disk_backed:
            return
        if slot.dirty or slot.path is None:
            old_path = slot.path
            slot.path = self.store.write(slot.partition)
            if old_path is not None:
                self.store.delete(old_path)
        slot.partition = None
        slot.dirty = False

    def evict_all_except(self, keep: Tuple[int, ...] = ()) -> None:
        for pid in self.resident_pids():
            if pid not in keep:
                self.evict(pid)

    # ------------------------------------------------------------------
    # repartitioning (§4.3)
    # ------------------------------------------------------------------
    def split(self, pid: int) -> Tuple[int, int]:
        """Split resident partition ``pid`` at its median edge mass.

        Updates the VIT, the slot list, and the DDM (exact rows for both
        halves).  Returns the two new partition ids (``pid``, ``pid+1``).
        """
        partition = self.acquire(pid)
        mid = partition.median_split_point()
        self.vit.split(pid, mid)
        left, right = partition.split(mid)
        old_slot = self._slots[pid]
        self._slots[pid : pid + 1] = [
            _Slot(partition=left, path=None, edge_count=left.num_edges, dirty=True),
            _Slot(partition=right, path=None, edge_count=right.num_edges, dirty=True),
        ]
        if old_slot.path is not None:
            self.store.delete(old_slot.path)
        self.ddm.split_partition(
            pid,
            left_row=left.destination_counts(self.vit),
            right_row=right.destination_counts(self.vit),
        )
        return pid, pid + 1

    # ------------------------------------------------------------------
    # whole-graph export (for result queries and tests)
    # ------------------------------------------------------------------
    def iter_all_edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate every edge, loading partitions one at a time."""
        for pid in range(self.num_partitions):
            was_resident = self.is_resident(pid)
            partition = self.acquire(pid)
            yield from partition.edges()
            if not was_resident:
                self.evict(pid)

    def to_memgraph(self):
        """Materialize the full (possibly large) graph in memory."""
        from repro.graph.graph import MemGraph

        return MemGraph.from_edges(
            self.iter_all_edges(),
            num_vertices=self.num_vertices,
            label_names=self.label_names,
        )

    def __repr__(self) -> str:
        resident = len(self.resident_pids())
        return (
            f"PartitionSet({self.num_partitions} partitions, "
            f"{self.total_edges()} edges, {resident} resident)"
        )
