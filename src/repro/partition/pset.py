"""The partition set: VIT + DDM + partition slots (resident or on disk).

:class:`PartitionSet` is the engine's view of the whole sharded graph.
Each partition occupies a *slot* that holds either the resident
:class:`Partition` object or the path of its file.  Residency is owned
by a :class:`ResidencyManager`: every acquire charges the partition's
actual byte size against an optional memory budget, and when the budget
is exceeded the least-recently-used unpinned partition is evicted
(writing it back first if dirty).  Callers no longer need to pair every
``acquire`` with a manual ``evict`` — they pin what must stay and let
the manager keep the total under budget (§4.1's "two partitions in
memory" generalized to "as many as the budget allows").

With an I/O pipeline attached (:meth:`PartitionSet.attach_io`) the set
additionally supports *speculative prefetch* (:meth:`prefetch` starts a
background load; :meth:`acquire` joins it instead of re-reading) and
*asynchronous write-back* (:meth:`begin_flush` snapshots dirty CSR
arrays and hands serialization to the I/O thread).  All slot and
residency bookkeeping is then guarded by one reentrant lock; the engine
thread never blocks on an I/O future while holding it, because the I/O
thread's completion handlers acquire the same lock.

Splits (:meth:`split`) rewrite the VIT and grow the DDM in place.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.partition.ddm import DestinationDistributionMap
from repro.partition.interval import VertexIntervalTable
from repro.partition.partition import Partition
from repro.partition.storage import PartitionStore


@dataclass
class _Slot:
    """Where one partition currently lives."""

    partition: Optional[Partition]  # resident copy, if any
    path: Optional[Path]  # on-disk copy, if any
    edge_count: int  # tracked so totals never require a load
    dirty: bool = False  # resident copy differs from the disk copy
    nbytes: int = 0  # size of the (last seen) resident CSR arrays
    last_used: int = 0  # LRU clock stamp of the latest acquire/touch
    pinned: bool = False  # never auto-evicted while pinned
    # -- pipeline state (all guarded by the owning set's lock) ----------
    loading: Optional[Future] = None  # in-flight background read
    load_token: Optional[object] = field(default=None, repr=False)
    flushing: Optional[Future] = None  # in-flight background write
    prefetched: bool = False  # resident copy came from an unconsumed prefetch


class ResidencyManager:
    """Byte-accounted LRU residency policy over a slot list.

    Promotes :class:`repro.util.memory.MemoryBudget`-style accounting
    from the baselines into the engine: each resident partition is
    charged its real array bytes; ``budget_bytes=None`` means unlimited
    (the manager still counts).  Victims are chosen least-recently-used
    among resident, unpinned slots, so the loaded superstep pair can be
    pinned while everything else cycles through memory.

    Not internally synchronized: callers serialize access (the
    :class:`PartitionSet` lock covers every touch/observe).
    """

    def __init__(self, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        self.budget_bytes = budget_bytes
        self._clock = 0
        self.loads = 0
        self.evictions = 0
        self.cache_hits = 0
        self.peak_resident_bytes = 0
        self.max_partition_bytes = 0

    # -- accounting ------------------------------------------------------
    def touch(self, slot: _Slot, hit: bool) -> None:
        """Stamp an acquire: ``hit`` when the slot was already resident."""
        self._clock += 1
        slot.last_used = self._clock
        if hit:
            self.cache_hits += 1
        else:
            self.loads += 1

    def recharge(self, slot: _Slot) -> None:
        """Refresh a resident slot's byte size (after load or mutation)."""
        if slot.partition is not None:
            slot.nbytes = slot.partition.nbytes
            self.max_partition_bytes = max(self.max_partition_bytes, slot.nbytes)

    def observe(self, slots: List[_Slot]) -> int:
        """Record the current resident total; returns it."""
        total = sum(s.nbytes for s in slots if s.partition is not None)
        self.peak_resident_bytes = max(self.peak_resident_bytes, total)
        return total

    # -- policy ----------------------------------------------------------
    def select_victim(self, slots: List[_Slot]) -> Optional[int]:
        """Index of the LRU resident unpinned slot, or None."""
        victim = None
        victim_stamp = None
        for i, slot in enumerate(slots):
            if slot.partition is None or slot.pinned:
                continue
            if victim_stamp is None or slot.last_used < victim_stamp:
                victim, victim_stamp = i, slot.last_used
        return victim

    def over_budget(self, resident_bytes: int, headroom: int = 0) -> bool:
        if self.budget_bytes is None:
            return False
        return resident_bytes + headroom > self.budget_bytes

    def stats(self) -> Dict[str, object]:
        return {
            "memory_budget": self.budget_bytes,
            "peak_resident_bytes": self.peak_resident_bytes,
            "max_partition_bytes": self.max_partition_bytes,
            "partition_loads": self.loads,
            "evictions": self.evictions,
            "cache_hits": self.cache_hits,
        }


class PartitionSet:
    """All partitions of one graph plus their metadata."""

    def __init__(
        self,
        vit: VertexIntervalTable,
        ddm: DestinationDistributionMap,
        partitions: List[Partition],
        store: PartitionStore,
        label_names: Tuple[str, ...] = (),
        out_degrees: Optional[np.ndarray] = None,
        in_degrees: Optional[np.ndarray] = None,
        memory_budget: Optional[int] = None,
    ) -> None:
        if vit.num_partitions != len(partitions):
            raise ValueError("VIT and partition list disagree")
        self.vit = vit
        self.ddm = ddm
        self.store = store
        self.label_names = tuple(label_names)
        # The paper's per-partition degree files, kept as two global arrays
        # (used for array pre-sizing in C++; here they feed stats/tests).
        self.out_degrees = out_degrees
        self.in_degrees = in_degrees
        self.residency = ResidencyManager(memory_budget)
        # With checkpointing on, superseded partition files must outlive
        # the next manifest commit (the last durable manifest still
        # references them); the engine flips this and purges after commit.
        self.defer_deletes = False
        self._lock = threading.RLock()
        self._io = None  # attached IoPipeline, if any
        self._inflight_load_bytes = 0
        self._interval_lows: Optional[np.ndarray] = None
        self._slots: List[_Slot] = [
            _Slot(
                partition=p,
                path=None,
                edge_count=p.num_edges,
                dirty=True,
                nbytes=p.nbytes,
            )
            for p in partitions
        ]
        self.residency.observe(self._slots)
        for slot in self._slots:
            self.residency.recharge(slot)

    @classmethod
    def from_disk(
        cls,
        vit: VertexIntervalTable,
        ddm: DestinationDistributionMap,
        entries: List[Tuple[Path, int, int]],
        store: PartitionStore,
        label_names: Tuple[str, ...] = (),
        out_degrees: Optional[np.ndarray] = None,
        in_degrees: Optional[np.ndarray] = None,
        memory_budget: Optional[int] = None,
    ) -> "PartitionSet":
        """Rebuild a set whose partitions all live on disk (checkpoint resume).

        ``entries`` is one ``(path, edge_count, nbytes)`` triple per
        partition, in VIT order.  Every slot starts evicted and clean;
        partitions load lazily on first :meth:`acquire`.
        """
        if vit.num_partitions != len(entries):
            raise ValueError("VIT and entry list disagree")
        self = cls.__new__(cls)
        self.vit = vit
        self.ddm = ddm
        self.store = store
        self.label_names = tuple(label_names)
        self.out_degrees = out_degrees
        self.in_degrees = in_degrees
        self.residency = ResidencyManager(memory_budget)
        self.defer_deletes = False
        self._lock = threading.RLock()
        self._io = None
        self._inflight_load_bytes = 0
        self._interval_lows = None
        self._slots = [
            _Slot(
                partition=None,
                path=Path(path),
                edge_count=int(edge_count),
                dirty=False,
                nbytes=int(nbytes),
            )
            for path, edge_count, nbytes in entries
        ]
        return self

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self._slots)

    @property
    def num_vertices(self) -> int:
        return self.vit.num_vertices

    @property
    def memory_budget(self) -> Optional[int]:
        return self.residency.budget_bytes

    def total_edges(self) -> int:
        with self._lock:
            return sum(slot.edge_count for slot in self._slots)

    def edge_count(self, pid: int) -> int:
        return self._slots[pid].edge_count

    def is_resident(self, pid: int) -> bool:
        return self._slots[pid].partition is not None

    def slot_state(self, pid: int) -> Dict[str, object]:
        """Checkpoint-facing view of one slot (path, edges, bytes, dirty)."""
        with self._lock:
            slot = self._slots[pid]
            return {
                "path": slot.path,
                "edges": slot.edge_count,
                "nbytes": slot.nbytes,
                "dirty": slot.dirty,
            }

    def resident_pids(self) -> List[int]:
        with self._lock:
            return [
                i for i, s in enumerate(self._slots) if s.partition is not None
            ]

    def scheduling_resident_pids(self) -> List[int]:
        """Resident pids as the *sequential* engine would see them.

        Excludes unconsumed speculative loads: the scheduler's residency
        tie-break must not be influenced by its own prediction, or the
        pipelined run schedules differently from the sequential one and
        the two stop being superstep-for-superstep comparable (resume
        tests rely on that).  A consumed prefetch (``acquire`` hit it)
        clears the flag and counts as ordinarily resident.
        """
        with self._lock:
            return [
                i
                for i, s in enumerate(self._slots)
                if s.partition is not None and not s.prefetched
            ]

    def resident_bytes(self) -> int:
        with self._lock:
            return sum(
                s.nbytes for s in self._slots if s.partition is not None
            )

    def total_bytes(self) -> int:
        """Byte size of every partition, resident or not.

        Evicted slots report the size remembered from their last
        residency, so this is exact without touching disk.
        """
        with self._lock:
            return sum(s.nbytes for s in self._slots)

    def interval_lows(self) -> np.ndarray:
        """Per-partition interval lower bounds, as one cached array.

        ``np.searchsorted`` against this maps vertex ids to partition
        ids in bulk — the engine's per-superstep new-edge bucketing.
        Invalidated by :meth:`split`.
        """
        with self._lock:
            if self._interval_lows is None or len(self._interval_lows) != len(
                self._slots
            ):
                self._interval_lows = np.fromiter(
                    (iv.lo for iv in self.vit.intervals()),
                    dtype=np.int64,
                    count=self.vit.num_partitions,
                )
            return self._interval_lows

    # ------------------------------------------------------------------
    # I/O pipeline attachment
    # ------------------------------------------------------------------
    def attach_io(self, pipeline) -> None:
        """Route prefetch and async write-back through ``pipeline``."""
        with self._lock:
            self._io = pipeline

    def detach_io(self) -> None:
        with self._lock:
            self._io = None

    def _count_io(self, counter: str) -> None:
        if self._io is not None:
            self._io.count(counter)

    # ------------------------------------------------------------------
    # residency management
    # ------------------------------------------------------------------
    def acquire(self, pid: int) -> Partition:
        """Return the partition, loading it from disk if needed.

        Budgeted sets make room *before* reading: the incoming size is
        known from the slot's last residency, so the load itself never
        has to overshoot by more than the incoming partition.

        With a pipeline attached, an in-flight prefetch of ``pid`` is
        *joined* (the engine blocks on the background read instead of
        issuing its own), and an in-flight flush of ``pid`` is drained
        before re-reading the file it is still writing.
        """
        while True:
            with self._lock:
                slot = self._slots[pid]
                if slot.partition is not None:
                    if slot.prefetched:
                        slot.prefetched = False
                        self._count_io("prefetch_hits")
                    self.residency.touch(slot, hit=True)
                    return slot.partition
                load, flush = slot.loading, slot.flushing
                if load is None and flush is None:
                    if slot.path is None:
                        raise RuntimeError(
                            f"partition {pid} has neither memory nor disk copy"
                        )
                    self._make_room(incoming=slot.nbytes, keep=(pid,))
                    slot.partition = self.store.read(slot.path)
                    slot.dirty = False
                    self.residency.touch(slot, hit=False)
                    self.residency.recharge(slot)
                    self.residency.observe(self._slots)
                    return slot.partition
            # Never wait on a future while holding the lock: the I/O
            # thread's completion handlers take the same lock.
            if load is not None:
                self._io.wait_load(load)
            else:
                self._io.wait_flush(flush)
            # Loop: the prefetch installed the partition (hit path), or
            # the flush finished and the file is now safe to read.

    def prefetch(self, pid: int) -> bool:
        """Start loading ``pid`` on the I/O thread; best-effort.

        Declined (returns False) when the partition is already resident
        or loading, has no disk copy, would not fit in the memory budget
        without evicting anything, or its file is still being flushed.
        Speculative bytes are charged against the budget the moment the
        load is issued (``_inflight_load_bytes``), so a prefetch can
        never push residency past the budget — mispredictions waste one
        read, never memory.
        """
        with self._lock:
            if self._io is None or not self.store.disk_backed:
                return False
            slot = self._slots[pid]
            if (
                slot.partition is not None
                or slot.loading is not None
                or slot.flushing is not None
                or slot.path is None
            ):
                return False
            if self.residency.budget_bytes is not None:
                projected = (
                    self.resident_bytes()
                    + self._inflight_load_bytes
                    + slot.nbytes
                )
                if self.residency.over_budget(projected):
                    return False  # don't evict real data for a guess
            token = object()
            reserved = slot.nbytes
            path = slot.path
            slot.load_token = token
            self._inflight_load_bytes += reserved

            def job():
                try:
                    partition = self.store.read(path)
                except BaseException:
                    with self._lock:
                        self._inflight_load_bytes -= reserved
                        if slot.load_token is token:
                            slot.load_token = None
                            slot.loading = None
                    raise
                with self._lock:
                    self._inflight_load_bytes -= reserved
                    # Install only if the prefetch wasn't cancelled (and
                    # the slot wasn't split away) in the meantime.
                    if slot.load_token is token:
                        slot.load_token = None
                        slot.loading = None
                        if slot.partition is None:
                            slot.partition = partition
                            slot.dirty = False
                            slot.prefetched = True
                            self.residency.loads += 1
                            self.residency.recharge(slot)
                            self.residency.observe(self._slots)
                return None

            slot.loading = self._io.submit(job)
            self._count_io("prefetch_issued")
            return True

    def cancel_prefetch(self, pid: int) -> None:
        """Abandon an in-flight or unconsumed prefetch of ``pid``.

        A queued-but-unstarted load is cancelled outright; a running one
        is disowned (its install check fails and the read is dropped);
        an installed-but-unconsumed one is evicted (it is clean, so the
        eviction costs no write).  All three count as ``prefetch_wasted``.
        """
        with self._lock:
            slot = self._slots[pid]
            if slot.loading is not None:
                future = slot.loading
                slot.loading = None
                if slot.load_token is not None:
                    slot.load_token = None
                    if future.cancel():
                        # Never ran: hand the reservation back here.
                        self._inflight_load_bytes -= slot.nbytes
                    self._count_io("prefetch_wasted")
            elif slot.prefetched and slot.partition is not None:
                self.evict(pid)

    def reconcile_prefetch(self, pair: Tuple[int, ...]) -> None:
        """Settle speculative loads against the actually chosen ``pair``.

        Prefetches of partitions in ``pair`` are kept (acquire will join
        or hit them); every other speculative load is cancelled/evicted
        and counted wasted.
        """
        with self._lock:
            for pid, slot in enumerate(self._slots):
                if pid in pair:
                    continue
                if slot.loading is not None or slot.prefetched:
                    self.cancel_prefetch(pid)

    def note_mutated(self, pid: int) -> None:
        """Record that the resident copy of ``pid`` changed."""
        with self._lock:
            slot = self._slots[pid]
            if slot.partition is None:
                raise RuntimeError(f"partition {pid} not resident")
            slot.edge_count = slot.partition.num_edges
            slot.dirty = True
            self.residency.recharge(slot)
            self.residency.observe(self._slots)

    def pin(self, pids: Tuple[int, ...]) -> None:
        """Protect ``pids`` from automatic eviction (the loaded pair)."""
        with self._lock:
            for pid in pids:
                self._slots[pid].pinned = True

    def unpin(self, pids: Tuple[int, ...]) -> None:
        with self._lock:
            for pid in pids:
                self._slots[pid].pinned = False

    @contextmanager
    def pinned(self, *pids: int) -> Iterator[None]:
        self.pin(tuple(pids))
        try:
            yield
        finally:
            # Splits may have replaced slot objects; unpin defensively.
            with self._lock:
                for slot in self._slots:
                    slot.pinned = False

    def pin_hot(self, headroom: Optional[int] = None) -> List[int]:
        """Pin the hottest partitions resident, leaving ``headroom`` bytes.

        Serving-tier warm-up (DESIGN.md §14): the closure daemon calls
        this once per finished closure so checker queries hit memory
        instead of re-reading partition files per request.  Partitions
        are ranked by edge count (the best available proxy for how much
        of each query's scan they absorb) and loaded + pinned greedily
        while ``pinned_bytes + headroom`` stays within the memory
        budget.  ``headroom`` defaults to the largest known partition,
        so a query touching an *unpinned* partition can always load it
        by evicting only unpinned residents — preserving the engine's
        "peak ≤ budget + one partition" residency invariant.

        No-op (returns ``[]``) without a memory budget: unbudgeted sets
        keep everything resident anyway.  Returns the pinned pids.
        """
        if self.memory_budget is None:
            return []
        with self._lock:
            sizes = [slot.nbytes for slot in self._slots]
            order = sorted(
                range(len(self._slots)),
                key=lambda pid: self._slots[pid].edge_count,
                reverse=True,
            )
        if headroom is None:
            headroom = max(sizes, default=0)
        pinned: List[int] = []
        used = 0
        for pid in order:
            size = sizes[pid]
            if size <= 0:
                continue
            if used + size + headroom > self.memory_budget:
                continue
            self.acquire(pid)
            self.pin((pid,))
            used += size
            pinned.append(pid)
        return pinned

    def unpin_all(self) -> None:
        """Release every pin (daemon shutdown / closure replacement)."""
        with self._lock:
            for slot in self._slots:
                slot.pinned = False

    def enforce_budget(self) -> None:
        """Evict LRU unpinned partitions until within budget (if any)."""
        with self._lock:
            self._make_room(incoming=0, keep=())

    def _discard(self, path: Optional[Path]) -> None:
        """Drop a superseded partition file — deferred when checkpointing."""
        if path is None:
            return
        if self.defer_deletes:
            self.store.retire(path)
        else:
            self.store.delete(path)

    def flush_dirty(self) -> int:
        """Write every dirty resident partition to disk; returns the count.

        Unlike :meth:`evict`, the resident copies stay in memory — this
        is the durability half of a checkpoint, not a residency decision.
        After it, every slot has an up-to-date disk copy and the run
        manifest may safely commit.  Superseded files are discarded via
        :meth:`_discard` (deferred under checkpointing).
        """
        if not self.store.disk_backed:
            return 0
        with self._lock:
            flushed = 0
            for slot in self._slots:
                if slot.path is not None and not slot.dirty:
                    continue
                if slot.partition is None:
                    if slot.path is None:
                        raise RuntimeError(
                            "slot has neither memory nor disk copy"
                        )
                    continue
                old_path = slot.path
                slot.path = self.store.write(slot.partition)
                slot.dirty = False
                self._discard(old_path)
                flushed += 1
            return flushed

    def begin_flush(self) -> List[Future]:
        """Asynchronous :meth:`flush_dirty`: snapshot now, write later.

        For every dirty resident partition the CSR arrays are captured
        by reference (the engine's scatter *rebinds* a partition's
        arrays, never mutates them in place, so the captured triple is a
        consistent snapshot even if the slot is re-dirtied while the
        write is still queued), a destination path is pre-allocated, and
        the serialization + fsync is submitted to the I/O thread.  The
        slot's metadata is updated immediately — ``path`` points at the
        in-flight file and ``dirty`` clears — which is exactly what
        checkpoint-manifest building needs; the manifest must simply not
        *commit* until the returned futures are drained.

        Requires an attached pipeline; falls back to the synchronous
        path otherwise (returning no futures).
        """
        if not self.store.disk_backed:
            return []
        with self._lock:
            if self._io is None:
                self.flush_dirty()
                return []
            futures: List[Future] = []
            for slot in self._slots:
                if slot.path is not None and not slot.dirty:
                    continue
                if slot.partition is None:
                    if slot.path is None:
                        raise RuntimeError(
                            "slot has neither memory nor disk copy"
                        )
                    continue
                snapshot = Partition.from_csr(
                    slot.partition.interval, *slot.partition.csr()
                )
                new_path = self.store.allocate_path()
                old_path = slot.path
                slot.path = new_path
                slot.dirty = False
                self._discard(old_path)
                future = self._io.submit(self.store.write_to, snapshot, new_path)
                slot.flushing = future

                def clear(done, slot=slot):
                    with self._lock:
                        if slot.flushing is done:
                            slot.flushing = None

                future.add_done_callback(clear)
                futures.append(future)
            return futures

    def _make_room(self, incoming: int, keep: Tuple[int, ...]) -> None:
        # Callers hold the lock.  Speculative in-flight loads count
        # toward residency so prefetch can never cause an overshoot the
        # budget tests would see.
        if self.residency.budget_bytes is None or not self.store.disk_backed:
            return
        while self.residency.over_budget(
            self.resident_bytes() + self._inflight_load_bytes, incoming
        ):
            victim = self.residency.select_victim(
                [
                    s if i not in keep else _PINNED_SENTINEL
                    for i, s in enumerate(self._slots)
                ]
            )
            if victim is None:
                break  # everything left is pinned; bounded overshoot
            self.evict(victim)

    def evict(self, pid: int) -> None:
        """Drop the resident copy, writing it out first if dirty.

        Writing is *delayed* until eviction so a partition rechosen by the
        scheduler pays no I/O (§4.3).  In-memory stores never evict.
        """
        with self._lock:
            slot = self._slots[pid]
            if slot.partition is None:
                return
            if not self.store.disk_backed:
                return
            if slot.prefetched:
                slot.prefetched = False
                self._count_io("prefetch_wasted")
            if slot.dirty or slot.path is None:
                old_path = slot.path
                slot.path = self.store.write(slot.partition)
                self._discard(old_path)
            # remembered for pre-load sizing
            slot.nbytes = slot.partition.nbytes
            slot.partition = None
            slot.dirty = False
            self.residency.evictions += 1

    def evict_all_except(self, keep: Tuple[int, ...] = ()) -> None:
        for pid in self.resident_pids():
            if pid not in keep:
                self.evict(pid)

    # ------------------------------------------------------------------
    # repartitioning (§4.3)
    # ------------------------------------------------------------------
    def split(self, pid: int) -> Tuple[int, int]:
        """Split resident partition ``pid`` at its median edge mass.

        Updates the VIT, the slot list, and the DDM (exact rows for both
        halves).  Returns the two new partition ids (``pid``, ``pid+1``).
        """
        partition = self.acquire(pid)
        with self._lock:
            mid = partition.median_split_point()
            self.vit.split(pid, mid)
            self._interval_lows = None
            left, right = partition.split(mid)
            old_slot = self._slots[pid]
            # Disown any in-flight speculative load of the old slot; its
            # install check (load_token) fails and the read is dropped.
            old_slot.load_token = None
            old_slot.loading = None
            halves = [
                _Slot(
                    partition=half,
                    path=None,
                    edge_count=half.num_edges,
                    dirty=True,
                    nbytes=half.nbytes,
                    last_used=old_slot.last_used,
                    pinned=old_slot.pinned,
                )
                for half in (left, right)
            ]
            self._slots[pid : pid + 1] = halves
            self._discard(old_slot.path)
            for slot in halves:
                self.residency.recharge(slot)
            self.ddm.split_partition(
                pid,
                left_row=left.destination_counts(self.vit),
                right_row=right.destination_counts(self.vit),
            )
            return pid, pid + 1

    # ------------------------------------------------------------------
    # whole-graph export (for result queries and tests)
    # ------------------------------------------------------------------
    def iter_all_edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate every edge, loading partitions one at a time."""
        for pid in range(self.num_partitions):
            was_resident = self.is_resident(pid)
            partition = self.acquire(pid)
            yield from partition.edges()
            if not was_resident and self.memory_budget is None:
                self.evict(pid)

    def to_memgraph(self):
        """Materialize the full (possibly large) graph in memory.

        Column-wise: each partition contributes its flat ``(src, keys)``
        arrays, so no per-edge Python iteration happens.
        """
        from repro.graph import packed
        from repro.graph.graph import MemGraph

        src_parts: List[np.ndarray] = []
        key_parts: List[np.ndarray] = []
        for pid in range(self.num_partitions):
            was_resident = self.is_resident(pid)
            partition = self.acquire(pid)
            if partition.num_edges:
                src_parts.append(
                    np.repeat(partition.vertices, partition.row_lengths())
                )
                key_parts.append(np.asarray(partition.keys))
            if not was_resident and self.memory_budget is None:
                self.evict(pid)
        if src_parts:
            src = np.concatenate(src_parts)
            keys = np.concatenate(key_parts)
        else:
            src, keys = packed.EMPTY, packed.EMPTY
        return MemGraph.from_arrays(
            src,
            packed.targets_of(keys),
            packed.labels_of(keys),
            num_vertices=self.num_vertices,
            label_names=self.label_names,
        )

    def __repr__(self) -> str:
        resident = len(self.resident_pids())
        return (
            f"PartitionSet({self.num_partitions} partitions, "
            f"{self.total_edges()} edges, {resident} resident)"
        )


#: Stand-in slot used to mask ``keep`` pids from victim selection.
_PINNED_SENTINEL = _Slot(partition=None, path=None, edge_count=0)
