"""The destination distribution map (DDM).

The DDM is a per-partition-pair matrix.  Cell ``(p, q)`` records how many
edges of partition ``p`` point into interval ``q`` and — the paper's
*delta* field — how many of those arrived since ``p`` and ``q`` were last
loaded together.  The scheduler picks the pair with the largest
``delta(p,q) + delta(q,p)`` score; the engine terminates when every delta
cell is zero (§4.3).

Beyond the paper's prose we additionally track a per-partition *version*
(a monotone count of edges ever added to the partition) and, per ordered
pair, the version at which the pair was last synchronized.  This closes a
subtle staleness case: a new edge ``v -> w`` entirely inside ``p`` changes
no cross-partition percentage, yet partitions with edges *into* ``p``
must still be re-paired with ``p`` to extend paths through the new edge.
A pair is "dirty" whenever either member's version advanced past the
pair's last sync — the delta cells then quantify how profitable the pair
looks.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np


class DestinationDistributionMap:
    """Pair-wise edge-distribution and staleness bookkeeping."""

    def __init__(self, counts: np.ndarray) -> None:
        n = counts.shape[0]
        if counts.shape != (n, n):
            raise ValueError("counts must be square")
        self.counts = counts.astype(np.int64)
        # Paper: "If p and q have never been loaded together, the change is
        # the same as the full percentage" -> deltas start as full counts.
        self.added_since_sync = self.counts.copy()
        self.version = np.zeros(n, dtype=np.int64)
        # synced_version[p, q]: version of p when (p, q) was last co-loaded;
        # -1 means never co-loaded.
        self.synced_version = np.full((n, n), -1, dtype=np.int64)

    @property
    def num_partitions(self) -> int:
        return self.counts.shape[0]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def record_new_edges(self, src_pid: int, dst_pid: int, num: int) -> None:
        """Account ``num`` new edges from partition ``src_pid`` into ``dst_pid``."""
        if num <= 0:
            return
        self.counts[src_pid, dst_pid] += num
        self.added_since_sync[src_pid, dst_pid] += num
        self.version[src_pid] += num

    def record_new_edges_bulk(
        self, cells: np.ndarray, counts: np.ndarray
    ) -> None:
        """Account many new-edge cells at once.

        ``cells`` holds flattened ``src_pid * num_partitions + dst_pid``
        indices and ``counts`` the parallel edge counts — exactly the
        output of ``np.unique(..., return_counts=True)`` over bucketed
        edges.  One scatter-add per matrix replaces the per-cell Python
        loop the engine used to run every superstep.
        """
        cells = np.asarray(cells, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        keep = counts > 0
        if not keep.all():
            cells, counts = cells[keep], counts[keep]
        if len(cells) == 0:
            return
        n = self.num_partitions
        # The matrices are C-contiguous, so reshape(-1) is a view and the
        # scatter-add lands in place.
        np.add.at(self.counts.reshape(-1), cells, counts)
        np.add.at(self.added_since_sync.reshape(-1), cells, counts)
        np.add.at(self.version, cells // n, counts)

    def mark_synced(self, pids: Iterable[int]) -> None:
        """Declare every pair among ``pids`` saturated (superstep finished)."""
        ids = list(pids)
        for p in ids:
            for q in ids:
                self.added_since_sync[p, q] = 0
                self.synced_version[p, q] = self.version[p]

    def set_exact_row(self, pid: int, row_counts: np.ndarray) -> None:
        """Replace ``pid``'s count row with an exactly recomputed one.

        Used whenever a partition is resident in memory: its destination
        distribution can be recomputed exactly, correcting the
        proportional approximations introduced by earlier splits.
        """
        self.counts[pid, :] = row_counts

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def pair_dirty(self, p: int, q: int) -> bool:
        """Does pair ``(p, q)`` still have unprocessed match opportunities?"""
        # A pair can only produce matches if some loaded edge crosses the
        # two intervals (for p == q: some edge stays inside the interval).
        interacts = self.counts[p, q] > 0 or self.counts[q, p] > 0
        if not interacts:
            return False
        return (
            self.version[p] > self.synced_version[p, q]
            or self.version[q] > self.synced_version[q, p]
        )

    def pair_score(self, p: int, q: int) -> int:
        """The paper's ``delta(p,q) + delta(q,p)`` scheduling score."""
        if p == q:
            return int(self.added_since_sync[p, p])
        return int(self.added_since_sync[p, q] + self.added_since_sync[q, p])

    def pair_scores(
        self, assume_synced: Optional[Sequence[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All dirty pairs and their scores, as three parallel arrays.

        Returns ``(ps, qs, scores)`` with ``ps[i] <= qs[i]``, ordered
        p-major then q — the same enumeration order (and the exact same
        dirtiness/score semantics) as the scalar :meth:`pair_dirty` /
        :meth:`pair_score` pair, computed as whole-matrix boolean
        algebra instead of an O(n²) Python loop.

        With ``assume_synced`` the computation *simulates*
        :meth:`mark_synced` over those partitions first (without
        mutating the map) — the scheduler's lookahead uses this to
        predict the pair that will run after the current one completes.
        """
        added = self.added_since_sync
        synced = self.synced_version
        if assume_synced:
            ids = np.asarray(sorted(set(assume_synced)), dtype=np.int64)
            added = added.copy()
            synced = synced.copy()
            added[np.ix_(ids, ids)] = 0
            synced[np.ix_(ids, ids)] = self.version[ids][:, None]
        interacts = (self.counts > 0) | (self.counts.T > 0)
        stale = self.version[:, None] > synced
        dirty = interacts & (stale | stale.T)
        scores = added + added.T
        np.fill_diagonal(scores, np.diagonal(added))
        ps, qs = np.nonzero(np.triu(dirty))
        return ps, qs, scores[ps, qs]

    def dirty_pairs(self) -> List[Tuple[int, int]]:
        """All unordered dirty pairs ``(p, q)`` with ``p <= q``."""
        ps, qs, _ = self.pair_scores()
        return [(int(p), int(q)) for p, q in zip(ps, qs)]

    def finished(self) -> bool:
        """Global fixed point: no pair has pending work (§4.3 termination)."""
        ps, _, _ = self.pair_scores()
        return len(ps) == 0

    # ------------------------------------------------------------------
    # repartitioning
    # ------------------------------------------------------------------
    def split_partition(
        self,
        pid: int,
        left_row: np.ndarray,
        right_row: np.ndarray,
    ) -> None:
        """Expand the matrices after ``pid`` split into ``pid``/``pid+1``.

        ``left_row``/``right_row`` are the *exact* destination-count rows
        of the two halves, computed over the post-split VIT (callers have
        the split partition in memory).  Columns of other partitions —
        how *their* edges distribute over the two new intervals — would
        need a scan of every other partition, so the parent's column is
        conservatively duplicated into both halves (an upper bound that
        can only cause harmless extra scheduling; rows are corrected
        exactly whenever a partition is next loaded).
        """

        def grow(matrix: np.ndarray) -> np.ndarray:
            matrix = np.insert(matrix, pid + 1, matrix[pid, :], axis=0)
            matrix = np.insert(matrix, pid + 1, matrix[:, pid], axis=1)
            return matrix

        self.counts = grow(self.counts)
        self.added_since_sync = grow(self.added_since_sync)
        self.synced_version = grow(self.synced_version)
        self.version = np.insert(self.version, pid + 1, self.version[pid])
        self.counts[pid, :] = left_row
        self.counts[pid + 1, :] = right_row

    def __repr__(self) -> str:
        return (
            f"DestinationDistributionMap({self.num_partitions} partitions, "
            f"{len(self.dirty_pairs())} dirty pairs)"
        )
