"""The destination distribution map (DDM).

The DDM is a per-partition-pair matrix.  Cell ``(p, q)`` records how many
edges of partition ``p`` point into interval ``q`` and — the paper's
*delta* field — how many of those arrived since ``p`` and ``q`` were last
loaded together.  The scheduler picks the pair with the largest
``delta(p,q) + delta(q,p)`` score; the engine terminates when every delta
cell is zero (§4.3).

Beyond the paper's prose we additionally track a per-partition *version*
(a monotone count of edges ever added to the partition) and, per ordered
pair, the version at which the pair was last synchronized.  This closes a
subtle staleness case: a new edge ``v -> w`` entirely inside ``p`` changes
no cross-partition percentage, yet partitions with edges *into* ``p``
must still be re-paired with ``p`` to extend paths through the new edge.
A pair is "dirty" whenever either member's version advanced past the
pair's last sync — the delta cells then quantify how profitable the pair
looks.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np


class DestinationDistributionMap:
    """Pair-wise edge-distribution and staleness bookkeeping."""

    def __init__(self, counts: np.ndarray) -> None:
        n = counts.shape[0]
        if counts.shape != (n, n):
            raise ValueError("counts must be square")
        self.counts = counts.astype(np.int64)
        # Paper: "If p and q have never been loaded together, the change is
        # the same as the full percentage" -> deltas start as full counts.
        self.added_since_sync = self.counts.copy()
        self.version = np.zeros(n, dtype=np.int64)
        # synced_version[p, q]: version of p when (p, q) was last co-loaded;
        # -1 means never co-loaded.
        self.synced_version = np.full((n, n), -1, dtype=np.int64)

    @property
    def num_partitions(self) -> int:
        return self.counts.shape[0]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def record_new_edges(self, src_pid: int, dst_pid: int, num: int) -> None:
        """Account ``num`` new edges from partition ``src_pid`` into ``dst_pid``."""
        if num <= 0:
            return
        self.counts[src_pid, dst_pid] += num
        self.added_since_sync[src_pid, dst_pid] += num
        self.version[src_pid] += num

    def mark_synced(self, pids: Iterable[int]) -> None:
        """Declare every pair among ``pids`` saturated (superstep finished)."""
        ids = list(pids)
        for p in ids:
            for q in ids:
                self.added_since_sync[p, q] = 0
                self.synced_version[p, q] = self.version[p]

    def set_exact_row(self, pid: int, row_counts: np.ndarray) -> None:
        """Replace ``pid``'s count row with an exactly recomputed one.

        Used whenever a partition is resident in memory: its destination
        distribution can be recomputed exactly, correcting the
        proportional approximations introduced by earlier splits.
        """
        self.counts[pid, :] = row_counts

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def pair_dirty(self, p: int, q: int) -> bool:
        """Does pair ``(p, q)`` still have unprocessed match opportunities?"""
        # A pair can only produce matches if some loaded edge crosses the
        # two intervals (for p == q: some edge stays inside the interval).
        interacts = self.counts[p, q] > 0 or self.counts[q, p] > 0
        if not interacts:
            return False
        return (
            self.version[p] > self.synced_version[p, q]
            or self.version[q] > self.synced_version[q, p]
        )

    def pair_score(self, p: int, q: int) -> int:
        """The paper's ``delta(p,q) + delta(q,p)`` scheduling score."""
        if p == q:
            return int(self.added_since_sync[p, p])
        return int(self.added_since_sync[p, q] + self.added_since_sync[q, p])

    def dirty_pairs(self) -> List[Tuple[int, int]]:
        """All unordered dirty pairs ``(p, q)`` with ``p <= q``."""
        n = self.num_partitions
        return [
            (p, q) for p in range(n) for q in range(p, n) if self.pair_dirty(p, q)
        ]

    def finished(self) -> bool:
        """Global fixed point: no pair has pending work (§4.3 termination)."""
        return not self.dirty_pairs()

    # ------------------------------------------------------------------
    # repartitioning
    # ------------------------------------------------------------------
    def split_partition(
        self,
        pid: int,
        left_row: np.ndarray,
        right_row: np.ndarray,
    ) -> None:
        """Expand the matrices after ``pid`` split into ``pid``/``pid+1``.

        ``left_row``/``right_row`` are the *exact* destination-count rows
        of the two halves, computed over the post-split VIT (callers have
        the split partition in memory).  Columns of other partitions —
        how *their* edges distribute over the two new intervals — would
        need a scan of every other partition, so the parent's column is
        conservatively duplicated into both halves (an upper bound that
        can only cause harmless extra scheduling; rows are corrected
        exactly whenever a partition is next loaded).
        """

        def grow(matrix: np.ndarray) -> np.ndarray:
            matrix = np.insert(matrix, pid + 1, matrix[pid, :], axis=0)
            matrix = np.insert(matrix, pid + 1, matrix[:, pid], axis=1)
            return matrix

        self.counts = grow(self.counts)
        self.added_since_sync = grow(self.added_since_sync)
        self.synced_version = grow(self.synced_version)
        self.version = np.insert(self.version, pid + 1, self.version[pid])
        self.counts[pid, :] = left_row
        self.counts[pid + 1, :] = right_row

    def __repr__(self) -> str:
        return (
            f"DestinationDistributionMap({self.num_partitions} partitions, "
            f"{len(self.dirty_pairs())} dirty pairs)"
        )
