"""Partitioning: VIT, partitions, DDM, preprocessing, disk store (§4.1/§4.3)."""

from repro.partition.interval import Interval, VertexIntervalTable
from repro.partition.partition import Partition
from repro.partition.ddm import DestinationDistributionMap
from repro.partition.storage import (
    PartitionCorruptError,
    PartitionStore,
    load_partition,
    save_partition,
)
from repro.partition.pset import PartitionSet
from repro.partition.preprocess import (
    balanced_intervals,
    choose_num_partitions,
    preprocess,
)

__all__ = [
    "Interval",
    "VertexIntervalTable",
    "Partition",
    "DestinationDistributionMap",
    "PartitionCorruptError",
    "PartitionStore",
    "load_partition",
    "save_partition",
    "PartitionSet",
    "balanced_intervals",
    "choose_num_partitions",
    "preprocess",
]
