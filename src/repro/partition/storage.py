"""On-disk persistence for partitions.

Each partition file is a fixed 48-byte header followed by the three CSR
arrays — ``vertices``, ``indptr``, ``keys`` — stored back-to-back as raw
little-endian int64, exactly the partition's canonical in-memory form::

    offset 0   magic    b"GRSPART2"
    offset 8   version  uint32  format version (currently 2)
    offset 12  crc32    uint32  zlib.crc32 of the payload bytes
    offset 16  lo       int64   interval lower bound
    offset 24  hi       int64   interval upper bound
    offset 32  nv       int64   number of source vertices
    offset 40  ne       int64   number of edges
    offset 48  vertices[nv] | indptr[nv+1] | keys[ne]

Because the payload *is* the in-memory layout, a save is three
sequential writes of already-contiguous buffers (no per-vertex
concatenation) and a load is a single :func:`numpy.memmap` — zero-copy,
page-cache friendly, and strictly sequential, the property that keeps
Graspan's I/O cost low (§5.2).

Durability and corruption handling (see DESIGN.md §9):

* Every payload carries a CRC32.  Copy loads verify it eagerly; memmap
  loads verify lazily — :class:`PartitionStore` checks each file once,
  on first read, with a sequential pass that doubles as page-cache
  warm-up, and skips re-verification on later reads of the same
  (immutable, write-once) file.  A mismatch raises
  :class:`PartitionCorruptError`, never a raw numpy error.
* ``save_partition`` is atomic (tmp + ``os.replace``) and, through the
  store, durable: the tmp file is fsync'd before the rename and the
  directory is fsync'd after, so a committed write survives power loss.
* The store scrubs orphaned ``*.tmp`` files at startup, retries
  transient ``OSError``s with exponential backoff, and defers deletions
  (:meth:`PartitionStore.retire`) until the checkpoint manifest has
  committed, so a crash mid-superstep never invalidates the manifest's
  view of the directory.

Files written by older versions still load: ``GRSPART1`` (same payload,
40-byte header, no checksum) and the original ``.npz`` archives.
"""

from __future__ import annotations

import os
import struct
import threading
import zipfile
import zlib
from pathlib import Path
from typing import List, Optional, Set, Union

import numpy as np

from repro.graph import packed
from repro.partition.interval import Interval
from repro.partition.partition import Partition
from repro.util.faults import FaultInjector, InjectedCrash
from repro.util.retry import RetryPolicy
from repro.util.timing import TimeBreakdown

PathLike = Union[str, Path]

#: File magic of the current raw partition format (8 bytes, versioned).
PARTITION_MAGIC = b"GRSPART2"

#: Magic of the pre-checksum raw format, still readable.
LEGACY_MAGIC = b"GRSPART1"

#: On-disk format version stored in the header.
FORMAT_VERSION = 2

#: ``<8s`` magic + ``<I`` version + ``<I`` crc32 + ``<4q`` lo/hi/nv/ne.
_HEADER_STRUCT = struct.Struct("<8sIIqqqq")

#: Header of the legacy checksum-less format: ``<8s`` magic + ``<4q``.
_LEGACY_HEADER_STRUCT = struct.Struct("<8sqqqq")

#: Payload byte offset of the current format — the header size.
HEADER_BYTES = _HEADER_STRUCT.size

LEGACY_HEADER_BYTES = _LEGACY_HEADER_STRUCT.size

_INT64 = np.dtype("<i8")


class PartitionCorruptError(ValueError):
    """A partition file failed structural or checksum validation.

    Subclasses :class:`ValueError` so callers that guarded against the
    old "not a Graspan partition file" error keep working, while new
    callers can catch corruption specifically and react (quarantine the
    file, fall back to a checkpointed copy) instead of crashing on an
    opaque numpy shape error.
    """


def _write_payload(fh, partition: Partition) -> None:
    """Write header + the three contiguous CSR buffers to ``fh``.

    Split out from :func:`save_partition` so crash-injection tests can
    intercept the byte-producing step without touching the atomic
    rename protocol around it.  The CRC32 in the header chains over the
    three arrays in payload order, so it equals a CRC over the payload
    bytes as laid out on disk.
    """
    arrays = [
        np.ascontiguousarray(array, dtype=_INT64) for array in partition.csr()
    ]
    crc = 0
    for array in arrays:
        crc = zlib.crc32(array.data, crc)
    fh.write(
        _HEADER_STRUCT.pack(
            PARTITION_MAGIC,
            FORMAT_VERSION,
            crc,
            partition.interval.lo,
            partition.interval.hi,
            len(partition.vertices),
            len(partition.keys),
        )
    )
    for array in arrays:
        fh.write(array.data)


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a completed rename survives power loss."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_partition(
    partition: Partition,
    path: PathLike,
    durable: bool = False,
    injector: Optional[FaultInjector] = None,
) -> None:
    """Serialize ``partition`` to ``path``, atomically.

    The bytes land in a ``*.tmp`` sibling first and are renamed into
    place with :func:`os.replace`, so a crash mid-write can never leave
    a truncated file at the final path — readers see either the old
    complete file or the new complete file, never a torn one.  With
    ``durable`` the tmp file is fsync'd before the rename and the parent
    directory after it, upgrading "atomic" to "atomic and persistent".

    On failure the tmp sibling is removed — except for
    :class:`InjectedCrash`, which simulates a hard kill: a real power
    loss runs no cleanup, so the torn tmp file is deliberately left for
    the store's startup scrub to find.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            _write_payload(fh, partition)
            if injector is not None:
                injector.on_tmp_written(fh, tmp)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if durable:
            _fsync_dir(path.parent)
    except InjectedCrash:
        raise
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _load_legacy_npz(path: Path) -> Partition:
    """Load a pre-raw-format ``.npz`` partition archive."""
    try:
        with np.load(path) as data:
            interval = Interval(int(data["lo"][0]), int(data["hi"][0]))
            vertices = np.asarray(data["vertices"], dtype=np.int64)
            indptr = np.asarray(data["indptr"], dtype=np.int64)
            keys = np.asarray(data["keys"], dtype=np.int64)
    except (KeyError, OSError, ValueError, zipfile.BadZipFile, IndexError) as exc:
        raise PartitionCorruptError(
            f"{path}: malformed legacy .npz partition archive: {exc}"
        ) from exc
    if len(indptr) == 0:  # legacy empty partitions stored a 1-entry indptr
        indptr = np.zeros(1, dtype=np.int64)
    return Partition.from_csr(interval, vertices, indptr, keys)


def load_partition(path: PathLike, mmap: bool = True, verify: bool = True) -> Partition:
    """Deserialize a partition written by :func:`save_partition`.

    Raw-format files are mapped with :func:`numpy.memmap` when ``mmap``
    is true: the CSR arrays are read-only views of the page cache and no
    copy is made until (unless) a merge replaces them.  Callers never
    mutate rows in place — merges always allocate fresh arrays — so the
    read-only mapping is safe by construction.

    With ``verify`` the payload CRC32 is checked against the header
    (``GRSPART2`` files; the legacy formats carry no checksum) and a
    mismatch raises :class:`PartitionCorruptError`.  For memmap loads
    the check is one sequential pass over the mapping that faults the
    pages the join was about to read anyway; :class:`PartitionStore`
    additionally memoizes it per file, so the cost is paid once.
    Legacy ``.npz`` archives are detected by their zip signature and
    decoded the old way.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.read(HEADER_BYTES)
    if head[:4] == b"PK\x03\x04" and zipfile.is_zipfile(path):
        return _load_legacy_npz(path)
    expected_crc: Optional[int] = None
    if head[:8] == PARTITION_MAGIC:
        if len(head) < HEADER_BYTES:
            raise PartitionCorruptError(
                f"{path}: truncated partition header: expected {HEADER_BYTES}"
                f" bytes, found {len(head)}"
            )
        _, version, expected_crc, lo, hi, nv, ne = _HEADER_STRUCT.unpack(head)
        if version != FORMAT_VERSION:
            raise PartitionCorruptError(
                f"{path}: unsupported partition format version {version}"
                f" (expected {FORMAT_VERSION})"
            )
        header_bytes = HEADER_BYTES
    elif head[:8] == LEGACY_MAGIC:
        _, lo, hi, nv, ne = _LEGACY_HEADER_STRUCT.unpack(head[:LEGACY_HEADER_BYTES])
        header_bytes = LEGACY_HEADER_BYTES
    else:
        raise ValueError(f"{path}: not a Graspan partition file")
    if nv < 0 or ne < 0:
        raise PartitionCorruptError(
            f"{path}: invalid partition header (nv={nv}, ne={ne})"
        )
    total = nv + (nv + 1) + ne
    expected_bytes = total * _INT64.itemsize
    actual_bytes = path.stat().st_size - header_bytes
    if actual_bytes != expected_bytes:
        raise PartitionCorruptError(
            f"{path}: truncated partition payload: expected {expected_bytes}"
            f" bytes, found {actual_bytes}"
        )
    if mmap:
        buf = np.memmap(path, dtype=_INT64, mode="r", offset=header_bytes, shape=(total,))
    else:
        buf = np.fromfile(path, dtype=_INT64, count=total, offset=header_bytes)
    if verify and expected_crc is not None:
        actual_crc = zlib.crc32(buf)
        if actual_crc != expected_crc:
            raise PartitionCorruptError(
                f"{path}: partition payload checksum mismatch:"
                f" header says {expected_crc:#010x}, payload is {actual_crc:#010x}"
            )
    vertices = buf[:nv]
    indptr = buf[nv : 2 * nv + 1]
    keys = buf[2 * nv + 1 : total]
    if nv == 0:
        vertices, keys = packed.EMPTY, packed.EMPTY
    return Partition.from_csr(Interval(int(lo), int(hi)), vertices, indptr, keys)


class PartitionStore:
    """Allocates partition files in a working directory and tracks I/O.

    The partition set owns residency decisions; the store only moves
    bytes — and counts them (``bytes_written`` / ``bytes_read``), which
    the engine surfaces as the Table 6 I/O columns.  When constructed
    without a directory it refuses to evict — the in-memory mode for
    small graphs (§4.2).

    Robustness duties (DESIGN.md §9):

    * startup **scrub**: orphaned ``*.tmp`` files from a crashed run are
      removed, and the file-id counter resumes past any surviving
      partition files so a resumed run never overwrites them;
    * **retry** with exponential backoff on transient ``OSError``s
      (``EIO``, ``ENOSPC``, ...) for both reads and writes, counted in
      ``io_retries``;
    * **verify-once** checksum policy: the first read of each file pays
      a full CRC pass, later reads of the same write-once file skip it;
    * **deferred deletes**: :meth:`retire` queues a file for removal and
      :meth:`purge_retired` unlinks the queue — called only after the
      run manifest no longer references the old files.
    """

    def __init__(
        self,
        workdir: Optional[PathLike] = None,
        timers: Optional[TimeBreakdown] = None,
        retry: Optional[RetryPolicy] = None,
        injector: Optional[FaultInjector] = None,
        durable: bool = True,
        verify_reads: bool = True,
        scrub: bool = True,
    ) -> None:
        self.workdir = Path(workdir) if workdir is not None else None
        if self.workdir is not None:
            self.workdir.mkdir(parents=True, exist_ok=True)
        self.timers = timers if timers is not None else TimeBreakdown()
        self.retry = retry if retry is not None else RetryPolicy.for_store()
        self.injector = injector
        self.durable = durable
        self.verify_reads = verify_reads
        # The I/O pipeline reads and writes partitions from a background
        # thread while the engine thread evicts and loads; the lock keeps
        # path allocation and the byte counters coherent.  Only metadata
        # is guarded — file I/O itself runs outside the lock.
        self._lock = threading.Lock()
        self._next_file_id = 0
        self._verified: Set[str] = set()
        self._retired: List[Path] = []
        self.bytes_written = 0
        self.bytes_read = 0
        self.writes = 0
        self.reads = 0
        self.io_retries = 0
        self.tmp_scrubbed = 0
        self.files_purged = 0
        if self.workdir is not None:
            # Read-only sharers of a live workdir (distributed lease
            # workers) must not scrub: an owner's in-flight *.tmp write
            # is not an orphan.
            self._scrub(remove_tmp=scrub)

    @property
    def disk_backed(self) -> bool:
        return self.workdir is not None

    def _scrub(self, remove_tmp: bool = True) -> None:
        """Remove torn ``*.tmp`` orphans and resume the file-id counter."""
        assert self.workdir is not None
        if remove_tmp:
            for tmp in self.workdir.glob("*.tmp"):
                tmp.unlink(missing_ok=True)
                self.tmp_scrubbed += 1
        for existing in self.workdir.glob("partition-*.gp"):
            try:
                file_id = int(existing.stem.split("-")[1])
            except (IndexError, ValueError):
                continue
            self._next_file_id = max(self._next_file_id, file_id + 1)

    def allocate_path(self) -> Path:
        if self.workdir is None:
            raise RuntimeError("in-memory store cannot allocate partition files")
        with self._lock:
            path = self.workdir / f"partition-{self._next_file_id:06d}.gp"
            self._next_file_id += 1
        return path

    def _call_with_retry(self, fn):
        def on_retry(exc, attempt):
            with self._lock:
                self.io_retries += 1

        return self.retry.call(fn, on_retry=on_retry)

    def write(self, partition: Partition) -> Path:
        return self.write_to(partition, self.allocate_path())

    def write_to(self, partition: Partition, path: Path) -> Path:
        """Serialize ``partition`` to a pre-allocated ``path``.

        The asynchronous write-back pipeline allocates the destination
        up front (so the manifest can reference it before the bytes
        land) and hands the serialization itself to the I/O thread.
        """

        def attempt():
            if self.injector is not None:
                self.injector.on_write_start(path)
            with self.timers.phase("io"):
                save_partition(partition, path, durable=self.durable, injector=self.injector)

        self._call_with_retry(attempt)
        if self.injector is not None:
            self.injector.on_write_done(path)
        size = path.stat().st_size
        with self._lock:
            self.bytes_written += size
            self.writes += 1
        return path

    def read(self, path: PathLike) -> Partition:
        path = Path(path)
        with self._lock:
            verify = self.verify_reads and str(path) not in self._verified

        def attempt():
            if self.injector is not None:
                self.injector.on_read_start(path)
            with self.timers.phase("io"):
                return load_partition(path, verify=verify)

        partition = self._call_with_retry(attempt)
        size = path.stat().st_size
        with self._lock:
            self._verified.add(str(path))
            self.bytes_read += size
            self.reads += 1
        return partition

    def delete(self, path: PathLike) -> None:
        """Unlink ``path`` immediately.  Prefer :meth:`retire` when the
        file may still be referenced by the last committed manifest."""
        path = Path(path)
        with self._lock:
            self._verified.discard(str(path))
        path.unlink(missing_ok=True)

    def retire(self, path: PathLike) -> None:
        """Queue ``path`` for deletion at the next :meth:`purge_retired`.

        Between a partition rewrite and the following manifest commit,
        the *old* file is still the one the last durable checkpoint
        references; unlinking it early would make a crash in that window
        unrecoverable.  Retired files survive until the new manifest is
        on disk.
        """
        with self._lock:
            self._retired.append(Path(path))

    def retire_mark(self) -> int:
        """The current length of the retire queue.

        The pipelined commit protocol snapshots this when a manifest is
        *built*: files retired before the snapshot are the ones that
        manifest no longer references, so they — and only they — may be
        purged once that manifest has durably committed.  Files retired
        later (by the next superstep running ahead of the commit) may
        still be referenced and must wait for the following commit.
        """
        with self._lock:
            return len(self._retired)

    def purge_retired(self, upto: Optional[int] = None) -> int:
        """Unlink retired files; returns how many were removed.

        With ``upto`` (a :meth:`retire_mark` snapshot) only the first
        ``upto`` queue entries are purged; the rest stay queued for a
        later commit.
        """
        with self._lock:
            if upto is None:
                batch, self._retired = self._retired, []
            else:
                batch, self._retired = self._retired[:upto], self._retired[upto:]
            for path in batch:
                self._verified.discard(str(path))
            self.files_purged += len(batch)
        for path in batch:
            path.unlink(missing_ok=True)
        return len(batch)
