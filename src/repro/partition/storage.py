"""On-disk persistence for partitions.

Each partition file is a fixed 40-byte header followed by the three CSR
arrays — ``vertices``, ``indptr``, ``keys`` — stored back-to-back as raw
little-endian int64, exactly the partition's canonical in-memory form::

    offset 0   magic   b"GRSPART1"
    offset 8   lo      int64   interval lower bound
    offset 16  hi      int64   interval upper bound
    offset 24  nv      int64   number of source vertices
    offset 32  ne      int64   number of edges
    offset 40  vertices[nv] | indptr[nv+1] | keys[ne]

Because the payload *is* the in-memory layout, a save is three
sequential writes of already-contiguous buffers (no per-vertex
concatenation) and a load is a single :func:`numpy.memmap` — zero-copy,
page-cache friendly, and strictly sequential, the property that keeps
Graspan's I/O cost low (§5.2).  Partitions written by older versions as
``.npz`` archives still load (they stored the same three arrays inside
the zip container).
"""

from __future__ import annotations

import os
import struct
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.graph import packed
from repro.partition.interval import Interval
from repro.partition.partition import Partition
from repro.util.timing import TimeBreakdown

PathLike = Union[str, Path]

#: File magic of the raw partition format (8 bytes, versioned).
PARTITION_MAGIC = b"GRSPART1"

#: ``<8s`` magic + ``<4q`` lo/hi/nv/ne.
_HEADER_STRUCT = struct.Struct("<8sqqqq")

#: Payload byte offset — the header size.
HEADER_BYTES = _HEADER_STRUCT.size

_INT64 = np.dtype("<i8")


def _write_payload(fh, partition: Partition) -> None:
    """Write header + the three contiguous CSR buffers to ``fh``.

    Split out from :func:`save_partition` so crash-injection tests can
    intercept the byte-producing step without touching the atomic
    rename protocol around it.
    """
    fh.write(
        _HEADER_STRUCT.pack(
            PARTITION_MAGIC,
            partition.interval.lo,
            partition.interval.hi,
            len(partition.vertices),
            len(partition.keys),
        )
    )
    for array in partition.csr():
        fh.write(np.ascontiguousarray(array, dtype=_INT64).data)


def save_partition(partition: Partition, path: PathLike) -> None:
    """Serialize ``partition`` to ``path``, atomically.

    The bytes land in a ``*.tmp`` sibling first and are renamed into
    place with :func:`os.replace`, so a crash mid-write can never leave
    a truncated file at the final path — readers see either the old
    complete file or the new complete file, never a torn one.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            _write_payload(fh, partition)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _load_legacy_npz(path: Path) -> Partition:
    """Load a pre-raw-format ``.npz`` partition archive."""
    with np.load(path) as data:
        interval = Interval(int(data["lo"][0]), int(data["hi"][0]))
        vertices = np.asarray(data["vertices"], dtype=np.int64)
        indptr = np.asarray(data["indptr"], dtype=np.int64)
        keys = np.asarray(data["keys"], dtype=np.int64)
    if len(indptr) == 0:  # legacy empty partitions stored a 1-entry indptr
        indptr = np.zeros(1, dtype=np.int64)
    return Partition.from_csr(interval, vertices, indptr, keys)


def load_partition(path: PathLike, mmap: bool = True) -> Partition:
    """Deserialize a partition written by :func:`save_partition`.

    Raw-format files are mapped with :func:`numpy.memmap` when ``mmap``
    is true: the CSR arrays are read-only views of the page cache and no
    copy is made until (unless) a merge replaces them.  Callers never
    mutate rows in place — merges always allocate fresh arrays — so the
    read-only mapping is safe by construction.  Legacy ``.npz`` archives
    are detected by their zip signature and decoded the old way.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.read(HEADER_BYTES)
    if head[:4] == b"PK\x03\x04" and zipfile.is_zipfile(path):
        return _load_legacy_npz(path)
    if len(head) < HEADER_BYTES or head[:8] != PARTITION_MAGIC:
        raise ValueError(f"{path}: not a Graspan partition file")
    _, lo, hi, nv, ne = _HEADER_STRUCT.unpack(head)
    total = nv + (nv + 1) + ne
    if mmap:
        buf = np.memmap(path, dtype=_INT64, mode="r", offset=HEADER_BYTES, shape=(total,))
    else:
        buf = np.fromfile(path, dtype=_INT64, count=total, offset=HEADER_BYTES)
    if len(buf) != total:
        raise ValueError(f"{path}: truncated partition payload")
    vertices = buf[:nv]
    indptr = buf[nv : 2 * nv + 1]
    keys = buf[2 * nv + 1 : total]
    if nv == 0:
        vertices, keys = packed.EMPTY, packed.EMPTY
    return Partition.from_csr(Interval(int(lo), int(hi)), vertices, indptr, keys)


class PartitionStore:
    """Allocates partition files in a working directory and tracks I/O.

    The partition set owns residency decisions; the store only moves
    bytes — and counts them (``bytes_written`` / ``bytes_read``), which
    the engine surfaces as the Table 6 I/O columns.  When constructed
    without a directory it refuses to evict — the in-memory mode for
    small graphs (§4.2).
    """

    def __init__(
        self,
        workdir: Optional[PathLike] = None,
        timers: Optional[TimeBreakdown] = None,
    ) -> None:
        self.workdir = Path(workdir) if workdir is not None else None
        if self.workdir is not None:
            self.workdir.mkdir(parents=True, exist_ok=True)
        self.timers = timers if timers is not None else TimeBreakdown()
        self._next_file_id = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.writes = 0
        self.reads = 0

    @property
    def disk_backed(self) -> bool:
        return self.workdir is not None

    def allocate_path(self) -> Path:
        if self.workdir is None:
            raise RuntimeError("in-memory store cannot allocate partition files")
        path = self.workdir / f"partition-{self._next_file_id:06d}.gp"
        self._next_file_id += 1
        return path

    def write(self, partition: Partition) -> Path:
        path = self.allocate_path()
        with self.timers.phase("io"):
            save_partition(partition, path)
        self.bytes_written += path.stat().st_size
        self.writes += 1
        return path

    def read(self, path: PathLike) -> Partition:
        with self.timers.phase("io"):
            partition = load_partition(path)
        self.bytes_read += Path(path).stat().st_size
        self.reads += 1
        return partition

    def delete(self, path: PathLike) -> None:
        Path(path).unlink(missing_ok=True)
