"""On-disk persistence for partitions.

Each partition file is a numpy ``.npz`` holding the interval bounds and a
CSR-style (vertices, indptr, keys) encoding of the sorted adjacency.
Reads and writes are sequential by construction — the property that keeps
Graspan's I/O cost low (§5.2).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.graph import packed
from repro.partition.interval import Interval
from repro.partition.partition import Partition
from repro.util.timing import TimeBreakdown

PathLike = Union[str, Path]


def save_partition(partition: Partition, path: PathLike) -> None:
    """Serialize ``partition`` to ``path`` (.npz), atomically.

    The bytes land in a ``*.tmp`` sibling first and are renamed into
    place with :func:`os.replace`, so a crash mid-write can never leave
    a truncated archive at the final path — readers see either the old
    complete file or the new complete file, never a torn one.
    """
    path = Path(path)
    vertices = np.asarray(sorted(partition.adjacency), dtype=np.int64)
    lengths = np.asarray(
        [len(partition.adjacency[int(v)]) for v in vertices], dtype=np.int64
    )
    indptr = np.zeros(len(vertices) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    if len(vertices):
        keys = np.concatenate([partition.adjacency[int(v)] for v in vertices])
    else:
        keys = packed.EMPTY
    tmp = path.with_name(path.name + ".tmp")
    try:
        # np.savez on an open file object: no implicit .npz suffix games.
        with open(tmp, "wb") as fh:
            np.savez(
                fh,
                lo=np.asarray([partition.interval.lo], dtype=np.int64),
                hi=np.asarray([partition.interval.hi], dtype=np.int64),
                vertices=vertices,
                indptr=indptr,
                keys=keys,
            )
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def load_partition(path: PathLike) -> Partition:
    """Deserialize a partition written by :func:`save_partition`.

    Adjacency rows are zero-copy slices of the one ``keys`` array loaded
    from the archive (they share its buffer); callers never mutate rows
    in place — merges always allocate fresh arrays — so the per-row copy
    this used to make was pure overhead.
    """
    with np.load(Path(path)) as data:
        interval = Interval(int(data["lo"][0]), int(data["hi"][0]))
        vertices = data["vertices"]
        indptr = data["indptr"]
        keys = data["keys"]
        adjacency: Dict[int, np.ndarray] = {}
        for i, v in enumerate(vertices):
            adjacency[int(v)] = keys[indptr[i] : indptr[i + 1]]
    return Partition(interval, adjacency)


class PartitionStore:
    """Allocates partition files in a working directory and tracks I/O time.

    The engine owns residency decisions; the store only moves bytes.  When
    constructed without a directory it refuses to evict — the in-memory
    mode for small graphs (§4.2).
    """

    def __init__(
        self,
        workdir: Optional[PathLike] = None,
        timers: Optional[TimeBreakdown] = None,
    ) -> None:
        self.workdir = Path(workdir) if workdir is not None else None
        if self.workdir is not None:
            self.workdir.mkdir(parents=True, exist_ok=True)
        self.timers = timers if timers is not None else TimeBreakdown()
        self._next_file_id = 0
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def disk_backed(self) -> bool:
        return self.workdir is not None

    def allocate_path(self) -> Path:
        if self.workdir is None:
            raise RuntimeError("in-memory store cannot allocate partition files")
        path = self.workdir / f"partition-{self._next_file_id:06d}.npz"
        self._next_file_id += 1
        return path

    def write(self, partition: Partition) -> Path:
        path = self.allocate_path()
        with self.timers.phase("io"):
            save_partition(partition, path)
        self.bytes_written += path.stat().st_size
        return path

    def read(self, path: PathLike) -> Partition:
        with self.timers.phase("io"):
            partition = load_partition(path)
        self.bytes_read += Path(path).stat().st_size
        return partition

    def delete(self, path: PathLike) -> None:
        Path(path).unlink(missing_ok=True)
