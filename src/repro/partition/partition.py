"""A partition: the sorted out-edge lists of one vertex interval.

Edges are grouped by source vertex; each source's outgoing edges are a
sorted, duplicate-free packed key array (§4.1: "edges are sorted on their
source vertex IDs and those that have the same source are stored
consecutively and ordered on their target vertex IDs").  Sortedness is
what makes batch edge addition and merge-time duplicate checks possible.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.graph import packed
from repro.partition.interval import Interval


class Partition:
    """Mutable per-vertex adjacency for one vertex interval.

    ``adjacency`` maps a source vertex (within ``interval``) to its sorted
    packed out-edge array.  Vertices with no out-edges are absent.
    """

    def __init__(self, interval: Interval, adjacency: Dict[int, np.ndarray]) -> None:
        for v in adjacency:
            if v not in interval:
                raise ValueError(f"vertex {v} outside interval {interval}")
        self.interval = interval
        self.adjacency = adjacency

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return sum(len(keys) for keys in self.adjacency.values())

    @property
    def num_source_vertices(self) -> int:
        return len(self.adjacency)

    def out_keys(self, v: int) -> np.ndarray:
        return self.adjacency.get(v, packed.EMPTY)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(src, dst, label)`` triples in sorted order."""
        for v in sorted(self.adjacency):
            keys = self.adjacency[v]
            for dst, lab in zip(packed.targets_of(keys), packed.labels_of(keys)):
                yield v, int(dst), int(lab)

    def merge_new_edges(self, v: int, new_keys: np.ndarray) -> int:
        """Merge sorted ``new_keys`` into ``v``'s list; returns #added."""
        if len(new_keys) == 0:
            return 0
        if v not in self.interval:
            raise ValueError(f"vertex {v} outside interval {self.interval}")
        current = self.adjacency.get(v, packed.EMPTY)
        merged = packed.merge_unique([current, new_keys])
        added = len(merged) - len(current)
        if added:
            self.adjacency[v] = merged
        return added

    # ------------------------------------------------------------------
    # metadata (the paper's per-partition degree file and DDM row)
    # ------------------------------------------------------------------
    def out_degree_file(self) -> Dict[int, int]:
        """Per-vertex out-degrees (the paper's degree file, out half)."""
        return {v: len(keys) for v, keys in self.adjacency.items()}

    def destination_counts(self, vit) -> np.ndarray:
        """Edge counts from this partition into each VIT interval.

        This is this partition's row of the DDM.  Vectorized: bucket the
        target vertices of all edges by interval lower bounds.
        """
        counts = np.zeros(vit.num_partitions, dtype=np.int64)
        lows = np.asarray([iv.lo for iv in vit.intervals()], dtype=np.int64)
        for keys in self.adjacency.values():
            if len(keys) == 0:
                continue
            buckets = np.searchsorted(lows, packed.targets_of(keys), side="right") - 1
            ids, n = np.unique(buckets, return_counts=True)
            counts[ids] += n
        return counts

    def split(self, mid: int) -> Tuple["Partition", "Partition"]:
        """Split at vertex ``mid`` into ``[lo, mid]`` / ``[mid+1, hi]``."""
        left_iv, right_iv = self.interval.split_at(mid)
        left: Dict[int, np.ndarray] = {}
        right: Dict[int, np.ndarray] = {}
        for v, keys in self.adjacency.items():
            (left if v <= mid else right)[v] = keys
        return Partition(left_iv, left), Partition(right_iv, right)

    def median_split_point(self) -> int:
        """The vertex at which a split best balances edge mass (§4.3).

        Returns a ``mid`` such that ``[lo, mid]`` holds roughly half the
        edges.  Always a legal split point (``lo <= mid < hi``).
        """
        iv = self.interval
        if len(iv) < 2:
            raise ValueError(f"interval {iv} too small to split")
        total = self.num_edges
        running = 0
        best_mid = iv.lo + (len(iv) // 2) - 1
        best_imbalance = None
        for v in sorted(self.adjacency):
            running += len(self.adjacency[v])
            mid = min(max(v, iv.lo), iv.hi - 1)
            imbalance = abs(2 * running - total)
            if best_imbalance is None or imbalance < best_imbalance:
                best_imbalance = imbalance
                best_mid = mid
            if running * 2 >= total:
                break
        return best_mid

    @classmethod
    def from_triples(
        cls, interval: Interval, triples: Iterable[Tuple[int, int, int]]
    ) -> "Partition":
        by_src: Dict[int, List[int]] = {}
        for src, dst, lab in triples:
            by_src.setdefault(src, []).append(packed.pack_one(dst, lab))
        adjacency = {
            v: np.unique(np.asarray(keys, dtype=np.int64))
            for v, keys in by_src.items()
        }
        return cls(interval, adjacency)

    def __repr__(self) -> str:
        return (
            f"Partition([{self.interval.lo},{self.interval.hi}], "
            f"{self.num_source_vertices} sources, {self.num_edges} edges)"
        )
