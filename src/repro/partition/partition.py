"""A partition: the sorted out-edge lists of one vertex interval.

Edges are grouped by source vertex; each source's outgoing edges are a
sorted, duplicate-free packed key array (§4.1: "edges are sorted on their
source vertex IDs and those that have the same source are stored
consecutively and ordered on their target vertex IDs").  Sortedness is
what makes batch edge addition and merge-time duplicate checks possible.

The canonical in-memory form is **flat CSR**: three contiguous int64
arrays ``(vertices, indptr, keys)`` where ``vertices`` holds the sorted
source ids that have at least one out-edge and row ``i``'s packed keys
live in ``keys[indptr[i]:indptr[i+1]]``.  This is the same layout the
join kernels, the shared-memory parallel backends, and the on-disk
format use, so partitions move through the whole stack without per-vertex
dict materialization.  A thin read-only mapping view (:attr:`adjacency`)
remains for stragglers and tests that want dict ergonomics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.graph import packed
from repro.partition.interval import Interval


class AdjacencyView(Mapping):
    """Read-only dict-like view over a partition's CSR arrays.

    Rows are zero-copy slices of the partition's ``keys`` array.  The
    view reflects the partition's *current* arrays, so it stays valid
    across :meth:`Partition.replace_csr` and merges.
    """

    __slots__ = ("_partition",)

    def __init__(self, partition: "Partition") -> None:
        self._partition = partition

    def __getitem__(self, v: int) -> np.ndarray:
        row = self._partition._row_of(v)
        if row is None:
            raise KeyError(v)
        p = self._partition
        return p.keys[p.indptr[row] : p.indptr[row + 1]]

    def __iter__(self) -> Iterator[int]:
        return (int(v) for v in self._partition.vertices)

    def __len__(self) -> int:
        return len(self._partition.vertices)


def _csr_from_adjacency(
    adjacency: Mapping, interval: Interval
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (vertices, indptr, keys) from a per-vertex dict."""
    items = [(v, keys) for v, keys in adjacency.items() if len(keys)]
    for v, _ in items:
        if v not in interval:
            raise ValueError(f"vertex {v} outside interval {interval}")
    if not items:
        return packed.EMPTY, np.zeros(1, dtype=np.int64), packed.EMPTY
    items.sort(key=lambda item: item[0])
    vertices = np.asarray([v for v, _ in items], dtype=np.int64)
    lengths = np.asarray([len(keys) for _, keys in items], dtype=np.int64)
    indptr = np.zeros(len(items) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    keys = np.concatenate([np.asarray(k, dtype=np.int64) for _, k in items])
    return vertices, indptr, keys


class Partition:
    """Per-vertex adjacency for one vertex interval, stored as flat CSR.

    Construct either from a dict (``Partition(interval, {v: keys})``,
    the legacy form) or from CSR arrays via :meth:`from_csr`.  All hot
    paths operate directly on :attr:`vertices` / :attr:`indptr` /
    :attr:`keys`; mutation happens by wholesale array replacement
    (:meth:`replace_csr`) or splice (:meth:`merge_new_edges`), never in
    place — loaded arrays may be read-only memory maps.
    """

    __slots__ = ("interval", "vertices", "indptr", "keys")

    def __init__(
        self, interval: Interval, adjacency: Optional[Mapping] = None
    ) -> None:
        self.interval = interval
        vertices, indptr, keys = _csr_from_adjacency(adjacency or {}, interval)
        self.vertices = vertices
        self.indptr = indptr
        self.keys = keys

    @classmethod
    def from_csr(
        cls,
        interval: Interval,
        vertices: np.ndarray,
        indptr: np.ndarray,
        keys: np.ndarray,
    ) -> "Partition":
        """Wrap existing CSR arrays without copying or re-validating rows.

        ``vertices`` must be strictly increasing, within ``interval``,
        and each row's keys sorted and unique — the invariants every
        producer in the engine maintains.
        """
        if len(indptr) != len(vertices) + 1:
            raise ValueError("indptr must have len(vertices) + 1 entries")
        if len(vertices) and (
            int(vertices[0]) < interval.lo or int(vertices[-1]) > interval.hi
        ):
            raise ValueError(
                f"vertices [{vertices[0]}, {vertices[-1]}] outside {interval}"
            )
        p = cls.__new__(cls)
        p.interval = interval
        p.vertices = vertices
        p.indptr = indptr
        p.keys = keys
        return p

    def replace_csr(
        self, vertices: np.ndarray, indptr: np.ndarray, keys: np.ndarray
    ) -> None:
        """Swap in new CSR arrays (the engine's post-superstep scatter)."""
        self.vertices = vertices
        self.indptr = indptr
        self.keys = keys

    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.vertices, self.indptr, self.keys

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.keys)

    @property
    def num_source_vertices(self) -> int:
        return len(self.vertices)

    @property
    def nbytes(self) -> int:
        """Actual bytes held by the CSR arrays (residency accounting)."""
        return self.vertices.nbytes + self.indptr.nbytes + self.keys.nbytes

    @property
    def adjacency(self) -> AdjacencyView:
        """Dict-like read-only view; rows are slices of :attr:`keys`."""
        return AdjacencyView(self)

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def _row_of(self, v: int) -> Optional[int]:
        i = int(np.searchsorted(self.vertices, v))
        if i < len(self.vertices) and self.vertices[i] == v:
            return i
        return None

    def out_keys(self, v: int) -> np.ndarray:
        row = self._row_of(v)
        if row is None:
            return packed.EMPTY
        return self.keys[self.indptr[row] : self.indptr[row + 1]]

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(src, dst, label)`` triples in sorted order."""
        targets = packed.targets_of(self.keys)
        labels = packed.labels_of(self.keys)
        for row, v in enumerate(self.vertices):
            for i in range(int(self.indptr[row]), int(self.indptr[row + 1])):
                yield int(v), int(targets[i]), int(labels[i])

    def merge_new_edges(self, v: int, new_keys: np.ndarray) -> int:
        """Merge sorted ``new_keys`` into ``v``'s list; returns #added.

        Splices the flat arrays: only the affected row is re-merged, the
        surrounding key spans are reused as slices.
        """
        if len(new_keys) == 0:
            return 0
        if v not in self.interval:
            raise ValueError(f"vertex {v} outside interval {self.interval}")
        i = int(np.searchsorted(self.vertices, v))
        present = i < len(self.vertices) and self.vertices[i] == v
        if present:
            lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        else:
            lo = hi = int(self.indptr[i])
        current = self.keys[lo:hi]
        merged = packed.merge_unique([current, new_keys])
        added = len(merged) - len(current)
        if added == 0:
            return 0
        keys = np.concatenate([self.keys[:lo], merged, self.keys[hi:]])
        if present:
            vertices = self.vertices
            indptr = self.indptr.copy()
            indptr[i + 1 :] += added
        else:
            vertices = np.insert(self.vertices, i, v)
            indptr = np.concatenate(
                [self.indptr[: i + 1], [lo + added], self.indptr[i + 1 :] + added]
            )
        self.replace_csr(vertices, indptr, keys)
        return added

    # ------------------------------------------------------------------
    # metadata (the paper's per-partition degree file and DDM row)
    # ------------------------------------------------------------------
    def out_degree_file(self) -> Dict[int, int]:
        """Per-vertex out-degrees (the paper's degree file, out half)."""
        lengths = self.row_lengths()
        return {int(v): int(n) for v, n in zip(self.vertices, lengths)}

    def destination_counts(self, vit) -> np.ndarray:
        """Edge counts from this partition into each VIT interval.

        This is this partition's row of the DDM, bucketed in one shot
        over the whole flat key array.
        """
        counts = np.zeros(vit.num_partitions, dtype=np.int64)
        if len(self.keys) == 0:
            return counts
        lows = np.asarray([iv.lo for iv in vit.intervals()], dtype=np.int64)
        buckets = np.searchsorted(lows, packed.targets_of(self.keys), side="right") - 1
        ids, n = np.unique(buckets, return_counts=True)
        counts[ids] += n
        return counts

    def split(self, mid: int) -> Tuple["Partition", "Partition"]:
        """Split at vertex ``mid`` into ``[lo, mid]`` / ``[mid+1, hi]``.

        Array slices are shared with the parent (zero-copy); the right
        half's ``indptr`` is rebased into a fresh array.
        """
        left_iv, right_iv = self.interval.split_at(mid)
        row = int(np.searchsorted(self.vertices, mid, side="right"))
        cut = int(self.indptr[row])
        left = Partition.from_csr(
            left_iv,
            self.vertices[:row],
            self.indptr[: row + 1],
            self.keys[:cut],
        )
        right = Partition.from_csr(
            right_iv,
            self.vertices[row:],
            self.indptr[row:] - cut,
            self.keys[cut:],
        )
        return left, right

    def median_split_point(self) -> int:
        """The vertex at which a split best balances edge mass (§4.3).

        Returns a ``mid`` such that ``[lo, mid]`` holds roughly half the
        edges.  Always a legal split point (``lo <= mid < hi``).
        """
        iv = self.interval
        if len(iv) < 2:
            raise ValueError(f"interval {iv} too small to split")
        if len(self.vertices) == 0:
            return iv.lo + (len(iv) // 2) - 1
        running = self.indptr[1:]  # cumulative edge mass after each row
        total = int(self.indptr[-1])
        mids = np.clip(self.vertices, iv.lo, iv.hi - 1)
        imbalance = np.abs(2 * running - total)
        return int(mids[int(np.argmin(imbalance))])

    @classmethod
    def from_triples(
        cls, interval: Interval, triples: Iterable[Tuple[int, int, int]]
    ) -> "Partition":
        triples = list(triples)
        if not triples:
            return cls(interval, {})
        src = np.asarray([t[0] for t in triples], dtype=np.int64)
        keys = packed.pack(
            np.asarray([t[1] for t in triples], dtype=np.int64),
            np.asarray([t[2] for t in triples], dtype=np.int64),
        )
        if len(src) and (int(src.min()) < interval.lo or int(src.max()) > interval.hi):
            bad = int(src.min()) if int(src.min()) < interval.lo else int(src.max())
            raise ValueError(f"vertex {bad} outside interval {interval}")
        order = np.lexsort((keys, src))
        src, keys = src[order], keys[order]
        keep = np.ones(len(src), dtype=bool)
        keep[1:] = (src[1:] != src[:-1]) | (keys[1:] != keys[:-1])
        return cls.from_flat(interval, src[keep], keys[keep])

    @classmethod
    def from_flat(
        cls, interval: Interval, src: np.ndarray, keys: np.ndarray
    ) -> "Partition":
        """Build from flat ``(src, key)`` arrays, lexsorted and unique.

        ``keys`` is adopted without copying — the CSR rows are slices of
        it.  This is how the engine scatters a superstep's merged edge
        set back into the loaded partitions.
        """
        if len(src) == 0:
            return cls(interval, {})
        starts = np.concatenate(
            [[0], np.flatnonzero(src[1:] != src[:-1]) + 1]
        ).astype(np.int64)
        vertices = src[starts]
        indptr = np.concatenate([starts, [len(src)]]).astype(np.int64)
        return cls.from_csr(interval, vertices, indptr, keys)

    def __repr__(self) -> str:
        return (
            f"Partition([{self.interval.lo},{self.interval.hi}], "
            f"{self.num_source_vertices} sources, {self.num_edges} edges)"
        )
