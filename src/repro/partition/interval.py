"""The vertex-interval table (VIT).

Preprocessing divides vertex ids into contiguous logical intervals; one
interval defines one partition, containing every edge whose *source*
vertex falls into the interval (§4.1 — note the contrast with GraphChi,
which shards by target).  The VIT records the inclusive lower/upper bound
of each interval and is updated on every repartitioning.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Interval:
    """An inclusive range of vertex ids ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def __contains__(self, vertex: int) -> bool:
        return self.lo <= vertex <= self.hi

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def split_at(self, mid: int) -> Tuple["Interval", "Interval"]:
        """Split into ``[lo, mid]`` and ``[mid+1, hi]``."""
        if not (self.lo <= mid < self.hi):
            raise ValueError(f"cannot split [{self.lo},{self.hi}] at {mid}")
        return Interval(self.lo, mid), Interval(mid + 1, self.hi)


class VertexIntervalTable:
    """Ordered, contiguous intervals covering ``[0, num_vertices)``.

    Supports O(log n) vertex→partition lookup and in-place interval
    splitting (repartitioning, §4.3).
    """

    def __init__(self, intervals: Sequence[Interval]) -> None:
        if not intervals:
            raise ValueError("VIT needs at least one interval")
        expected_lo = intervals[0].lo
        for iv in intervals:
            if iv.lo != expected_lo:
                raise ValueError("intervals must be contiguous and ordered")
            expected_lo = iv.hi + 1
        self._intervals: List[Interval] = list(intervals)
        self._lows: List[int] = [iv.lo for iv in intervals]

    @classmethod
    def single(cls, num_vertices: int) -> "VertexIntervalTable":
        return cls([Interval(0, max(0, num_vertices - 1))])

    @classmethod
    def even(cls, num_vertices: int, num_partitions: int) -> "VertexIntervalTable":
        """Split ``[0, num_vertices)`` into ``num_partitions`` equal ranges."""
        if num_partitions <= 0:
            raise ValueError("need at least one partition")
        num_partitions = min(num_partitions, max(1, num_vertices))
        bounds = [
            round(i * num_vertices / num_partitions) for i in range(num_partitions + 1)
        ]
        intervals = [
            Interval(bounds[i], bounds[i + 1] - 1) for i in range(num_partitions)
        ]
        return cls(intervals)

    @property
    def num_partitions(self) -> int:
        return len(self._intervals)

    @property
    def num_vertices(self) -> int:
        return self._intervals[-1].hi - self._intervals[0].lo + 1

    def interval(self, pid: int) -> Interval:
        return self._intervals[pid]

    def intervals(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def partition_of(self, vertex: int) -> int:
        """The partition id owning ``vertex`` (binary search on bounds)."""
        if not self._lows[0] <= vertex <= self._intervals[-1].hi:
            raise KeyError(f"vertex {vertex} outside VIT range")
        return bisect.bisect_right(self._lows, vertex) - 1

    def split(self, pid: int, mid: int) -> Tuple[int, int]:
        """Split partition ``pid`` at vertex ``mid``; returns the new ids.

        The first half keeps id ``pid``; the second half becomes
        ``pid + 1`` and every later partition id shifts up by one.
        """
        left, right = self._intervals[pid].split_at(mid)
        self._intervals[pid : pid + 1] = [left, right]
        self._lows[pid : pid + 1] = [left.lo, right.lo]
        return pid, pid + 1

    def as_tuples(self) -> List[Tuple[int, int]]:
        return [(iv.lo, iv.hi) for iv in self._intervals]

    def __repr__(self) -> str:
        return f"VertexIntervalTable({self.as_tuples()})"
