"""Pipelined supersteps: background partition prefetch + async write-back.

The sequential engine alternates strictly between disk and CPU: load the
pair, compute the fixed point, flush dirty partitions, commit the
checkpoint.  The disk idles during every join and the CPU idles during
every load and flush.  This module provides the small background I/O
executor that overlaps the two (DESIGN.md §10):

* **speculative prefetch** — while superstep *k* computes, the scheduler's
  :meth:`~repro.engine.scheduler.Scheduler.peek_pair` predicts pair
  *k+1* and the I/O thread starts loading its non-resident members.  A
  correct guess turns the next load into a cache hit; a wrong one costs
  one wasted read (evicted again by the normal residency policy).
* **asynchronous write-back** — the dirty partitions of superstep *k*
  are snapshotted (the CSR arrays are immutable; only the bindings
  change) and serialized on the I/O thread while superstep *k+1*
  computes.  The checkpoint commit *lags one superstep*: manifest *k* is
  built immediately (its partition files are pre-allocated) but only
  replaces the durable manifest after every one of its flushes has been
  drained — PR 4's flush → commit → purge ordering, pipelined but never
  reordered.

Everything here is plumbing: :class:`IoPipeline` wraps a one-thread
executor with wait/busy accounting (the raw material for the
``overlap_fraction`` telemetry), and :class:`PendingCommit` carries one
not-yet-durable checkpoint between supersteps.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class IoPipeline:
    """A single background I/O worker plus overlap accounting.

    One worker is deliberate: partition I/O is sequential-friendly
    (§5.2) and a single thread keeps loads and flushes from seeking
    against each other.  The interesting counters:

    ``busy_seconds``
        Wall time the I/O thread spent actually moving bytes.
    ``load_wait_seconds`` / ``flush_wait_seconds``
        Wall time the *engine* thread spent blocked on an in-flight
        prefetch (joining it instead of re-reading) or on draining
        flushes at a commit point.
    ``hidden_seconds``
        ``busy - waited``: I/O that ran entirely under compute.  The
        ``overlap_fraction`` is this as a share of all background I/O.
    """

    def __init__(self) -> None:
        self._pool: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="graspan-io"
        )
        self._lock = threading.Lock()
        self.busy_seconds = 0.0
        self.load_wait_seconds = 0.0
        self.flush_wait_seconds = 0.0
        self.prefetch_issued = 0
        self.prefetch_hits = 0
        self.prefetch_wasted = 0

    # -- submission ------------------------------------------------------
    def submit(self, fn: Callable, *args) -> Future:
        """Queue ``fn(*args)`` on the I/O thread; returns its future."""
        if self._pool is None:
            raise RuntimeError("I/O pipeline already closed")

        def timed():
            start = time.perf_counter()
            try:
                return fn(*args)
            finally:
                with self._lock:
                    self.busy_seconds += time.perf_counter() - start

        return self._pool.submit(timed)

    # -- waiting ---------------------------------------------------------
    def wait_load(self, future: Future):
        return self._wait(future, "load_wait_seconds")

    def wait_flush(self, future: Future):
        return self._wait(future, "flush_wait_seconds")

    def _wait(self, future: Future, counter: str):
        start = time.perf_counter()
        try:
            return future.result()
        finally:
            waited = time.perf_counter() - start
            with self._lock:
                setattr(self, counter, getattr(self, counter) + waited)

    # -- telemetry -------------------------------------------------------
    @property
    def waited_seconds(self) -> float:
        return self.load_wait_seconds + self.flush_wait_seconds

    @property
    def hidden_seconds(self) -> float:
        """Background I/O seconds that never blocked the engine thread."""
        return max(0.0, self.busy_seconds - self.waited_seconds)

    @property
    def overlap_fraction(self) -> float:
        """Share of background I/O time hidden under compute (0 when idle)."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.hidden_seconds / self.busy_seconds

    def snapshot(self) -> Dict[str, float]:
        """Copy the counters (for per-superstep deltas)."""
        with self._lock:
            return {
                "busy_seconds": self.busy_seconds,
                "load_wait_seconds": self.load_wait_seconds,
                "flush_wait_seconds": self.flush_wait_seconds,
                "prefetch_issued": self.prefetch_issued,
                "prefetch_hits": self.prefetch_hits,
                "prefetch_wasted": self.prefetch_wasted,
            }

    def count(self, counter: str, num: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + num)

    def close(self) -> None:
        """Tear the worker down; queued-but-unstarted work is cancelled.

        Safe after an :class:`~repro.util.faults.InjectedCrash`: the
        worker thread is never stuck (futures capture the exception), so
        the shutdown always returns.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "IoPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class PendingCommit:
    """One built-but-not-yet-durable checkpoint riding the pipeline.

    Created at the end of superstep ``superstep`` with the flush writes
    already queued on the I/O thread and the manifest snapshotted (it
    references the pre-allocated flush paths).  ``retire_upto`` is the
    retire-queue mark at build time: only files retired *before* the
    manifest was built are unreferenced by it, so only those may be
    purged once it commits — files retired later (by the next superstep
    running ahead) wait for the next commit.
    """

    superstep: int
    manifest: Dict[str, object]
    flushes: List[Future] = field(default_factory=list)
    retire_upto: int = 0
