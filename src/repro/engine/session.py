"""The closure session: open → run/resume → query → close (DESIGN.md §14).

Historically :meth:`GraspanEngine.run` was a god-method: graph ingest,
checkpoint restore, pipeline wiring, the superstep loop, commit
ordering, telemetry teardown and result construction all lived in one
function.  That was fine for a one-shot batch tool but is hostile to a
long-lived serving tier: a daemon needs the lifecycle *split open* so it
can hold many closures at different stages at once, resume one while
querying another, and seed a session from a cached closure instead of a
raw graph.

:class:`ClosureSession` is that split.  One session owns exactly one
closure computation over one graph:

``open()``
    Ingest (align labels, preprocess into partitions) or restore (from a
    checkpoint manifest, or from a :class:`~repro.engine.store.ClosureStore`
    delta seed), then wire the residency budget, the run journal, the
    I/O pipeline, and the join backend.

``run()`` / ``step()``
    Drive the superstep loop to the fixed point — ``step()`` runs one
    scheduler-chosen superstep so callers may interleave their own work;
    ``run()`` loops it and finalizes.

``computation``
    The query surface: after ``run()`` the finished
    :class:`~repro.engine.engine.GraspanComputation` answers label and
    statistics queries (the daemon serves checker queries against it).

``close()``
    Release the join backend and the I/O pipeline and fold their
    telemetry into the session's stats.  Idempotent; the context-manager
    form guarantees it even when a superstep raises.

Every piece of mutable run state — scheduler, stats, pipeline, pending
commit — is *session-scoped*, so concurrent sessions built from one
:class:`~repro.engine.engine.GraspanEngine` configuration never share
telemetry or scheduling state (the daemon runs many sessions at once).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.checkpoint import (
    RunJournal,
    build_manifest,
    grammar_fingerprint,
    graph_fingerprint,
    restore_partition_set,
    restore_scheduler,
    validate_manifest,
)
from repro.engine.join import CsrView
from repro.engine.parallel import JoinBackend, make_backend
from repro.engine.pipeline import IoPipeline, PendingCommit
from repro.engine.scheduler import Scheduler
from repro.engine.stats import EngineStats, SuperstepRecord
from repro.engine.superstep import run_superstep
from repro.graph import packed
from repro.graph.graph import MemGraph
from repro.partition.preprocess import planned_partition_table, preprocess
from repro.partition.pset import PartitionSet
from repro.partition.storage import PartitionStore
from repro.util.retry import RetryPolicy
from repro.util.timing import Stopwatch


class SessionStateError(RuntimeError):
    """A lifecycle method was called out of order (e.g. run before open)."""


class ClosureSession:
    """One closure computation, from ingest to queryable result.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.engine.GraspanEngine` carrying the run
        *configuration* (grammar, partition sizing, budget, backend,
        checkpoint/pipeline policy).  The engine is treated as read-only
        configuration — many sessions may share one engine concurrently.
    graph:
        The input graph.  Labels are aligned to the grammar in ``open``.
    resume:
        Restart from the last committed manifest in the engine's workdir
        (requires checkpointing; see :meth:`GraspanEngine.run`).
    pset / journal / store / superstep_index / stats:
        Pre-seeded state for delta re-closure: a restored partition set
        whose DDM deltas were seeded by a
        :class:`~repro.engine.store.ClosureStore` diff.  When ``pset``
        is given the session skips ingest/restore and runs the superstep
        loop from the seeded deltas.
    scheduler:
        Session-private scheduler.  Defaults to the engine's scheduler
        for drop-in compatibility; concurrent callers pass a fresh
        :class:`~repro.engine.scheduler.Scheduler` per session.
    """

    def __init__(
        self,
        engine,
        graph: MemGraph,
        resume: bool = False,
        pset: Optional[PartitionSet] = None,
        journal: Optional[RunJournal] = None,
        store: Optional[PartitionStore] = None,
        superstep_index: int = 0,
        stats: Optional[EngineStats] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self.engine = engine
        self.graph = graph
        self.resume = resume
        self.scheduler = scheduler if scheduler is not None else engine.scheduler
        self.stats = stats
        self.pset = pset
        self.journal = journal
        self.store = store
        self.superstep_index = superstep_index
        self.grammar_crc = 0
        self.graph_crc = 0
        self._seeded = pset is not None
        self._opened = False
        self._finished = False
        self._closed = False
        self._backend: Optional[JoinBackend] = None
        self._io: Optional[IoPipeline] = None
        self._pending: Optional[PendingCommit] = None
        self._mid_limit = 0
        self._computation = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ClosureSession":
        return self.open()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def open(self) -> "ClosureSession":
        """Ingest or restore the graph and wire the run machinery."""
        if self._closed:
            raise SessionStateError("session is closed; open a new one")
        if self._opened:
            return self
        engine = self.engine
        if self.graph.num_vertices == 0 or self.graph.num_edges == 0:
            self._computation = _empty_computation(engine.grammar, self.graph)
            self._opened = True
            self._finished = True
            return self

        from repro.engine.engine import align_graph_labels

        self.graph = align_graph_labels(self.graph, engine.grammar)
        if self.stats is None:
            self.stats = EngineStats(
                original_edges=self.graph.num_edges,
                num_vertices=self.graph.num_vertices,
            )
        stats = self.stats

        checkpoint_on = (
            engine.workdir is not None and engine.checkpoint is not False
        ) or self.journal is not None
        if checkpoint_on:
            self.grammar_crc = grammar_fingerprint(engine.grammar)
            self.graph_crc = graph_fingerprint(
                self.graph,
                partition_table=planned_partition_table(
                    self.graph,
                    engine.max_edges_per_partition,
                    engine.num_partitions,
                ),
            )

        if self._seeded:
            # Delta re-closure: the ClosureStore restored the partition
            # set and seeded the DDM deltas already; just wire up.
            if self.journal is None or self.store is None:
                raise SessionStateError(
                    "seeded sessions need their journal and store"
                )
        else:
            if self.store is None and engine.workdir is not None:
                self.store = PartitionStore(
                    workdir=engine.workdir,
                    timers=stats.timers,
                    retry=(
                        engine.retry
                        if engine.retry is not None
                        else RetryPolicy.for_store()
                    ),
                    injector=engine.fault_injector,
                )
                stats.tmp_scrubbed = self.store.tmp_scrubbed
            if checkpoint_on and self.journal is None:
                self.journal = RunJournal(
                    engine.workdir, injector=engine.fault_injector
                )
            manifest = (
                self.journal.load_manifest()
                if (self.resume and self.journal)
                else None
            )
            if manifest is not None:
                validate_manifest(manifest, self.grammar_crc, self.graph_crc)
                self.pset = restore_partition_set(
                    manifest,
                    self.store,
                    self.journal,
                    memory_budget=engine.memory_budget,
                )
                restore_scheduler(self.scheduler, manifest.get("scheduler", {}))
                self.superstep_index = int(manifest["superstep"])
                stats.resumed_from_superstep = self.superstep_index
                stats.initial_partitions = int(manifest["initial_partitions"])
                stats.repartition_count = int(manifest["repartition_count"])
                self.journal.append(
                    {"event": "resume", "superstep": self.superstep_index}
                )
            else:
                self.pset = preprocess(
                    self.graph,
                    max_edges_per_partition=engine.max_edges_per_partition,
                    num_partitions=engine.num_partitions,
                    workdir=engine.workdir,
                    timers=stats.timers,
                    memory_budget=engine.memory_budget,
                    store=self.store,
                )
                stats.initial_partitions = self.pset.num_partitions
                if self.journal is not None:
                    self.journal.append(
                        {
                            "event": "begin",
                            "grammar_crc": self.grammar_crc,
                            "graph_crc": self.graph_crc,
                            "partitions": self.pset.num_partitions,
                            "edges": self.graph.num_edges,
                        }
                    )
                    self.journal.save_degrees(
                        self.pset.out_degrees, self.pset.in_degrees
                    )

        pset = self.pset
        stats.memory_budget = pset.memory_budget
        stats.checkpoint_enabled = self.journal is not None
        if self.journal is not None:
            pset.defer_deletes = True
            if stats.resumed_from_superstep is None:
                # Checkpoint 0 (or the seeded state): a crash inside the
                # very first superstep already has a resume point.
                self._commit_checkpoint()

        self._mid_limit = engine.mid_superstep_limit()
        if engine.parallel_backend == "distributed":
            # Workers overlap their own reads with the coordinator's
            # applies; the coordinator itself commits synchronously per
            # superstep so every lease leaves a durable resume point.
            pipeline_on = False
        else:
            pipeline_on = (
                engine.workdir is not None and pset.store.disk_backed
                if engine.pipeline is None
                else bool(engine.pipeline)
            )
        self._io = IoPipeline() if pipeline_on else None
        stats.pipeline_enabled = self._io is not None
        if self._io is not None:
            pset.attach_io(self._io)

        # The backend (and its worker pool / shared segments) lives for
        # the whole session; close() guarantees shutdown.
        self._backend = make_backend(
            engine.parallel_backend, engine.grammar, engine.num_threads
        )
        self._backend.__enter__()
        self._backend.injector = engine.fault_injector
        self._opened = True
        return self

    def step(self) -> bool:
        """Run one scheduler-chosen superstep; False at the fixed point."""
        if not self._opened:
            raise SessionStateError("open() the session before stepping")
        if self._finished:
            return False
        engine = self.engine
        pset, io, stats = self.pset, self._io, self.stats
        pair = self.scheduler.choose_pair(
            pset.ddm, pset.scheduling_resident_pids()
        )
        if io is not None:
            pset.reconcile_prefetch(pair if pair else ())
        if pair is None:
            return False
        if len(stats.supersteps) >= engine.max_supersteps:
            raise RuntimeError(
                f"exceeded max_supersteps={engine.max_supersteps}; "
                "the computation may be diverging"
            )
        before = io.snapshot() if io is not None else None
        self._run_one_superstep(pair)
        self.superstep_index += 1
        if self.journal is not None:
            if io is None:
                self._commit_checkpoint()
            else:
                # Lagged commit: make the *previous* superstep durable
                # (its flushes have had a whole superstep to complete in
                # the background), then queue this one.
                self._drain_commit()
                self._pending = self._begin_commit()
        if before is not None:
            self._record_pipeline_delta(before)
        return True

    def run(self):
        """Drive the superstep loop to the fixed point; returns the result."""
        if not self._opened:
            raise SessionStateError("open() the session before running")
        if self._computation is not None:
            return self._computation
        try:
            if self.engine.parallel_backend == "distributed":
                from repro.distributed.coordinator import run_distributed

                run_distributed(self)
            else:
                while self.step():
                    pass
            if self.journal is not None and self._io is not None:
                self._drain_commit()
        finally:
            self._harvest_backend()
        self._finished = True
        return self._finalize()

    @property
    def computation(self):
        """The finished computation; None until :meth:`run` completes."""
        return self._computation

    def close(self) -> None:
        """Release the backend and pipeline, folding in their telemetry."""
        if self._closed:
            return
        self._closed = True
        self._harvest_backend()
        if self._backend is not None:
            backend, self._backend = self._backend, None
            backend.__exit__(None, None, None)
        io = self._io
        if io is not None:
            self._io = None
            stats = self.stats
            if stats is not None:
                snap = io.snapshot()
                stats.prefetch_issued = int(snap["prefetch_issued"])
                stats.prefetch_hits = int(snap["prefetch_hits"])
                stats.prefetch_wasted = int(snap["prefetch_wasted"])
                stats.load_wait_seconds = snap["load_wait_seconds"]
                stats.flush_wait_seconds = snap["flush_wait_seconds"]
                stats.io_busy_seconds = snap["busy_seconds"]
                stats.io_hidden_seconds = io.hidden_seconds
                stats.overlap_fraction = io.overlap_fraction
            if self.pset is not None:
                self.pset.detach_io()
            io.close()

    # ------------------------------------------------------------------
    # internals (extracted verbatim from the old GraspanEngine.run body)
    # ------------------------------------------------------------------
    def _harvest_backend(self) -> None:
        if self._backend is not None and self.stats is not None:
            self.stats.worker_respawns = getattr(
                self._backend, "worker_respawns", 0
            )
            self.stats.backend_degraded = bool(
                getattr(self._backend, "_degraded", False)
            )

    def _finalize(self):
        from repro.engine.engine import GraspanComputation

        pset, stats = self.pset, self.stats
        # Fold pipeline counters in *before* the final eviction sweep so
        # the stats the caller sees are complete even without close().
        self.close()
        if pset.store.disk_backed:
            pset.evict_all_except(())
            pset.store.purge_retired()
        stats.final_edges = pset.total_edges()
        stats.final_partitions = pset.num_partitions
        if self.journal is not None:
            self.journal.append(
                {
                    "event": "finish",
                    "superstep": self.superstep_index,
                    "final_edges": stats.final_edges,
                }
            )
        self._snapshot_residency()
        self._computation = GraspanComputation(pset, self.engine.grammar, stats)
        return self._computation

    def _commit_checkpoint(self) -> None:
        """Durably commit the current state (flush → commit → purge)."""
        stats = self.stats
        with stats.timers.phase("checkpoint"):
            self.pset.flush_dirty()
            self.journal.commit(self._manifest())
            self.pset.store.purge_retired()
        stats.add_counter("checkpoints_written")

    def _begin_commit(self) -> PendingCommit:
        """Queue this superstep's checkpoint on the pipeline."""
        stats = self.stats
        with stats.timers.phase("checkpoint"):
            flushes = self.pset.begin_flush()
            manifest = self._manifest()
            mark = self.pset.store.retire_mark()
        return PendingCommit(
            superstep=self.superstep_index,
            manifest=manifest,
            flushes=flushes,
            retire_upto=mark,
        )

    def _drain_commit(self) -> None:
        """Make the queued checkpoint durable: wait flushes, commit, purge."""
        pending, self._pending = self._pending, None
        if pending is None:
            return
        stats = self.stats
        with stats.timers.phase("checkpoint"):
            for future in pending.flushes:
                self._io.wait_flush(future)
            self.journal.commit(pending.manifest)
            self.pset.store.purge_retired(upto=pending.retire_upto)
        stats.add_counter("checkpoints_written")

    def _manifest(self) -> Dict[str, object]:
        stats = self.stats
        return build_manifest(
            self.pset,
            self.superstep_index,
            self.grammar_crc,
            self.graph_crc,
            self.scheduler,
            original_edges=stats.original_edges,
            initial_partitions=stats.initial_partitions,
            repartition_count=stats.repartition_count,
        )

    def _record_pipeline_delta(self, before: Dict[str, float]) -> None:
        """Stamp the just-finished superstep's record with pipeline deltas."""
        after = self._io.snapshot()
        record = self.stats.supersteps[-1]
        record.prefetch_issued = int(
            after["prefetch_issued"] - before["prefetch_issued"]
        )
        record.prefetch_hits = int(
            after["prefetch_hits"] - before["prefetch_hits"]
        )
        record.prefetch_wasted = int(
            after["prefetch_wasted"] - before["prefetch_wasted"]
        )
        record.load_wait_seconds = (
            after["load_wait_seconds"] - before["load_wait_seconds"]
        )
        record.flush_wait_seconds = (
            after["flush_wait_seconds"] - before["flush_wait_seconds"]
        )

    def _snapshot_residency(self) -> None:
        """Copy residency/storage counters into the session's stats."""
        pset, stats = self.pset, self.stats
        residency = pset.residency
        stats.peak_resident_bytes = residency.peak_resident_bytes
        stats.max_partition_bytes = residency.max_partition_bytes
        stats.evictions = residency.evictions
        stats.cache_hits = residency.cache_hits
        stats.partition_loads = residency.loads
        stats.bytes_read = pset.store.bytes_read
        stats.bytes_written = pset.store.bytes_written
        stats.io_retries = pset.store.io_retries
        stats.tmp_scrubbed = max(stats.tmp_scrubbed, pset.store.tmp_scrubbed)
        stats.files_purged = pset.store.files_purged

    def _run_one_superstep(self, pair: Tuple[int, int]) -> None:
        engine, pset, stats, io = self.engine, self.pset, self.stats, self._io
        backend = self._backend
        p, q = min(pair), max(pair)
        loaded = (p,) if p == q else (p, q)
        with pset.pinned(*loaded):
            if pset.memory_budget is None:
                # Historical policy: delayed write-back, only partitions
                # not needed next are evicted.
                pset.evict_all_except(loaded)
            parts = [pset.acquire(pid) for pid in loaded]

            # Speculative prefetch: predict the pair that runs after this
            # one and start loading its non-resident members on the I/O
            # thread while the join below computes.
            peek = getattr(self.scheduler, "peek_pair", None)
            if io is not None and peek is not None:
                predicted = peek(
                    pset.ddm,
                    pset.scheduling_resident_pids(),
                    assume_synced=loaded,
                )
                if predicted is not None:
                    for pid in dict.fromkeys(predicted):
                        if pid not in loaded and not pset.is_resident(pid):
                            pset.prefetch(pid)

            # Combine the loaded CSRs by concatenation: p < q, so their
            # vertex ranges are disjoint and already ordered.
            combined = _combine_views(parts)

            watch = Stopwatch().start()
            with stats.timers.phase("compute"):
                result = run_superstep(
                    combined,
                    engine.grammar,
                    memory_limit_edges=self._mid_limit,
                    num_threads=engine.num_threads,
                    backend=backend,
                )
            seconds = watch.stop()

            # Scatter the merged flat edge set back into the loaded
            # partitions: one searchsorted cut per interval, rows are
            # zero-copy slices of the result keys.
            for pid, part in zip(loaded, parts):
                lo = int(
                    np.searchsorted(result.src, part.interval.lo, side="left")
                )
                hi = int(
                    np.searchsorted(result.src, part.interval.hi, side="right")
                )
                view = CsrView.from_flat(result.src[lo:hi], result.keys[lo:hi])
                part.replace_csr(view.vertices, view.indptr, view.keys)
                pset.note_mutated(pid)
                pset.ddm.set_exact_row(pid, part.destination_counts(pset.vit))

            record_added_edges(pset, result.added_src, result.added_keys)
            if result.completed:
                pset.ddm.mark_synced(loaded)

            resident_edges = sum(pset.edge_count(pid) for pid in loaded)
            stats.max_counter("peak_resident_edges", resident_edges)

            self._maybe_repartition(loaded)
        # Growth during the superstep may have pushed the resident total
        # over the budget; settle it now that nothing is pinned.
        pset.enforce_budget()

        telemetry = result.telemetry
        stats.record_superstep(
            SuperstepRecord(
                pair=(p, q),
                iterations=result.iterations,
                edges_added=result.edges_added,
                seconds=seconds,
                completed=result.completed,
                num_partitions_after=pset.num_partitions,
                backend=telemetry.backend if telemetry else "serial",
                chunk_count=telemetry.chunk_count if telemetry else 0,
                chunk_balance=telemetry.chunk_balance if telemetry else 1.0,
                pool_seconds=telemetry.pool_seconds if telemetry else 0.0,
                serial_estimate_seconds=(
                    telemetry.serial_estimate_seconds if telemetry else 0.0
                ),
                worker_respawns=telemetry.worker_respawns if telemetry else 0,
                backend_degraded=(
                    telemetry.backend_degraded if telemetry else False
                ),
                matmul_blocks_built=(
                    telemetry.matmul_blocks_built if telemetry else 0
                ),
                matmul_blocks_reused=(
                    telemetry.matmul_blocks_reused if telemetry else 0
                ),
                matmul_products=telemetry.matmul_products if telemetry else 0,
                matmul_nnz=telemetry.matmul_nnz if telemetry else 0,
            )
        )

    def _maybe_repartition(self, loaded: Tuple[int, ...]) -> None:
        """Split loaded partitions that outgrew the size threshold (§4.3)."""
        engine, pset, stats = self.engine, self.pset, self.stats
        if engine.max_edges_per_partition is None:
            return
        threshold = int(
            engine.max_edges_per_partition * engine.repartition_growth
        )
        # Split high ids first so earlier ids stay valid through id shifts.
        for pid in sorted(loaded, reverse=True):
            while (
                pset.edge_count(pid) > threshold
                and len(pset.vit.interval(pid)) > 1
            ):
                pset.split(pid)
                stats.add_counter("repartition_count")


# ---------------------------------------------------------------------------
# free helpers shared with the ClosureStore delta-seeding path
# ---------------------------------------------------------------------------


def _combine_views(parts: List) -> CsrView:
    """Concatenate loaded partitions' CSRs into one join-ready view.

    The partitions arrive in ascending interval order with disjoint
    vertex ranges, so concatenation (with the right half's ``indptr``
    rebased) *is* the merge — no sort, no dict.
    """
    if len(parts) == 1:
        return CsrView(*parts[0].csr())
    vertices = np.concatenate([part.vertices for part in parts])
    keys = np.concatenate([part.keys for part in parts])
    indptr_parts = [parts[0].indptr]
    offset = int(parts[0].indptr[-1])
    for part in parts[1:]:
        indptr_parts.append(part.indptr[1:] + offset)
        offset += int(part.indptr[-1])
    return CsrView(vertices, np.concatenate(indptr_parts), keys)


def record_added_edges(
    pset: PartitionSet, added_src: np.ndarray, added_keys: np.ndarray
) -> None:
    """Bucket new edges into DDM cells by (source, target) interval.

    The interval-low array is cached on the set (splits invalidate it)
    and the bucketed cells land in the DDM through one bulk scatter-add
    instead of a per-cell Python loop.  Shared by the per-superstep path
    and the ClosureStore's delta seeding — inserted delta edges dirty
    the DDM exactly as superstep-derived edges do.
    """
    if len(added_src) == 0:
        return
    lows = pset.interval_lows()
    src_pid = np.searchsorted(lows, added_src, side="right") - 1
    dst_pid = (
        np.searchsorted(lows, packed.targets_of(added_keys), side="right") - 1
    )
    n = pset.vit.num_partitions
    cells, counts = np.unique(src_pid * n + dst_pid, return_counts=True)
    pset.ddm.record_new_edges_bulk(cells, counts)


def _empty_computation(grammar, graph: MemGraph):
    """A trivial result for graphs with nothing to compute."""
    from repro.engine.engine import GraspanComputation
    from repro.partition.ddm import DestinationDistributionMap
    from repro.partition.interval import VertexIntervalTable
    from repro.partition.partition import Partition

    vit = VertexIntervalTable.single(max(1, graph.num_vertices))
    pset = PartitionSet(
        vit,
        DestinationDistributionMap(np.zeros((1, 1), dtype=np.int64)),
        [Partition(vit.interval(0), {})],
        PartitionStore(),
        label_names=grammar.names,
    )
    stats = EngineStats(num_vertices=graph.num_vertices)
    stats.initial_partitions = stats.final_partitions = 1
    return GraspanComputation(pset, grammar, stats)
