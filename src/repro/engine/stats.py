"""Execution statistics: the raw material for Tables 5-6 and Figure 4."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.timing import TimeBreakdown


@dataclass
class SuperstepRecord:
    """One row of the superstep log.

    The last five fields carry the join backend's parallelism telemetry
    (see :class:`repro.engine.parallel.JoinTelemetry`): how many left
    chunks were dispatched, how uneven the largest chunk was relative to
    the mean (1.0 = perfectly balanced), wall time spent in the pool,
    and the summed per-chunk kernel time — the serial estimate the pool
    wall time is compared against to gauge realized speedup.
    """

    pair: Tuple[int, int]
    iterations: int
    edges_added: int
    seconds: float
    completed: bool
    num_partitions_after: int
    backend: str = "serial"
    chunk_count: int = 0
    chunk_balance: float = 1.0
    pool_seconds: float = 0.0
    serial_estimate_seconds: float = 0.0
    worker_respawns: int = 0
    backend_degraded: bool = False
    # Matmul-kernel telemetry (DESIGN.md §11): per-label CSR blocks built
    # vs carried over unchanged across iterations, boolean products
    # formed, and their total nonzeros (distinct candidate pairs).
    matmul_blocks_built: int = 0
    matmul_blocks_reused: int = 0
    matmul_products: int = 0
    matmul_nnz: int = 0
    # I/O pipeline telemetry (deltas over this superstep; DESIGN.md §10).
    prefetch_issued: int = 0  # speculative loads started
    prefetch_hits: int = 0  # prefetched partitions the superstep consumed
    prefetch_wasted: int = 0  # mispredicted loads cancelled or evicted
    load_wait_seconds: float = 0.0  # engine blocked joining in-flight loads
    flush_wait_seconds: float = 0.0  # engine blocked draining write-backs
    # Distributed-lease telemetry (DESIGN.md §16): which worker computed
    # this superstep, under which lease epoch, after how many reissues,
    # and how many delta edges it shipped back.
    worker: str = ""  # empty on non-distributed supersteps
    lease_epoch: int = 0
    lease_reissues: int = 0
    delta_edges: int = 0

    @property
    def speedup_estimate(self) -> float:
        if self.pool_seconds <= 0.0:
            return 1.0
        return self.serial_estimate_seconds / self.pool_seconds


@dataclass
class EngineStats:
    """Everything measured during one engine run.

    ``timers`` carries the Table 6 phase breakdown (``compute``, ``io``,
    ``preprocess``); ``supersteps`` carries the Figure 4 series.
    """

    original_edges: int = 0
    final_edges: int = 0
    num_vertices: int = 0
    initial_partitions: int = 0
    final_partitions: int = 0
    repartition_count: int = 0
    supersteps: List[SuperstepRecord] = field(default_factory=list)
    timers: TimeBreakdown = field(default_factory=TimeBreakdown)
    peak_resident_edges: int = 0
    # Residency/storage counters (copied from the ResidencyManager and the
    # PartitionStore at the end of a run): the observable behaviour of the
    # memory-budgeted residency stack.
    memory_budget: Optional[int] = None  # configured budget in bytes (None = off)
    peak_resident_bytes: int = 0  # high-water mark of resident CSR bytes
    max_partition_bytes: int = 0  # largest single partition ever resident
    evictions: int = 0  # resident copies dropped (dirty ones written back)
    cache_hits: int = 0  # acquires answered without touching disk
    partition_loads: int = 0  # acquires that had to read a partition file
    bytes_read: int = 0  # partition file bytes read
    bytes_written: int = 0  # partition file bytes written
    # Durability / fault-tolerance counters (DESIGN.md §9).
    checkpoint_enabled: bool = False  # run journal + manifest were written
    checkpoints_written: int = 0  # manifest commits this run
    resumed_from_superstep: Optional[int] = None  # watermark a resume started at
    io_retries: int = 0  # transient I/O errors absorbed by backoff
    tmp_scrubbed: int = 0  # torn *.tmp orphans removed at startup
    files_purged: int = 0  # retired partition files removed post-commit
    worker_respawns: int = 0  # join-pool rebuilds after dead workers
    backend_degraded: bool = False  # pool backend fell back to inline joins
    # I/O pipeline counters (DESIGN.md §10): how much disk work ran in the
    # background and how much of it the engine actually had to wait for.
    pipeline_enabled: bool = False  # background I/O thread was attached
    prefetch_issued: int = 0  # speculative partition loads started
    prefetch_hits: int = 0  # speculative loads later consumed by acquire
    prefetch_wasted: int = 0  # mispredicted loads cancelled or evicted
    load_wait_seconds: float = 0.0  # engine time blocked on in-flight loads
    flush_wait_seconds: float = 0.0  # engine time draining async write-backs
    io_busy_seconds: float = 0.0  # wall time the I/O thread moved bytes
    io_hidden_seconds: float = 0.0  # I/O that ran fully under compute
    overlap_fraction: float = 0.0  # hidden / busy (0.0 when pipeline off)
    # Distributed-superstep counters (DESIGN.md §16): the coordinator's
    # lease ledger.  ``leases_issued`` counts every lease handed out
    # (including reissues); completions, reissues after worker death or
    # deadline expiry, and the idempotency rejections are tracked
    # separately so the at-most-once property is directly assertable.
    distributed_workers: int = 0  # workers that ever completed a handshake
    leases_issued: int = 0  # leases handed out (incl. reissues)
    leases_completed: int = 0  # deltas applied to the closure
    leases_reissued: int = 0  # leases re-queued after death/expiry/release
    leases_expired: int = 0  # deadline expiries among the reissues
    worker_deaths: int = 0  # connections lost holding a live lease
    duplicate_deltas_suppressed: int = 0  # same lease delivered twice
    stale_deltas_rejected: int = 0  # completions under a superseded epoch
    delta_edges_applied: int = 0  # edges shipped by workers and merged
    heartbeats_received: int = 0  # deadline renewals
    # Closure-store provenance (DESIGN.md §14): how this closure was
    # obtained and, for delta re-closures, how big the input diff was.
    closure_source: str = "cold"  # "cold" | "cache" | "incremental"
    delta_added_edges: int = 0  # input edges added vs the base closure
    delta_deleted_edges: int = 0  # input edges removed (forces a cold run)
    delta_seed_partitions: int = 0  # partitions seeded with delta edges
    # Accumulation lock: stats are session-scoped, but the daemon reads
    # summaries concurrently with a running session and helper threads
    # (pipeline, service executor) may bump counters; every read-modify-
    # write below goes through this lock.  Excluded from ==/repr so the
    # dataclass still compares by measurement.
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_superstep(self, record: SuperstepRecord) -> None:
        """Append one superstep's record under the accumulation lock."""
        with self.lock:
            self.supersteps.append(record)

    def add_counter(self, name: str, amount: int = 1) -> int:
        """Atomically bump an integer counter field; returns the new value.

        ``stats.field += 1`` is a read-modify-write that loses updates
        under concurrency; every counter mutation from superstep or
        service code funnels through here instead.
        """
        with self.lock:
            value = getattr(self, name) + amount
            setattr(self, name, value)
            return value

    def max_counter(self, name: str, candidate: int) -> int:
        """Atomically raise a high-water-mark field to ``candidate``."""
        with self.lock:
            value = max(getattr(self, name), candidate)
            setattr(self, name, value)
            return value

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_edges_added(self) -> int:
        return sum(r.edges_added for r in self.supersteps)

    @property
    def growth_factor(self) -> float:
        """Final edges over original edges (Table 5's size blowup)."""
        if self.original_edges == 0:
            return 0.0
        return self.final_edges / self.original_edges

    def added_fraction_series(self) -> List[float]:
        """Figure 4: per-superstep edges added / original edge count."""
        if self.original_edges == 0:
            return []
        return [r.edges_added / self.original_edges for r in self.supersteps]

    def cumulative_added_fraction(self) -> List[float]:
        series = self.added_fraction_series()
        out: List[float] = []
        running = 0.0
        for x in series:
            running += x
            out.append(running)
        return out

    def parallelism_summary(self) -> Dict[str, object]:
        """Aggregate join-backend telemetry across all supersteps.

        ``speedup_estimate`` compares the summed per-chunk kernel time
        against the pool wall time — the realized parallel efficiency
        without paying for a second, serial run.
        """
        pool = sum(r.pool_seconds for r in self.supersteps)
        serial = sum(r.serial_estimate_seconds for r in self.supersteps)
        chunks = sum(r.chunk_count for r in self.supersteps)
        backend = self.supersteps[-1].backend if self.supersteps else "serial"
        worst_balance = max(
            (r.chunk_balance for r in self.supersteps), default=1.0
        )
        return {
            "backend": backend,
            "chunks": chunks,
            "worst_chunk_balance": round(worst_balance, 2),
            "pool_s": round(pool, 3),
            "serial_estimate_s": round(serial, 3),
            "speedup_estimate": round(serial / pool, 2) if pool > 0 else 1.0,
        }

    def summary(self) -> Dict[str, object]:
        """A flat dict for table rendering and JSON dumps."""
        return {
            "vertices": self.num_vertices,
            "edges_before": self.original_edges,
            "edges_after": self.final_edges,
            "growth": round(self.growth_factor, 2),
            "partitions_initial": self.initial_partitions,
            "partitions_final": self.final_partitions,
            "repartitions": self.repartition_count,
            "supersteps": self.num_supersteps,
            "compute_s": round(self.timers.get("compute"), 3),
            "io_s": round(self.timers.get("io"), 3),
            "preprocess_s": round(self.timers.get("preprocess"), 3),
            "total_s": round(self.timers.total(), 3),
            "peak_resident_edges": self.peak_resident_edges,
            "memory_budget": self.memory_budget,
            "peak_resident_bytes": self.peak_resident_bytes,
            "max_partition_bytes": self.max_partition_bytes,
            "evictions": self.evictions,
            "cache_hits": self.cache_hits,
            "partition_loads": self.partition_loads,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "backend": (
                self.supersteps[-1].backend if self.supersteps else "serial"
            ),
            "parallel_speedup": self.parallelism_summary()["speedup_estimate"],
            "checkpoints": self.checkpoints_written,
            "resumed_from": self.resumed_from_superstep,
            "io_retries": self.io_retries,
            "tmp_scrubbed": self.tmp_scrubbed,
            "files_purged": self.files_purged,
            "worker_respawns": self.worker_respawns,
            "backend_degraded": self.backend_degraded,
            "pipeline": self.pipeline_enabled,
            "prefetch_issued": self.prefetch_issued,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_wasted": self.prefetch_wasted,
            "load_wait_s": round(self.load_wait_seconds, 3),
            "flush_wait_s": round(self.flush_wait_seconds, 3),
            "io_busy_s": round(self.io_busy_seconds, 3),
            "io_hidden_s": round(self.io_hidden_seconds, 3),
            "overlap_fraction": round(self.overlap_fraction, 3),
            "closure_source": self.closure_source,
            "delta_added_edges": self.delta_added_edges,
            "delta_deleted_edges": self.delta_deleted_edges,
            "delta_seed_partitions": self.delta_seed_partitions,
        }

    def matmul_summary(self) -> Dict[str, object]:
        """Aggregate matmul-kernel telemetry across all supersteps.

        ``block_reuse_fraction`` is the share of label blocks an
        iteration could carry over unchanged instead of rebuilding —
        the payoff of the O ∪ D union hint (DESIGN.md §11).
        """
        built = sum(r.matmul_blocks_built for r in self.supersteps)
        reused = sum(r.matmul_blocks_reused for r in self.supersteps)
        total = built + reused
        return {
            "blocks_built": built,
            "blocks_reused": reused,
            "block_reuse_fraction": round(reused / total, 3) if total else 0.0,
            "products": sum(r.matmul_products for r in self.supersteps),
            "product_nnz": sum(r.matmul_nnz for r in self.supersteps),
        }

    def pipeline_summary(self) -> Dict[str, object]:
        """The I/O overlap counters as one row (CLI + the overlap bench)."""
        return {
            "pipeline": self.pipeline_enabled,
            "prefetch_issued": self.prefetch_issued,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_wasted": self.prefetch_wasted,
            "load_wait_s": round(self.load_wait_seconds, 3),
            "flush_wait_s": round(self.flush_wait_seconds, 3),
            "io_busy_s": round(self.io_busy_seconds, 3),
            "io_hidden_s": round(self.io_hidden_seconds, 3),
            "overlap_fraction": round(self.overlap_fraction, 3),
        }

    def distributed_summary(self) -> Dict[str, object]:
        """The coordinator's lease ledger as one row (CLI + tests).

        ``reissue_fraction`` is the share of issued leases that had to be
        handed out again; under fault-free runs it is 0.0 and every
        issued lease completes exactly once.
        """
        issued = self.leases_issued
        return {
            "workers": self.distributed_workers,
            "leases_issued": issued,
            "leases_completed": self.leases_completed,
            "leases_reissued": self.leases_reissued,
            "leases_expired": self.leases_expired,
            "worker_deaths": self.worker_deaths,
            "duplicate_deltas_suppressed": self.duplicate_deltas_suppressed,
            "stale_deltas_rejected": self.stale_deltas_rejected,
            "delta_edges_applied": self.delta_edges_applied,
            "heartbeats_received": self.heartbeats_received,
            "reissue_fraction": (
                round(self.leases_reissued / issued, 3) if issued else 0.0
            ),
        }

    def durability_summary(self) -> Dict[str, object]:
        """The fault-tolerance counters as one row (CLI + tests)."""
        return {
            "checkpoint": self.checkpoint_enabled,
            "checkpoints_written": self.checkpoints_written,
            "resumed_from": self.resumed_from_superstep,
            "checkpoint_s": round(self.timers.get("checkpoint"), 3),
            "io_retries": self.io_retries,
            "tmp_scrubbed": self.tmp_scrubbed,
            "files_purged": self.files_purged,
            "worker_respawns": self.worker_respawns,
            "backend_degraded": self.backend_degraded,
        }
