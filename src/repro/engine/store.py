"""The closure store: a persistent cache of finished closures (DESIGN.md §14).

Graspan answers *queries* against a computed closure; the closure itself
only changes when the program (or the grammar) does.  The store makes
that explicit: every finished closure is kept on disk as one *entry*
keyed by ``(grammar_fingerprint, graph_fingerprint)``, and a request for
a closure resolves in the cheapest sufficient way:

exact hit
    The keyed entry exists and is complete — restore its partition set
    from the PR 4 manifest and return it: zero supersteps.

incremental (delta re-closure)
    No exact entry, but a completed entry under the *same grammar* whose
    input graph differs from the new one only by **added** edges over the
    **same vertex set**.  The base entry's partition files are hard-linked
    (copied when linking fails) into the new entry, its manifest restores
    the finished closure, and the added input edges are merged into their
    partitions' flat arrays while the DDM is bulk-bumped exactly as a
    superstep would — so every pair that could interact with a delta edge
    is dirty again.  A seeded :class:`~repro.engine.session.ClosureSession`
    then re-runs supersteps *from the old fixed point* instead of from
    scratch.  Because the grammar-guided closure is monotone and the
    superstep fixpoint confluent, the seeded state ``old_closure ∪ Δ``
    (which satisfies ``new_input ⊆ seed ⊆ closure(new_input)``) converges
    to the byte-identical closure a cold run computes.

cold
    Anything else — no base, deleted input edges, or a changed vertex
    set (deletions break the monotonicity argument above; renumbered
    vertices invalidate the partition table) — computes from scratch
    into the new entry.

Crash safety rides on PR 4 unchanged: every entry directory is a normal
engine workdir with a journal + manifest, and the completion marker
(``closure.json``, written atomically last) distinguishes finished
entries from interrupted ones.  A request for an interrupted entry
resumes it from its committed watermark — the daemon's kill → restart →
re-serve story costs only the supersteps after the last commit.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.engine.checkpoint import (
    MANIFEST_NAME,
    CheckpointError,
    RunJournal,
    grammar_fingerprint,
    graph_fingerprint,
    restore_partition_set,
)
from repro.engine.engine import GraspanComputation, GraspanEngine, align_graph_labels
from repro.engine.join import CsrView
from repro.engine.scheduler import Scheduler
from repro.engine.session import ClosureSession, record_added_edges
from repro.engine.stats import EngineStats
from repro.graph.graph import MemGraph
from repro.grammar.grammar import FrozenGrammar
from repro.partition.preprocess import planned_partition_table
from repro.partition.pset import PartitionSet
from repro.partition.storage import PartitionCorruptError, PartitionStore
from repro.util.retry import RetryPolicy

#: Exceptions that mean "this entry's on-disk state is unusable" — a
#: corrupt partition payload or an inconsistent manifest.  The store
#: degrades these to a cold recompute instead of failing the request;
#: :class:`~repro.util.faults.InjectedCrash` is *not* in this set (it is
#: a ``BaseException`` precisely so recovery paths cannot absorb it).
_ENTRY_UNUSABLE = (PartitionCorruptError, CheckpointError)

PathLike = Union[str, Path]

#: The per-entry completion marker; written atomically after the closure
#: finishes, so its presence certifies the manifest is a *final* state.
META_NAME = "closure.json"

#: The per-entry input snapshot the incremental diff runs against.
INPUT_NAME = "input.npz"

META_FORMAT = 1


def edge_diff(
    base_src: np.ndarray,
    base_keys: np.ndarray,
    new_src: np.ndarray,
    new_keys: np.ndarray,
) -> Tuple[np.ndarray, int]:
    """Set-diff two deduplicated flat edge lists.

    Returns ``(added_mask, deleted)``: a boolean mask over the *new*
    arrays marking edges absent from the base, and the count of base
    edges absent from the new graph.  Both inputs are
    :class:`~repro.graph.graph.MemGraph` columns, already lexsorted and
    unique, so membership falls out of one ``np.unique`` over the
    concatenation: a row with count 2 appears on both sides.
    """
    num_base = len(base_src)
    pairs = np.stack(
        [
            np.concatenate([base_src, new_src]),
            np.concatenate([base_keys, new_keys]),
        ],
        axis=1,
    )
    _, inverse, counts = np.unique(
        pairs, axis=0, return_inverse=True, return_counts=True
    )
    added_mask = counts[inverse[num_base:]] == 1
    deleted = int(np.count_nonzero(counts[inverse[:num_base]] == 1))
    return added_mask, deleted


def seed_delta_edges(
    pset: PartitionSet, added_src: np.ndarray, added_keys: np.ndarray
) -> int:
    """Merge delta input edges into a restored closure's partitions.

    For each touched partition the added edges are merged into the flat
    ``(src, key)`` arrays (lexsort + dedup — an added edge the closure
    already derived is a no-op), and the DDM is updated exactly as the
    superstep loop would: the row is recomputed exactly and the bulk
    new-edge accounting bumps the source partitions' versions, marking
    every interacting pair dirty.  Returns the number of partitions
    seeded.
    """
    if len(added_src) == 0:
        return 0
    lows = pset.interval_lows()
    pid_of = np.searchsorted(lows, added_src, side="right") - 1
    touched = np.unique(pid_of)
    for pid_ in touched.tolist():
        pid = int(pid_)
        sel = pid_of == pid
        part = pset.acquire(pid)
        flat_src = np.repeat(part.vertices, part.row_lengths())
        merged_src = np.concatenate([flat_src, added_src[sel]])
        merged_keys = np.concatenate([part.keys, added_keys[sel]])
        order = np.lexsort((merged_keys, merged_src))
        merged_src = merged_src[order]
        merged_keys = merged_keys[order]
        keep = np.ones(len(merged_src), dtype=bool)
        keep[1:] = (merged_src[1:] != merged_src[:-1]) | (
            merged_keys[1:] != merged_keys[:-1]
        )
        view = CsrView.from_flat(merged_src[keep], merged_keys[keep])
        part.replace_csr(view.vertices, view.indptr, view.keys)
        pset.note_mutated(pid)
        pset.ddm.set_exact_row(pid, part.destination_counts(pset.vit))
    record_added_edges(pset, added_src, added_keys)
    return int(len(touched))


class ClosureStore:
    """Persistent, incrementally-updatable cache of finished closures.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per cache entry, named
        ``<grammar_crc>-<graph_crc>`` in hex.
    max_edges_per_partition / num_partitions / memory_budget /
    num_threads / parallel_backend / fault_injector / retry:
        Engine configuration applied to every closure the store computes
        (each entry directory becomes that run's workdir).  When an
        analysis is handed a store, this configuration wins over the
        analysis's own engine sizing — one consistent cache, not one per
        caller.

    Thread safety: :meth:`closure` serializes computations under one
    lock (concurrent daemon queries for the *same* closure should
    compute it once); finished computations are safe to query
    concurrently because :class:`~repro.partition.pset.PartitionSet`
    is internally locked.
    """

    def __init__(
        self,
        root: PathLike,
        max_edges_per_partition: Optional[int] = None,
        num_partitions: Optional[int] = None,
        memory_budget: Optional[int] = None,
        num_threads: int = 1,
        parallel_backend: Optional[str] = None,
        fault_injector=None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_edges_per_partition = max_edges_per_partition
        self.num_partitions = num_partitions
        self.memory_budget = memory_budget
        self.num_threads = num_threads
        self.parallel_backend = parallel_backend
        self.fault_injector = fault_injector
        self.retry = retry
        self._lock = threading.RLock()
        #: Requests that found their entry (or its incremental base)
        #: corrupt and fell back to a cold recompute.
        self.degraded_to_cold = 0
        self._warned_degraded = False

    # ------------------------------------------------------------------
    # keys and entries
    # ------------------------------------------------------------------
    def graph_key(
        self, grammar: FrozenGrammar, graph: MemGraph
    ) -> Tuple[int, int]:
        """The ``(grammar_crc, graph_crc)`` cache key for an aligned graph.

        The graph fingerprint folds in the *planned* partition table, so
        a store configured with different partition sizing keys different
        entries for the same edges — cached manifests are only reusable
        under the layout they were computed with.
        """
        return (
            grammar_fingerprint(grammar),
            graph_fingerprint(
                graph,
                partition_table=planned_partition_table(
                    graph, self.max_edges_per_partition, self.num_partitions
                ),
            ),
        )

    def entry_dir(self, grammar_crc: int, graph_crc: int) -> Path:
        return self.root / f"{grammar_crc:08x}-{graph_crc:08x}"

    def entries(self) -> List[Dict[str, object]]:
        """Metadata of every *completed* entry, newest first."""
        metas: List[Dict[str, object]] = []
        for meta_path in sorted(
            self.root.glob("*/" + META_NAME),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        ):
            try:
                with open(meta_path, "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            meta["entry"] = meta_path.parent.name
            metas.append(meta)
        return metas

    # ------------------------------------------------------------------
    # the one public verb
    # ------------------------------------------------------------------
    def closure(
        self, grammar: FrozenGrammar, graph: MemGraph
    ) -> GraspanComputation:
        """A finished closure of ``graph`` under ``grammar``.

        Resolution order: exact cache hit → resume of an interrupted
        entry → incremental delta re-closure from a same-grammar base →
        cold run.  ``stats.closure_source`` on the returned computation
        records which path was taken (``"cache"``, ``"cold"``, or
        ``"incremental"``), and the ``delta_*`` stats size the diff.

        A cache / resume / incremental path that trips over corrupt
        on-disk state (checksum mismatch, truncated payload, manifest
        inconsistency) *degrades to a cold run* instead of failing the
        request: the bad entry is discarded, a one-shot warning is
        emitted (mirroring the join backend's ``_degrade``), and
        ``degraded_to_cold`` counts every occurrence for the daemon's
        health report.  Injected crashes are never absorbed here.
        """
        graph = align_graph_labels(graph, grammar)
        grammar_crc, graph_crc = self.graph_key(grammar, graph)
        entry = self.entry_dir(grammar_crc, graph_crc)
        with self._lock:
            engine = self._engine_for(grammar, entry)
            if (entry / META_NAME).exists():
                try:
                    computation = engine.run(graph, resume=True)
                except _ENTRY_UNUSABLE as exc:
                    return self._degraded_cold(
                        grammar, graph, grammar_crc, graph_crc, entry, exc
                    )
                computation.stats.closure_source = "cache"
                return computation
            if (entry / MANIFEST_NAME).exists():
                # Interrupted cold or incremental run: resume it from the
                # committed watermark (the daemon's crash-recovery path).
                try:
                    computation = engine.run(graph, resume=True)
                except _ENTRY_UNUSABLE as exc:
                    return self._degraded_cold(
                        grammar, graph, grammar_crc, graph_crc, entry, exc
                    )
                self._save_entry(
                    entry, graph, grammar_crc, graph_crc, computation, "cold"
                )
                return computation
            plan = self._find_base(grammar_crc, graph)
            if plan is not None:
                base_dir, added_src, added_keys = plan
                try:
                    return self._incremental(
                        grammar,
                        graph,
                        grammar_crc,
                        graph_crc,
                        entry,
                        base_dir,
                        added_src,
                        added_keys,
                    )
                except _ENTRY_UNUSABLE as exc:
                    # The base entry's files (hard-linked into this one)
                    # are bad: shed the incremental plan entirely.
                    return self._degraded_cold(
                        grammar, graph, grammar_crc, graph_crc, entry, exc
                    )
            computation = engine.run(graph)
            self._save_entry(
                entry, graph, grammar_crc, graph_crc, computation, "cold"
            )
            return computation

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _degraded_cold(
        self,
        grammar: FrozenGrammar,
        graph: MemGraph,
        grammar_crc: int,
        graph_crc: int,
        entry: Path,
        exc: Exception,
    ) -> GraspanComputation:
        """Discard an unusable entry and recompute from scratch."""
        self.degraded_to_cold += 1
        if not self._warned_degraded:
            self._warned_degraded = True
            warnings.warn(
                f"closure store entry {entry.name} is unusable "
                f"({type(exc).__name__}: {exc}); degrading to a cold "
                "recompute. Further degradations in this store will not "
                "be reported individually.",
                RuntimeWarning,
                stacklevel=3,
            )
        shutil.rmtree(entry, ignore_errors=True)
        engine = self._engine_for(grammar, entry)
        computation = engine.run(graph)
        self._save_entry(
            entry, graph, grammar_crc, graph_crc, computation, "cold"
        )
        return computation

    def _engine_for(self, grammar: FrozenGrammar, entry: Path) -> GraspanEngine:
        entry.mkdir(parents=True, exist_ok=True)
        return GraspanEngine(
            grammar,
            max_edges_per_partition=self.max_edges_per_partition,
            num_partitions=self.num_partitions,
            workdir=entry,
            num_threads=self.num_threads,
            parallel_backend=self.parallel_backend,
            memory_budget=self.memory_budget,
            checkpoint=True,
            fault_injector=self.fault_injector,
            retry=self.retry,
        )

    def _find_base(
        self, grammar_crc: int, graph: MemGraph
    ) -> Optional[Tuple[Path, np.ndarray, np.ndarray]]:
        """The newest completed same-grammar entry reachable by additions.

        Skips candidates with a different vertex count (renumbering) or
        with edges the new graph lacks (deletions) — both fall back to a
        cold run, per the delta-seeding rules in DESIGN.md §14.
        """
        prefix = f"{grammar_crc:08x}-"
        candidates = [
            p
            for p in self.root.glob(prefix + "*/" + META_NAME)
            if (p.parent / INPUT_NAME).exists()
        ]
        candidates.sort(key=lambda p: p.stat().st_mtime, reverse=True)
        for meta_path in candidates:
            base_dir = meta_path.parent
            try:
                with np.load(base_dir / INPUT_NAME) as data:
                    base_src = np.asarray(data["src"], dtype=np.int64)
                    base_keys = np.asarray(data["keys"], dtype=np.int64)
                    base_vertices = int(data["num_vertices"])
            except (OSError, KeyError, ValueError):
                continue
            if base_vertices != graph.num_vertices:
                continue
            added_mask, deleted = edge_diff(
                base_src, base_keys, graph.src, graph.keys
            )
            if deleted:
                continue
            return base_dir, graph.src[added_mask], graph.keys[added_mask]
        return None

    def _incremental(
        self,
        grammar: FrozenGrammar,
        graph: MemGraph,
        grammar_crc: int,
        graph_crc: int,
        entry: Path,
        base_dir: Path,
        added_src: np.ndarray,
        added_keys: np.ndarray,
    ) -> GraspanComputation:
        """Delta re-closure: seed from ``base_dir`` and run to fixpoint."""
        engine = self._engine_for(grammar, entry)
        with open(base_dir / MANIFEST_NAME, "r", encoding="utf-8") as fh:
            base_manifest = json.load(fh)
        for slot in base_manifest["slots"]:
            target = entry / slot["file"]
            if not target.exists():
                try:
                    os.link(base_dir / slot["file"], target)
                except OSError:
                    shutil.copy2(base_dir / slot["file"], target)

        stats = EngineStats(
            original_edges=graph.num_edges, num_vertices=graph.num_vertices
        )
        stats.closure_source = "incremental"
        stats.delta_added_edges = int(len(added_src))
        stats.initial_partitions = int(base_manifest["initial_partitions"])
        stats.repartition_count = int(base_manifest["repartition_count"])

        journal = RunJournal(entry, injector=self.fault_injector)
        journal.append(
            {
                "event": "delta",
                "base": base_dir.name,
                "added_edges": int(len(added_src)),
                "base_superstep": int(base_manifest["superstep"]),
            }
        )
        journal.save_degrees(graph.out_degrees(), graph.in_degrees())
        pstore = PartitionStore(
            workdir=entry,
            timers=stats.timers,
            retry=self.retry if self.retry is not None else RetryPolicy(),
            injector=self.fault_injector,
        )
        pset = restore_partition_set(
            base_manifest, pstore, journal, memory_budget=self.memory_budget
        )
        stats.delta_seed_partitions = seed_delta_edges(
            pset, added_src, added_keys
        )

        session = ClosureSession(
            engine,
            graph,
            pset=pset,
            journal=journal,
            store=pstore,
            superstep_index=int(base_manifest["superstep"]),
            stats=stats,
            scheduler=Scheduler(),
        )
        try:
            session.open()
            computation = session.run()
        finally:
            session.close()
        self._save_entry(
            entry,
            graph,
            grammar_crc,
            graph_crc,
            computation,
            "incremental",
            base=base_dir.name,
        )
        return computation

    def _save_entry(
        self,
        entry: Path,
        graph: MemGraph,
        grammar_crc: int,
        graph_crc: int,
        computation: GraspanComputation,
        source: str,
        base: Optional[str] = None,
    ) -> None:
        """Snapshot the input and write the completion marker (last)."""
        np.savez(
            entry / INPUT_NAME,
            src=np.asarray(graph.src, dtype=np.int64),
            keys=np.asarray(graph.keys, dtype=np.int64),
            num_vertices=np.int64(graph.num_vertices),
        )
        meta = {
            "format": META_FORMAT,
            "grammar_crc": grammar_crc,
            "graph_crc": graph_crc,
            "source": source,
            "base": base,
            "supersteps": computation.stats.num_supersteps,
            "final_edges": computation.stats.final_edges,
            "delta_added_edges": computation.stats.delta_added_edges,
            "created_at": time.time(),
        }
        tmp = entry / (META_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, entry / META_NAME)
