"""The Graspan engine: out-of-core, edge-pair-centric DTC computation.

:class:`GraspanEngine` ties everything together (§4): preprocessing shards
the input graph; the scheduler picks two partitions per superstep from the
DDM deltas; each superstep runs Algorithm 1's fixed point over the loaded
edge lists; new edges are bucketed back into the DDM; oversized partitions
are split; and the run ends when every DDM delta cell is clean.  The
result object exposes the paper's reporting APIs — iterate edges with a
given label (e.g. ``objectFlow`` for a points-to solution) — plus the
statistics behind Tables 5-6 and Figure 4.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.engine.checkpoint import (
    RunJournal,
    build_manifest,
    grammar_fingerprint,
    graph_fingerprint,
    restore_partition_set,
    restore_scheduler,
    validate_manifest,
)
from repro.engine.join import CsrView
from repro.engine.parallel import BACKENDS, JoinBackend, make_backend
from repro.engine.pipeline import IoPipeline, PendingCommit
from repro.engine.scheduler import Scheduler
from repro.engine.stats import EngineStats, SuperstepRecord
from repro.engine.superstep import run_superstep
from repro.graph import packed
from repro.graph.graph import MemGraph
from repro.grammar.grammar import FrozenGrammar
from repro.partition.preprocess import preprocess
from repro.partition.pset import PartitionSet
from repro.partition.storage import PartitionStore
from repro.util.faults import FaultInjector
from repro.util.memory import MemoryBudgetExceeded
from repro.util.retry import RetryPolicy
from repro.util.timing import Stopwatch

PathLike = Union[str, Path]


class GraspanComputation:
    """The finished computation: final graph, stats, and reporting APIs."""

    def __init__(
        self, pset: PartitionSet, grammar: FrozenGrammar, stats: EngineStats
    ) -> None:
        self.pset = pset
        self.grammar = grammar
        self.stats = stats

    def load_resident(self) -> "GraspanComputation":
        """Pull every partition into memory so results outlive the workdir.

        Out-of-core runs leave the final partitions on disk; call this
        before the working directory is deleted if you want to keep
        querying the computation.  Returns self for chaining.

        Respects the set's memory budget: if the whole closure does not
        fit, :class:`~repro.util.memory.MemoryBudgetExceeded` is raised
        instead of silently blowing past the limit (the total is known
        from the slots' remembered sizes, so nothing is read first).
        Loaded partitions stay clean — they match their disk copies, so
        a later eviction pays no write-back.
        """
        budget = self.pset.memory_budget
        if budget is not None:
            total = self.pset.total_bytes()
            if total > budget:
                raise MemoryBudgetExceeded(total, budget)
        for pid in range(self.pset.num_partitions):
            self.pset.acquire(pid)
        return self

    def iter_edges_with_label(self, label: "int | str") -> Iterator[Tuple[int, int]]:
        """Deprecated: iterate ``(src, dst)`` pairs carrying ``label`` (§4.4).

        Use :meth:`edges_with_label_arrays` — the vectorized form this
        wrapper now delegates to.  Kept only so old notebooks keep
        running; emits :class:`DeprecationWarning`.
        """
        warnings.warn(
            "iter_edges_with_label is deprecated; use "
            "edges_with_label_arrays for parallel (src, dst) arrays",
            DeprecationWarning,
            stacklevel=2,
        )
        src, dst = self.edges_with_label_arrays(label)
        return iter(zip(src.tolist(), dst.tolist()))

    def edges_with_label_arrays(self, label: "int | str") -> Tuple[np.ndarray, np.ndarray]:
        """All ``(src, dst)`` pairs of edges carrying ``label``, as arrays.

        For the pointer analysis, label ``OF`` yields the points-to
        solution and ``AL`` the alias pairs.  One mask per partition over
        the flat key array — no per-vertex iteration.
        """
        if isinstance(label, str):
            label = self.grammar.label_id(label)
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        for pid in range(self.pset.num_partitions):
            was_resident = self.pset.is_resident(pid)
            partition = self.pset.acquire(pid)
            mask = packed.labels_of(partition.keys) == label
            if mask.any():
                flat_src = np.repeat(partition.vertices, partition.row_lengths())
                src_parts.append(flat_src[mask])
                dst_parts.append(packed.targets_of(partition.keys[mask]))
            if not was_resident and self.pset.memory_budget is None:
                self.pset.evict(pid)
        if not src_parts:
            return packed.EMPTY, packed.EMPTY
        return np.concatenate(src_parts), np.concatenate(dst_parts)

    def count_by_label(self) -> Dict[str, int]:
        """Edge counts per label name, via one bincount per partition."""
        totals = np.zeros(self.grammar.num_labels, dtype=np.int64)
        for pid in range(self.pset.num_partitions):
            was_resident = self.pset.is_resident(pid)
            partition = self.pset.acquire(pid)
            if partition.num_edges:
                totals += np.bincount(
                    packed.labels_of(partition.keys),
                    minlength=self.grammar.num_labels,
                )
            if not was_resident and self.pset.memory_budget is None:
                self.pset.evict(pid)
        return {
            self.grammar.label_name(i): int(n)
            for i, n in enumerate(totals)
            if n
        }

    def to_memgraph(self) -> MemGraph:
        return self.pset.to_memgraph()

    @property
    def num_edges(self) -> int:
        return self.pset.total_edges()


class GraspanEngine:
    """Configure once, run on any number of graphs.

    Parameters
    ----------
    grammar:
        The frozen analysis grammar.
    max_edges_per_partition:
        Partition size threshold; drives both the initial partition count
        and the repartitioning trigger.  Models the memory given to
        Graspan (§4.1).  ``None`` means "fit in memory": two partitions,
        no repartitioning — the paper's in-memory mode.
    workdir:
        Directory for partition files.  ``None`` keeps all partitions
        resident (only sensible with small graphs).
    num_threads:
        Workers for the parallel join (the paper used 8) — threads for
        the ``thread`` backend, processes for ``process``.
    parallel_backend:
        Which join data plane to use: ``"serial"``, ``"thread"``,
        ``"process"`` (shared-memory worker pool, the only one that
        escapes the GIL), or ``"matmul"`` (per-label boolean sparse
        matrix products, DESIGN.md §11 — the fastest superstep compute
        on dense closures).  ``None`` auto-selects from ``num_threads``:
        ``thread`` when ``num_threads > 1``, else ``serial``.  The pool
        is created once per :meth:`run` and reused across supersteps;
        ``process`` falls back to ``thread`` when shared memory is
        unavailable and ``matmul`` falls back to ``serial`` when scipy
        is not installed.  Every backend produces the byte-identical
        closure.
    memory_budget:
        Resident-partition byte budget (requires ``workdir``).  The
        loaded superstep pair is pinned; everything else is evicted
        least-recently-used whenever the total resident CSR bytes would
        exceed the budget, so peak residency never overshoots by more
        than one partition.  ``None`` (the default) keeps the historical
        policy: evict everything except the loaded pair each superstep.
    checkpoint:
        Write a superstep-granular run journal + manifest so a crashed
        run can continue via ``run(graph, resume=True)`` (DESIGN.md §9).
        ``None`` (the default) auto-enables checkpointing whenever a
        ``workdir`` is set; ``True`` requires one; ``False`` disables it.
    pipeline:
        Overlap disk I/O with compute (DESIGN.md §10): a background I/O
        thread speculatively prefetches the scheduler's predicted next
        pair while the current superstep computes, and dirty partitions
        are flushed asynchronously with the checkpoint commit lagging
        one superstep (the flush → commit → purge ordering is
        preserved, so crash/resume semantics are unchanged).  ``None``
        (the default) auto-enables the pipeline whenever a ``workdir``
        is set; ``True`` requires one; ``False`` forces the sequential
        load/compute/flush loop.  The closure is byte-identical either
        way — only the wall-clock interleaving changes.
    fault_injector:
        A :class:`repro.util.faults.FaultInjector` threaded through the
        partition store, the run journal, and the process join backend —
        the deterministic crash/corruption test hook.  ``None`` in
        production.
    retry:
        :class:`repro.util.retry.RetryPolicy` for transient store I/O
        errors; defaults to 3 attempts with exponential backoff.
    """

    def __init__(
        self,
        grammar: FrozenGrammar,
        max_edges_per_partition: Optional[int] = None,
        num_partitions: Optional[int] = None,
        workdir: Optional[PathLike] = None,
        num_threads: int = 1,
        scheduler: Optional[Scheduler] = None,
        max_supersteps: int = 1_000_000,
        repartition_growth: float = 2.0,
        parallel_backend: Optional[str] = None,
        memory_budget: Optional[int] = None,
        checkpoint: Optional[bool] = None,
        pipeline: Optional[bool] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if parallel_backend is not None and parallel_backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel_backend {parallel_backend!r}; "
                f"choose from {BACKENDS}"
            )
        if memory_budget is not None:
            if memory_budget <= 0:
                raise ValueError("memory_budget must be positive")
            if workdir is None:
                raise ValueError(
                    "memory_budget requires a workdir: without disk backing "
                    "there is nowhere to evict partitions to"
                )
        if checkpoint and workdir is None:
            raise ValueError(
                "checkpoint requires a workdir: the journal and manifest "
                "live in the partition store directory"
            )
        if pipeline and workdir is None:
            raise ValueError(
                "pipeline requires a workdir: without disk backing there "
                "is no I/O to overlap with compute"
            )
        self.grammar = grammar
        self.max_edges_per_partition = max_edges_per_partition
        self.num_partitions = num_partitions
        self.workdir = workdir
        self.num_threads = num_threads
        self.parallel_backend = parallel_backend
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.max_supersteps = max_supersteps
        self.repartition_growth = repartition_growth
        self.memory_budget = memory_budget
        self.checkpoint = checkpoint
        self.pipeline = pipeline
        self.fault_injector = fault_injector
        self.retry = retry

    # ------------------------------------------------------------------
    def run(self, graph: MemGraph, resume: bool = False) -> GraspanComputation:
        """Compute the grammar-guided transitive closure of ``graph``.

        With ``resume`` (and checkpointing on), a manifest left in the
        workdir by an interrupted run restarts the computation from its
        completed-superstep watermark instead of from scratch; the final
        closure is byte-identical to an uninterrupted run's because the
        superstep fixpoint is confluent.  Fingerprint mismatches (other
        grammar, other graph) raise
        :class:`~repro.engine.checkpoint.CheckpointError`; a missing
        manifest silently falls back to a fresh run.
        """
        if graph.num_vertices == 0 or graph.num_edges == 0:
            return self._empty_computation(graph)
        graph = align_graph_labels(graph, self.grammar)
        stats = EngineStats(
            original_edges=graph.num_edges, num_vertices=graph.num_vertices
        )
        store = None
        if self.workdir is not None:
            store = PartitionStore(
                workdir=self.workdir,
                timers=stats.timers,
                retry=self.retry if self.retry is not None else RetryPolicy(),
                injector=self.fault_injector,
            )
            stats.tmp_scrubbed = store.tmp_scrubbed
        checkpoint_on = self.workdir is not None and self.checkpoint is not False
        journal = None
        grammar_crc = graph_crc = 0
        if checkpoint_on:
            journal = RunJournal(self.workdir, injector=self.fault_injector)
            grammar_crc = grammar_fingerprint(self.grammar)
            graph_crc = graph_fingerprint(graph)
        manifest = journal.load_manifest() if (resume and journal) else None

        superstep_index = 0
        if manifest is not None:
            validate_manifest(manifest, grammar_crc, graph_crc)
            pset = restore_partition_set(
                manifest, store, journal, memory_budget=self.memory_budget
            )
            restore_scheduler(self.scheduler, manifest.get("scheduler", {}))
            superstep_index = int(manifest["superstep"])
            stats.resumed_from_superstep = superstep_index
            stats.initial_partitions = int(manifest["initial_partitions"])
            stats.repartition_count = int(manifest["repartition_count"])
            journal.append({"event": "resume", "superstep": superstep_index})
        else:
            pset = preprocess(
                graph,
                max_edges_per_partition=self.max_edges_per_partition,
                num_partitions=self.num_partitions,
                workdir=self.workdir,
                timers=stats.timers,
                memory_budget=self.memory_budget,
                store=store,
            )
            stats.initial_partitions = pset.num_partitions
            if journal is not None:
                journal.append(
                    {
                        "event": "begin",
                        "grammar_crc": grammar_crc,
                        "graph_crc": graph_crc,
                        "partitions": pset.num_partitions,
                        "edges": graph.num_edges,
                    }
                )
                journal.save_degrees(pset.out_degrees, pset.in_degrees)
        stats.memory_budget = pset.memory_budget
        stats.checkpoint_enabled = journal is not None
        if journal is not None:
            pset.defer_deletes = True
            if manifest is None:
                # Checkpoint 0: the preprocessed state, so a crash inside
                # the very first superstep already has a resume point.
                self._commit_checkpoint(
                    journal, pset, superstep_index, grammar_crc, graph_crc, stats
                )

        mid_limit = self.mid_superstep_limit()
        pipeline_on = (
            self.workdir is not None and pset.store.disk_backed
            if self.pipeline is None
            else bool(self.pipeline)
        )
        io = IoPipeline() if pipeline_on else None
        stats.pipeline_enabled = io is not None
        if io is not None:
            pset.attach_io(io)

        # The backend (and its worker pool / shared segments) lives for
        # the whole run; the context manager guarantees shutdown even if
        # a superstep raises.
        try:
            with make_backend(
                self.parallel_backend, self.grammar, self.num_threads
            ) as backend:
                backend.injector = self.fault_injector
                pending: Optional[PendingCommit] = None
                try:
                    while True:
                        pair = self.scheduler.choose_pair(
                            pset.ddm, pset.scheduling_resident_pids()
                        )
                        if io is not None:
                            pset.reconcile_prefetch(pair if pair else ())
                        if pair is None:
                            break
                        if len(stats.supersteps) >= self.max_supersteps:
                            raise RuntimeError(
                                f"exceeded max_supersteps="
                                f"{self.max_supersteps}; the computation "
                                "may be diverging"
                            )
                        before = io.snapshot() if io is not None else None
                        self._run_one_superstep(
                            pset, pair, mid_limit, stats, backend, io
                        )
                        superstep_index += 1
                        if journal is not None:
                            if io is None:
                                self._commit_checkpoint(
                                    journal,
                                    pset,
                                    superstep_index,
                                    grammar_crc,
                                    graph_crc,
                                    stats,
                                )
                            else:
                                # Lagged commit: make the *previous*
                                # superstep durable (its flushes have had
                                # a whole superstep to complete in the
                                # background), then queue this one.
                                self._drain_commit(journal, pset, pending, io, stats)
                                pending = self._begin_commit(
                                    journal,
                                    pset,
                                    superstep_index,
                                    grammar_crc,
                                    graph_crc,
                                    stats,
                                    io,
                                )
                        if before is not None:
                            self._record_pipeline_delta(stats, before, io)
                    if journal is not None and io is not None:
                        self._drain_commit(journal, pset, pending, io, stats)
                        pending = None
                finally:
                    stats.worker_respawns = getattr(backend, "worker_respawns", 0)
                    stats.backend_degraded = bool(
                        getattr(backend, "_degraded", False)
                    )
        finally:
            if io is not None:
                snap = io.snapshot()
                stats.prefetch_issued = int(snap["prefetch_issued"])
                stats.prefetch_hits = int(snap["prefetch_hits"])
                stats.prefetch_wasted = int(snap["prefetch_wasted"])
                stats.load_wait_seconds = snap["load_wait_seconds"]
                stats.flush_wait_seconds = snap["flush_wait_seconds"]
                stats.io_busy_seconds = snap["busy_seconds"]
                stats.io_hidden_seconds = io.hidden_seconds
                stats.overlap_fraction = io.overlap_fraction
                pset.detach_io()
                io.close()

        if pset.store.disk_backed:
            pset.evict_all_except(())
            pset.store.purge_retired()
        stats.final_edges = pset.total_edges()
        stats.final_partitions = pset.num_partitions
        if journal is not None:
            journal.append(
                {
                    "event": "finish",
                    "superstep": superstep_index,
                    "final_edges": stats.final_edges,
                }
            )
        self._snapshot_residency(pset, stats)
        return GraspanComputation(pset, self.grammar, stats)

    def _commit_checkpoint(
        self,
        journal: RunJournal,
        pset: PartitionSet,
        superstep_index: int,
        grammar_crc: int,
        graph_crc: int,
        stats: EngineStats,
    ) -> None:
        """Durably commit the current state as superstep ``superstep_index``.

        Ordering is the whole point: flush dirty partitions (fsync'd),
        *then* atomically replace the manifest (the commit point), *then*
        purge files the previous manifest referenced.  A crash anywhere
        in between resumes cleanly from one side of the commit or the
        other.
        """
        with stats.timers.phase("checkpoint"):
            pset.flush_dirty()
            journal.commit(
                build_manifest(
                    pset,
                    superstep_index,
                    grammar_crc,
                    graph_crc,
                    self.scheduler,
                    original_edges=stats.original_edges,
                    initial_partitions=stats.initial_partitions,
                    repartition_count=stats.repartition_count,
                )
            )
            pset.store.purge_retired()
        stats.checkpoints_written += 1

    def _begin_commit(
        self,
        journal: RunJournal,
        pset: PartitionSet,
        superstep_index: int,
        grammar_crc: int,
        graph_crc: int,
        stats: EngineStats,
        io: IoPipeline,
    ) -> PendingCommit:
        """Queue superstep ``superstep_index``'s checkpoint on the pipeline.

        The dirty partitions are snapshotted and their writes handed to
        the I/O thread (:meth:`PartitionSet.begin_flush` pre-allocates
        the destination paths, so the manifest can be built immediately);
        the manifest itself stays in memory until :meth:`_drain_commit`.
        The retire mark is taken *after* the flush retires superseded
        files: everything retired up to here is unreferenced by this
        manifest and may be purged once it commits.
        """
        with stats.timers.phase("checkpoint"):
            flushes = pset.begin_flush()
            manifest = build_manifest(
                pset,
                superstep_index,
                grammar_crc,
                graph_crc,
                self.scheduler,
                original_edges=stats.original_edges,
                initial_partitions=stats.initial_partitions,
                repartition_count=stats.repartition_count,
            )
            mark = pset.store.retire_mark()
        return PendingCommit(
            superstep=superstep_index,
            manifest=manifest,
            flushes=flushes,
            retire_upto=mark,
        )

    def _drain_commit(
        self,
        journal: RunJournal,
        pset: PartitionSet,
        pending: Optional[PendingCommit],
        io: IoPipeline,
        stats: EngineStats,
    ) -> None:
        """Make a queued checkpoint durable: wait flushes, commit, purge.

        This is PR 4's ordering verbatim, one superstep later: every
        partition file the manifest references is fully written and
        fsync'd *before* the manifest atomically replaces its
        predecessor, and files only the predecessor referenced are
        purged *after*.  A crash in an async flush surfaces here (the
        future re-raises), before the manifest could commit — exactly
        where the synchronous path would have crashed.
        """
        if pending is None:
            return
        with stats.timers.phase("checkpoint"):
            for future in pending.flushes:
                io.wait_flush(future)
            journal.commit(pending.manifest)
            pset.store.purge_retired(upto=pending.retire_upto)
        stats.checkpoints_written += 1

    @staticmethod
    def _record_pipeline_delta(
        stats: EngineStats, before: Dict[str, float], io: IoPipeline
    ) -> None:
        """Stamp the just-finished superstep's record with pipeline deltas."""
        after = io.snapshot()
        record = stats.supersteps[-1]
        record.prefetch_issued = int(after["prefetch_issued"] - before["prefetch_issued"])
        record.prefetch_hits = int(after["prefetch_hits"] - before["prefetch_hits"])
        record.prefetch_wasted = int(after["prefetch_wasted"] - before["prefetch_wasted"])
        record.load_wait_seconds = after["load_wait_seconds"] - before["load_wait_seconds"]
        record.flush_wait_seconds = (
            after["flush_wait_seconds"] - before["flush_wait_seconds"]
        )

    @staticmethod
    def _snapshot_residency(pset: PartitionSet, stats: EngineStats) -> None:
        """Copy residency/storage counters into the run's stats."""
        residency = pset.residency
        stats.peak_resident_bytes = residency.peak_resident_bytes
        stats.max_partition_bytes = residency.max_partition_bytes
        stats.evictions = residency.evictions
        stats.cache_hits = residency.cache_hits
        stats.partition_loads = residency.loads
        stats.bytes_read = pset.store.bytes_read
        stats.bytes_written = pset.store.bytes_written
        stats.io_retries = pset.store.io_retries
        stats.tmp_scrubbed = max(stats.tmp_scrubbed, pset.store.tmp_scrubbed)
        stats.files_purged = pset.store.files_purged

    def mid_superstep_limit(self) -> int:
        """The resident-edge budget that triggers a mid-superstep bail-out.

        Two partitions are loaded at once, each allowed to grow by
        ``repartition_growth`` before splitting — so the budget is
        exactly ``2 * max_edges_per_partition * growth``.  (A historical
        bug doubled this again, silently quadrupling the documented
        budget and delaying the §4.3 bail-out.)  0 disables the check.
        """
        if self.max_edges_per_partition is None:
            return 0
        return int(
            2 * self.max_edges_per_partition * max(self.repartition_growth, 1.0)
        )

    def _empty_computation(self, graph: MemGraph) -> GraspanComputation:
        """A trivial result for graphs with nothing to compute."""
        from repro.partition.ddm import DestinationDistributionMap
        from repro.partition.interval import VertexIntervalTable
        from repro.partition.partition import Partition
        from repro.partition.storage import PartitionStore

        vit = VertexIntervalTable.single(max(1, graph.num_vertices))
        pset = PartitionSet(
            vit,
            DestinationDistributionMap(np.zeros((1, 1), dtype=np.int64)),
            [Partition(vit.interval(0), {})],
            PartitionStore(),
            label_names=self.grammar.names,
        )
        stats = EngineStats(num_vertices=graph.num_vertices)
        stats.initial_partitions = stats.final_partitions = 1
        return GraspanComputation(pset, self.grammar, stats)

    # ------------------------------------------------------------------
    def _run_one_superstep(
        self,
        pset: PartitionSet,
        pair: Tuple[int, int],
        mid_limit: int,
        stats: EngineStats,
        backend: JoinBackend,
        io: Optional[IoPipeline] = None,
    ) -> None:
        p, q = min(pair), max(pair)
        loaded = (p,) if p == q else (p, q)
        with pset.pinned(*loaded):
            if pset.memory_budget is None:
                # Historical policy: delayed write-back, only partitions
                # not needed next are evicted.
                pset.evict_all_except(loaded)
            parts = [pset.acquire(pid) for pid in loaded]

            # Speculative prefetch: predict the pair that runs after this
            # one and start loading its non-resident members on the I/O
            # thread while the join below computes.  The prediction can't
            # see the edges this superstep will add, so it is fallible —
            # mispredictions are reconciled (cancelled/evicted) before the
            # next superstep loads.
            peek = getattr(self.scheduler, "peek_pair", None)
            if io is not None and peek is not None:
                predicted = peek(
                    pset.ddm,
                    pset.scheduling_resident_pids(),
                    assume_synced=loaded,
                )
                if predicted is not None:
                    for pid in dict.fromkeys(predicted):
                        if pid not in loaded and not pset.is_resident(pid):
                            pset.prefetch(pid)

            # Combine the loaded CSRs by concatenation: p < q, so their
            # vertex ranges are disjoint and already ordered.
            combined = self._combine_views(parts)

            watch = Stopwatch().start()
            with stats.timers.phase("compute"):
                result = run_superstep(
                    combined,
                    self.grammar,
                    memory_limit_edges=mid_limit,
                    num_threads=self.num_threads,
                    backend=backend,
                )
            seconds = watch.stop()

            # Scatter the merged flat edge set back into the loaded
            # partitions: one searchsorted cut per interval, rows are
            # zero-copy slices of the result keys.
            for pid, part in zip(loaded, parts):
                lo = int(np.searchsorted(result.src, part.interval.lo, side="left"))
                hi = int(np.searchsorted(result.src, part.interval.hi, side="right"))
                view = CsrView.from_flat(result.src[lo:hi], result.keys[lo:hi])
                part.replace_csr(view.vertices, view.indptr, view.keys)
                pset.note_mutated(pid)
                # Rows of resident partitions are cheap to recompute exactly,
                # correcting any proportional approximations from past splits.
                pset.ddm.set_exact_row(pid, part.destination_counts(pset.vit))

            self._record_added_edges(pset, result.added_src, result.added_keys)
            if result.completed:
                pset.ddm.mark_synced(loaded)

            resident_edges = sum(pset.edge_count(pid) for pid in loaded)
            stats.peak_resident_edges = max(
                stats.peak_resident_edges, resident_edges
            )

            self._maybe_repartition(pset, loaded, stats)
        # Growth during the superstep may have pushed the resident total
        # over the budget; settle it now that nothing is pinned.
        pset.enforce_budget()

        telemetry = result.telemetry
        stats.supersteps.append(
            SuperstepRecord(
                pair=(p, q),
                iterations=result.iterations,
                edges_added=result.edges_added,
                seconds=seconds,
                completed=result.completed,
                num_partitions_after=pset.num_partitions,
                backend=telemetry.backend if telemetry else "serial",
                chunk_count=telemetry.chunk_count if telemetry else 0,
                chunk_balance=telemetry.chunk_balance if telemetry else 1.0,
                pool_seconds=telemetry.pool_seconds if telemetry else 0.0,
                serial_estimate_seconds=(
                    telemetry.serial_estimate_seconds if telemetry else 0.0
                ),
                worker_respawns=telemetry.worker_respawns if telemetry else 0,
                backend_degraded=(
                    telemetry.backend_degraded if telemetry else False
                ),
                matmul_blocks_built=(
                    telemetry.matmul_blocks_built if telemetry else 0
                ),
                matmul_blocks_reused=(
                    telemetry.matmul_blocks_reused if telemetry else 0
                ),
                matmul_products=telemetry.matmul_products if telemetry else 0,
                matmul_nnz=telemetry.matmul_nnz if telemetry else 0,
            )
        )

    @staticmethod
    def _combine_views(parts: List) -> CsrView:
        """Concatenate loaded partitions' CSRs into one join-ready view.

        The partitions arrive in ascending interval order with disjoint
        vertex ranges, so concatenation (with the right half's ``indptr``
        rebased) *is* the merge — no sort, no dict.
        """
        if len(parts) == 1:
            return CsrView(*parts[0].csr())
        vertices = np.concatenate([part.vertices for part in parts])
        keys = np.concatenate([part.keys for part in parts])
        indptr_parts = [parts[0].indptr]
        offset = int(parts[0].indptr[-1])
        for part in parts[1:]:
            indptr_parts.append(part.indptr[1:] + offset)
            offset += int(part.indptr[-1])
        return CsrView(vertices, np.concatenate(indptr_parts), keys)

    def _record_added_edges(
        self, pset: PartitionSet, added_src: np.ndarray, added_keys: np.ndarray
    ) -> None:
        """Bucket new edges into DDM cells by (source, target) interval.

        The interval-low array is cached on the set (splits invalidate
        it) and the bucketed cells land in the DDM through one bulk
        scatter-add instead of a per-cell Python loop.
        """
        if len(added_src) == 0:
            return
        lows = pset.interval_lows()
        src_pid = np.searchsorted(lows, added_src, side="right") - 1
        dst_pid = (
            np.searchsorted(lows, packed.targets_of(added_keys), side="right") - 1
        )
        n = pset.vit.num_partitions
        cells, counts = np.unique(src_pid * n + dst_pid, return_counts=True)
        pset.ddm.record_new_edges_bulk(cells, counts)

    def _maybe_repartition(
        self, pset: PartitionSet, loaded: Tuple[int, ...], stats: EngineStats
    ) -> None:
        """Split loaded partitions that outgrew the size threshold (§4.3)."""
        if self.max_edges_per_partition is None:
            return
        threshold = int(self.max_edges_per_partition * self.repartition_growth)
        # Split high ids first so earlier ids stay valid through id shifts.
        for pid in sorted(loaded, reverse=True):
            while (
                pset.edge_count(pid) > threshold
                and len(pset.vit.interval(pid)) > 1
            ):
                pset.split(pid)
                stats.repartition_count += 1


def align_graph_labels(graph: MemGraph, grammar: FrozenGrammar) -> MemGraph:
    """Remap a graph's label ids to the grammar's interning.

    The frontend and the grammar intern labels independently; edges are
    matched by *name*.  Raises if the graph uses a label the grammar does
    not know.
    """
    if tuple(graph.label_names) == tuple(grammar.names):
        return graph
    if not graph.label_names:
        raise ValueError("graph has no label names; cannot align with grammar")
    mapping = np.zeros(len(graph.label_names), dtype=np.int64)
    for i, name in enumerate(graph.label_names):
        mapping[i] = grammar.label_id(name)  # raises GrammarError if unknown
    labels = mapping[packed.labels_of(graph.keys)]
    return MemGraph.from_arrays(
        graph.src,
        packed.targets_of(graph.keys),
        labels,
        num_vertices=graph.num_vertices,
        label_names=grammar.names,
    )
