"""The Graspan engine: out-of-core, edge-pair-centric DTC computation.

:class:`GraspanEngine` is the *configuration* layer (§4): grammar,
partition sizing, residency budget, backend and durability policy.  The
run machinery itself — ingest, the superstep loop, checkpoint/pipeline
wiring, lifecycle — lives in :class:`repro.engine.session.ClosureSession`
(DESIGN.md §14); :meth:`GraspanEngine.run` is a thin one-shot wrapper
that opens a session, drives it to the fixed point, and closes it.  The
result object exposes the paper's reporting APIs — iterate edges with a
given label (e.g. ``objectFlow`` for a points-to solution) — plus the
statistics behind Tables 5-6 and Figure 4.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.engine.parallel import BACKENDS
from repro.engine.scheduler import Scheduler
from repro.engine.stats import EngineStats
from repro.graph import packed
from repro.graph.graph import MemGraph
from repro.grammar.grammar import FrozenGrammar
from repro.partition.pset import PartitionSet
from repro.util.faults import FaultInjector
from repro.util.memory import MemoryBudgetExceeded
from repro.util.retry import RetryPolicy

PathLike = Union[str, Path]


class GraspanComputation:
    """The finished computation: final graph, stats, and reporting APIs."""

    def __init__(
        self, pset: PartitionSet, grammar: FrozenGrammar, stats: EngineStats
    ) -> None:
        self.pset = pset
        self.grammar = grammar
        self.stats = stats

    def load_resident(self) -> "GraspanComputation":
        """Pull every partition into memory so results outlive the workdir.

        Out-of-core runs leave the final partitions on disk; call this
        before the working directory is deleted if you want to keep
        querying the computation.  Returns self for chaining.

        Respects the set's memory budget: if the whole closure does not
        fit, :class:`~repro.util.memory.MemoryBudgetExceeded` is raised
        instead of silently blowing past the limit (the total is known
        from the slots' remembered sizes, so nothing is read first).
        Loaded partitions stay clean — they match their disk copies, so
        a later eviction pays no write-back.
        """
        budget = self.pset.memory_budget
        if budget is not None:
            total = self.pset.total_bytes()
            if total > budget:
                raise MemoryBudgetExceeded(total, budget)
        for pid in range(self.pset.num_partitions):
            self.pset.acquire(pid)
        return self

    def iter_edges_with_label(self, label: "int | str") -> Iterator[Tuple[int, int]]:
        """Deprecated: iterate ``(src, dst)`` pairs carrying ``label`` (§4.4).

        Use :meth:`edges_with_label_arrays` — the vectorized form this
        wrapper now delegates to.  Kept only so old notebooks keep
        running; emits :class:`DeprecationWarning`.
        """
        warnings.warn(
            "iter_edges_with_label is deprecated; use "
            "edges_with_label_arrays for parallel (src, dst) arrays",
            DeprecationWarning,
            stacklevel=2,
        )
        src, dst = self.edges_with_label_arrays(label)
        return iter(zip(src.tolist(), dst.tolist()))

    def edges_with_label_arrays(self, label: "int | str") -> Tuple[np.ndarray, np.ndarray]:
        """All ``(src, dst)`` pairs of edges carrying ``label``, as arrays.

        For the pointer analysis, label ``OF`` yields the points-to
        solution and ``AL`` the alias pairs.  One mask per partition over
        the flat key array — no per-vertex iteration.
        """
        if isinstance(label, str):
            label = self.grammar.label_id(label)
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        for pid in range(self.pset.num_partitions):
            was_resident = self.pset.is_resident(pid)
            partition = self.pset.acquire(pid)
            mask = packed.labels_of(partition.keys) == label
            if mask.any():
                flat_src = np.repeat(partition.vertices, partition.row_lengths())
                src_parts.append(flat_src[mask])
                dst_parts.append(packed.targets_of(partition.keys[mask]))
            if not was_resident and self.pset.memory_budget is None:
                self.pset.evict(pid)
        if not src_parts:
            return packed.EMPTY, packed.EMPTY
        return np.concatenate(src_parts), np.concatenate(dst_parts)

    def count_by_label(self) -> Dict[str, int]:
        """Edge counts per label name, via one bincount per partition."""
        totals = np.zeros(self.grammar.num_labels, dtype=np.int64)
        for pid in range(self.pset.num_partitions):
            was_resident = self.pset.is_resident(pid)
            partition = self.pset.acquire(pid)
            if partition.num_edges:
                totals += np.bincount(
                    packed.labels_of(partition.keys),
                    minlength=self.grammar.num_labels,
                )
            if not was_resident and self.pset.memory_budget is None:
                self.pset.evict(pid)
        return {
            self.grammar.label_name(i): int(n)
            for i, n in enumerate(totals)
            if n
        }

    def to_memgraph(self) -> MemGraph:
        return self.pset.to_memgraph()

    @property
    def num_edges(self) -> int:
        return self.pset.total_edges()


class GraspanEngine:
    """Configure once, run on any number of graphs.

    Parameters
    ----------
    grammar:
        The frozen analysis grammar.
    max_edges_per_partition:
        Partition size threshold; drives both the initial partition count
        and the repartitioning trigger.  Models the memory given to
        Graspan (§4.1).  ``None`` means "fit in memory": two partitions,
        no repartitioning — the paper's in-memory mode.
    workdir:
        Directory for partition files.  ``None`` keeps all partitions
        resident (only sensible with small graphs).
    num_threads:
        Workers for the parallel join (the paper used 8) — threads for
        the ``thread`` backend, processes for ``process``.
    parallel_backend:
        Which join data plane to use: ``"serial"``, ``"thread"``,
        ``"process"`` (shared-memory worker pool, the only one that
        escapes the GIL), or ``"matmul"`` (per-label boolean sparse
        matrix products, DESIGN.md §11 — the fastest superstep compute
        on dense closures).  ``None`` auto-selects from ``num_threads``:
        ``thread`` when ``num_threads > 1``, else ``serial``.  The pool
        is created once per :meth:`run` and reused across supersteps;
        ``process`` falls back to ``thread`` when shared memory is
        unavailable and ``matmul`` falls back to ``serial`` when scipy
        is not installed.  ``"distributed"`` (DESIGN.md §16) fans the
        pair schedule out over ``num_threads`` coordinator-leased worker
        threads sharing only the workdir's partition files — it requires
        a ``workdir``.  Every backend produces the byte-identical
        closure.
    memory_budget:
        Resident-partition byte budget (requires ``workdir``).  The
        loaded superstep pair is pinned; everything else is evicted
        least-recently-used whenever the total resident CSR bytes would
        exceed the budget, so peak residency never overshoots by more
        than one partition.  ``None`` (the default) keeps the historical
        policy: evict everything except the loaded pair each superstep.
    checkpoint:
        Write a superstep-granular run journal + manifest so a crashed
        run can continue via ``run(graph, resume=True)`` (DESIGN.md §9).
        ``None`` (the default) auto-enables checkpointing whenever a
        ``workdir`` is set; ``True`` requires one; ``False`` disables it.
    pipeline:
        Overlap disk I/O with compute (DESIGN.md §10): a background I/O
        thread speculatively prefetches the scheduler's predicted next
        pair while the current superstep computes, and dirty partitions
        are flushed asynchronously with the checkpoint commit lagging
        one superstep (the flush → commit → purge ordering is
        preserved, so crash/resume semantics are unchanged).  ``None``
        (the default) auto-enables the pipeline whenever a ``workdir``
        is set; ``True`` requires one; ``False`` forces the sequential
        load/compute/flush loop.  The closure is byte-identical either
        way — only the wall-clock interleaving changes.
    fault_injector:
        A :class:`repro.util.faults.FaultInjector` threaded through the
        partition store, the run journal, and the process join backend —
        the deterministic crash/corruption test hook.  ``None`` in
        production.
    retry:
        :class:`repro.util.retry.RetryPolicy` for transient store I/O
        errors; defaults to 3 attempts with exponential backoff.
    distributed:
        Options for the ``"distributed"`` backend (ignored otherwise):
        ``workers`` (lease-worker count, default ``num_threads``),
        ``lease_timeout`` (seconds before an unrenewed lease is
        reissued, default 30), ``max_inflight`` (cap on concurrent
        leases), ``worker_backend``/``worker_threads`` (the join
        backend each worker runs locally), and
        ``worker_memory_budget`` (per-worker residency budget in
        bytes, default the engine's ``memory_budget``).
    """

    def __init__(
        self,
        grammar: FrozenGrammar,
        max_edges_per_partition: Optional[int] = None,
        num_partitions: Optional[int] = None,
        workdir: Optional[PathLike] = None,
        num_threads: int = 1,
        scheduler: Optional[Scheduler] = None,
        max_supersteps: int = 1_000_000,
        repartition_growth: float = 2.0,
        parallel_backend: Optional[str] = None,
        memory_budget: Optional[int] = None,
        checkpoint: Optional[bool] = None,
        pipeline: Optional[bool] = None,
        fault_injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        distributed: Optional[Dict[str, object]] = None,
    ) -> None:
        if parallel_backend is not None and parallel_backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel_backend {parallel_backend!r}; "
                f"choose from {BACKENDS}"
            )
        if parallel_backend == "distributed" and workdir is None:
            raise ValueError(
                "the distributed backend requires a workdir: coordinator "
                "and workers share nothing but the partition files in it"
            )
        if memory_budget is not None:
            if memory_budget <= 0:
                raise ValueError("memory_budget must be positive")
            if workdir is None:
                raise ValueError(
                    "memory_budget requires a workdir: without disk backing "
                    "there is nowhere to evict partitions to"
                )
        if checkpoint and workdir is None:
            raise ValueError(
                "checkpoint requires a workdir: the journal and manifest "
                "live in the partition store directory"
            )
        if pipeline and workdir is None:
            raise ValueError(
                "pipeline requires a workdir: without disk backing there "
                "is no I/O to overlap with compute"
            )
        self.grammar = grammar
        self.max_edges_per_partition = max_edges_per_partition
        self.num_partitions = num_partitions
        self.workdir = workdir
        self.num_threads = num_threads
        self.parallel_backend = parallel_backend
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.max_supersteps = max_supersteps
        self.repartition_growth = repartition_growth
        self.memory_budget = memory_budget
        self.checkpoint = checkpoint
        self.pipeline = pipeline
        self.fault_injector = fault_injector
        self.retry = retry
        self.distributed = dict(distributed) if distributed else {}

    # ------------------------------------------------------------------
    def session(self, graph: MemGraph, resume: bool = False, **kwargs):
        """A new :class:`~repro.engine.session.ClosureSession` over ``graph``.

        The engine object carries only configuration and may back any
        number of concurrent sessions; pass ``scheduler=Scheduler()`` in
        ``kwargs`` when sessions run concurrently so each gets private
        scheduling state.
        """
        from repro.engine.session import ClosureSession

        return ClosureSession(self, graph, resume=resume, **kwargs)

    def run(self, graph: MemGraph, resume: bool = False) -> GraspanComputation:
        """Compute the grammar-guided transitive closure of ``graph``.

        One-shot convenience over the session lifecycle: open a
        :class:`~repro.engine.session.ClosureSession`, drive it to the
        fixed point, close it, return the finished computation.

        With ``resume`` (and checkpointing on), a manifest left in the
        workdir by an interrupted run restarts the computation from its
        completed-superstep watermark instead of from scratch; the final
        closure is byte-identical to an uninterrupted run's because the
        superstep fixpoint is confluent.  Fingerprint mismatches (other
        grammar, other graph) raise
        :class:`~repro.engine.checkpoint.CheckpointError`; a missing
        manifest silently falls back to a fresh run.
        """
        session = self.session(graph, resume=resume)
        try:
            session.open()
            return session.run()
        finally:
            session.close()

    def mid_superstep_limit(self) -> int:
        """The resident-edge budget that triggers a mid-superstep bail-out.

        Two partitions are loaded at once, each allowed to grow by
        ``repartition_growth`` before splitting — so the budget is
        exactly ``2 * max_edges_per_partition * growth``.  (A historical
        bug doubled this again, silently quadrupling the documented
        budget and delaying the §4.3 bail-out.)  0 disables the check.
        """
        if self.max_edges_per_partition is None:
            return 0
        return int(
            2 * self.max_edges_per_partition * max(self.repartition_growth, 1.0)
        )


def align_graph_labels(graph: MemGraph, grammar: FrozenGrammar) -> MemGraph:
    """Remap a graph's label ids to the grammar's interning.

    The frontend and the grammar intern labels independently; edges are
    matched by *name*.  Raises if the graph uses a label the grammar does
    not know.
    """
    if tuple(graph.label_names) == tuple(grammar.names):
        return graph
    if not graph.label_names:
        raise ValueError("graph has no label names; cannot align with grammar")
    mapping = np.zeros(len(graph.label_names), dtype=np.int64)
    for i, name in enumerate(graph.label_names):
        mapping[i] = grammar.label_id(name)  # raises GrammarError if unknown
    labels = mapping[packed.labels_of(graph.keys)]
    return MemGraph.from_arrays(
        graph.src,
        packed.targets_of(graph.keys),
        labels,
        num_vertices=graph.num_vertices,
        label_names=grammar.names,
    )
