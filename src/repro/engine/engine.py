"""The Graspan engine: out-of-core, edge-pair-centric DTC computation.

:class:`GraspanEngine` ties everything together (§4): preprocessing shards
the input graph; the scheduler picks two partitions per superstep from the
DDM deltas; each superstep runs Algorithm 1's fixed point over the loaded
edge lists; new edges are bucketed back into the DDM; oversized partitions
are split; and the run ends when every DDM delta cell is clean.  The
result object exposes the paper's reporting APIs — iterate edges with a
given label (e.g. ``objectFlow`` for a points-to solution) — plus the
statistics behind Tables 5-6 and Figure 4.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.engine.parallel import BACKENDS, JoinBackend, make_backend
from repro.engine.scheduler import Scheduler
from repro.engine.stats import EngineStats, SuperstepRecord
from repro.engine.superstep import run_superstep
from repro.graph import packed
from repro.graph.graph import MemGraph
from repro.grammar.grammar import FrozenGrammar
from repro.partition.preprocess import preprocess
from repro.partition.pset import PartitionSet
from repro.util.timing import Stopwatch

PathLike = Union[str, Path]


class GraspanComputation:
    """The finished computation: final graph, stats, and reporting APIs."""

    def __init__(
        self, pset: PartitionSet, grammar: FrozenGrammar, stats: EngineStats
    ) -> None:
        self.pset = pset
        self.grammar = grammar
        self.stats = stats

    def load_resident(self) -> "GraspanComputation":
        """Pull every partition into memory so results outlive the workdir.

        Out-of-core runs leave the final partitions on disk; call this
        before the working directory is deleted if you want to keep
        querying the computation.  Returns self for chaining.
        """
        for pid in range(self.pset.num_partitions):
            self.pset.acquire(pid)
        return self

    def iter_edges_with_label(self, label: "int | str") -> Iterator[Tuple[int, int]]:
        """Iterate ``(src, dst)`` pairs of edges carrying ``label`` (§4.4).

        For the pointer analysis, label ``OF`` yields the points-to
        solution and ``AL`` the alias pairs.
        """
        if isinstance(label, str):
            label = self.grammar.label_id(label)
        for src, dst, lab in self.pset.iter_all_edges():
            if lab == label:
                yield src, dst

    def edges_with_label_arrays(self, label: "int | str") -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized variant of :meth:`iter_edges_with_label`.

        Returns parallel ``(src, dst)`` arrays; orders of magnitude
        faster than the iterator on large result graphs.
        """
        if isinstance(label, str):
            label = self.grammar.label_id(label)
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        for pid in range(self.pset.num_partitions):
            was_resident = self.pset.is_resident(pid)
            partition = self.pset.acquire(pid)
            for v, keys in partition.adjacency.items():
                mask = packed.labels_of(keys) == label
                n = int(mask.sum())
                if n:
                    src_parts.append(np.full(n, v, dtype=np.int64))
                    dst_parts.append(packed.targets_of(keys[mask]))
            if not was_resident:
                self.pset.evict(pid)
        if not src_parts:
            return packed.EMPTY, packed.EMPTY
        return np.concatenate(src_parts), np.concatenate(dst_parts)

    def count_by_label(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _, _, lab in self.pset.iter_all_edges():
            name = self.grammar.label_name(lab)
            counts[name] = counts.get(name, 0) + 1
        return counts

    def to_memgraph(self) -> MemGraph:
        return self.pset.to_memgraph()

    @property
    def num_edges(self) -> int:
        return self.pset.total_edges()


class GraspanEngine:
    """Configure once, run on any number of graphs.

    Parameters
    ----------
    grammar:
        The frozen analysis grammar.
    max_edges_per_partition:
        Partition size threshold; drives both the initial partition count
        and the repartitioning trigger.  Models the memory given to
        Graspan (§4.1).  ``None`` means "fit in memory": two partitions,
        no repartitioning — the paper's in-memory mode.
    workdir:
        Directory for partition files.  ``None`` keeps all partitions
        resident (only sensible with small graphs).
    num_threads:
        Workers for the parallel join (the paper used 8) — threads for
        the ``thread`` backend, processes for ``process``.
    parallel_backend:
        Which join data plane to use: ``"serial"``, ``"thread"``, or
        ``"process"`` (shared-memory worker pool, the only one that
        escapes the GIL).  ``None`` auto-selects from ``num_threads``:
        ``thread`` when ``num_threads > 1``, else ``serial``.  The pool
        is created once per :meth:`run` and reused across supersteps;
        ``process`` falls back to ``thread`` when shared memory is
        unavailable.
    """

    def __init__(
        self,
        grammar: FrozenGrammar,
        max_edges_per_partition: Optional[int] = None,
        num_partitions: Optional[int] = None,
        workdir: Optional[PathLike] = None,
        num_threads: int = 1,
        scheduler: Optional[Scheduler] = None,
        max_supersteps: int = 1_000_000,
        repartition_growth: float = 2.0,
        parallel_backend: Optional[str] = None,
    ) -> None:
        if parallel_backend is not None and parallel_backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel_backend {parallel_backend!r}; "
                f"choose from {BACKENDS}"
            )
        self.grammar = grammar
        self.max_edges_per_partition = max_edges_per_partition
        self.num_partitions = num_partitions
        self.workdir = workdir
        self.num_threads = num_threads
        self.parallel_backend = parallel_backend
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.max_supersteps = max_supersteps
        self.repartition_growth = repartition_growth

    # ------------------------------------------------------------------
    def run(self, graph: MemGraph) -> GraspanComputation:
        """Compute the grammar-guided transitive closure of ``graph``."""
        if graph.num_vertices == 0 or graph.num_edges == 0:
            return self._empty_computation(graph)
        graph = align_graph_labels(graph, self.grammar)
        stats = EngineStats(
            original_edges=graph.num_edges, num_vertices=graph.num_vertices
        )
        pset = preprocess(
            graph,
            max_edges_per_partition=self.max_edges_per_partition,
            num_partitions=self.num_partitions,
            workdir=self.workdir,
            timers=stats.timers,
        )
        stats.initial_partitions = pset.num_partitions

        mid_limit = self.mid_superstep_limit()

        # The backend (and its worker pool / shared segments) lives for
        # the whole run; the context manager guarantees shutdown even if
        # a superstep raises.
        with make_backend(
            self.parallel_backend, self.grammar, self.num_threads
        ) as backend:
            while True:
                pair = self.scheduler.choose_pair(pset.ddm, pset.resident_pids())
                if pair is None:
                    break
                if len(stats.supersteps) >= self.max_supersteps:
                    raise RuntimeError(
                        f"exceeded max_supersteps={self.max_supersteps}; "
                        "the computation may be diverging"
                    )
                self._run_one_superstep(pset, pair, mid_limit, stats, backend)

        if pset.store.disk_backed:
            pset.evict_all_except(())
        stats.final_edges = pset.total_edges()
        stats.final_partitions = pset.num_partitions
        return GraspanComputation(pset, self.grammar, stats)

    def mid_superstep_limit(self) -> int:
        """The resident-edge budget that triggers a mid-superstep bail-out.

        Two partitions are loaded at once, each allowed to grow by
        ``repartition_growth`` before splitting — so the budget is
        exactly ``2 * max_edges_per_partition * growth``.  (A historical
        bug doubled this again, silently quadrupling the documented
        budget and delaying the §4.3 bail-out.)  0 disables the check.
        """
        if self.max_edges_per_partition is None:
            return 0
        return int(
            2 * self.max_edges_per_partition * max(self.repartition_growth, 1.0)
        )

    def _empty_computation(self, graph: MemGraph) -> GraspanComputation:
        """A trivial result for graphs with nothing to compute."""
        from repro.partition.ddm import DestinationDistributionMap
        from repro.partition.interval import VertexIntervalTable
        from repro.partition.partition import Partition
        from repro.partition.storage import PartitionStore

        vit = VertexIntervalTable.single(max(1, graph.num_vertices))
        pset = PartitionSet(
            vit,
            DestinationDistributionMap(np.zeros((1, 1), dtype=np.int64)),
            [Partition(vit.interval(0), {})],
            PartitionStore(),
            label_names=self.grammar.names,
        )
        stats = EngineStats(num_vertices=graph.num_vertices)
        stats.initial_partitions = stats.final_partitions = 1
        return GraspanComputation(pset, self.grammar, stats)

    # ------------------------------------------------------------------
    def _run_one_superstep(
        self,
        pset: PartitionSet,
        pair: Tuple[int, int],
        mid_limit: int,
        stats: EngineStats,
        backend: JoinBackend,
    ) -> None:
        p, q = min(pair), max(pair)
        loaded = (p,) if p == q else (p, q)
        # Delayed write-back: only partitions not needed next are evicted.
        pset.evict_all_except(loaded)
        parts = [pset.acquire(pid) for pid in loaded]

        combined: Dict[int, np.ndarray] = {}
        for part in parts:
            combined.update(part.adjacency)

        watch = Stopwatch().start()
        with stats.timers.phase("compute"):
            result = run_superstep(
                combined,
                self.grammar,
                memory_limit_edges=mid_limit,
                num_threads=self.num_threads,
                backend=backend,
            )
        seconds = watch.stop()

        # Scatter the merged adjacency back into the loaded partitions.
        for pid, part in zip(loaded, parts):
            hi = part.interval.hi
            lo = part.interval.lo
            part.adjacency = {
                v: keys for v, keys in result.adjacency.items() if lo <= v <= hi
            }
            pset.note_mutated(pid)
            # Rows of resident partitions are cheap to recompute exactly,
            # correcting any proportional approximations from past splits.
            pset.ddm.set_exact_row(pid, part.destination_counts(pset.vit))

        self._record_added_edges(pset, result.added_src, result.added_keys)
        if result.completed:
            pset.ddm.mark_synced(loaded)

        resident_edges = sum(pset.edge_count(pid) for pid in loaded)
        stats.peak_resident_edges = max(stats.peak_resident_edges, resident_edges)

        self._maybe_repartition(pset, loaded, stats)

        telemetry = result.telemetry
        stats.supersteps.append(
            SuperstepRecord(
                pair=(p, q),
                iterations=result.iterations,
                edges_added=result.edges_added,
                seconds=seconds,
                completed=result.completed,
                num_partitions_after=pset.num_partitions,
                backend=telemetry.backend if telemetry else "serial",
                chunk_count=telemetry.chunk_count if telemetry else 0,
                chunk_balance=telemetry.chunk_balance if telemetry else 1.0,
                pool_seconds=telemetry.pool_seconds if telemetry else 0.0,
                serial_estimate_seconds=(
                    telemetry.serial_estimate_seconds if telemetry else 0.0
                ),
            )
        )

    def _record_added_edges(
        self, pset: PartitionSet, added_src: np.ndarray, added_keys: np.ndarray
    ) -> None:
        """Bucket new edges into DDM cells by (source, target) interval."""
        if len(added_src) == 0:
            return
        lows = np.asarray([iv.lo for iv in pset.vit.intervals()], dtype=np.int64)
        src_pid = np.searchsorted(lows, added_src, side="right") - 1
        dst_pid = (
            np.searchsorted(lows, packed.targets_of(added_keys), side="right") - 1
        )
        n = pset.vit.num_partitions
        cells, counts = np.unique(src_pid * n + dst_pid, return_counts=True)
        for cell, count in zip(cells, counts):
            pset.ddm.record_new_edges(int(cell) // n, int(cell) % n, int(count))

    def _maybe_repartition(
        self, pset: PartitionSet, loaded: Tuple[int, ...], stats: EngineStats
    ) -> None:
        """Split loaded partitions that outgrew the size threshold (§4.3)."""
        if self.max_edges_per_partition is None:
            return
        threshold = int(self.max_edges_per_partition * self.repartition_growth)
        # Split high ids first so earlier ids stay valid through id shifts.
        for pid in sorted(loaded, reverse=True):
            while (
                pset.edge_count(pid) > threshold
                and len(pset.vit.interval(pid)) > 1
            ):
                pset.split(pid)
                stats.repartition_count += 1


def align_graph_labels(graph: MemGraph, grammar: FrozenGrammar) -> MemGraph:
    """Remap a graph's label ids to the grammar's interning.

    The frontend and the grammar intern labels independently; edges are
    matched by *name*.  Raises if the graph uses a label the grammar does
    not know.
    """
    if tuple(graph.label_names) == tuple(grammar.names):
        return graph
    if not graph.label_names:
        raise ValueError("graph has no label names; cannot align with grammar")
    mapping = np.zeros(len(graph.label_names), dtype=np.int64)
    for i, name in enumerate(graph.label_names):
        mapping[i] = grammar.label_id(name)  # raises GrammarError if unknown
    labels = mapping[packed.labels_of(graph.keys)]
    return MemGraph.from_arrays(
        graph.src,
        packed.targets_of(graph.keys),
        labels,
        num_vertices=graph.num_vertices,
        label_names=grammar.names,
    )
