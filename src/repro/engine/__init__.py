"""The edge-pair-centric computation engine (§4.2-§4.3)."""

from repro.engine.checkpoint import (
    CheckpointError,
    RunJournal,
    grammar_fingerprint,
    graph_fingerprint,
)
from repro.engine.engine import (
    GraspanComputation,
    GraspanEngine,
    align_graph_labels,
)
from repro.engine.join import CsrView, apply_unary_closure, join_edges
from repro.engine.matmul import MatmulJoinBackend, scipy_available
from repro.engine.naive import naive_closure
from repro.engine.parallel import (
    BACKENDS,
    JoinBackend,
    JoinTelemetry,
    ProcessJoinBackend,
    SerialJoinBackend,
    ThreadJoinBackend,
    make_backend,
    shared_memory_available,
)
from repro.engine.pipeline import IoPipeline, PendingCommit
from repro.engine.scheduler import RoundRobinScheduler, Scheduler
from repro.engine.session import (
    ClosureSession,
    SessionStateError,
    record_added_edges,
)
from repro.engine.stats import EngineStats, SuperstepRecord
from repro.engine.store import ClosureStore, edge_diff, seed_delta_edges
from repro.engine.superstep import SuperstepResult, run_superstep

__all__ = [
    "CheckpointError",
    "RunJournal",
    "grammar_fingerprint",
    "graph_fingerprint",
    "GraspanComputation",
    "GraspanEngine",
    "align_graph_labels",
    "CsrView",
    "apply_unary_closure",
    "join_edges",
    "naive_closure",
    "BACKENDS",
    "JoinBackend",
    "JoinTelemetry",
    "MatmulJoinBackend",
    "scipy_available",
    "ProcessJoinBackend",
    "SerialJoinBackend",
    "ThreadJoinBackend",
    "make_backend",
    "shared_memory_available",
    "IoPipeline",
    "PendingCommit",
    "ClosureSession",
    "SessionStateError",
    "record_added_edges",
    "ClosureStore",
    "edge_diff",
    "seed_delta_edges",
    "Scheduler",
    "RoundRobinScheduler",
    "EngineStats",
    "SuperstepRecord",
    "SuperstepResult",
    "run_superstep",
]
