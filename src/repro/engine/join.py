"""The vectorized edge-pair join at the heart of Algorithm 1.

Given a batch of *left* edges ``v --l1--> u`` and the adjacency of the
loaded vertices, produce every grammar-sanctioned transitive edge
``v --K--> x`` where ``u --l2--> x`` is a loaded edge and ``K ::= l1 l2``
is a production.  This is the per-vertex "merge the out-lists of my
targets into my own list, filtering mismatched labels" step of §4.2,
flattened across all vertices and expressed as numpy gathers so the inner
loop runs at C speed (pure-Python edge-pair joins are why the repro band
flags this paper — see DESIGN.md).

Unary productions never appear here: :func:`apply_unary_closure` is
applied whenever edges enter the system, so an ``A`` edge is always
accompanied by its derived ``VF`` edge, etc.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph import packed
from repro.grammar.grammar import FrozenGrammar


class CsrView:
    """A read-only CSR snapshot of per-vertex sorted edge lists.

    ``vertices`` is sorted; row ``i`` holds the packed out-edges of
    ``vertices[i]`` in ``keys[indptr[i]:indptr[i+1]]``.
    """

    __slots__ = ("vertices", "indptr", "keys")

    def __init__(self, vertices: np.ndarray, indptr: np.ndarray, keys: np.ndarray):
        self.vertices = vertices
        self.indptr = indptr
        self.keys = keys

    @classmethod
    def from_dict(cls, adjacency: Dict[int, np.ndarray]) -> "CsrView":
        items = [(v, keys) for v, keys in adjacency.items() if len(keys)]
        if not items:
            return cls(packed.EMPTY, np.zeros(1, dtype=np.int64), packed.EMPTY)
        items.sort(key=lambda item: item[0])
        vertices = np.asarray([v for v, _ in items], dtype=np.int64)
        lengths = np.asarray([len(keys) for _, keys in items], dtype=np.int64)
        indptr = np.zeros(len(items) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        keys = np.concatenate([keys for _, keys in items])
        return cls(vertices, indptr, keys)

    @classmethod
    def from_flat(cls, src: np.ndarray, keys: np.ndarray) -> "CsrView":
        """Group flat ``(src, key)`` arrays — lexsorted by (src, key) —
        into a CSR view without copying ``keys``.

        The inverse of :func:`repro.engine.parallel.expand_view`; all of
        the engine's flat-array state goes through here, so no Python
        per-row loop is involved.
        """
        if len(src) == 0:
            return cls(packed.EMPTY, np.zeros(1, dtype=np.int64), packed.EMPTY)
        starts = np.concatenate(
            [[0], np.flatnonzero(src[1:] != src[:-1]) + 1]
        ).astype(np.int64)
        vertices = src[starts]
        indptr = np.concatenate([starts, [len(src)]]).astype(np.int64)
        return cls(vertices, indptr, keys)

    @property
    def num_edges(self) -> int:
        return len(self.keys)

    def rows_for(self, targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map target vertex ids to CSR rows; returns (rows, valid_mask)."""
        if len(self.vertices) == 0 or len(targets) == 0:
            return (
                np.zeros(len(targets), dtype=np.int64),
                np.zeros(len(targets), dtype=bool),
            )
        rows = np.searchsorted(self.vertices, targets)
        rows_clamped = np.minimum(rows, len(self.vertices) - 1)
        valid = self.vertices[rows_clamped] == targets
        return rows_clamped, valid


def apply_unary_closure(keys: np.ndarray, grammar: FrozenGrammar) -> np.ndarray:
    """Expand a sorted key array with all unary-derivable labels.

    Idempotent (the closure tables are transitively closed).  Returns a
    sorted, duplicate-free array.
    """
    if len(keys) == 0:
        return keys
    sizes = np.asarray(
        [len(c) for c in grammar.unary_closure], dtype=np.int64
    )
    labels = packed.labels_of(keys)
    if np.all(sizes[labels] == 1):
        return keys  # nothing derivable; common fast path
    pieces: List[np.ndarray] = [keys]
    for label in np.unique(labels):
        closure = grammar.unary_closure[int(label)]
        if len(closure) == 1:
            continue
        bases = keys[labels == label] & ~np.int64(packed.LABEL_MASK)
        for derived in closure:
            if derived == label:
                continue
            pieces.append(bases | np.int64(derived))
    return packed.merge_unique(pieces)


def join_edges(
    left_src: np.ndarray,
    left_keys: np.ndarray,
    right: CsrView,
    grammar: FrozenGrammar,
    head_mask: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Join left edges against the right adjacency under the grammar.

    Returns unsorted candidate ``(src, key)`` arrays (may contain
    duplicates; the caller deduplicates during the merge, which is where
    Algorithm 1's duplicate check lives).
    """
    if len(left_src) == 0 or right.num_edges == 0:
        return packed.EMPTY, packed.EMPTY

    l1 = packed.labels_of(left_keys)
    usable = head_mask[l1]
    if not usable.all():
        left_src, left_keys, l1 = left_src[usable], left_keys[usable], l1[usable]
    if len(left_src) == 0:
        return packed.EMPTY, packed.EMPTY

    targets = packed.targets_of(left_keys)
    rows, valid = right.rows_for(targets)
    if not valid.any():
        return packed.EMPTY, packed.EMPTY
    left_src, l1, rows = left_src[valid], l1[valid], rows[valid]

    starts = right.indptr[rows]
    counts = right.indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return packed.EMPTY, packed.EMPTY

    # Gather the continuation edges of every joined target in one shot.
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
    continuation = right.keys[np.repeat(starts, counts) + within]

    src_rep = np.repeat(left_src, counts)
    l1_rep = np.repeat(l1, counts)
    l2 = packed.labels_of(continuation)
    slots = grammar.binary_index[l1_rep, l2]
    matched = slots >= 0
    if not matched.any():
        return packed.EMPTY, packed.EMPTY

    src_m = src_rep[matched]
    x_m = packed.targets_of(continuation[matched])
    slots_m = slots[matched]

    out_src: List[np.ndarray] = []
    out_keys: List[np.ndarray] = []
    for slot in np.unique(slots_m):
        sel = slots_m == slot
        produced = grammar.binary_results[int(slot)]
        base = x_m[sel] << packed.LABEL_BITS
        for lhs in produced:
            out_src.append(src_m[sel])
            out_keys.append(base | np.int64(lhs))
    if not out_src:
        # Degenerate grammars can match a slot whose result set is empty
        # (every produced LHS pruned away); concatenating zero pieces
        # would raise instead of yielding the empty candidate set.
        return packed.EMPTY, packed.EMPTY
    return np.concatenate(out_src), np.concatenate(out_keys)


def join_edges_chunked(
    left_src: np.ndarray,
    left_keys: np.ndarray,
    rights: Sequence[CsrView],
    grammar: FrozenGrammar,
    head_mask: np.ndarray,
    num_threads: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Join against several right views, optionally across a thread pool.

    Chunking over the left edges mirrors Algorithm 1's per-vertex
    parallelism ("create a separate thread to process each vertex"); the
    result is identical regardless of chunk boundaries because duplicates
    are eliminated downstream.

    Convenience wrapper over the :mod:`repro.engine.parallel` backends
    for one-shot joins; the engine itself holds a persistent backend so
    pools and shared-memory snapshots survive across supersteps.
    """
    from repro.engine.parallel import make_backend

    with make_backend(None, grammar, num_threads, head_mask=head_mask) as backend:
        return backend.join_arrays(left_src, left_keys, rights)
