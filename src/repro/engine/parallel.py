"""Pluggable join backends: serial, thread-pool, and process-pool.

The edge-pair join of Algorithm 1 is embarrassingly parallel over the
left edges ("create a separate thread to process each vertex", §4.2),
but a Python thread pool only overlaps the parts of the numpy kernels
that release the GIL — chunking, gather setup, and result assembly all
serialize.  The process backend gets the paper's real multi-core
speedup: every superstep iteration publishes its read-only
:class:`~repro.engine.join.CsrView` snapshots into POSIX shared memory
*once*, persistent worker processes map them zero-copy as numpy views,
and each worker joins an edge-balanced chunk of the left rows fully
outside the GIL.  Only the compact candidate ``(src, key)`` result
arrays travel back over the pipe.

Three backends implement one :class:`JoinBackend` interface:

``serial``
    The join runs inline.  The baseline every other backend must match
    bit-for-bit (chunking cannot change the result because duplicates
    are eliminated downstream, during the sorted merge).

``thread``
    A persistent ``ThreadPoolExecutor``; chunks share the address space,
    so nothing is copied, but the GIL bounds the speedup.

``process``
    A persistent ``multiprocessing`` pool over shared-memory CSR
    snapshots.  Falls back to ``thread`` (via :func:`make_backend`) when
    shared memory is unavailable on the platform.

All backends are context managers — pools and shared-memory segments
are released on ``__exit__`` even when the engine run fails — and all
record per-superstep :class:`JoinTelemetry` (chunk count, chunk-balance
ratio, pool wall time vs. the serial estimate) that the engine copies
into each :class:`~repro.engine.stats.SuperstepRecord`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.join import CsrView, join_edges
from repro.graph import packed
from repro.grammar.grammar import FrozenGrammar

#: The valid values of ``GraspanEngine(parallel_backend=...)``.
#: ``distributed`` fans the pair schedule out across coordinator/worker
#: processes (DESIGN.md §16) — it operates *above* the JoinBackend seam
#: (each worker runs its own local backend), so :func:`make_backend`
#: maps it to the serial inline join for any coordinator-side compute.
BACKENDS = ("serial", "thread", "process", "matmul", "distributed")

#: Left joins smaller than this run inline even on pooled backends; the
#: dispatch overhead would dwarf the join itself.
MIN_PARALLEL_EDGES = 256

#: How many times the process backend rebuilds its pool after losing a
#: worker before giving up and degrading to inline joins.
MAX_POOL_RESPAWNS = 3

logger = logging.getLogger(__name__)


def shared_memory_available() -> bool:
    """Probe whether POSIX shared memory actually works here.

    ``multiprocessing.shared_memory`` imports fine on every platform but
    can still fail at runtime (no /dev/shm, sandboxed container, …), so
    we round-trip one real segment.
    """
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=8)
        try:
            segment.buf[0] = 1
            ok = segment.buf[0] == 1
        finally:
            segment.close()
            segment.unlink()
        return bool(ok)
    except Exception:
        return False


@dataclass
class JoinTelemetry:
    """Parallelism counters for one superstep (reset by ``begin_superstep``).

    ``serial_estimate_seconds`` sums the time each chunk spent inside the
    join kernel; ``pool_seconds`` is the wall time the backend spent
    dispatching and collecting.  Their ratio estimates the realized
    speedup without a second serial run.
    """

    backend: str = "serial"
    chunk_count: int = 0
    max_chunk_edges: int = 0
    total_chunk_edges: int = 0
    pool_seconds: float = 0.0
    serial_estimate_seconds: float = 0.0
    backend_degraded: bool = False  # pool fell back to inline joins
    worker_respawns: int = 0  # pool rebuilds after a dead worker
    # Matmul-backend counters (repro.engine.matmul): label-block CSR
    # snapshots built vs carried over unchanged, boolean products formed,
    # and the nonzeros they produced (distinct candidate (src, dst) pairs).
    matmul_blocks_built: int = 0
    matmul_blocks_reused: int = 0
    matmul_products: int = 0
    matmul_nnz: int = 0
    # Distributed-lease counters (repro.distributed, DESIGN.md §16): the
    # lease epoch the delta arrived under, how many times that pair's
    # lease had to be reissued before this apply, and the shipped delta
    # size in edges.  Zero everywhere except coordinator-applied leases.
    lease_epoch: int = 0
    lease_reissues: int = 0
    delta_edges: int = 0

    @property
    def chunk_balance(self) -> float:
        """Largest chunk over the mean chunk, in left edges (1.0 = even)."""
        if self.chunk_count == 0 or self.total_chunk_edges == 0:
            return 1.0
        mean = self.total_chunk_edges / self.chunk_count
        return self.max_chunk_edges / mean

    @property
    def speedup_estimate(self) -> float:
        if self.pool_seconds <= 0.0:
            return 1.0
        return self.serial_estimate_seconds / self.pool_seconds

    def record_chunks(self, chunk_edge_counts: Sequence[int]) -> None:
        for n in chunk_edge_counts:
            self.chunk_count += 1
            self.total_chunk_edges += int(n)
            self.max_chunk_edges = max(self.max_chunk_edges, int(n))


def expand_view(view: CsrView) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a CSR view into parallel ``(src, key)`` edge arrays."""
    if view.num_edges == 0:
        return packed.EMPTY, packed.EMPTY
    counts = view.indptr[1:] - view.indptr[:-1]
    return np.repeat(view.vertices, counts), view.keys


def expand_rows(view: CsrView, row_lo: int, row_hi: int) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten rows ``[row_lo, row_hi)`` of a CSR view into edge arrays."""
    counts = view.indptr[row_lo + 1 : row_hi + 1] - view.indptr[row_lo:row_hi]
    src = np.repeat(view.vertices[row_lo:row_hi], counts)
    keys = view.keys[view.indptr[row_lo] : view.indptr[row_hi]]
    return src, keys


def plan_row_chunks(indptr: np.ndarray, num_chunks: int) -> List[Tuple[int, int]]:
    """Split CSR rows into ≤ ``num_chunks`` edge-balanced row ranges.

    Cuts land on row boundaries nearest the ideal equal-edge split, so a
    single huge row caps the achievable balance (reported via
    :attr:`JoinTelemetry.chunk_balance`).
    """
    num_rows = len(indptr) - 1
    total = int(indptr[-1]) if len(indptr) else 0
    if num_rows <= 0 or total == 0:
        return []
    num_chunks = max(1, min(num_chunks, num_rows))
    targets = np.linspace(0, total, num_chunks + 1)[1:-1]
    cuts = np.unique(
        np.concatenate(
            [[0], np.searchsorted(indptr, targets, side="left"), [num_rows]]
        )
    ).astype(np.int64)
    return [
        (int(cuts[i]), int(cuts[i + 1]))
        for i in range(len(cuts) - 1)
        if cuts[i + 1] > cuts[i]
    ]


def plan_span_chunks(n: int, num_chunks: int) -> List[Tuple[int, int]]:
    """Split ``n`` elements into ≤ ``num_chunks`` contiguous spans."""
    if n <= 0:
        return []
    num_chunks = max(1, min(num_chunks, n))
    bounds = np.linspace(0, n, num_chunks + 1, dtype=np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(num_chunks)
        if bounds[i + 1] > bounds[i]
    ]


class JoinBackend:
    """Common interface the superstep routes all edge-pair joins through.

    Subclasses implement :meth:`join_arrays`; :meth:`join_views` is the
    entry point the superstep uses (the process backend overrides it to
    ship CSR snapshots through shared memory instead of expanding them
    in the parent).  Use as a context manager so pools shut down even if
    the engine raises mid-run.
    """

    name = "serial"

    #: Set permanently once a pooled backend falls back to inline joins;
    #: :attr:`display_name` and each superstep's telemetry reflect it so
    #: degradation is never silent.
    _degraded = False

    #: Optional :class:`repro.util.faults.FaultInjector` (set by the
    #: engine) consulted before each parallel dispatch.
    injector = None

    def __init__(
        self,
        grammar: FrozenGrammar,
        num_workers: int = 1,
        head_mask: Optional[np.ndarray] = None,
        requested: Optional[str] = None,
    ) -> None:
        self.grammar = grammar
        self.num_workers = max(1, int(num_workers))
        self.head_mask = grammar.head_labels() if head_mask is None else head_mask
        self.requested = requested if requested is not None else self.name
        self.telemetry = self._fresh_telemetry()

    # -- lifecycle -------------------------------------------------------
    @property
    def display_name(self) -> str:
        """Backend label for telemetry; flags fallbacks and degradation."""
        if self._degraded:
            return f"{self.name}(degraded)"
        if self.requested != self.name:
            return f"{self.name}({self.requested}-fallback)"
        return self.name

    def _fresh_telemetry(self) -> JoinTelemetry:
        return JoinTelemetry(
            backend=self.display_name, backend_degraded=self._degraded
        )

    def __enter__(self) -> "JoinBackend":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Release pools and shared segments; idempotent."""

    def begin_superstep(self) -> None:
        """Reset telemetry (and any published segments) for a superstep."""
        self._release_published()
        self.telemetry = self._fresh_telemetry()

    def begin_iteration(self) -> None:
        """Mark a new fixed-point iteration: prior CSR snapshots are dead."""
        self._release_published()

    def end_superstep(self) -> None:
        self._release_published()

    def _release_published(self) -> None:
        """Hook for backends that pin per-iteration resources."""

    def note_union(self, merged, a, b) -> None:
        """Hint: ``merged`` is the disjoint union of views ``a`` and ``b``.

        The superstep announces ``O <- O ∪ D`` through this hook so
        backends that keep per-snapshot derived state (the matmul
        backend's label blocks) can carry it across iterations instead
        of rebuilding from scratch.  Default: ignore the hint.
        """

    # -- joining ---------------------------------------------------------
    def join_views(
        self, left: CsrView, rights: Sequence[CsrView]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Join every left edge of ``left`` against each right view."""
        left_src, left_keys = expand_view(left)
        return self.join_arrays(left_src, left_keys, rights)

    def join_edge_list(
        self,
        left_src: np.ndarray,
        left_keys: np.ndarray,
        left_view: CsrView,
        rights: Sequence[CsrView],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Join flat left edges that are also available as a CSR view.

        The superstep keeps its state in both forms — flat ``(src, key)``
        arrays for merges and a grouped view for the join — so backends
        pick whichever is cheaper: in-process backends consume the flat
        arrays directly (no expand/flatten round-trip), while the process
        backend overrides this to ship the compact CSR snapshot through
        shared memory instead of the expanded source column.
        """
        return self.join_arrays(left_src, left_keys, rights)

    def join_arrays(
        self,
        left_src: np.ndarray,
        left_keys: np.ndarray,
        rights: Sequence[CsrView],
    ) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    @staticmethod
    def _concat(
        results: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        srcs = [s for s, _ in results if len(s)]
        keys = [k for _, k in results if len(k)]
        if not srcs:
            return packed.EMPTY, packed.EMPTY
        return np.concatenate(srcs), np.concatenate(keys)


class SerialJoinBackend(JoinBackend):
    """The inline join: one chunk per non-empty right view."""

    name = "serial"

    def join_arrays(self, left_src, left_keys, rights):
        if len(left_src) == 0:
            return packed.EMPTY, packed.EMPTY
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        started = time.perf_counter()
        for right in rights:
            if right.num_edges == 0:
                continue
            results.append(
                join_edges(left_src, left_keys, right, self.grammar, self.head_mask)
            )
            self.telemetry.record_chunks([len(left_src)])
        elapsed = time.perf_counter() - started
        self.telemetry.pool_seconds += elapsed
        self.telemetry.serial_estimate_seconds += elapsed
        return self._concat(results)


class ThreadJoinBackend(JoinBackend):
    """A persistent thread pool; zero-copy chunks, GIL-bounded speedup."""

    name = "thread"

    def __init__(self, grammar, num_workers=1, head_mask=None, requested=None):
        super().__init__(grammar, num_workers, head_mask, requested)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="graspan-join"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _timed_join(self, left_src, left_keys, right):
        started = time.perf_counter()
        src, keys = join_edges(left_src, left_keys, right, self.grammar, self.head_mask)
        return src, keys, time.perf_counter() - started

    def join_arrays(self, left_src, left_keys, rights):
        rights = [r for r in rights if r.num_edges]
        if len(left_src) == 0 or not rights:
            return packed.EMPTY, packed.EMPTY

        spans = plan_span_chunks(len(left_src), self.num_workers)
        if self.num_workers <= 1 or len(left_src) < max(
            MIN_PARALLEL_EDGES, 2 * self.num_workers
        ):
            spans = [(0, len(left_src))]

        tasks = [
            (left_src[lo:hi], left_keys[lo:hi], right)
            for right in rights
            for lo, hi in spans
        ]
        self.telemetry.record_chunks([len(s) for s, _, _ in tasks])

        started = time.perf_counter()
        if len(tasks) == 1:
            outs = [self._timed_join(*tasks[0])]
        else:
            pool = self._ensure_pool()
            outs = list(pool.map(lambda t: self._timed_join(*t), tasks))
        self.telemetry.pool_seconds += time.perf_counter() - started
        self.telemetry.serial_estimate_seconds += sum(sec for _, _, sec in outs)
        return self._concat([(s, k) for s, k, _ in outs])


# ---------------------------------------------------------------------------
# process backend: shared-memory CSR snapshots + a persistent worker pool
# ---------------------------------------------------------------------------

#: Worker-process globals, installed once by :func:`_worker_init` so the
#: grammar tables are shipped a single time per pool, not per task.
_WORKER_GRAMMAR: Optional[FrozenGrammar] = None
_WORKER_HEAD_MASK: Optional[np.ndarray] = None


def _worker_init(grammar: FrozenGrammar, head_mask: np.ndarray) -> None:
    global _WORKER_GRAMMAR, _WORKER_HEAD_MASK
    _WORKER_GRAMMAR = grammar
    _WORKER_HEAD_MASK = head_mask


def _attach_segment(name: str):
    """Attach an existing shared-memory segment by name.

    Pool workers share the parent's resource tracker (they are its
    children), so the attach-time register is a set no-op and the
    parent's single ``unlink()`` balances the books — no extra
    unregister gymnastics needed or wanted.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _attach_arrays(descs: Sequence[Tuple[str, int]]):
    """Map shared segments as int64 numpy views; returns (arrays, segments)."""
    arrays: List[np.ndarray] = []
    segments = []
    for name, length in descs:
        if length == 0:
            arrays.append(packed.EMPTY)
            continue
        segment = _attach_segment(name)
        segments.append(segment)
        arrays.append(
            np.ndarray(length, dtype=np.int64, buffer=segment.buf)
        )
    return arrays, segments


def _worker_join(task):
    """Run one chunk of the join inside a worker process.

    ``task`` is ``(kind, left_descs, right_descs_list, lo, hi)`` where
    ``kind`` selects how the left edges are encoded: ``"csr"`` descs are
    (vertices, indptr, keys) with ``lo:hi`` a row range; ``"arrays"``
    descs are (src, keys) with ``lo:hi`` an element range.  Returns the
    candidate ``(src, keys)`` arrays plus the kernel seconds.
    """
    kind, left_descs, right_descs_list, lo, hi = task
    started = time.perf_counter()
    attached = []
    try:
        left_arrays, segments = _attach_arrays(left_descs)
        attached.extend(segments)
        if kind == "csr":
            view = CsrView(left_arrays[0], left_arrays[1], left_arrays[2])
            left_src, left_keys = expand_rows(view, lo, hi)
            del view
        else:
            left_src = left_arrays[0][lo:hi]
            left_keys = left_arrays[1][lo:hi]

        results: List[Tuple[np.ndarray, np.ndarray]] = []
        for right_descs in right_descs_list:
            right_arrays, segments = _attach_arrays(right_descs)
            attached.extend(segments)
            right = CsrView(right_arrays[0], right_arrays[1], right_arrays[2])
            results.append(
                join_edges(left_src, left_keys, right, _WORKER_GRAMMAR, _WORKER_HEAD_MASK)
            )
            del right, right_arrays

        src, keys = JoinBackend._concat(results)
        # join_edges outputs are fresh arrays (gathers copy), but make the
        # no-shared-buffer invariant explicit before segments close.
        if src.base is not None:
            src = src.copy()
        if keys.base is not None:
            keys = keys.copy()
        del left_src, left_keys, left_arrays, results
        return src, keys, time.perf_counter() - started
    finally:
        for segment in attached:
            try:
                segment.close()
            except BufferError:  # a view leaked; leave the map to the OS
                pass


class ProcessJoinBackend(JoinBackend):
    """Shared-nothing workers over shared-memory CSR snapshots.

    The pool persists across supersteps (fork once, join many); each
    superstep iteration publishes its old/new CSR snapshots exactly once
    and every task references them by segment name.  If shared memory
    fails mid-run the backend degrades to inline joins rather than
    crashing the engine.
    """

    name = "process"

    def __init__(self, grammar, num_workers=2, head_mask=None, requested=None):
        super().__init__(grammar, max(2, num_workers), head_mask, requested)
        self._pool = None
        self._published: Dict[int, Tuple[List[Tuple[str, int]], list]] = {}
        self._degraded = False
        self._warned_degraded = False
        self.max_respawns = MAX_POOL_RESPAWNS
        self.respawn_base_delay = 0.05
        self.worker_respawns = 0

    # -- pool ------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ctx.Pool(
                processes=self.num_workers,
                initializer=_worker_init,
                initargs=(self.grammar, self.head_mask),
            )
        return self._pool

    def close(self) -> None:
        self._release_published()
        self._teardown_pool()

    def _teardown_pool(self) -> None:
        """Kill the pool only — published shared segments stay valid.

        Deliberately avoids ``Pool.terminate()``: a SIGKILLed worker can
        die while holding the shared task-queue lock, and terminate()'s
        queue drain then blocks on that lock forever.  Stopping the
        maintenance thread and killing the workers directly is safe
        regardless of what lock a corpse was holding.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            from multiprocessing.pool import TERMINATE

            pool._worker_handler._state = TERMINATE  # stop auto-respawn
            # The pool's GC finalizer runs the same queue drain; cancel
            # it or a later collection deadlocks exactly the same way.
            pool._terminate.cancel()
            workers = list(pool._pool)
        except (ImportError, AttributeError):  # CPython internals moved
            pool.terminate()
            pool.join()
            return
        for process in workers:
            if process.exitcode is None:
                process.kill()
        for process in workers:
            process.join(timeout=1.0)

    def _worker_processes(self) -> list:
        return list(self._pool._pool) if self._pool is not None else []

    def _pool_damaged(self, pids: set) -> bool:
        """Has any worker died (or been replaced) since ``pids`` was taken?

        ``Pool``'s maintenance thread auto-replaces dead workers but the
        replacement never receives the lost in-flight task, so a pid-set
        change is as fatal to the current map as a visible corpse.
        """
        processes = self._worker_processes()
        if {p.pid for p in processes} != pids:
            return True
        return any(p.exitcode is not None for p in processes)

    # -- shared-memory publication --------------------------------------
    def _publish_arrays(self, arrays: Sequence[np.ndarray]):
        """Copy arrays into fresh shared segments; returns (descs, segments)."""
        from multiprocessing import shared_memory

        descs: List[Tuple[str, int]] = []
        segments = []
        for array in arrays:
            array = np.ascontiguousarray(array, dtype=np.int64)
            if len(array) == 0:
                descs.append(("", 0))
                continue
            segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
            view = np.ndarray(len(array), dtype=np.int64, buffer=segment.buf)
            view[:] = array
            del view
            segments.append(segment)
            descs.append((segment.name, len(array)))
        return descs, segments

    def _publish_view(self, view: CsrView) -> List[Tuple[str, int]]:
        """Publish a CSR snapshot once per iteration (cached by identity)."""
        cached = self._published.get(id(view))
        if cached is not None:
            return cached[0]
        descs, segments = self._publish_arrays(
            [view.vertices, view.indptr, view.keys]
        )
        self._published[id(view)] = (descs, segments)
        return descs

    def _release_published(self) -> None:
        for _, segments in self._published.values():
            for segment in segments:
                try:
                    segment.close()
                    segment.unlink()
                except Exception:
                    pass
        self._published = {}

    # -- joining ---------------------------------------------------------
    def _inline(self, left_src, left_keys, rights):
        """Serial path for tiny joins and post-failure degradation."""
        results = []
        started = time.perf_counter()
        for right in rights:
            results.append(
                join_edges(left_src, left_keys, right, self.grammar, self.head_mask)
            )
            self.telemetry.record_chunks([len(left_src)])
        elapsed = time.perf_counter() - started
        self.telemetry.pool_seconds += elapsed
        self.telemetry.serial_estimate_seconds += elapsed
        return self._concat(results)

    def _dispatch(self, tasks, chunk_sizes):
        self.telemetry.record_chunks(chunk_sizes)
        started = time.perf_counter()
        outs = self._map_with_recovery(tasks)
        self.telemetry.pool_seconds += time.perf_counter() - started
        self.telemetry.serial_estimate_seconds += sum(sec for _, _, sec in outs)
        return self._concat([(s, k) for s, k, _ in outs])

    def _map_with_recovery(self, tasks):
        """``pool.map`` with dead-worker detection and bounded respawn.

        A SIGKILLed worker silently drops its in-flight task; the pool's
        maintenance thread replaces the process but the map would then
        wait forever.  We poll the worker set while waiting and, on any
        death, rebuild the pool and retry the whole map — tasks are pure
        reads of shared snapshots, so re-running them is free of side
        effects.  After ``max_respawns`` rebuilds the failure propagates
        and the caller degrades to inline joins.
        """
        delay = self.respawn_base_delay
        respawns = 0
        while True:
            pool = self._ensure_pool()
            pids = {p.pid for p in self._worker_processes()}
            if self.injector is not None:
                self.injector.on_dispatch(sorted(pids))
            result = pool.map_async(_worker_join, tasks)
            damaged = False
            while not result.ready():
                result.wait(0.02)
                if not result.ready() and self._pool_damaged(pids):
                    damaged = True
                    break
            if not damaged:
                return result.get()
            respawns += 1
            self.worker_respawns += 1
            self.telemetry.worker_respawns += 1
            self._teardown_pool()
            if respawns > self.max_respawns:
                raise RuntimeError(
                    f"join pool lost workers {respawns} times; giving up"
                )
            logger.warning(
                "join pool worker died mid-superstep; respawning pool "
                "(attempt %d/%d, backoff %.2fs)",
                respawns,
                self.max_respawns,
                delay,
            )
            time.sleep(delay)
            delay = min(delay * 2, 1.0)

    def join_views(self, left, rights):
        rights = [r for r in rights if r.num_edges]
        if left.num_edges == 0 or not rights:
            return packed.EMPTY, packed.EMPTY
        if self._degraded or left.num_edges < max(
            MIN_PARALLEL_EDGES, 2 * self.num_workers
        ):
            left_src, left_keys = expand_view(left)
            return self._inline(left_src, left_keys, rights)
        try:
            left_descs = self._publish_view(left)
            right_descs = [self._publish_view(r) for r in rights]
            chunks = plan_row_chunks(left.indptr, self.num_workers)
            # one task per (right × chunk) keeps each worker's gather
            # local to one right view
            tasks = [
                ("csr", left_descs, [rd], lo, hi)
                for rd in right_descs
                for lo, hi in chunks
            ]
            sizes = [
                int(left.indptr[hi] - left.indptr[lo]) for lo, hi in chunks
            ] * len(right_descs)
            return self._dispatch(tasks, sizes)
        except Exception:
            self._degrade()
            left_src, left_keys = expand_view(left)
            return self._inline(left_src, left_keys, rights)

    def join_edge_list(self, left_src, left_keys, left_view, rights):
        """Prefer the CSR form: snapshots publish once and chunk by rows."""
        return self.join_views(left_view, rights)

    def join_arrays(self, left_src, left_keys, rights):
        rights = [r for r in rights if r.num_edges]
        if len(left_src) == 0 or not rights:
            return packed.EMPTY, packed.EMPTY
        if self._degraded or len(left_src) < max(
            MIN_PARALLEL_EDGES, 2 * self.num_workers
        ):
            return self._inline(left_src, left_keys, rights)
        try:
            left_descs, segments = self._publish_arrays([left_src, left_keys])
            self._published[id(left_src)] = (left_descs, segments)
            right_descs = [self._publish_view(r) for r in rights]
            spans = plan_span_chunks(len(left_src), self.num_workers)
            tasks = [
                ("arrays", left_descs, [rd], lo, hi)
                for rd in right_descs
                for lo, hi in spans
            ]
            sizes = [hi - lo for lo, hi in spans] * len(right_descs)
            return self._dispatch(tasks, sizes)
        except Exception:
            self._degrade()
            return self._inline(left_src, left_keys, rights)

    def _degrade(self) -> None:
        """Permanently fall back to inline joins after a pool/shm failure.

        Loudly: a one-time warning is logged and the degradation is
        stamped into the telemetry (and from there into ``EngineStats``
        and the CLI summary) so a run that quietly lost its parallelism
        is visible in every report.
        """
        self._degraded = True
        if not self._warned_degraded:
            self._warned_degraded = True
            logger.warning(
                "process join backend degraded to inline joins after a "
                "pool/shared-memory failure; the run continues serially"
            )
        self.telemetry.backend = self.display_name
        self.telemetry.backend_degraded = True
        try:
            self.close()
        except Exception:
            pass


def make_backend(
    name: Optional[str],
    grammar: FrozenGrammar,
    num_workers: int = 1,
    head_mask: Optional[np.ndarray] = None,
) -> JoinBackend:
    """Build the requested backend, degrading gracefully.

    ``None`` auto-selects: ``thread`` when ``num_workers > 1`` else
    ``serial`` (the historical ``num_threads`` semantics).  ``process``
    silently substitutes a thread pool when shared memory is unavailable
    — the result is identical, only slower — and flags the substitution
    in the telemetry's backend label.  ``matmul`` (the sparse-boolean-
    matrix kernel, DESIGN.md §11) falls back to ``serial`` with a loud
    warning when scipy is not installed — the closure is identical, only
    the edge-pair kernel computes it.
    """
    if name is None:
        name = "thread" if num_workers > 1 else "serial"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown parallel backend {name!r}; choose from {BACKENDS}"
        )
    if name == "matmul":
        from repro.engine.matmul import MatmulJoinBackend, scipy_available

        if not scipy_available():
            logger.warning(
                "matmul join backend requested but scipy is not installed "
                "(pip install 'repro[matmul]'); falling back to the serial "
                "edge-pair join"
            )
            return SerialJoinBackend(grammar, 1, head_mask, requested="matmul")
        return MatmulJoinBackend(grammar, num_workers, head_mask)
    if name == "distributed":
        # The distributed plane lives above this seam (repro.distributed
        # drives worker processes over pair leases); whatever compute the
        # coordinator-side session still does inline is serial.
        return SerialJoinBackend(grammar, 1, head_mask, requested="distributed")
    if name == "serial":
        return SerialJoinBackend(grammar, 1, head_mask)
    if name == "thread":
        return ThreadJoinBackend(grammar, num_workers, head_mask)
    if not shared_memory_available():
        return ThreadJoinBackend(grammar, num_workers, head_mask, requested="process")
    return ProcessJoinBackend(grammar, num_workers, head_mask)
