"""Partition-pair scheduling (§4.3).

The scheduler selects which two partitions the next superstep loads.  Its
two objectives, from the paper: (1) maximize potential edge-pair matches —
pick the pair with the largest ``delta(p,q) + delta(q,p)`` score from the
DDM — and (2) favor reusing partitions already in memory, applied as a
tie-break among pairs whose scores fall within a user-defined slack of
the best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.partition.ddm import DestinationDistributionMap


@dataclass
class Scheduler:
    """DDM-delta driven pair selection with in-memory preference.

    ``slack`` is the relative score window within which pairs are
    considered "similar" and residency breaks the tie (0.1 = within 10%
    of the best score).  Must lie in ``[0, 1)``: a negative slack (or
    ``>= 1``) would make the score threshold non-positive and silently
    degrade pair selection to "any dirty pair wins on residency".
    """

    slack: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.slack < 1.0:
            raise ValueError(
                f"slack must be in [0, 1); got {self.slack!r}"
            )

    def state_dict(self) -> dict:
        """Resumable internal state; the DDM-delta scheduler has none."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output after a checkpoint resume."""

    def choose_pair(
        self,
        ddm: DestinationDistributionMap,
        resident_pids: Sequence[int],
        exclude_pids: Sequence[int] = (),
    ) -> Optional[Tuple[int, int]]:
        """The next pair to load, or None when the computation finished.

        A returned pair may be ``(p, p)``: a single partition whose
        internal delta is the only remaining work.

        ``exclude_pids`` drops every pair touching those partitions
        before selection — the distributed coordinator's way of issuing
        additional concurrent leases that are disjoint from in-flight
        work while keeping the exact deterministic ordering policy.
        With no exclusions the selection is unchanged.
        """
        return self._select(
            ddm, resident_pids, assume_synced=None, exclude_pids=exclude_pids
        )

    def peek_pair(
        self,
        ddm: DestinationDistributionMap,
        resident_pids: Sequence[int],
        assume_synced: Optional[Sequence[int]] = None,
    ) -> Optional[Tuple[int, int]]:
        """Predict the pair that will run *after* ``assume_synced`` completes.

        The prediction simulates the currently loaded pair reaching its
        fixed point (its DDM cells synced) without mutating the map, then
        applies the exact :meth:`choose_pair` policy.  It cannot know
        which edges the in-flight superstep will add, so it is a
        heuristic — exactly what the I/O pipeline needs to start loading
        the likely next partitions while the join computes; a wrong guess
        costs one wasted prefetch, never correctness.
        """
        return self._select(ddm, resident_pids, assume_synced=assume_synced)

    def _select(
        self,
        ddm: DestinationDistributionMap,
        resident_pids: Sequence[int],
        assume_synced: Optional[Sequence[int]],
        exclude_pids: Sequence[int] = (),
    ) -> Optional[Tuple[int, int]]:
        ps, qs, scores = ddm.pair_scores(assume_synced=assume_synced)
        if len(ps) == 0:
            return None
        if len(exclude_pids):
            busy = np.zeros(ddm.num_partitions, dtype=bool)
            busy[list(exclude_pids)] = True
            free = ~(busy[ps] | busy[qs])
            if not free.any():
                return None
            ps, qs, scores = ps[free], qs[free], scores[free]
        best_score = int(scores.max())
        threshold = best_score * (1.0 - self.slack)
        keep = scores >= threshold
        ps, qs, scores = ps[keep], qs[keep], scores[keep]
        resident = np.zeros(ddm.num_partitions, dtype=np.int64)
        resident[list(resident_pids)] = 1
        # len(set(pair) & resident): a (p, p) pair contributes p once.
        resident_members = np.where(
            ps == qs, resident[ps], resident[ps] + resident[qs]
        )
        # Prefer more resident members, then higher score, then low ids
        # (for determinism) — lexsort keys are listed least-significant
        # first, so this reproduces the historical Python sort exactly.
        order = np.lexsort((qs, ps, -scores, -resident_members))
        i = order[0]
        return int(ps[i]), int(qs[i])


class RoundRobinScheduler:
    """Naive baseline scheduler for the scheduling ablation bench.

    Cycles through dirty pairs in id order, ignoring both the DDM deltas
    and partition residency.  Still terminates (it only ever selects
    dirty pairs) but pays more supersteps and more I/O.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def state_dict(self) -> dict:
        return {"cursor": self._cursor}

    def load_state_dict(self, state: dict) -> None:
        self._cursor = int(state.get("cursor", 0))

    def choose_pair(
        self,
        ddm: DestinationDistributionMap,
        resident_pids: Sequence[int],
    ) -> Optional[Tuple[int, int]]:
        dirty = sorted(ddm.dirty_pairs())
        if not dirty:
            return None
        pair = dirty[self._cursor % len(dirty)]
        self._cursor += 1
        return pair
