"""Partition-pair scheduling (§4.3).

The scheduler selects which two partitions the next superstep loads.  Its
two objectives, from the paper: (1) maximize potential edge-pair matches —
pick the pair with the largest ``delta(p,q) + delta(q,p)`` score from the
DDM — and (2) favor reusing partitions already in memory, applied as a
tie-break among pairs whose scores fall within a user-defined slack of
the best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.partition.ddm import DestinationDistributionMap


@dataclass
class Scheduler:
    """DDM-delta driven pair selection with in-memory preference.

    ``slack`` is the relative score window within which pairs are
    considered "similar" and residency breaks the tie (0.1 = within 10%
    of the best score).  Must lie in ``[0, 1)``: a negative slack (or
    ``>= 1``) would make the score threshold non-positive and silently
    degrade pair selection to "any dirty pair wins on residency".
    """

    slack: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.slack < 1.0:
            raise ValueError(
                f"slack must be in [0, 1); got {self.slack!r}"
            )

    def state_dict(self) -> dict:
        """Resumable internal state; the DDM-delta scheduler has none."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output after a checkpoint resume."""

    def choose_pair(
        self,
        ddm: DestinationDistributionMap,
        resident_pids: Sequence[int],
    ) -> Optional[Tuple[int, int]]:
        """The next pair to load, or None when the computation finished.

        A returned pair may be ``(p, p)``: a single partition whose
        internal delta is the only remaining work.
        """
        dirty = ddm.dirty_pairs()
        if not dirty:
            return None
        scored: List[Tuple[int, Tuple[int, int]]] = [
            (ddm.pair_score(p, q), (p, q)) for p, q in dirty
        ]
        best_score = max(score for score, _ in scored)
        threshold = best_score * (1.0 - self.slack)
        resident = set(resident_pids)
        candidates = [(score, pair) for score, pair in scored if score >= threshold]
        # Prefer more resident members, then higher score, then low ids
        # (for determinism).
        candidates.sort(
            key=lambda item: (
                -len(resident.intersection(item[1])),
                -item[0],
                item[1],
            )
        )
        return candidates[0][1]


class RoundRobinScheduler:
    """Naive baseline scheduler for the scheduling ablation bench.

    Cycles through dirty pairs in id order, ignoring both the DDM deltas
    and partition residency.  Still terminates (it only ever selects
    dirty pairs) but pays more supersteps and more I/O.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def state_dict(self) -> dict:
        return {"cursor": self._cursor}

    def load_state_dict(self, state: dict) -> None:
        self._cursor = int(state.get("cursor", 0))

    def choose_pair(
        self,
        ddm: DestinationDistributionMap,
        resident_pids: Sequence[int],
    ) -> Optional[Tuple[int, int]]:
        dirty = sorted(ddm.dirty_pairs())
        if not dirty:
            return None
        pair = dirty[self._cursor % len(dirty)]
        self._cursor += 1
        return pair
