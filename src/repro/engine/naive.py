"""A brute-force reference closure: the oracle for engine correctness.

Computes the same grammar-guided dynamic transitive closure as the
EP-centric engine, but with plain Python sets and a naive worklist — no
partitions, no sorted merges, no batching.  Quadratic and slow; exists
solely so tests (including property-based ones) can assert that the
engine's clever path produces exactly this set of edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.grammar.grammar import FrozenGrammar

Edge = Tuple[int, int, int]  # (src, dst, label)


def naive_closure(
    edges: Iterable[Edge], grammar: FrozenGrammar
) -> Set[Edge]:
    """The full closure of ``edges`` under ``grammar`` as a set of triples."""
    closed: Set[Edge] = set()
    worklist = []

    out: Dict[int, Set[Tuple[int, int]]] = {}  # src -> {(dst, label)}
    incoming: Dict[int, Set[Tuple[int, int]]] = {}  # dst -> {(src, label)}

    def add(src: int, dst: int, label: int) -> None:
        for derived in grammar.unary_closure[label]:
            edge = (src, dst, derived)
            if edge not in closed:
                closed.add(edge)
                out.setdefault(src, set()).add((dst, derived))
                incoming.setdefault(dst, set()).add((src, derived))
                worklist.append(edge)

    for src, dst, label in edges:
        add(src, dst, label)

    while worklist:
        src, dst, label = worklist.pop()
        # Extend forward: (src --label--> dst) + (dst --l2--> x).
        for x, l2 in list(out.get(dst, ())):
            for lhs in grammar.produced_by_pair(label, l2):
                add(src, x, lhs)
        # Extend backward: (w --l1--> src) + (src --label--> dst).
        for w, l1 in list(incoming.get(src, ())):
            for lhs in grammar.produced_by_pair(l1, label):
                add(w, dst, lhs)
    return closed
