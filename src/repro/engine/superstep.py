"""One superstep: the BSP-like fixed point of Algorithm 1, on flat arrays.

With two partitions loaded (their vertex sets and edge lists combined),
the superstep keeps two edge sets: ``O`` ("old" edges already matched in
earlier iterations) and ``D`` ("new" edges discovered in the previous
iteration).  Each iteration matches

* every old edge ``v -> u`` in ``O`` against the *new* edges of ``u``, and
* every new edge ``v -> u`` in ``D`` against *all* edges of ``u``,

never old × old — that work was done in an earlier iteration.  Matched
pairs produce transitive edges; duplicates are eliminated during the
merge (the property that makes the computation terminate, §4.2).  The
superstep ends when no iteration adds an edge, or early when the
in-memory edge count crosses ``memory_limit_edges`` (the mid-superstep
repartitioning trigger, §4.3).

Both sets are stored as flat parallel ``(src, key)`` int64 arrays,
lexsorted by (src, key) and mutually disjoint — the same layout the
partitions, the join kernels, and the on-disk format use, so edges flow
through an iteration as whole-array lexsorts and gathers with no
per-vertex Python loop.  The per-vertex dict form remains available via
:attr:`SuperstepResult.adjacency` for tests and the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.engine.join import CsrView, apply_unary_closure  # noqa: F401 (re-export)
from repro.graph import packed
from repro.grammar.grammar import FrozenGrammar


@dataclass
class SuperstepResult:
    """Outcome of one superstep over a loaded vertex set.

    The final merged edge set is the flat lexsorted ``(src, keys)`` pair;
    :meth:`csr` regroups it as a CSR view and :attr:`adjacency`
    materializes the legacy per-vertex dict on demand (rows are zero-copy
    slices of ``keys``).
    """

    src: np.ndarray  # final merged edges: source vertices (lexsorted)
    keys: np.ndarray  # final merged edges: packed (target, label)
    added_src: np.ndarray  # source vertex of every edge added
    added_keys: np.ndarray  # packed (target, label) of every edge added
    iterations: int
    completed: bool  # False if stopped early by the memory limit
    telemetry: Optional["JoinTelemetry"] = None  # backend parallelism counters
    _adjacency: Optional[Dict[int, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def edges_added(self) -> int:
        return len(self.added_src)

    def csr(self) -> CsrView:
        return CsrView.from_flat(self.src, self.keys)

    @property
    def adjacency(self) -> Dict[int, np.ndarray]:
        """The final edge set as ``{src: sorted packed keys}`` (lazy)."""
        if self._adjacency is None:
            view = self.csr()
            self._adjacency = {
                int(v): view.keys[view.indptr[i] : view.indptr[i + 1]]
                for i, v in enumerate(view.vertices)
            }
        return self._adjacency


# ---------------------------------------------------------------------------
# flat (src, key) pair-set primitives
# ---------------------------------------------------------------------------

def _flatten_adjacency(
    adjacency: Union[Mapping, CsrView]
) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize dict or CSR input to flat lexsorted ``(src, key)`` arrays.

    Every downstream merge (``_merge_disjoint``, ``_fresh_pairs``, the
    CSR regrouping) relies on per-vertex key arrays being sorted and
    duplicate-free; dict input is user-supplied, so rows violating the
    invariant are repaired (sort + dedup) on entry rather than silently
    corrupting the fixed point.
    """
    if isinstance(adjacency, CsrView):
        from repro.engine.parallel import expand_view

        return expand_view(adjacency)
    items = []
    for v, keys in adjacency.items():
        arr = np.asarray(keys, dtype=np.int64)
        if len(arr) == 0:
            continue
        if len(arr) > 1 and not np.all(arr[:-1] < arr[1:]):
            arr = np.unique(arr)  # restore the sorted/duplicate-free invariant
        items.append((v, arr))
    if not items:
        return packed.EMPTY, packed.EMPTY
    items.sort(key=lambda item: item[0])
    src = np.concatenate(
        [np.full(len(keys), v, dtype=np.int64) for v, keys in items]
    )
    keys = np.concatenate([keys for _, keys in items])
    return src, keys


def _dedup_pairs(
    src: np.ndarray, keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Lexsort raw ``(src, key)`` pairs and drop duplicates."""
    if len(src) == 0:
        return packed.EMPTY, packed.EMPTY
    order = np.lexsort((keys, src))
    src, keys = src[order], keys[order]
    keep = np.ones(len(src), dtype=bool)
    keep[1:] = (src[1:] != src[:-1]) | (keys[1:] != keys[:-1])
    return src[keep], keys[keep]


def _merge_disjoint(
    a_src: np.ndarray,
    a_keys: np.ndarray,
    b_src: np.ndarray,
    b_keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Union of two lexsorted, disjoint pair sets, preserving lexsort."""
    if len(a_src) == 0:
        return b_src, b_keys
    if len(b_src) == 0:
        return a_src, a_keys
    src = np.concatenate([a_src, b_src])
    keys = np.concatenate([a_keys, b_keys])
    order = np.lexsort((keys, src))
    return src[order], keys[order]


def _unary_closure_pairs(
    src: np.ndarray, keys: np.ndarray, grammar: FrozenGrammar
) -> Tuple[np.ndarray, np.ndarray]:
    """Close flat lexsorted pairs under unary productions, in one gather.

    The whole-array counterpart of :func:`apply_unary_closure`: every
    edge is expanded into its label's closure via a flattened closure
    table, then the result is re-lexsorted and deduplicated.
    """
    if len(src) == 0:
        return src, keys
    sizes = np.asarray([len(c) for c in grammar.unary_closure], dtype=np.int64)
    labels = packed.labels_of(keys)
    counts = sizes[labels]
    total = int(counts.sum())
    if total == len(src):  # every closure is a singleton: already closed
        return src, keys
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    table = np.asarray(
        [l for closure in grammar.unary_closure for l in closure], dtype=np.int64
    )
    cum = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=cum[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
    derived = table[np.repeat(offsets[labels], counts) + within]
    out_src = np.repeat(src, counts)
    out_keys = np.repeat(keys & ~np.int64(packed.LABEL_MASK), counts) | derived
    return _dedup_pairs(out_src, out_keys)


def _fresh_pairs(
    cand_src: np.ndarray,
    cand_keys: np.ndarray,
    base: CsrView,
    key_bound: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Candidate pairs not present in ``base`` (Algorithm 1's line 24).

    ``cand`` must be lexsorted and unique.  Only the base rows whose
    source actually appears among the candidates are gathered.  Both the
    gathered base pairs and the candidates are already lexsorted (base
    rows come out in increasing source order with sorted keys), so
    membership needs a *merge*, not another sort: each ``(src, key)``
    pair packs into one int64 compound and a single ``searchsorted``
    marks the candidates present in the base.  When ids are too large to
    pack (sources ≥ 2³¹ or keys ≥ 2³²) the flag-lexsort path takes over.

    ``key_bound`` is an exclusive upper bound on every key on both sides.
    The superstep derives it *once* from the largest initial target (no
    join or unary closure ever mints a new target vertex, so
    ``(max_target + 1) << LABEL_BITS`` holds for every iteration) —
    without it, each call would rescan both key arrays, a full O(n) pass
    per iteration on the hot path just to pick the fast path.  Sources
    need no such bound: they are lexsorted, so their maxima are O(1).
    """
    if len(cand_src) == 0 or base.num_edges == 0:
        return cand_src, cand_keys
    first = np.ones(len(cand_src), dtype=bool)
    first[1:] = cand_src[1:] != cand_src[:-1]
    rows, valid = base.rows_for(cand_src[first])
    rows = rows[valid]
    if len(rows) == 0:
        return cand_src, cand_keys
    starts = base.indptr[rows]
    counts = base.indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return cand_src, cand_keys
    cum = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=cum[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], counts)
    b_keys = base.keys[np.repeat(starts, counts) + within]
    b_src = np.repeat(base.vertices[rows], counts)

    # Sources are sorted, so the maxima sit at the ends in O(1); the key
    # bound comes from the caller, or one max scan per side without it.
    if key_bound is None:
        key_bound = max(int(cand_keys.max()), int(b_keys.max())) + 1
    if (
        int(cand_src[-1]) < 2**31
        and int(b_src[-1]) < 2**31
        and key_bound <= 2**32
    ):
        shift = np.int64(32)
        b_comp = (b_src << shift) | b_keys
        c_comp = (cand_src << shift) | cand_keys
        pos = np.searchsorted(b_comp, c_comp)
        pos_in = np.minimum(pos, len(b_comp) - 1)
        present = (pos < len(b_comp)) & (b_comp[pos_in] == c_comp)
        fresh = ~present
        return cand_src[fresh], cand_keys[fresh]
    return _fresh_pairs_lexsort(cand_src, cand_keys, b_src, b_keys)


def _fresh_pairs_lexsort(
    cand_src: np.ndarray,
    cand_keys: np.ndarray,
    b_src: np.ndarray,
    b_keys: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Membership by flag-lexsort over base-and-candidate pairs.

    The pre-merge implementation of :func:`_fresh_pairs`' final step: a
    candidate immediately preceded by an identical base pair is a
    duplicate.  Kept as the fallback for ids too large to pack into a
    compound int64, and as the oracle for the fast path's equivalence
    test.
    """
    all_src = np.concatenate([b_src, cand_src])
    all_keys = np.concatenate([b_keys, cand_keys])
    flags = np.zeros(len(all_src), dtype=np.int64)
    flags[len(b_src) :] = 1
    order = np.lexsort((flags, all_keys, all_src))
    s, k, f = all_src[order], all_keys[order], flags[order]
    dup = np.zeros(len(s), dtype=bool)
    dup[1:] = (s[1:] == s[:-1]) & (k[1:] == k[:-1])
    fresh = (f == 1) & ~dup
    return s[fresh], k[fresh]


# ---------------------------------------------------------------------------
# legacy dict helpers (kept for the dedup/old-new ablation bench)
# ---------------------------------------------------------------------------

def _edges_of(adjacency: Dict[int, np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a per-vertex adjacency dict into parallel (src, key) arrays."""
    items = [(v, keys) for v, keys in adjacency.items() if len(keys)]
    if not items:
        return packed.EMPTY, packed.EMPTY
    src = np.concatenate(
        [np.full(len(keys), v, dtype=np.int64) for v, keys in items]
    )
    keys = np.concatenate([keys for _, keys in items])
    return src, keys


def _group_candidates(
    cand_src: np.ndarray, cand_keys: np.ndarray
) -> List[Tuple[int, np.ndarray]]:
    """Sort/dedup raw join output and group it by source vertex.

    Safe on empty input (a per-worker shard of the process backend can
    legitimately produce nothing): returns an empty list rather than
    tripping over the degenerate ``[0, 0]`` boundary array.
    """
    if len(cand_src) == 0:
        return []
    src, keys = _dedup_pairs(cand_src, cand_keys)
    boundaries = np.flatnonzero(src[1:] != src[:-1]) + 1
    starts = np.concatenate([[0], boundaries, [len(src)]])
    return [
        (int(src[starts[i]]), keys[starts[i] : starts[i + 1]])
        for i in range(len(starts) - 1)
    ]


def run_superstep(
    adjacency: Union[Mapping, CsrView],
    grammar: FrozenGrammar,
    memory_limit_edges: int = 0,
    num_threads: int = 1,
    backend: Optional["JoinBackend"] = None,
) -> SuperstepResult:
    """Run Algorithm 1 to a fixed point over ``adjacency``.

    ``adjacency`` holds the combined edge lists of the loaded partitions,
    either as a per-vertex dict ``{src: sorted packed keys}`` or directly
    as a :class:`CsrView` (the engine's native form — no dict is ever
    built on that path).  A ``memory_limit_edges`` of 0 disables the
    early-stop check.

    All edge-pair joins route through ``backend`` (a
    :class:`~repro.engine.parallel.JoinBackend`).  When ``backend`` is
    None a transient one is built from ``num_threads`` (the historical
    behaviour: a thread pool when ``num_threads > 1``) and torn down
    before returning.
    """
    from repro.engine.parallel import make_backend

    if backend is None:
        with make_backend(None, grammar, num_threads) as owned:
            return run_superstep(
                adjacency, grammar, memory_limit_edges, num_threads, owned
            )

    backend.begin_superstep()

    added_src_parts: List[np.ndarray] = []
    added_keys_parts: List[np.ndarray] = []

    # Initialization (Algorithm 1, lines 3-5): O empty, D the original
    # edge set — here additionally closed under unary productions so the
    # join only ever consults binary productions.
    base_src, base_keys = _flatten_adjacency(adjacency)
    new_src, new_keys = _unary_closure_pairs(base_src, base_keys, grammar)
    old_src, old_keys = packed.EMPTY, packed.EMPTY

    # The `_fresh_pairs` fast-path bound, derived once per superstep: no
    # join or unary closure ever introduces a target vertex absent from
    # the initial edge set, so the largest packed key any iteration can
    # produce stays below (max_target + 1) << LABEL_BITS.  Targets are
    # within packed.MAX_VERTEX_ID, so the shift cannot overflow in
    # Python ints.
    if len(new_keys):
        key_bound = (
            int(packed.targets_of(new_keys).max()) + 1
        ) << packed.LABEL_BITS
    else:
        key_bound = 1

    if len(new_src) > len(base_src):
        derived_src, derived_keys = _fresh_pairs(
            new_src,
            new_keys,
            CsrView.from_flat(base_src, base_keys),
            key_bound=key_bound,
        )
        added_src_parts.append(derived_src)
        added_keys_parts.append(derived_keys)
    edges_in_memory = len(new_src)

    iterations = 0
    completed = True
    prev_old_view: Optional[CsrView] = None
    prev_new_view: Optional[CsrView] = None
    while len(new_src):
        iterations += 1
        backend.begin_iteration()
        new_view = CsrView.from_flat(new_src, new_keys)
        old_view = CsrView.from_flat(old_src, old_keys)
        if prev_new_view is not None:
            # This iteration's O is last iteration's O ∪ D: backends
            # holding per-snapshot derived state (matmul label blocks)
            # reuse it instead of rebuilding from scratch.
            backend.note_union(old_view, prev_old_view, prev_new_view)

        # Component 1 (lines 7-14): old edges × new continuation lists.
        c1_src, c1_keys = backend.join_edge_list(
            old_src, old_keys, old_view, [new_view]
        )
        # Component 2 (lines 15-20): new edges × all continuation lists.
        c2_src, c2_keys = backend.join_edge_list(
            new_src, new_keys, new_view, [old_view, new_view]
        )

        # Update O (lines 21-23): O <- O ∪ D.  The sets are disjoint, so
        # the in-memory edge count is unchanged by the merge.
        old_src, old_keys = _merge_disjoint(old_src, old_keys, new_src, new_keys)
        new_src, new_keys = packed.EMPTY, packed.EMPTY
        prev_old_view, prev_new_view = old_view, new_view

        cand_src = np.concatenate([c1_src, c2_src])
        cand_keys = np.concatenate([c1_keys, c2_keys])
        if len(cand_src) == 0:
            break

        # D <- mergeResult - O (line 24): dedup candidates and keep only
        # edges not already present.
        cand_src, cand_keys = _dedup_pairs(cand_src, cand_keys)
        fresh_src, fresh_keys = _fresh_pairs(
            cand_src,
            cand_keys,
            CsrView.from_flat(old_src, old_keys),
            key_bound=key_bound,
        )
        if len(fresh_src):
            new_src, new_keys = fresh_src, fresh_keys
            edges_in_memory += len(fresh_src)
            added_src_parts.append(fresh_src)
            added_keys_parts.append(fresh_keys)

        if memory_limit_edges and edges_in_memory > memory_limit_edges:
            completed = len(new_src) == 0
            break

    # Final merged edge set (D is folded in if we stopped early).
    final_src, final_keys = _merge_disjoint(old_src, old_keys, new_src, new_keys)

    if added_src_parts:
        added_src = np.concatenate(added_src_parts)
        added_keys = np.concatenate(added_keys_parts)
    else:
        added_src, added_keys = packed.EMPTY, packed.EMPTY

    backend.end_superstep()
    return SuperstepResult(
        src=final_src,
        keys=final_keys,
        added_src=added_src,
        added_keys=added_keys,
        iterations=iterations,
        completed=completed,
        telemetry=backend.telemetry,
    )
