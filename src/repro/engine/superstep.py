"""One superstep: the BSP-like fixed point of Algorithm 1.

With two partitions loaded (their vertex sets and edge lists combined),
every vertex ``v`` keeps two sorted arrays: ``O_v`` ("old" edges already
matched in earlier iterations) and ``D_v`` ("new" edges discovered in the
previous iteration).  Each iteration matches

* every old edge ``v -> u`` in ``O_v`` against the *new* edges ``D_u``, and
* every new edge ``v -> u`` in ``D_v`` against *all* edges ``O_u ∪ D_u``,

never old × old — that work was done in an earlier iteration.  Matched
pairs produce transitive edges, which are merged into the per-vertex
sorted lists with duplicates eliminated during the merge (the property
that makes the computation terminate, §4.2).  The superstep ends when no
iteration adds an edge, or early when the in-memory edge count crosses
``memory_limit_edges`` (the mid-superstep repartitioning trigger, §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.join import CsrView, apply_unary_closure
from repro.graph import packed
from repro.grammar.grammar import FrozenGrammar


@dataclass
class SuperstepResult:
    """Outcome of one superstep over a loaded vertex set."""

    adjacency: Dict[int, np.ndarray]  # final merged per-vertex edge lists
    added_src: np.ndarray  # source vertex of every edge added
    added_keys: np.ndarray  # packed (target, label) of every edge added
    iterations: int
    completed: bool  # False if stopped early by the memory limit
    telemetry: Optional["JoinTelemetry"] = None  # backend parallelism counters

    @property
    def edges_added(self) -> int:
        return len(self.added_src)


def _edges_of(adjacency: Dict[int, np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a per-vertex adjacency dict into parallel (src, key) arrays."""
    items = [(v, keys) for v, keys in adjacency.items() if len(keys)]
    if not items:
        return packed.EMPTY, packed.EMPTY
    src = np.concatenate(
        [np.full(len(keys), v, dtype=np.int64) for v, keys in items]
    )
    keys = np.concatenate([keys for _, keys in items])
    return src, keys


def _group_candidates(
    cand_src: np.ndarray, cand_keys: np.ndarray
) -> List[Tuple[int, np.ndarray]]:
    """Sort/dedup raw join output and group it by source vertex.

    Safe on empty input (a per-worker shard of the process backend can
    legitimately produce nothing): returns an empty list rather than
    tripping over the degenerate ``[0, 0]`` boundary array.
    """
    if len(cand_src) == 0:
        return []
    order = np.lexsort((cand_keys, cand_src))
    src, keys = cand_src[order], cand_keys[order]
    keep = np.ones(len(src), dtype=bool)
    keep[1:] = (src[1:] != src[:-1]) | (keys[1:] != keys[:-1])
    src, keys = src[keep], keys[keep]
    boundaries = np.flatnonzero(src[1:] != src[:-1]) + 1
    starts = np.concatenate([[0], boundaries, [len(src)]])
    return [
        (int(src[starts[i]]), keys[starts[i] : starts[i + 1]])
        for i in range(len(starts) - 1)
    ]


def run_superstep(
    adjacency: Dict[int, np.ndarray],
    grammar: FrozenGrammar,
    memory_limit_edges: int = 0,
    num_threads: int = 1,
    backend: Optional["JoinBackend"] = None,
) -> SuperstepResult:
    """Run Algorithm 1 to a fixed point over ``adjacency``.

    ``adjacency`` maps every loaded source vertex to its sorted packed
    edge array (the combined edge lists of the loaded partitions).  A
    ``memory_limit_edges`` of 0 disables the early-stop check.

    All edge-pair joins route through ``backend`` (a
    :class:`~repro.engine.parallel.JoinBackend`).  When ``backend`` is
    None a transient one is built from ``num_threads`` (the historical
    behaviour: a thread pool when ``num_threads > 1``) and torn down
    before returning.
    """
    from repro.engine.parallel import make_backend

    if backend is None:
        with make_backend(None, grammar, num_threads) as owned:
            return run_superstep(
                adjacency, grammar, memory_limit_edges, num_threads, owned
            )

    backend.begin_superstep()

    old: Dict[int, np.ndarray] = {}
    new: Dict[int, np.ndarray] = {}
    added_src_parts: List[np.ndarray] = []
    added_keys_parts: List[np.ndarray] = []
    edges_in_memory = 0

    # Initialization (Algorithm 1, lines 3-5): O_v empty, D_v the original
    # list — here additionally closed under unary productions so the join
    # only ever consults binary productions.
    for v, keys in adjacency.items():
        expanded = apply_unary_closure(keys, grammar)
        old[v] = packed.EMPTY
        new[v] = expanded
        edges_in_memory += len(expanded)
        if len(expanded) > len(keys):
            derived = packed.setdiff_sorted(expanded, keys)
            added_src_parts.append(np.full(len(derived), v, dtype=np.int64))
            added_keys_parts.append(derived)

    iterations = 0
    completed = True
    while True:
        if not any(len(d) for d in new.values()):
            break
        iterations += 1

        backend.begin_iteration()
        new_csr = CsrView.from_dict(new)
        old_csr = CsrView.from_dict(old)

        # Component 1 (lines 7-14): old edges × new continuation lists.
        c1_src, c1_keys = backend.join_views(old_csr, [new_csr])
        # Component 2 (lines 15-20): new edges × all continuation lists.
        c2_src, c2_keys = backend.join_views(new_csr, [old_csr, new_csr])
        cand_src = np.concatenate([c1_src, c2_src])
        cand_keys = np.concatenate([c1_keys, c2_keys])

        # Update O (lines 21-23): O_v <- merge(O_v, D_v).
        for v, d_keys in new.items():
            if len(d_keys):
                merged = packed.merge_unique([old[v], d_keys])
                edges_in_memory += len(merged) - len(old[v]) - len(d_keys)
                old[v] = merged
        new = {}

        if len(cand_src) == 0:
            break

        # D_v <- mergeResult - O_v (line 24): dedup candidates and keep
        # only edges not already present.
        for v, keys_v in _group_candidates(cand_src, cand_keys):
            existing = old.get(v, packed.EMPTY)
            fresh = packed.setdiff_sorted(keys_v, existing)
            if len(fresh) == 0:
                continue
            if v not in old:
                old[v] = packed.EMPTY
            new[v] = fresh
            edges_in_memory += len(fresh)
            added_src_parts.append(np.full(len(fresh), v, dtype=np.int64))
            added_keys_parts.append(fresh)

        if memory_limit_edges and edges_in_memory > memory_limit_edges:
            completed = not any(len(d) for d in new.values())
            break

    # Final merged adjacency (D is folded in if we stopped early).
    final: Dict[int, np.ndarray] = {}
    for v in old:
        keys = old[v]
        d = new.get(v)
        if d is not None and len(d):
            keys = packed.merge_unique([keys, d])
        if len(keys):
            final[v] = keys

    if added_src_parts:
        added_src = np.concatenate(added_src_parts)
        added_keys = np.concatenate(added_keys_parts)
    else:
        added_src, added_keys = packed.EMPTY, packed.EMPTY

    backend.end_superstep()
    return SuperstepResult(
        adjacency=final,
        added_src=added_src,
        added_keys=added_keys,
        iterations=iterations,
        completed=completed,
        telemetry=backend.telemetry,
    )
