"""Superstep-granular checkpointing: the run journal and manifest.

A Graspan closure over a Linux-scale graph runs for hours; losing the
whole fixpoint to a crash in hour three is not acceptable for the
"production-scale" north star.  This module makes the engine's on-disk
state *resumable* at superstep granularity (DESIGN.md §9):

``journal.jsonl``
    An append-only, fsync'd JSONL event log in the store directory —
    ``begin``, ``commit``, ``resume``, ``finish`` records.  The journal
    is the audit trail (and the replay source for tests); it is never
    required for correctness.

``manifest.json``
    The authoritative checkpoint, replaced atomically (tmp + fsync +
    ``os.replace`` + directory fsync) after every superstep.  It records
    the grammar and input-graph fingerprints, the completed-superstep
    watermark, the partition table (file name, edge count, byte size per
    slot), the full DDM state, and the scheduler state.

The commit protocol orders durability correctly:

1. every dirty resident partition is written out **durably**
   (:meth:`~repro.partition.pset.PartitionSet.flush_dirty` — fsync'd
   file + directory), with the *old* files retired, not deleted;
2. the new manifest is atomically replaced and fsync'd — this is the
   commit point: before it, a crash resumes from the previous
   watermark against the previous files (still on disk); after it,
   from the new one;
3. only then are the retired files purged
   (:meth:`~repro.partition.storage.PartitionStore.purge_retired`).

Resume (:func:`restore_partition_set`) validates the fingerprints, and
rebuilds the partition set with every slot evicted — partitions reload
lazily from their checkpointed files.  Because the superstep fixpoint is
confluent (any fair processing order of dirty DDM pairs reaches the same
closure), the resumed run's final edge set is byte-identical to an
uninterrupted run's even though the scheduler's residency tie-break may
diverge after the restart.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.grammar.grammar import FrozenGrammar
from repro.partition.ddm import DestinationDistributionMap
from repro.partition.interval import Interval, VertexIntervalTable
from repro.partition.pset import PartitionSet
from repro.partition.storage import PartitionStore

PathLike = Union[str, Path]

#: Version of the manifest schema; bumped on incompatible changes.
MANIFEST_FORMAT = 1

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
DEGREES_NAME = "degrees.npz"


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be resumed (mismatched run, bad data)."""


def grammar_fingerprint(grammar: FrozenGrammar) -> int:
    """A stable CRC32 of the grammar's labels and productions.

    Resuming under a different grammar would silently compute a different
    closure against checkpointed partial state; the fingerprint turns
    that into a hard :class:`CheckpointError`.
    """
    payload = json.dumps(
        [
            list(grammar.names),
            [[p.lhs, p.rhs1, p.rhs2] for p in grammar.productions],
        ],
        separators=(",", ":"),
    )
    return zlib.crc32(payload.encode("utf-8"))


def graph_fingerprint(graph, partition_table=None) -> int:
    """CRC32 over the aligned input graph's flat edge arrays.

    ``partition_table`` — the planned ``[[lo, hi], ...]`` interval table
    (see :func:`repro.partition.preprocess.planned_partition_table`) — is
    folded into the digest when given.  The closure cache keys entries by
    this fingerprint, and a repartitioned but edge-identical graph must
    *not* hit a cache entry computed under a different partition layout:
    the cached manifest's partition files, DDM shape, and scheduler state
    all assume the old table.
    """
    crc = zlib.crc32(np.ascontiguousarray(graph.src, dtype=np.int64).data)
    crc = zlib.crc32(np.ascontiguousarray(graph.keys, dtype=np.int64).data, crc)
    crc = zlib.crc32(
        json.dumps([graph.num_vertices, list(graph.label_names)]).encode("utf-8"),
        crc,
    )
    if partition_table is not None:
        crc = zlib.crc32(
            json.dumps(
                [[int(lo), int(hi)] for lo, hi in partition_table]
            ).encode("utf-8"),
            crc,
        )
    return crc


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class RunJournal:
    """The journal + manifest pair for one store directory."""

    def __init__(self, workdir: PathLike, injector=None) -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.workdir / MANIFEST_NAME
        self.journal_path = self.workdir / JOURNAL_NAME
        self.injector = injector

    # -- journal (append-only, advisory) --------------------------------
    def append(self, event: Dict[str, object]) -> None:
        line = json.dumps(event, separators=(",", ":"))
        with open(self.journal_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def events(self) -> Iterator[Dict[str, object]]:
        """Replay the journal: parsed events, skipping a torn final line."""
        if not self.journal_path.exists():
            return
        with open(self.journal_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append can tear exactly the last line;
                    # the manifest, not the journal, is authoritative.
                    return

    # -- manifest (atomic, authoritative) -------------------------------
    def commit(self, manifest: Dict[str, object]) -> None:
        """Atomically replace the manifest; the checkpoint's commit point."""
        if self.injector is not None:
            self.injector.on_commit_start()
        tmp = self.manifest_path.with_name(self.manifest_path.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.manifest_path)
            _fsync_dir(self.workdir)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self.append({"event": "commit", "superstep": manifest["superstep"]})
        if self.injector is not None:
            self.injector.on_commit_done()

    def load_manifest(self) -> Optional[Dict[str, object]]:
        """The last committed manifest, or None when there is nothing to resume."""
        if not self.manifest_path.exists():
            return None
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"{self.manifest_path}: unreadable run manifest: {exc}"
            ) from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise CheckpointError(
                f"{self.manifest_path}: unsupported manifest format"
                f" {manifest.get('format')!r} (expected {MANIFEST_FORMAT})"
            )
        return manifest

    def save_degrees(
        self, out_degrees: Optional[np.ndarray], in_degrees: Optional[np.ndarray]
    ) -> None:
        """Persist the (immutable) degree arrays once, outside the manifest."""
        if out_degrees is None or in_degrees is None:
            return
        np.savez(
            self.workdir / DEGREES_NAME,
            out_degrees=np.asarray(out_degrees, dtype=np.int64),
            in_degrees=np.asarray(in_degrees, dtype=np.int64),
        )

    def load_degrees(self):
        path = self.workdir / DEGREES_NAME
        if not path.exists():
            return None, None
        with np.load(path) as data:
            return (
                np.asarray(data["out_degrees"], dtype=np.int64),
                np.asarray(data["in_degrees"], dtype=np.int64),
            )


# ---------------------------------------------------------------------------
# manifest <-> engine state
# ---------------------------------------------------------------------------


def ddm_state(ddm: DestinationDistributionMap) -> Dict[str, object]:
    return {
        "counts": ddm.counts.tolist(),
        "added_since_sync": ddm.added_since_sync.tolist(),
        "version": ddm.version.tolist(),
        "synced_version": ddm.synced_version.tolist(),
    }


def ddm_from_state(state: Dict[str, object]) -> DestinationDistributionMap:
    ddm = DestinationDistributionMap(np.asarray(state["counts"], dtype=np.int64))
    ddm.added_since_sync = np.asarray(state["added_since_sync"], dtype=np.int64)
    ddm.version = np.asarray(state["version"], dtype=np.int64)
    ddm.synced_version = np.asarray(state["synced_version"], dtype=np.int64)
    return ddm


def scheduler_state(scheduler) -> Dict[str, object]:
    """Serialize scheduler-internal state (cursor etc.); {} if stateless."""
    state_fn = getattr(scheduler, "state_dict", None)
    return state_fn() if state_fn is not None else {}


def restore_scheduler(scheduler, state: Dict[str, object]) -> None:
    load_fn = getattr(scheduler, "load_state_dict", None)
    if load_fn is not None and state:
        load_fn(state)


def build_manifest(
    pset: PartitionSet,
    superstep: int,
    grammar_crc: int,
    graph_crc: int,
    scheduler,
    original_edges: int,
    initial_partitions: int,
    repartition_count: int,
) -> Dict[str, object]:
    """Snapshot the whole resumable state into a JSON-serializable dict.

    Partition paths are stored relative to the workdir so the directory
    can be moved between machines.  Every slot must have a disk copy —
    callers run :meth:`PartitionSet.flush_dirty` first.
    """
    workdir = pset.store.workdir
    slots: List[Dict[str, object]] = []
    for pid in range(pset.num_partitions):
        slot = pset.slot_state(pid)
        if slot["path"] is None:
            raise CheckpointError(
                f"partition {pid} has no disk copy; flush_dirty before commit"
            )
        slots.append(
            {
                "file": os.path.relpath(slot["path"], workdir),
                "edges": slot["edges"],
                "nbytes": slot["nbytes"],
            }
        )
    return {
        "format": MANIFEST_FORMAT,
        "grammar_crc": grammar_crc,
        "graph_crc": graph_crc,
        "superstep": superstep,
        "original_edges": original_edges,
        "initial_partitions": initial_partitions,
        "num_vertices": pset.num_vertices,
        "repartition_count": repartition_count,
        "label_names": list(pset.label_names),
        "vit": [[iv.lo, iv.hi] for iv in pset.vit.intervals()],
        "slots": slots,
        "ddm": ddm_state(pset.ddm),
        "scheduler": scheduler_state(scheduler),
    }


def validate_manifest(
    manifest: Dict[str, object], grammar_crc: int, graph_crc: int
) -> None:
    """Refuse to resume a checkpoint belonging to a different run."""
    if manifest["grammar_crc"] != grammar_crc:
        raise CheckpointError(
            "checkpoint was written by a different grammar"
            f" (manifest crc {manifest['grammar_crc']:#x},"
            f" current {grammar_crc:#x})"
        )
    if manifest["graph_crc"] != graph_crc:
        raise CheckpointError(
            "checkpoint was written for a different input graph"
            f" (manifest crc {manifest['graph_crc']:#x},"
            f" current {graph_crc:#x})"
        )


def restore_partition_set(
    manifest: Dict[str, object],
    store: PartitionStore,
    journal: RunJournal,
    memory_budget: Optional[int] = None,
) -> PartitionSet:
    """Rebuild an all-evicted :class:`PartitionSet` from a manifest.

    Also sweeps partition files the manifest does not reference — the
    garbage a crash between ``flush_dirty`` and the manifest commit (or
    between commit and purge) leaves behind.
    """
    workdir = store.workdir
    if workdir is None:
        raise CheckpointError("cannot restore into an in-memory store")
    vit = VertexIntervalTable(
        [Interval(int(lo), int(hi)) for lo, hi in manifest["vit"]]
    )
    ddm = ddm_from_state(manifest["ddm"])
    entries = []
    referenced = set()
    for slot in manifest["slots"]:
        path = workdir / slot["file"]
        if not path.exists():
            raise CheckpointError(
                f"manifest references missing partition file {path}"
            )
        referenced.add(path.name)
        entries.append((path, int(slot["edges"]), int(slot["nbytes"])))
    swept = 0
    for orphan in workdir.glob("partition-*.gp"):
        if orphan.name not in referenced:
            orphan.unlink(missing_ok=True)
            swept += 1
    if swept:
        journal.append({"event": "swept", "files": swept})
    out_degrees, in_degrees = journal.load_degrees()
    return PartitionSet.from_disk(
        vit,
        ddm,
        entries,
        store,
        label_names=tuple(manifest["label_names"]),
        out_degrees=out_degrees,
        in_degrees=in_degrees,
        memory_budget=memory_budget,
    )
