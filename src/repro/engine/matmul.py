"""Sparse-boolean-matrix CFL-reachability join backend (DESIGN.md §11).

The edge-pair join of :mod:`repro.engine.join` spends its time gathering
*every* continuation edge of every joined target and only then masking
the pairs the grammar sanctions — on dense closures most of that gather
is thrown away, and every duplicate derivation of the same transitive
edge is materialized before the downstream merge collapses it.  Following
*"Optimization of the Context-Free Language Reachability Matrix-Based
Algorithm"* (arXiv 2401.11029), one superstep iteration lowers instead to
boolean sparse matrix products over the (∨, ∧) semiring:

* the flat lexsorted ``(src, key)`` edge arrays split into per-label CSR
  blocks ``M_l[v, x] = 1  iff  v --l--> x`` (one reshape — the arrays are
  already CSR-shaped, see §8);
* each binary production ``K ::= l1 l2`` contributes
  ``M_K |= M_l1 @ M_l2`` — scipy's C matmul merges duplicate derivations
  *inside* the product, so only distinct ``(v, x)`` pairs ever surface;
* product nonzeros map back to packed ``(src, key)`` candidate arrays and
  feed the existing ``_dedup_pairs``/``_fresh_pairs`` merge, leaving
  Algorithm 1's duplicate check (and therefore the closure, byte for
  byte) untouched.

The superstep's old×new / new×all call discipline arrives for free: the
backend multiplies exactly the (left, right) operand sets the superstep
hands it, so no old×old product is ever formed.  Label blocks are cached
per CSR snapshot and carried across iterations — ``O ∪ D`` reuses the
previous ``O`` blocks verbatim for every label ``D`` did not touch and
merges (boolean-or) only the labels that gained edges.

When scipy is unavailable :func:`repro.engine.parallel.make_backend`
degrades loudly to the serial edge-pair join; when a graph's vertex ids
are too sparse for affordable ``(dim, dim)`` operands the backend falls
back per-call to the bit-identical edge-pair kernel.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.join import CsrView, join_edges
from repro.engine.parallel import JoinBackend
from repro.graph import packed
from repro.grammar.grammar import FrozenGrammar

try:  # scipy is an optional dependency (pyproject extra "matmul")
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised via make_backend fallback
    _sparse = None

#: Largest matrix dimension (max vertex id + 1) the backend will build
#: operands for.  scipy's CSR matmul carries O(dim) bookkeeping per
#: product, so pathologically sparse id spaces fall back to the edge-pair
#: kernel instead of paying it.
MAX_MATMUL_DIM = 1 << 26


def scipy_available() -> bool:
    """Whether the scipy.sparse dependency of this backend is importable."""
    return _sparse is not None


def _union_block(a, b):
    """Boolean union of two equally-shaped CSR blocks."""
    return a.maximum(b)


class MatmulJoinBackend(JoinBackend):
    """Per-label boolean sparse matmul over the existing backend seam.

    Bit-identical to ``serial``: both emit the same *set* of candidate
    edges per iteration (matmul merely pre-collapses duplicates), and the
    sorted merge downstream makes the sets canonical.
    """

    name = "matmul"

    def __init__(
        self,
        grammar: FrozenGrammar,
        num_workers: int = 1,
        head_mask: Optional[np.ndarray] = None,
        requested: Optional[str] = None,
    ) -> None:
        if _sparse is None:  # make_backend guards this; belt and braces
            raise RuntimeError(
                "scipy is required for the matmul join backend "
                "(pip install 'repro[matmul]')"
            )
        super().__init__(grammar, num_workers, head_mask, requested)
        #: Operand dimension for the current superstep.  Vertices never
        #: appear mid-superstep that were absent at initialization (joins
        #: and the unary closure only recombine existing endpoints), so
        #: the dimension is stable once the first non-trivial join ran.
        self._dim = 0
        #: id(view) -> (view, {label: csr_matrix}) for the live iteration.
        #: The view reference keeps the id from being recycled.
        self._view_blocks: Dict[int, Tuple[CsrView, Dict[int, object]]] = {}
        #: Last iteration's blocks, kept one iteration for the O∪D reuse.
        self._retired_blocks: Dict[int, Tuple[CsrView, Dict[int, object]]] = {}

    # -- lifecycle -------------------------------------------------------
    def begin_superstep(self) -> None:
        super().begin_superstep()
        self._dim = 0

    def _release_published(self) -> None:
        # Rotate instead of dropping: the superstep announces the next
        # O = O ∪ D via note_union right after begin_iteration, and the
        # union is built from these retired blocks.
        self._retired_blocks = self._view_blocks
        self._view_blocks = {}

    def end_superstep(self) -> None:
        self._view_blocks = {}
        self._retired_blocks = {}
        super().end_superstep()

    # -- dimension management -------------------------------------------
    @staticmethod
    def _max_id_arrays(src: np.ndarray, keys: np.ndarray) -> int:
        if len(src) == 0:
            return -1
        # src is lexsorted, so its maximum is O(1); targets need a scan,
        # paid once per snapshot (the block build scans them anyway).
        return max(int(src[-1]), int(packed.targets_of(keys).max()))

    @staticmethod
    def _max_id_view(view: CsrView) -> int:
        if view.num_edges == 0:
            return -1
        return max(
            int(view.vertices[-1]), int(packed.targets_of(view.keys).max())
        )

    def _ensure_dim(self, needed: int) -> bool:
        """Grow the operand dimension; returns False when matmul is off.

        Growth drops cached blocks (their shapes no longer compose) —
        this never happens mid-superstep on the engine path because the
        first non-trivial join already sees every vertex involved.
        """
        if needed + 1 > MAX_MATMUL_DIM:
            return False
        if needed + 1 > self._dim:
            self._dim = needed + 1
            self._view_blocks = {}
            self._retired_blocks = {}
        return True

    # -- label blocks ----------------------------------------------------
    def _build_blocks(
        self, src: np.ndarray, keys: np.ndarray
    ) -> Dict[int, object]:
        """Split flat lexsorted ``(src, key)`` edges into per-label CSR.

        ``(src, key)`` lexsort means each label's rows stay sorted and
        its columns stay sorted within a row (the key orders by target
        first), so the CSR triple is assembled directly — no coo sort.
        """
        labels = packed.labels_of(keys)
        targets = packed.targets_of(keys)
        blocks: Dict[int, object] = {}
        for label in np.unique(labels):
            mask = labels == label
            rows = src[mask]
            cols = targets[mask]
            counts = np.bincount(rows, minlength=self._dim)
            indptr = np.zeros(self._dim + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            block = _sparse.csr_matrix(
                (np.ones(len(cols), dtype=bool), cols, indptr),
                shape=(self._dim, self._dim),
            )
            blocks[int(label)] = block
            self.telemetry.matmul_blocks_built += 1
        return blocks

    def _blocks_for_view(self, view: CsrView) -> Dict[int, object]:
        cached = self._view_blocks.get(id(view))
        if cached is not None:
            return cached[1]
        from repro.engine.parallel import expand_view

        src, keys = expand_view(view)
        blocks = self._build_blocks(src, keys)
        self._view_blocks[id(view)] = (view, blocks)
        return blocks

    def note_union(
        self, merged: CsrView, a: Optional[CsrView], b: Optional[CsrView]
    ) -> None:
        """``merged = a ∪ b`` (disjoint): reuse blocks instead of rebuilding.

        Called by the superstep when it folds ``D`` into ``O``.  Labels
        untouched by ``b`` keep ``a``'s block verbatim; labels that
        gained edges get a boolean-or merge.  Anything unknown (either
        operand missing from the last iteration's cache) silently falls
        back to a fresh build on first use.
        """
        if a is None or b is None:
            return
        if a.num_edges == 0 or b.num_edges == 0:
            # A trivial union: the merged view *is* the non-empty side
            # (iteration 2's O is iteration 1's D verbatim).
            survivor = self._retired_blocks.get(id(b if a.num_edges == 0 else a))
            if survivor is not None:
                self.telemetry.matmul_blocks_reused += len(survivor[1])
                self._view_blocks[id(merged)] = (merged, survivor[1])
            return
        cached_a = self._retired_blocks.get(id(a))
        cached_b = self._retired_blocks.get(id(b))
        if cached_a is None or cached_b is None:
            return
        a_blocks, b_blocks = cached_a[1], cached_b[1]
        blocks: Dict[int, object] = {}
        for label, block in a_blocks.items():
            other = b_blocks.get(label)
            if other is None:
                blocks[label] = block
                self.telemetry.matmul_blocks_reused += 1
            else:
                blocks[label] = _union_block(block, other)
                self.telemetry.matmul_blocks_built += 1
        for label, block in b_blocks.items():
            if label not in a_blocks:
                blocks[label] = block
                self.telemetry.matmul_blocks_reused += 1
        self._view_blocks[id(merged)] = (merged, blocks)

    # -- joining ---------------------------------------------------------
    def _inline(self, left_src, left_keys, rights):
        """Edge-pair fallback for id spaces too sparse to matmul."""
        results: List[Tuple[np.ndarray, np.ndarray]] = []
        started = time.perf_counter()
        for right in rights:
            results.append(
                join_edges(left_src, left_keys, right, self.grammar, self.head_mask)
            )
            self.telemetry.record_chunks([len(left_src)])
        elapsed = time.perf_counter() - started
        self.telemetry.pool_seconds += elapsed
        self.telemetry.serial_estimate_seconds += elapsed
        return self._concat(results)

    def _multiply(
        self,
        left_blocks: Dict[int, object],
        right_blocks_list: Sequence[Dict[int, object]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        out_src: List[np.ndarray] = []
        out_keys: List[np.ndarray] = []
        binary_index = self.grammar.binary_index
        for l1, left_block in left_blocks.items():
            if not self.head_mask[l1]:
                continue
            slot_row = binary_index[l1]
            for right_blocks in right_blocks_list:
                for l2, right_block in right_blocks.items():
                    slot = int(slot_row[l2])
                    if slot < 0:
                        continue
                    product = left_block @ right_block
                    self.telemetry.matmul_products += 1
                    if product.nnz == 0:
                        continue
                    self.telemetry.matmul_nnz += int(product.nnz)
                    coo = product.tocoo()
                    rows = coo.row.astype(np.int64, copy=False)
                    base = coo.col.astype(np.int64, copy=False) << np.int64(
                        packed.LABEL_BITS
                    )
                    for lhs in self.grammar.binary_results[slot]:
                        out_src.append(rows)
                        out_keys.append(base | np.int64(lhs))
        if not out_src:
            return packed.EMPTY, packed.EMPTY
        return np.concatenate(out_src), np.concatenate(out_keys)

    def join_edge_list(self, left_src, left_keys, left_view, rights):
        rights = [r for r in rights if r.num_edges]
        if len(left_src) == 0 or not rights:
            return packed.EMPTY, packed.EMPTY
        needed = max(
            self._max_id_arrays(left_src, left_keys),
            max(self._max_id_view(r) for r in rights),
        )
        if not self._ensure_dim(needed):
            return self._inline(left_src, left_keys, rights)
        started = time.perf_counter()
        cached = self._view_blocks.get(id(left_view))
        if cached is not None:
            left_blocks = cached[1]
        else:
            left_blocks = self._build_blocks(left_src, left_keys)
            self._view_blocks[id(left_view)] = (left_view, left_blocks)
        right_blocks_list = [self._blocks_for_view(r) for r in rights]
        src, keys = self._multiply(left_blocks, right_blocks_list)
        elapsed = time.perf_counter() - started
        self.telemetry.record_chunks([len(left_src)] * len(rights))
        self.telemetry.pool_seconds += elapsed
        self.telemetry.serial_estimate_seconds += elapsed
        return src, keys

    def join_arrays(self, left_src, left_keys, rights):
        """One-shot join over raw arrays (no snapshot to cache against)."""
        rights = [r for r in rights if r.num_edges]
        if len(left_src) == 0 or not rights:
            return packed.EMPTY, packed.EMPTY
        needed = max(
            self._max_id_arrays(left_src, left_keys),
            max(self._max_id_view(r) for r in rights),
        )
        if not self._ensure_dim(needed):
            return self._inline(left_src, left_keys, rights)
        started = time.perf_counter()
        left_blocks = self._build_blocks(left_src, left_keys)
        right_blocks_list = [self._blocks_for_view(r) for r in rights]
        src, keys = self._multiply(left_blocks, right_blocks_list)
        elapsed = time.perf_counter() - started
        self.telemetry.record_chunks([len(left_src)] * len(rights))
        self.telemetry.pool_seconds += elapsed
        self.telemetry.serial_estimate_seconds += elapsed
        return src, keys
