"""A small text format for grammar specifications.

Lets analyses be specified in files (used by the CLI) rather than code::

    # pointer analysis
    OF ::= M | M VF
    VF ::= A | VF A | VF AL
    AL ::= T D
    T  ::= D_bar VF

One production per ``|`` alternative; terms are whitespace-separated
label names; ``#`` starts a comment.  Productions of any length are
accepted (binarized on freeze, §3).
"""

from __future__ import annotations

from repro.grammar.grammar import FrozenGrammar, Grammar, GrammarError

ARROW = "::="


def parse_grammar_text(text: str) -> FrozenGrammar:
    """Parse a grammar spec; returns the frozen grammar."""
    grammar = Grammar()
    saw_rule = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if ARROW not in line:
            raise GrammarError(
                f"line {lineno}: expected '<lhs> {ARROW} <rhs>', got {line!r}"
            )
        lhs_text, rhs_text = line.split(ARROW, 1)
        lhs = lhs_text.strip()
        if not lhs or " " in lhs:
            raise GrammarError(f"line {lineno}: bad LHS {lhs_text!r}")
        for alternative in rhs_text.split("|"):
            terms = alternative.split()
            if not terms:
                raise GrammarError(
                    f"line {lineno}: empty alternative (epsilon not supported)"
                )
            grammar.add_rule(lhs, terms)
            saw_rule = True
    if not saw_rule:
        raise GrammarError("grammar text contains no productions")
    return grammar.freeze()


def parse_grammar_file(path) -> FrozenGrammar:
    with open(path) as f:
        return parse_grammar_text(f.read())


def grammar_to_text(grammar: FrozenGrammar) -> str:
    """Render a frozen grammar back to the text format (normalized form)."""
    lines = []
    for p in grammar.productions:
        rhs = grammar.label_name(p.rhs1)
        if p.rhs2 is not None:
            rhs += " " + grammar.label_name(p.rhs2)
        lines.append(f"{grammar.label_name(p.lhs)} {ARROW} {rhs}")
    return "\n".join(lines) + "\n"
