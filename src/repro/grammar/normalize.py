"""Binarization of long productions into Graspan's ≤2-term normal form.

Graspan's edge-pair-centric model inspects paths of length at most two, so
every production must have at most two RHS terms (§3).  Every context-free
grammar can be normalized into such a form (similar to Chomsky normal
form): a rule ``K ::= L1 L2 L3 L4`` becomes::

    K#1 ::= L1 L2
    K#2 ::= K#1 L3
    K   ::= K#2 L4

The intermediate nonterminals ``K$i`` are fresh labels; they are ordinary
edges at run time and can be filtered out of reported results by name.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.grammar.grammar import Grammar, Production

#: Separator used in generated intermediate nonterminal names.  ``$``
#: never collides with the ``#`` comment character of the grammar text
#: format, so normalized grammars render and reparse cleanly.
INTERMEDIATE_MARK = "$"


def is_intermediate(label_name: str) -> bool:
    """True if ``label_name`` was synthesized by binarization."""
    return INTERMEDIATE_MARK in label_name


def binarize_long_rules(
    grammar: Grammar,
    long_rules: Sequence[Tuple[int, Tuple[int, ...]]],
) -> List[Production]:
    """Expand rules with >2 RHS terms into chains of binary productions.

    ``long_rules`` pairs an interned LHS label with its full RHS term
    tuple.  Fresh intermediate labels are interned into ``grammar``.
    Returns the list of generated binary :class:`Production` objects.
    """
    productions: List[Production] = []
    for rule_number, (lhs, rhs) in enumerate(long_rules):
        if len(rhs) <= 2:
            raise ValueError("binarize_long_rules expects rules with >2 terms")
        lhs_name = grammar.label_name(lhs)
        current = rhs[0]
        for position, term in enumerate(rhs[1:], start=1):
            is_last = position == len(rhs) - 1
            if is_last:
                target = lhs
            else:
                fresh = f"{lhs_name}{INTERMEDIATE_MARK}{rule_number}.{position}"
                target = grammar.label(fresh)
            productions.append(Production(lhs=target, rhs1=current, rhs2=term))
            current = target
    return productions


def rhs_lengths(rules: Iterable[Sequence[object]]) -> List[int]:
    """Convenience for tests: the RHS length of each rule."""
    return [len(rule) for rule in rules]
