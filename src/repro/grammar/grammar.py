"""Context-free grammars that guide Graspan's transitive-edge addition.

A Graspan analysis is specified as a set of productions over edge labels
(§3 of the paper).  Each production has at most two right-hand-side terms
(the *edge-pair* restriction); grammars with longer productions are first
binarized by :mod:`repro.grammar.normalize`.

The user-facing registration API mirrors the paper exactly::

    g = Grammar()
    g.add_constraint("objectFlow", "M", "valueFlow")
    g.add_constraint("objectFlow", "M")          # rhs2 omitted -> unary rule
    frozen = g.freeze()

Labels are interned to small integers so edges can be packed into numpy
int64 arrays (:mod:`repro.graph.packed`).  At most
:data:`MAX_LABELS` distinct labels are allowed per grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Maximum number of distinct labels (terminals + nonterminals) a grammar
#: may use.  Edges reserve 8 bits for the label (see repro.graph.packed).
MAX_LABELS = 256

#: Suffix used to name the inverse ("bar") version of a label, e.g. the
#: inverse of a dereference edge ``D`` is ``D_bar`` (written D-with-a-bar in
#: the paper).
BAR_SUFFIX = "_bar"


class GrammarError(ValueError):
    """Raised for malformed grammars (too many labels, bad productions...)."""


@dataclass(frozen=True)
class Production:
    """A normalized production ``lhs ::= rhs1 [rhs2]`` over interned labels.

    ``rhs2 is None`` denotes a unary production.
    """

    lhs: int
    rhs1: int
    rhs2: Optional[int] = None

    @property
    def is_unary(self) -> bool:
        return self.rhs2 is None


def bar_name(name: str) -> str:
    """Return the canonical name of the inverse of label ``name``.

    Inversion is an involution: ``bar_name(bar_name(x)) == x``.

    >>> bar_name("D")
    'D_bar'
    >>> bar_name("D_bar")
    'D'
    """
    if name.endswith(BAR_SUFFIX):
        return name[: -len(BAR_SUFFIX)]
    return name + BAR_SUFFIX


class Grammar:
    """A mutable grammar under construction.

    Productions are registered with :meth:`add_constraint` (the paper's
    API, at most two RHS terms) or :meth:`add_rule` (arbitrary RHS length,
    binarized on :meth:`freeze`).  Call :meth:`freeze` to obtain the
    immutable, table-backed :class:`FrozenGrammar` the engine consumes.
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._ids: Dict[str, int] = {}
        self._productions: List[Production] = []
        self._long_rules: List[Tuple[int, Tuple[int, ...]]] = []

    # ------------------------------------------------------------------
    # label interning
    # ------------------------------------------------------------------
    def label(self, name: str) -> int:
        """Intern ``name`` and return its small-integer id."""
        if not name:
            raise GrammarError("label name must be non-empty")
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        if len(self._names) >= MAX_LABELS:
            raise GrammarError(f"too many labels (max {MAX_LABELS})")
        new_id = len(self._names)
        self._names.append(name)
        self._ids[name] = new_id
        return new_id

    def label_name(self, label_id: int) -> str:
        return self._names[label_id]

    def has_label(self, name: str) -> bool:
        return name in self._ids

    @property
    def num_labels(self) -> int:
        return len(self._names)

    def _coerce(self, label: "int | str") -> int:
        if isinstance(label, str):
            return self.label(label)
        if not 0 <= label < len(self._names):
            raise GrammarError(f"unknown label id {label}")
        return label

    # ------------------------------------------------------------------
    # production registration
    # ------------------------------------------------------------------
    def add_constraint(
        self,
        lhs: "int | str",
        rhs1: "int | str",
        rhs2: "int | str | None" = None,
    ) -> Production:
        """Register one production with at most two RHS terms (paper API)."""
        production = Production(
            lhs=self._coerce(lhs),
            rhs1=self._coerce(rhs1),
            rhs2=None if rhs2 is None else self._coerce(rhs2),
        )
        self._productions.append(production)
        return production

    def add_rule(self, lhs: "int | str", rhs: Sequence["int | str"]) -> None:
        """Register a production with arbitrary RHS length.

        Rules with more than two terms are binarized during :meth:`freeze`
        (every CFG can be normalized to at-most-two-term productions, §3).
        Empty RHS (epsilon) is not supported: Graspan edges always cover a
        non-empty path.
        """
        if len(rhs) == 0:
            raise GrammarError("epsilon productions are not supported")
        terms = [self._coerce(t) for t in rhs]
        lhs_id = self._coerce(lhs)
        if len(terms) <= 2:
            self.add_constraint(lhs_id, terms[0], terms[1] if len(terms) == 2 else None)
        else:
            self._long_rules.append((lhs_id, tuple(terms)))

    # ------------------------------------------------------------------
    # freezing
    # ------------------------------------------------------------------
    def freeze(self) -> "FrozenGrammar":
        """Binarize long rules, close unary chains, and build lookup tables."""
        from repro.grammar.normalize import binarize_long_rules

        productions = list(self._productions)
        productions.extend(binarize_long_rules(self, self._long_rules))
        self._long_rules = []
        self._productions = productions
        return FrozenGrammar(tuple(self._names), tuple(productions))

    def __repr__(self) -> str:
        return (
            f"Grammar({self.num_labels} labels, "
            f"{len(self._productions) + len(self._long_rules)} productions)"
        )


class FrozenGrammar:
    """An immutable grammar with the lookup tables the engine needs.

    Two structures drive edge addition:

    ``unary_closure``
        For each label ``l``, the sorted tuple of labels derivable from
        ``l`` by chains of unary productions, *including* ``l`` itself.
        Whenever an edge with label ``l`` is materialized, edges for every
        label in ``unary_closure[l]`` are materialized with it, so the join
        loop only ever consults binary productions.

    ``binary_index`` / ``binary_results``
        A dense ``(num_labels, num_labels) int16`` matrix mapping a pair of
        consecutive edge labels ``(l1, l2)`` to an index into
        ``binary_results`` (or -1 for no match).  ``binary_results[i]`` is
        the numpy array of LHS labels produced by that pair, already closed
        under unary productions.
    """

    def __init__(self, names: Tuple[str, ...], productions: Tuple[Production, ...]):
        self.names = names
        self.productions = productions
        self.num_labels = len(names)
        self._name_to_id = {name: i for i, name in enumerate(names)}

        self.unary_closure = self._compute_unary_closure()
        self.binary_index, self.binary_results = self._compute_binary_tables()

    # -- construction ---------------------------------------------------
    def _compute_unary_closure(self) -> Tuple[Tuple[int, ...], ...]:
        derives: List[set] = [{i} for i in range(self.num_labels)]
        unary = [(p.rhs1, p.lhs) for p in self.productions if p.is_unary]
        changed = True
        while changed:
            changed = False
            for src, dst in unary:
                # every label whose closure contains src also derives dst's closure
                for closure in derives:
                    if src in closure and not derives[dst] <= closure:
                        closure |= derives[dst]
                        changed = True
        return tuple(tuple(sorted(s)) for s in derives)

    def _compute_binary_tables(self) -> Tuple[np.ndarray, List[np.ndarray]]:
        pair_to_lhs: Dict[Tuple[int, int], set] = {}
        for p in self.productions:
            if p.is_unary:
                continue
            key = (p.rhs1, p.rhs2)
            produced = pair_to_lhs.setdefault(key, set())
            produced.update(self.unary_closure[p.lhs])

        index = np.full((self.num_labels, self.num_labels), -1, dtype=np.int16)
        results: List[np.ndarray] = []
        # Deduplicate identical result sets so the results list stays tiny.
        seen: Dict[Tuple[int, ...], int] = {}
        for (l1, l2), lhs_set in sorted(pair_to_lhs.items()):
            key = tuple(sorted(lhs_set))
            slot = seen.get(key)
            if slot is None:
                slot = len(results)
                results.append(np.asarray(key, dtype=np.int64))
                seen[key] = slot
            index[l1, l2] = slot
        return index, results

    # -- queries ----------------------------------------------------------
    def label_id(self, name: str) -> int:
        try:
            return self._name_to_id[name]
        except KeyError:
            raise GrammarError(f"unknown label {name!r}") from None

    def label_name(self, label_id: int) -> str:
        return self.names[label_id]

    def closure_of(self, label: "int | str") -> Tuple[int, ...]:
        if isinstance(label, str):
            label = self.label_id(label)
        return self.unary_closure[label]

    def produced_by_pair(self, l1: int, l2: int) -> Tuple[int, ...]:
        """Labels produced when an ``l1`` edge is followed by an ``l2`` edge."""
        slot = self.binary_index[l1, l2]
        if slot < 0:
            return ()
        return tuple(int(x) for x in self.binary_results[slot])

    @property
    def num_binary_pairs(self) -> int:
        return int((self.binary_index >= 0).sum())

    def continuation_labels(self) -> np.ndarray:
        """Boolean mask over labels: can the label appear as *rhs2*?

        The engine uses this to skip edges that can never extend a path.
        """
        mask = np.zeros(self.num_labels, dtype=bool)
        mask[np.unique(np.nonzero((self.binary_index >= 0))[1])] = True
        return mask

    def head_labels(self) -> np.ndarray:
        """Boolean mask over labels: can the label appear as *rhs1*?"""
        mask = np.zeros(self.num_labels, dtype=bool)
        mask[np.unique(np.nonzero((self.binary_index >= 0))[0])] = True
        return mask

    def __repr__(self) -> str:
        return (
            f"FrozenGrammar({self.num_labels} labels, "
            f"{len(self.productions)} productions, "
            f"{self.num_binary_pairs} binary pairs)"
        )
