"""Grammar specification for Graspan analyses.

The programming model (§3) asks the analysis developer for two artifacts:
a program graph and a grammar.  This package provides the grammar half —
construction (:class:`Grammar` with the paper's ``add_constraint`` API),
normalization to ≤2-term productions (:mod:`repro.grammar.normalize`), and
the built-in pointer/alias and NULL-dataflow grammars used in the paper's
evaluation (:mod:`repro.grammar.builtin`).
"""

from repro.grammar.grammar import (
    MAX_LABELS,
    FrozenGrammar,
    Grammar,
    GrammarError,
    Production,
    bar_name,
)
from repro.grammar.normalize import is_intermediate
from repro.grammar.parse import (
    grammar_to_text,
    parse_grammar_file,
    parse_grammar_text,
)
from repro.grammar.builtin import (
    LABEL_A,
    LABEL_A_BAR,
    LABEL_ALIAS,
    LABEL_D,
    LABEL_D_BAR,
    LABEL_DF,
    LABEL_M,
    LABEL_M_BAR,
    LABEL_N,
    LABEL_NF,
    LABEL_OF,
    LABEL_T,
    LABEL_TD,
    LABEL_TS,
    LABEL_TT,
    LABEL_VF,
    LABEL_T1,
    LABEL_VA,
    LABEL_VFB,
    dyck_grammar,
    nullflow_grammar,
    pointsto_grammar,
    pointsto_grammar_extended,
    reachability_grammar,
    taint_grammar,
)

__all__ = [
    "MAX_LABELS",
    "FrozenGrammar",
    "Grammar",
    "GrammarError",
    "Production",
    "bar_name",
    "is_intermediate",
    "parse_grammar_text",
    "parse_grammar_file",
    "grammar_to_text",
    "pointsto_grammar",
    "pointsto_grammar_extended",
    "nullflow_grammar",
    "taint_grammar",
    "reachability_grammar",
    "dyck_grammar",
    "LABEL_M",
    "LABEL_A",
    "LABEL_D",
    "LABEL_M_BAR",
    "LABEL_A_BAR",
    "LABEL_D_BAR",
    "LABEL_VF",
    "LABEL_OF",
    "LABEL_ALIAS",
    "LABEL_T",
    "LABEL_T1",
    "LABEL_VA",
    "LABEL_VFB",
    "LABEL_N",
    "LABEL_DF",
    "LABEL_NF",
    "LABEL_TS",
    "LABEL_TD",
    "LABEL_TT",
]
