"""The grammars used by the paper's two analyses, plus test helpers.

Pointer/alias analysis (§2.2, normalized form from §3)::

    objectFlow ::= M | M valueFlow
    valueFlow  ::= A | valueFlow A | valueFlow alias
    alias      ::= T D
    T          ::= D_bar valueFlow

``D``/``D_bar`` are the dereference edge and its inverse (the balanced
parentheses of the CFL), ``A`` an assignment edge, ``M`` an allocation
edge.  An ``objectFlow`` edge from an allocation vertex to a variable
vertex means the variable may point to the object; an ``alias`` edge
between two expression vertices means they may alias.

NULL dataflow analysis (§5, two productions)::

    nullFlow ::= N | nullFlow DF

``N`` is an edge from the distinguished NULL-source vertex to a variable
assigned NULL; ``DF`` is a value-flow edge of the dataflow graph
(assignments, parameter/return bindings, and load/store flows resolved
with pointer-analysis results).  A ``nullFlow`` edge into a variable means
NULL may reach it.

Taint/injection analysis (source → sink, a third grammar client)::

    taint ::= TS | taint TD

``TS`` is an edge from the distinguished TAINT-source vertex to a
variable receiving untrusted input (``input()``); ``TD`` is a
taint-propagating flow edge (assignments, parameter/return bindings,
arithmetic, and alias-resolved heap bridges).  Sanitization is encoded
*structurally*: ``y = sanitize(x)`` contributes no ``TD`` edge, so a
``TT`` closure edge into a variable literally means "tainted data
reaches it without passing a cleanser" — the checker only has to look
the sink argument up in the closure.
"""

from __future__ import annotations

from repro.grammar.grammar import FrozenGrammar, Grammar

# Canonical label names for the pointer/alias analysis.
LABEL_M = "M"  # allocation
LABEL_A = "A"  # assignment
LABEL_D = "D"  # dereference
LABEL_M_BAR = "M_bar"
LABEL_A_BAR = "A_bar"
LABEL_D_BAR = "D_bar"
LABEL_VF = "VF"  # valueFlow
LABEL_OF = "OF"  # objectFlow
LABEL_ALIAS = "AL"  # alias
LABEL_T = "T"  # helper nonterminal from the normalized grammar

# Canonical label names for the NULL dataflow analysis.
LABEL_N = "N"  # NULL source edge
LABEL_DF = "DF"  # dataflow (value-flow) edge
LABEL_NF = "NF"  # nullFlow

# Canonical label names for the taint/injection analysis.
LABEL_TS = "TS"  # taint source edge (TAINT vertex -> input() result)
LABEL_TD = "TD"  # taint-propagating dataflow edge
LABEL_TT = "TT"  # taint (tainted-reaches-without-sanitization)


def pointsto_grammar() -> FrozenGrammar:
    """The paper's normalized context-sensitive pointer/alias grammar."""
    g = Grammar()
    # Intern terminals first (and their inverses, which graph generation
    # emits) so label ids are stable and predictable for tests.
    for name in (
        LABEL_M,
        LABEL_A,
        LABEL_D,
        LABEL_M_BAR,
        LABEL_A_BAR,
        LABEL_D_BAR,
    ):
        g.label(name)
    g.add_constraint(LABEL_OF, LABEL_M)
    g.add_constraint(LABEL_OF, LABEL_M, LABEL_VF)
    g.add_constraint(LABEL_VF, LABEL_A)
    g.add_constraint(LABEL_VF, LABEL_VF, LABEL_A)
    g.add_constraint(LABEL_VF, LABEL_VF, LABEL_ALIAS)
    g.add_constraint(LABEL_ALIAS, LABEL_T, LABEL_D)
    g.add_constraint(LABEL_T, LABEL_D_BAR, LABEL_VF)
    return g.freeze()


LABEL_VFB = "VFB"  # backward (inverse) value flow — extended grammar only
LABEL_VA = "VA"  # value alias — extended grammar only
LABEL_T1 = "T1"  # helper for the extended alias production


def pointsto_grammar_extended() -> FrozenGrammar:
    """The symmetric (Zheng-Rugina style) pointer/alias grammar.

    The paper prints a compact five-production grammar whose ``alias``
    rule only relates a variable to a dereference reached *forward* from
    its address (``D_bar valueFlow D``).  That form cannot derive an
    alias between two dereferences whose pointers merely share a source
    (``p = &g; q = &g;`` gives no valueFlow between ``p`` and ``q``), so
    two-sided heap flows (``*p = x; y = *q;``) would be missed.  The
    full formulation the paper adapts (Zheng & Rugina [100]) closes this
    with a symmetric *value alias*: ``VA ::= VF | VFB | VFB VF`` where
    ``VFB`` is the backward flow.  The analyses in :mod:`repro.analysis`
    use this grammar; the compact one is kept for engine benchmarks and
    fidelity tests.  See DESIGN.md.
    """
    g = Grammar()
    for name in (
        LABEL_M,
        LABEL_A,
        LABEL_D,
        LABEL_M_BAR,
        LABEL_A_BAR,
        LABEL_D_BAR,
    ):
        g.label(name)
    g.add_constraint(LABEL_OF, LABEL_M)
    g.add_constraint(LABEL_OF, LABEL_M, LABEL_VF)
    # forward value flow
    g.add_constraint(LABEL_VF, LABEL_A)
    g.add_constraint(LABEL_VF, LABEL_ALIAS)
    g.add_constraint(LABEL_VF, LABEL_VF, LABEL_A)
    g.add_constraint(LABEL_VF, LABEL_VF, LABEL_ALIAS)
    # backward value flow
    g.add_constraint(LABEL_VFB, LABEL_A_BAR)
    g.add_constraint(LABEL_VFB, LABEL_ALIAS)
    g.add_constraint(LABEL_VFB, LABEL_VFB, LABEL_A_BAR)
    g.add_constraint(LABEL_VFB, LABEL_VFB, LABEL_ALIAS)
    # value alias: backward then forward through a shared source
    g.add_constraint(LABEL_VA, LABEL_VF)
    g.add_constraint(LABEL_VA, LABEL_VFB)
    g.add_constraint(LABEL_VA, LABEL_VFB, LABEL_VF)
    # alias between dereferences of value-aliased pointers
    g.add_constraint(LABEL_T1, LABEL_D_BAR, LABEL_VA)
    g.add_constraint(LABEL_ALIAS, LABEL_T1, LABEL_D)
    return g.freeze()


def nullflow_grammar() -> FrozenGrammar:
    """The two-production NULL-propagation dataflow grammar (§5)."""
    g = Grammar()
    for name in (LABEL_N, LABEL_DF):
        g.label(name)
    g.add_constraint(LABEL_NF, LABEL_N)
    g.add_constraint(LABEL_NF, LABEL_NF, LABEL_DF)
    return g.freeze()


def taint_grammar() -> FrozenGrammar:
    """The two-production taint source→sink grammar.

    Structurally the same shape as :func:`nullflow_grammar` — the point
    of the platform: a new interprocedural analysis is a new grammar
    plus a new edge extractor, not new engine code.  ``TD`` edges are
    emitted for every taint-propagating statement (copies, binops,
    parameter/return bindings, alias-resolved heap bridges) but *not*
    for ``sanitize()`` calls, so a ``TT`` closure edge into a vertex
    means untrusted input reaches it without passing a cleanser.
    """
    g = Grammar()
    for name in (LABEL_TS, LABEL_TD):
        g.label(name)
    g.add_constraint(LABEL_TT, LABEL_TS)
    g.add_constraint(LABEL_TT, LABEL_TT, LABEL_TD)
    return g.freeze()


def reachability_grammar(edge_label: str = "E", path_label: str = "R") -> FrozenGrammar:
    """Plain transitive reachability: ``R ::= E | R E``.

    Not from the paper; a minimal grammar used by tests and ablation
    benches to exercise the engine independently of the analyses.
    """
    g = Grammar()
    g.label(edge_label)
    g.add_constraint(path_label, edge_label)
    g.add_constraint(path_label, path_label, edge_label)
    return g.freeze()


def dyck_grammar() -> FrozenGrammar:
    """Balanced-parentheses (Dyck-1) reachability: the canonical CFL.

    ``S ::= ( )  |  ( S )  |  S S`` with open/close labels ``OP``/``CL``.
    Used by property tests: CFL-reachability engines must agree with a
    brute-force CYK-style oracle on this grammar.
    """
    g = Grammar()
    g.label("OP")
    g.label("CL")
    g.add_constraint("S", "OP", "CL")
    g.add_rule("S", ["OP", "S", "CL"])  # binarized on freeze()
    g.add_constraint("S", "S", "S")
    return g.freeze()
