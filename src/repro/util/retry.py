"""Retry-with-backoff policy for transient I/O failures.

Long out-of-core closures hit the disk thousands of times; a single
transient ``EIO`` (flaky block device, NFS hiccup) or ``ENOSPC`` (freed
moments later when deferred partition deletes are purged) should cost a
bounded retry, not the whole multi-hour fixpoint.  :class:`RetryPolicy`
encodes the classic exponential-backoff loop with an explicit transient
errno set, so the partition store can wrap its reads and writes without
hiding *persistent* failures — anything non-transient, or still failing
after the last attempt, propagates unchanged.
"""

from __future__ import annotations

import errno
import random
import time
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterator, Optional, TypeVar

T = TypeVar("T")

#: Errnos worth retrying.  ``ENOSPC`` is included deliberately: with
#: deferred deletes (see ``PartitionStore.retire``) space is routinely
#: reclaimed between attempts.
TRANSIENT_ERRNOS: FrozenSet[int] = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EINTR, errno.EBUSY, errno.ENOSPC}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff over a fixed attempt budget.

    ``attempts`` counts *total* tries (1 = no retry).  The delay before
    retry ``i`` (0-based) is ``base_delay * multiplier**i``, capped at
    ``max_delay``.  ``jitter`` (a fraction in ``[0, 1]``) randomizes each
    delay by ``±jitter`` of its value, so a fleet of clients retrying the
    same overloaded daemon does not stampede back in lockstep; the base
    schedule from :meth:`delays` stays deterministic for tests.  Only
    :class:`OSError`s whose errno is in ``transient_errnos`` are retried
    by default; everything else — including ``FileNotFoundError`` and
    checksum failures — is re-raised on first sight, because retrying a
    deterministic failure only hides it.  Callers with a different notion
    of "transient" (the service client: connection resets, typed
    ``overloaded`` responses) pass their own ``retryable`` predicate to
    :meth:`call`.
    """

    attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.0
    transient_errnos: FrozenSet[int] = field(default=TRANSIENT_ERRNOS)

    @classmethod
    def for_store(cls) -> "RetryPolicy":
        """The disk-facing policy: 3 quick attempts, no jitter.

        One store talks to one disk — there is no thundering herd to
        de-synchronize, and the deterministic schedule is what the
        fault-injection tests replay against.  Shared by
        :class:`~repro.partition.storage.PartitionStore` and the
        session's default store wiring, so the two can never drift.
        """
        return cls(attempts=3, base_delay=0.01, multiplier=2.0, max_delay=1.0)

    @classmethod
    def for_client(cls) -> "RetryPolicy":
        """The network-facing policy: 5 attempts, 50 ms backoff, ±25 % jitter.

        Many clients retry against one daemon (or one coordinator), so
        jitter keeps them from stampeding back in lockstep.  Shared by
        :class:`~repro.service.client.ServiceClient` and the distributed
        worker's coordinator reconnect path.
        """
        return cls(
            attempts=5,
            base_delay=0.05,
            multiplier=2.0,
            max_delay=2.0,
            jitter=0.25,
        )

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delays(self) -> Iterator[float]:
        """The backoff delay before each retry (``attempts - 1`` values)."""
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier

    def jittered_delays(
        self, rng: Optional[random.Random] = None
    ) -> Iterator[float]:
        """:meth:`delays` with the ``jitter`` fraction applied."""
        pick = (rng or random).uniform
        for delay in self.delays():
            if self.jitter:
                delay *= 1.0 + pick(-self.jitter, self.jitter)
            yield max(0.0, delay)

    def is_transient(self, exc: BaseException) -> bool:
        return (
            isinstance(exc, OSError)
            and exc.errno is not None
            and exc.errno in self.transient_errnos
        )

    def call(
        self,
        fn: Callable[[], T],
        on_retry: Optional[Callable[[BaseException, int], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        retryable: Optional[Callable[[BaseException], bool]] = None,
    ) -> T:
        """Run ``fn`` under the policy; returns its result.

        ``on_retry(exc, attempt)`` is invoked before each backoff sleep —
        the store uses it to count retries for the engine's telemetry.
        ``retryable`` overrides :meth:`is_transient` as the predicate
        deciding which exceptions are worth another attempt.
        """
        should_retry = retryable if retryable is not None else self.is_transient
        last_delay_iter = self.jittered_delays()
        attempt = 0
        while True:
            try:
                return fn()
            except BaseException as exc:
                if not should_retry(exc):
                    raise
                try:
                    delay = next(last_delay_iter)
                except StopIteration:
                    raise exc from None
                attempt += 1
                if on_retry is not None:
                    on_retry(exc, attempt)
                if delay > 0:
                    sleep(delay)
