"""Deterministic fault injection for the durability stack.

The crash-safety tests need to kill the engine at exactly the Nth store
write, tear a partition file mid-write, flip payload bytes, raise
scheduled ``EIO``/``ENOSPC`` errors, or SIGKILL a join-pool worker — and
do it *reproducibly*, so a failing seed replays.  This module provides:

:class:`InjectedCrash`
    A :class:`BaseException` standing in for ``SIGKILL``.  It derives
    from ``BaseException`` (not ``Exception``) so no recovery path in
    the engine can accidentally swallow it, and the store's tmp-file
    cleanup deliberately skips it — a real power loss runs no cleanup,
    so neither does a simulated one.

:class:`FaultPlan`
    A declarative schedule of faults, indexed by operation count
    (1-based: "the 3rd write", "the 2nd manifest commit").  Built
    directly, randomized from a seed (:meth:`FaultPlan.random`), or
    parsed from ``REPRO_FAULT_*`` environment variables
    (:meth:`FaultPlan.from_env`).

:class:`FaultInjector`
    The runtime half: counts operations and fires the planned faults.
    The partition store, the run journal, and the process join backend
    each call its hooks at their fault points; with no injector (or an
    empty plan) every hook is a no-op.

Environment knobs (all optional; see README "Fault injection"):

``REPRO_FAULT_SEED``
    Seed consumed by the fault-injection tests to place faults.
``REPRO_FAULT_CRASH_WRITE``
    Crash (torn tmp file) during the Nth partition write.
``REPRO_FAULT_FLIP_WRITE``
    Flip one payload byte of the Nth completed partition write.
``REPRO_FAULT_CRASH_COMMIT`` / ``REPRO_FAULT_CRASH_PRECOMMIT``
    Crash just after / just before the Nth manifest commit.
``REPRO_FAULT_ERRNO_WRITE`` / ``REPRO_FAULT_ERRNO_READ``
    Comma-separated ``index:ERRNO`` schedule of injected ``OSError``s,
    e.g. ``"2:EIO,5:ENOSPC"``.
``REPRO_FAULT_KILL_WORKER``
    SIGKILL one pool worker before the Nth parallel dispatch.
"""

from __future__ import annotations

import errno
import os
import random
import signal
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence


class InjectedCrash(BaseException):
    """A simulated hard kill (power loss / SIGKILL) raised by an injector."""


def _parse_errno_schedule(text: str) -> Dict[int, int]:
    """Parse ``"2:EIO,5:ENOSPC"`` into ``{2: errno.EIO, 5: errno.ENOSPC}``."""
    schedule: Dict[int, int] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        index_text, _, name = part.partition(":")
        code = getattr(errno, name.strip().upper(), None)
        if code is None:
            raise ValueError(f"unknown errno name {name!r} in fault schedule {text!r}")
        schedule[int(index_text)] = code
    return schedule


def _format_errno_schedule(schedule: Mapping[int, int]) -> str:
    """Render ``{2: errno.EIO}`` back into ``"2:EIO"`` (sorted by index)."""
    return ",".join(
        f"{index}:{errno.errorcode[code]}"
        for index, code in sorted(schedule.items())
    )


def _env_int(env: Mapping[str, str], key: str) -> Optional[int]:
    raw = env.get(key, "").strip()
    return int(raw) if raw else None


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, indexed by operation count.

    All indices are 1-based over the injector's own counters; ``None``
    disables that fault.  ``errno_at_write``/``errno_at_read`` raise a
    *transient* :class:`OSError` once at the scheduled operation (the
    store's retry policy is expected to absorb it — unless the same
    index appears repeatedly, which the dict form cannot express, so
    exhaustion tests schedule consecutive indices instead).
    """

    crash_at_write: Optional[int] = None  # tear the Nth write's tmp file
    torn_bytes: int = 12  # bytes left in the torn tmp file
    flip_byte_at_write: Optional[int] = None  # corrupt the Nth completed write
    errno_at_write: Dict[int, int] = field(default_factory=dict)
    errno_at_read: Dict[int, int] = field(default_factory=dict)
    crash_before_commit: Optional[int] = None  # die with manifest N unwritten
    crash_after_commit: Optional[int] = None  # die right after manifest N lands
    kill_worker_at_dispatch: Optional[int] = None  # SIGKILL before Nth dispatch

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "FaultPlan":
        env = os.environ if env is None else env
        return cls(
            crash_at_write=_env_int(env, "REPRO_FAULT_CRASH_WRITE"),
            flip_byte_at_write=_env_int(env, "REPRO_FAULT_FLIP_WRITE"),
            errno_at_write=_parse_errno_schedule(env.get("REPRO_FAULT_ERRNO_WRITE", "")),
            errno_at_read=_parse_errno_schedule(env.get("REPRO_FAULT_ERRNO_READ", "")),
            crash_before_commit=_env_int(env, "REPRO_FAULT_CRASH_PRECOMMIT"),
            crash_after_commit=_env_int(env, "REPRO_FAULT_CRASH_COMMIT"),
            kill_worker_at_dispatch=_env_int(env, "REPRO_FAULT_KILL_WORKER"),
        )

    @classmethod
    def random(cls, seed: int, max_index: int = 8) -> "FaultPlan":
        """A seeded single-fault plan used by the randomized test matrix."""
        rng = random.Random(seed)
        kind = rng.choice(["crash_write", "flip_write", "errno_write", "errno_read"])
        index = rng.randint(1, max_index)
        if kind == "crash_write":
            return cls(crash_at_write=index, torn_bytes=rng.randint(1, 64))
        if kind == "flip_write":
            return cls(flip_byte_at_write=index)
        if kind == "errno_write":
            return cls(errno_at_write={index: rng.choice([errno.EIO, errno.ENOSPC])})
        return cls(errno_at_read={index: errno.EIO})

    def to_env(self) -> Dict[str, str]:
        """The plan as ``REPRO_FAULT_*`` variables; inverse of
        :meth:`from_env` (modulo ``torn_bytes``, which has no knob).

        Only set faults appear, so the dict can be merged into a child
        process environment without clearing unrelated knobs.
        """
        env: Dict[str, str] = {}
        if self.crash_at_write is not None:
            env["REPRO_FAULT_CRASH_WRITE"] = str(self.crash_at_write)
        if self.flip_byte_at_write is not None:
            env["REPRO_FAULT_FLIP_WRITE"] = str(self.flip_byte_at_write)
        if self.errno_at_write:
            env["REPRO_FAULT_ERRNO_WRITE"] = _format_errno_schedule(
                self.errno_at_write
            )
        if self.errno_at_read:
            env["REPRO_FAULT_ERRNO_READ"] = _format_errno_schedule(
                self.errno_at_read
            )
        if self.crash_before_commit is not None:
            env["REPRO_FAULT_CRASH_PRECOMMIT"] = str(self.crash_before_commit)
        if self.crash_after_commit is not None:
            env["REPRO_FAULT_CRASH_COMMIT"] = str(self.crash_after_commit)
        if self.kill_worker_at_dispatch is not None:
            env["REPRO_FAULT_KILL_WORKER"] = str(self.kill_worker_at_dispatch)
        return env

    def empty(self) -> bool:
        return self == FaultPlan(torn_bytes=self.torn_bytes)


class FaultInjector:
    """Counts store/journal/pool operations and fires the planned faults.

    One injector instance follows one engine run (counters are
    cumulative), which is exactly what crash tests want: "the 7th write
    of this run" means the same operation every time.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.writes = 0
        self.reads = 0
        self.commits = 0
        self.dispatches = 0
        self.injected_errors = 0
        self.injected_crashes = 0
        self.flipped_writes = 0
        self.killed_workers = 0

    # -- partition store hooks ------------------------------------------
    def on_write_start(self, path) -> None:
        """Called once per ``save_partition`` before any bytes move."""
        self.writes += 1
        code = self.plan.errno_at_write.get(self.writes)
        if code is not None:
            self.injected_errors += 1
            raise OSError(code, os.strerror(code), str(path))

    def on_tmp_written(self, fh, tmp_path) -> None:
        """Called with the tmp file complete but not yet renamed.

        The crash fault truncates the tmp to ``torn_bytes`` and raises
        :class:`InjectedCrash` — leaving exactly the torn ``*.tmp``
        orphan a real mid-write power loss leaves.
        """
        if self.plan.crash_at_write == self.writes:
            self.injected_crashes += 1
            fh.flush()
            fh.truncate(max(0, self.plan.torn_bytes))
            raise InjectedCrash(f"injected crash during write #{self.writes} ({tmp_path})")

    def on_write_done(self, path) -> None:
        """Called after the rename; the corruption fault lands here."""
        if self.plan.flip_byte_at_write == self.writes:
            self.flipped_writes += 1
            flip_payload_byte(path)

    def on_read_start(self, path) -> None:
        self.reads += 1
        code = self.plan.errno_at_read.get(self.reads)
        if code is not None:
            self.injected_errors += 1
            raise OSError(code, os.strerror(code), str(path))

    # -- run journal hooks ----------------------------------------------
    def on_commit_start(self) -> None:
        """Called before the manifest replace of the next commit."""
        if self.plan.crash_before_commit == self.commits + 1:
            self.injected_crashes += 1
            raise InjectedCrash(
                f"injected crash before manifest commit #{self.commits + 1}"
            )

    def on_commit_done(self) -> None:
        """Called after the manifest replace is durable."""
        self.commits += 1
        if self.plan.crash_after_commit == self.commits:
            self.injected_crashes += 1
            raise InjectedCrash(f"injected crash after manifest commit #{self.commits}")

    # -- process pool hooks ----------------------------------------------
    def on_dispatch(self, worker_pids: Sequence[int]) -> None:
        """Called before each parallel dispatch; may SIGKILL one worker."""
        self.dispatches += 1
        if self.plan.kill_worker_at_dispatch == self.dispatches and worker_pids:
            self.killed_workers += 1
            os.kill(worker_pids[0], signal.SIGKILL)


def flip_payload_byte(path, offset: int = -1) -> None:
    """Flip one byte of ``path`` in place (default: the last byte).

    The canonical corruption primitive for checksum tests — a single bit
    pattern change anywhere in the payload must fail verification.
    """
    with open(path, "r+b") as fh:
        fh.seek(offset, os.SEEK_END if offset < 0 else os.SEEK_SET)
        pos = fh.tell()
        byte = fh.read(1)
        if not byte:
            raise ValueError(f"{path}: nothing to corrupt at offset {offset}")
        fh.seek(pos)
        fh.write(bytes([byte[0] ^ 0xFF]))


def faulty_store(workdir, plan: Optional[FaultPlan] = None, **store_kwargs):
    """Build a :class:`~repro.partition.storage.PartitionStore` wired to faults.

    Convenience wrapper for tests: the returned store carries a fresh
    :class:`FaultInjector` for ``plan`` (exposed as ``store.injector``).
    """
    from repro.partition.storage import PartitionStore  # local: avoid cycle

    return PartitionStore(
        workdir=workdir, injector=FaultInjector(plan), **store_kwargs
    )
