"""Timing helpers used by the engine and the benchmark harness.

The paper's Table 6 breaks Graspan's running time into computation time
(CT), I/O time, and garbage-collection time (GC).  Python has no meaningful
per-phase GC column, so :class:`TimeBreakdown` tracks named phases
generically; the bench harness reports ``compute`` and ``io`` and marks GC
as not applicable.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator


class Stopwatch:
    """A restartable wall-clock stopwatch.

    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sw.stop()
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None


class TimeBreakdown:
    """Accumulates wall-clock time per named phase (e.g. ``compute``, ``io``).

    Used by :class:`repro.engine.engine.GraspanEngine` to produce the
    Table 6 style CT / I/O breakdown.

    Accumulation is thread-safe: with the I/O pipeline on, the ``io``
    phase is recorded from the background I/O thread while the main
    thread records ``compute``, so overlapping phases simply sum their
    wall-clock contributions per thread.
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._lock = threading.Lock()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        with self._lock:
            self._totals[name] = self._totals.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        with self._lock:
            return self._totals.get(name, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._totals.values())

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._totals)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:.3f}s" for k, v in sorted(self.as_dict().items()))
        return f"TimeBreakdown({parts})"
