"""Memory accounting for the in-memory baselines.

The paper's Table 6 shows ODA and SociaLite running out of memory (OOM) on
the larger graphs while Graspan's out-of-core design completes.  Rather
than actually exhausting the machine, the baselines charge their live data
structures against an explicit :class:`MemoryBudget` and raise
:class:`MemoryBudgetExceeded` when they cross it — a faithful, bounded
stand-in for the paper's OOM outcomes.
"""

from __future__ import annotations

# Bytes charged per materialized edge by in-memory baselines.  Chosen to
# approximate a (source, target, label) record plus container overhead in
# the original engines.
BYTES_PER_EDGE = 24


class MemoryBudgetExceeded(MemoryError):
    """Raised by a baseline when its tracked allocation exceeds the budget."""

    def __init__(self, used_bytes: int, budget_bytes: int) -> None:
        super().__init__(
            f"memory budget exceeded: used {used_bytes} of {budget_bytes} bytes"
        )
        self.used_bytes = used_bytes
        self.budget_bytes = budget_bytes


class MemoryBudget:
    """Tracks logical allocations against a fixed byte budget.

    >>> budget = MemoryBudget(100)
    >>> budget.charge(60)
    >>> budget.used
    60
    >>> budget.charge(50)
    Traceback (most recent call last):
        ...
    repro.util.memory.MemoryBudgetExceeded: memory budget exceeded: used 110 of 100 bytes
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        self.budget_bytes = budget_bytes
        self.used = 0
        self.high_water = 0

    def charge(self, nbytes: int) -> None:
        self.used += nbytes
        if self.used > self.high_water:
            self.high_water = self.used
        if self.used > self.budget_bytes:
            raise MemoryBudgetExceeded(self.used, self.budget_bytes)

    def release(self, nbytes: int) -> None:
        self.used = max(0, self.used - nbytes)

    def charge_edges(self, num_edges: int) -> None:
        self.charge(num_edges * BYTES_PER_EDGE)

    def would_fit_edges(self, num_edges: int) -> bool:
        return self.used + num_edges * BYTES_PER_EDGE <= self.budget_bytes


def approx_sizeof_edges(num_edges: int) -> int:
    """Approximate bytes consumed by ``num_edges`` materialized edges."""
    return num_edges * BYTES_PER_EDGE


#: Multipliers for :func:`parse_memory_size` suffixes (binary units).
_SIZE_MULTIPLIERS = {
    "": 1,
    "b": 1,
    "k": 1 << 10,
    "kb": 1 << 10,
    "m": 1 << 20,
    "mb": 1 << 20,
    "g": 1 << 30,
    "gb": 1 << 30,
    # IEC forms; the multipliers here are binary either way.
    "kib": 1 << 10,
    "mib": 1 << 20,
    "gib": 1 << 30,
}


def parse_memory_size(text: str) -> int:
    """Parse a human memory size like ``"64M"``, ``"2g"``, or ``"4096"``.

    Accepts an optional K/M/G (or KB/MB/GB, KiB/MiB/GiB) suffix,
    case-insensitive, with binary multipliers.  Returns bytes.  Raises :class:`ValueError`
    on malformed input or non-positive sizes — this backs the engine's
    ``--memory-budget`` CLI flag, so the message names the offender.
    """
    s = str(text).strip().lower()
    i = len(s)
    while i > 0 and s[i - 1].isalpha():
        i -= 1
    number, suffix = s[:i].strip(), s[i:]
    if suffix not in _SIZE_MULTIPLIERS:
        raise ValueError(f"unknown memory size suffix {suffix!r} in {text!r}")
    try:
        value = float(number)
    except ValueError:
        raise ValueError(f"malformed memory size {text!r}") from None
    nbytes = int(value * _SIZE_MULTIPLIERS[suffix])
    if nbytes <= 0:
        raise ValueError(f"memory size must be positive, got {text!r}")
    return nbytes
