"""Small shared utilities: timing, memory accounting, deterministic RNG."""

from repro.util.timing import Stopwatch, TimeBreakdown
from repro.util.memory import MemoryBudget, MemoryBudgetExceeded, approx_sizeof_edges
from repro.util.faults import FaultInjector, FaultPlan, InjectedCrash, flip_payload_byte
from repro.util.retry import RetryPolicy, TRANSIENT_ERRNOS

__all__ = [
    "Stopwatch",
    "TimeBreakdown",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "approx_sizeof_edges",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "flip_payload_byte",
    "RetryPolicy",
    "TRANSIENT_ERRNOS",
]
