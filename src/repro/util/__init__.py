"""Small shared utilities: timing, memory accounting, deterministic RNG."""

from repro.util.timing import Stopwatch, TimeBreakdown
from repro.util.memory import MemoryBudget, MemoryBudgetExceeded, approx_sizeof_edges

__all__ = [
    "Stopwatch",
    "TimeBreakdown",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "approx_sizeof_edges",
]
