"""Lease-protocol messages: pair leases and packed deltas on JSON lines.

The coordinator and its workers talk the same newline-framed JSON the
closure daemon uses (:mod:`repro.service.protocol`), with five verbs:

``hello``
    Handshake.  The worker announces itself; the coordinator replies
    with the grammar (as a label-table + production payload — workers
    share *nothing* with the coordinator but the partition files, and
    packed keys encode label ids, so the numbering must travel intact),
    the join backend to use, and the mid-superstep edge limit.

``lease``
    The pull-model work request.  The coordinator answers with a
    :class:`Lease` (pair + per-partition file/fingerprint entries + the
    lease epoch and idempotency token), with ``status: "wait"`` when all
    remaining pairs overlap in-flight leases, or ``status: "done"`` at
    the fixed point.

``delta`` / ``complete``
    The result path.  New-edge deltas travel as packed ``(src, key)``
    int64 arrays, base64-encoded so they ride inside JSON frames; deltas
    larger than one frame are split into numbered ``delta`` chunks and
    sealed by the ``complete`` message carrying the chunk count,
    iteration/completion flags, and the worker's compute seconds.

``heartbeat`` / ``release``
    Liveness and early surrender: a heartbeat renews the lease deadline,
    a release hands an unfinishable lease (fingerprint mismatch, local
    failure) straight back to the queue without waiting for expiry.

Every lease carries a fresh ``lease_id`` token; a reissued pair gets a
new token and a bumped epoch, and the coordinator applies at most one
delta per pair-issue — the token is the idempotency key, the epoch the
tiebreaker for messages from the living dead.
"""

from __future__ import annotations

import base64
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

import numpy as np

from repro.grammar.grammar import FrozenGrammar, Production
from repro.graph import packed

PathLike = Union[str, Path]

#: Mirror of the partition store's 48-byte header (GRSPART2): magic,
#: version, payload crc32, interval lo/hi, vertex and edge counts.
_HEADER_STRUCT = struct.Struct("<8sIIqqqq")

_PARTITION_MAGIC = b"GRSPART2"

#: Edges per ``delta`` chunk.  16 raw bytes/edge becomes ~21.4 base64
#: bytes/edge, so 1.5 M edges stays far inside the 64 MiB frame limit.
DELTA_CHUNK_EDGES = 1_500_000


class LeaseError(ValueError):
    """A malformed or unusable lease message."""


def encode_array(arr: np.ndarray) -> str:
    """One int64 array as base64 of its little-endian bytes."""
    data = np.ascontiguousarray(arr, dtype="<i8")
    return base64.b64encode(data.tobytes()).decode("ascii")


def decode_array(text: str) -> np.ndarray:
    """Inverse of :func:`encode_array`; always returns native int64."""
    raw = base64.b64decode(text.encode("ascii"), validate=True)
    if len(raw) % 8:
        raise LeaseError(f"array payload of {len(raw)} bytes is not int64-aligned")
    return np.frombuffer(raw, dtype="<i8").astype(np.int64, copy=False)


def grammar_payload(grammar: FrozenGrammar) -> Dict[str, Any]:
    """A frozen grammar as a JSON-plain dict, *faithful to label ids*.

    The human-readable grammar text is not a safe wire format here: it
    enumerates productions only, so labels that appear in no production
    are dropped and the re-parse re-interns labels in first-appearance
    order.  Packed edge keys encode label *ids*, and every worker joins
    the coordinator's partitions — the numbering must survive exactly.
    """
    return {
        "labels": list(grammar.names),
        "productions": [
            [p.lhs, p.rhs1, p.rhs2] for p in grammar.productions
        ],
    }


def grammar_from_payload(payload: Dict[str, Any]) -> FrozenGrammar:
    """Inverse of :func:`grammar_payload`; id-for-id identical grammar."""
    try:
        names = tuple(str(name) for name in payload["labels"])
        productions = tuple(
            Production(
                lhs=int(lhs),
                rhs1=int(rhs1),
                rhs2=None if rhs2 is None else int(rhs2),
            )
            for lhs, rhs1, rhs2 in payload["productions"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise LeaseError(f"malformed grammar payload: {exc}") from exc
    return FrozenGrammar(names, productions)


def partition_fingerprint(path: PathLike) -> int:
    """The partition file's payload CRC32, read from its header.

    The store writes partition files once and never mutates them, so the
    header checksum identifies the *content* a lease refers to: a worker
    compares it against its cache and against the file it reads, and a
    mismatch means the lease is talking about bytes the worker cannot
    see (torn copy, wrong workdir) — grounds for a ``release``.
    """
    with open(path, "rb") as fh:
        head = fh.read(_HEADER_STRUCT.size)
    if len(head) < _HEADER_STRUCT.size:
        raise LeaseError(f"{path}: truncated partition header")
    magic, _, crc, _, _, _, _ = _HEADER_STRUCT.unpack(head)
    if magic != _PARTITION_MAGIC:
        raise LeaseError(f"{path}: not a GRSPART2 partition file")
    return int(crc)


@dataclass(frozen=True)
class LeasePartition:
    """One partition of a leased pair, addressed by file + fingerprint."""

    pid: int
    path: str  # file name relative to the shared workdir
    fingerprint: int  # payload crc32 from the GRSPART2 header
    edges: int
    lo: int  # interval lower bound (inclusive)
    hi: int  # interval upper bound (exclusive)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "edges": self.edges,
            "lo": self.lo,
            "hi": self.hi,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "LeasePartition":
        try:
            return cls(
                pid=int(payload["pid"]),
                path=str(payload["path"]),
                fingerprint=int(payload["fingerprint"]),
                edges=int(payload["edges"]),
                lo=int(payload["lo"]),
                hi=int(payload["hi"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LeaseError(f"malformed lease partition: {exc}") from exc


@dataclass(frozen=True)
class Lease:
    """One pair lease: the idempotency token plus everything a worker needs.

    ``lease_id`` is unique per issue (a reissue of the same pair gets a
    fresh token); ``epoch`` counts issues of this pair, so completions
    from a superseded holder are recognizably stale even if the token
    set were ever pruned.
    """

    lease_id: str
    epoch: int
    pair: Tuple[int, int]
    partitions: Tuple[LeasePartition, ...]
    deadline_seconds: float  # how long before the coordinator reissues

    def to_payload(self) -> Dict[str, Any]:
        return {
            "lease_id": self.lease_id,
            "epoch": self.epoch,
            "pair": list(self.pair),
            "partitions": [part.to_payload() for part in self.partitions],
            "deadline_seconds": self.deadline_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Lease":
        try:
            pair = tuple(int(x) for x in payload["pair"])
            if len(pair) != 2:
                raise LeaseError(f"lease pair must have 2 members, got {pair!r}")
            return cls(
                lease_id=str(payload["lease_id"]),
                epoch=int(payload["epoch"]),
                pair=(pair[0], pair[1]),
                partitions=tuple(
                    LeasePartition.from_payload(part)
                    for part in payload["partitions"]
                ),
                deadline_seconds=float(payload["deadline_seconds"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LeaseError(f"malformed lease: {exc}") from exc


def delta_chunks(
    added_src: np.ndarray,
    added_keys: np.ndarray,
    chunk_edges: int = DELTA_CHUNK_EDGES,
) -> List[Tuple[str, str]]:
    """Split a delta into frame-sized base64 ``(src, keys)`` chunk pairs."""
    if len(added_src) == 0:
        return []
    chunks: List[Tuple[str, str]] = []
    for start in range(0, len(added_src), chunk_edges):
        stop = start + chunk_edges
        chunks.append(
            (
                encode_array(added_src[start:stop]),
                encode_array(added_keys[start:stop]),
            )
        )
    return chunks


def join_delta_chunks(
    chunks: List[Tuple[np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Reassemble decoded ``delta`` chunks into one ``(src, keys)`` pair."""
    if not chunks:
        return packed.EMPTY, packed.EMPTY
    if len(chunks) == 1:
        return chunks[0]
    return (
        np.concatenate([src for src, _ in chunks]),
        np.concatenate([keys for _, keys in chunks]),
    )
