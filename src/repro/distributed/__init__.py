"""Distributed supersteps: coordinator/worker pair-leases (DESIGN.md §16).

The coordinator owns all closure state — scheduler, DDM, checkpoint
manifest — and leases partition *pairs* to share-nothing workers that
see only the ``GRSPART2`` files in the common workdir.  Workers join
their pair locally and ship new-edge deltas back; per-lease idempotency
tokens and epochs make delta application at-most-once, so worker death
costs a reissued lease and never a lost or doubled edge.
"""

from repro.distributed.coordinator import DistributedCoordinator, run_distributed
from repro.distributed.messages import (
    DELTA_CHUNK_EDGES,
    Lease,
    LeaseError,
    LeasePartition,
    decode_array,
    delta_chunks,
    encode_array,
    grammar_from_payload,
    grammar_payload,
    join_delta_chunks,
    partition_fingerprint,
)
from repro.distributed.worker import DistributedWorker, WorkerKilled

__all__ = [
    "DELTA_CHUNK_EDGES",
    "DistributedCoordinator",
    "DistributedWorker",
    "Lease",
    "LeaseError",
    "LeasePartition",
    "WorkerKilled",
    "decode_array",
    "delta_chunks",
    "encode_array",
    "grammar_from_payload",
    "grammar_payload",
    "join_delta_chunks",
    "partition_fingerprint",
    "run_distributed",
]
