"""The lease coordinator: scheduler, DDM, and checkpoints in one place.

The coordinator owns everything stateful about a distributed closure —
the :class:`~repro.engine.scheduler.Scheduler`, the DDM, the partition
set, and the checkpoint manifest — and shares nothing with its workers
but the ``GRSPART2`` partition files in the workdir.  Work moves as
**pair leases** over a pull model: a worker asks for work, the
coordinator flushes the chosen pair to disk and answers with file names,
content fingerprints, a fresh idempotency token, and the lease epoch;
the worker joins the pair locally and ships back only the new-edge delta
as packed ``(src, key)`` arrays.

Applying a delta reproduces the serial superstep exactly: the base pair
is re-read from the coordinator's own resident set, the delta is
deduplicated (:func:`~repro.engine.superstep._dedup_pairs`), filtered
against the base (:func:`~repro.engine.superstep._fresh_pairs` — the
edge-level idempotency backstop), merged
(:func:`~repro.engine.superstep._merge_disjoint`), scattered back into
the two partitions, and recorded in the DDM via the same
``record_added_edges`` bulk path the serial engine uses.  Because the
superstep fixpoint is confluent, the final closure is byte-identical to
the serial schedule's for any worker count; with one worker and one
in-flight lease the *schedule itself* is the serial schedule.

Fault model (the failure matrix lives in DESIGN.md §16):

* **worker death** — the serving connection drops; every lease issued on
  it is re-queued immediately with a bumped epoch.
* **deadline expiry** — leases not completed or heartbeat-renewed within
  ``lease_timeout`` are re-queued at the next lease request.
* **duplicate delivery** — a completion whose token was already applied
  is suppressed and counted, never re-applied.
* **living dead** — a completion under a superseded token/epoch (its
  lease was re-issued) is rejected and counted.

Every transition lands in :class:`~repro.engine.stats.EngineStats`
counters so the at-most-once property is directly assertable.
"""

from __future__ import annotations

import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.distributed.messages import (
    Lease,
    LeasePartition,
    decode_array,
    grammar_payload,
    join_delta_chunks,
    partition_fingerprint,
)
from repro.engine.join import CsrView
from repro.engine.parallel import JoinTelemetry, expand_view
from repro.engine.stats import SuperstepRecord
from repro.engine.superstep import _dedup_pairs, _fresh_pairs, _merge_disjoint
from repro.service.protocol import decode_message, encode_message, error_response
from repro.util.timing import Stopwatch

#: How long a worker should sleep before re-requesting a lease when all
#: remaining pairs overlap in-flight work.
WAIT_RETRY_SECONDS = 0.02


@dataclass
class _LeaseState:
    """Coordinator-side bookkeeping for one outstanding lease."""

    lease: Lease
    worker: str
    conn_id: int
    deadline: float  # monotonic reissue deadline
    reissues: int  # how many earlier issues of this pair were lost
    issued_at: float = 0.0
    chunks: List[Tuple[np.ndarray, np.ndarray]] = field(default_factory=list)


class DistributedCoordinator:
    """Serve pair leases for one opened :class:`ClosureSession`.

    The session must be opened (partitions ingested or restored) and
    disk-backed; the coordinator drives its superstep loop by applying
    worker deltas instead of calling ``session.step()``.  All shared
    state is guarded by one lock; delta application is serialized under
    it, which is also what keeps the one-worker schedule exactly serial.
    """

    def __init__(
        self,
        session,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        max_inflight: Optional[int] = None,
        worker_backend: Optional[str] = None,
        worker_threads: int = 1,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_inflight is not None and max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if session.pset is None or not session.pset.store.disk_backed:
            raise ValueError(
                "the coordinator needs an opened, disk-backed session: "
                "workers share only the workdir's partition files"
            )
        self.session = session
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.max_inflight = max_inflight
        self.worker_backend = worker_backend or "serial"
        self.worker_threads = max(1, int(worker_threads))
        self.failure: Optional[BaseException] = None

        self._lock = threading.RLock()
        self._inflight: Dict[str, _LeaseState] = {}
        self._busy: Set[int] = set()
        self._applied_tokens: Set[str] = set()
        self._retired_tokens: Set[str] = set()
        self._pair_epochs: Dict[Tuple[int, int], int] = {}
        self._workers_seen: Set[str] = set()
        self._conn_leases: Dict[int, Set[str]] = {}
        self._conn_socks: Dict[int, socket.socket] = {}
        self._done = False
        self._done_at: Optional[float] = None
        self._done_sent: Set[str] = set()
        self._next_conn_id = 0
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DistributedCoordinator":
        """Bind, listen, and serve connections on background threads."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(64)
        self.port = server.getsockname()[1]
        self._server = server
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="lease-coordinator", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the listener, and join serving threads."""
        self._shutdown_lease_plane()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        for thread in self._conn_threads:
            thread.join(timeout=5.0)
        self._conn_threads = []

    def _shutdown_lease_plane(self) -> None:
        """Close the listener and every live connection, refusing new work.

        Also the crash path: after a failure inside delta application the
        listener must actually close — a half-dead coordinator that still
        accepts TCP connections but never serves them would park every
        reconnecting worker in its backlog until the client times out.
        """
        self._stopping.set()
        server, self._server = self._server, None
        if server is not None:
            try:
                server.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conn_socks.values())
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "DistributedCoordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def finished(self) -> bool:
        """True once the scheduler reported the fixed point to a worker.

        The authoritative test is the one the lease handler runs —
        ``choose_pair`` returning None with nothing in flight — and that
        test may mutate scheduler state (round-robin cursors), so the
        handler records the verdict here instead of re-deriving it.
        """
        with self._lock:
            return self._done

    def drained(self, grace: Optional[float] = None) -> bool:
        """True once every known worker has heard ``done`` (or gave up).

        ``finished()`` flips on the *first* worker's final lease poll;
        tearing the listener down at that instant races the other
        workers' in-flight polls into connection-refused tracebacks.  A
        cross-process coordinator should instead linger until each
        worker that said hello has been answered ``done`` — or until
        ``grace`` seconds (default ``lease_timeout``) pass after the
        fixpoint, covering workers that died and will never poll again.
        """
        with self._lock:
            if not self._done:
                return False
            if self._workers_seen <= self._done_sent:
                return True
            if self._done_at is None:
                return False
            limit = self.lease_timeout if grace is None else grace
            return time.monotonic() - self._done_at > limit

    # ------------------------------------------------------------------
    # the accept/serve loop
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        server = self._server
        while not self._stopping.is_set() and server is not None:
            try:
                conn, _ = server.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                conn_id = self._next_conn_id
                self._next_conn_id += 1
                self._conn_leases[conn_id] = set()
                self._conn_socks[conn_id] = conn
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, conn_id),
                name=f"lease-conn-{conn_id}",
                daemon=True,
            )
            thread.start()
            self._conn_threads.append(thread)

    def _serve_connection(self, conn: socket.socket, conn_id: int) -> None:
        fh = conn.makefile("rwb")
        try:
            while not self._stopping.is_set():
                line = fh.readline()
                if not line:
                    break  # EOF: the worker went away
                try:
                    message = decode_message(line)
                    response = self._handle(message, conn_id)
                except BaseException as exc:  # noqa: BLE001 — see below
                    # InjectedCrash (a BaseException) and real apply
                    # failures must reach the engine's caller, not die
                    # with this serving thread: record the first one and
                    # shut the lease plane down.
                    with self._lock:
                        if self.failure is None:
                            self.failure = exc
                    self._shutdown_lease_plane()
                    break
                fh.write(encode_message(response))
                fh.flush()
        except OSError:
            pass  # connection reset mid-frame: same as EOF
        finally:
            try:
                fh.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
            self._connection_lost(conn_id)

    def _connection_lost(self, conn_id: int) -> None:
        """Re-queue every live lease the dropped connection was holding."""
        with self._lock:
            self._conn_socks.pop(conn_id, None)
            tokens = self._conn_leases.pop(conn_id, set())
            live = [t for t in tokens if t in self._inflight]
            if not live:
                return
            self.session.stats.add_counter("worker_deaths")
            for token in live:
                self._requeue(token)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def _handle(self, message: Dict[str, Any], conn_id: int) -> Dict[str, Any]:
        op = message.get("op")
        if op == "hello":
            return self._handle_hello(message)
        if op == "lease":
            return self._handle_lease(message, conn_id)
        if op == "delta":
            return self._handle_delta(message)
        if op == "complete":
            return self._handle_complete(message)
        if op == "heartbeat":
            return self._handle_heartbeat(message)
        if op == "release":
            return self._handle_release(message)
        if op == "status":
            return self._handle_status()
        return error_response(f"unknown op {op!r}")

    def _handle_hello(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker = str(message.get("worker", "worker"))
        stats = self.session.stats
        with self._lock:
            if worker not in self._workers_seen:
                self._workers_seen.add(worker)
                stats.add_counter("distributed_workers")
        return {
            "ok": True,
            "grammar": grammar_payload(self.session.engine.grammar),
            "backend": self.worker_backend,
            "num_threads": self.worker_threads,
            "mid_limit": self.session._mid_limit,
            "heartbeat_interval": self.lease_timeout / 3.0,
        }

    def _handle_lease(
        self, message: Dict[str, Any], conn_id: int
    ) -> Dict[str, Any]:
        worker = str(message.get("worker", "worker"))
        session = self.session
        with self._lock:
            self._reap_expired()
            pset = session.pset
            if self.max_inflight is not None and (
                len(self._inflight) >= self.max_inflight
            ):
                return {"ok": True, "status": "wait", "retry_after": WAIT_RETRY_SECONDS}
            pair = session.scheduler.choose_pair(
                pset.ddm,
                pset.scheduling_resident_pids(),
                exclude_pids=tuple(self._busy),
            )
            if pair is None:
                if self._inflight:
                    return {
                        "ok": True,
                        "status": "wait",
                        "retry_after": WAIT_RETRY_SECONDS,
                    }
                self._done = True
                if self._done_at is None:
                    self._done_at = time.monotonic()
                self._done_sent.add(worker)
                return {"ok": True, "status": "done"}
            if len(session.stats.supersteps) >= session.engine.max_supersteps:
                raise RuntimeError(
                    f"exceeded max_supersteps={session.engine.max_supersteps}; "
                    "the computation may be diverging"
                )
            lease = self._issue(pair, worker, conn_id)
            return {"ok": True, "status": "lease", "lease": lease.to_payload()}

    def _issue(self, pair: Tuple[int, int], worker: str, conn_id: int) -> Lease:
        """Build and register a lease for ``pair`` (lock held)."""
        session = self.session
        pset = session.pset
        p, q = min(pair), max(pair)
        loaded = (p,) if p == q else (p, q)
        # Leases reference disk content: make the members' files current.
        pset.flush_dirty()
        parts: List[LeasePartition] = []
        for pid in loaded:
            slot = pset.slot_state(pid)
            path = slot["path"]
            if path is None:
                raise RuntimeError(f"partition {pid} has no disk copy to lease")
            interval = pset.vit.interval(pid)
            parts.append(
                LeasePartition(
                    pid=pid,
                    path=Path(path).name,
                    fingerprint=partition_fingerprint(path),
                    edges=int(slot["edges"]),
                    lo=int(interval.lo),
                    hi=int(interval.hi),
                )
            )
        epoch = self._pair_epochs.get((p, q), 0) + 1
        lease = Lease(
            lease_id=uuid.uuid4().hex,
            epoch=epoch,
            pair=(p, q),
            partitions=tuple(parts),
            deadline_seconds=self.lease_timeout,
        )
        state = _LeaseState(
            lease=lease,
            worker=worker,
            conn_id=conn_id,
            deadline=time.monotonic() + self.lease_timeout,
            reissues=epoch - 1,
            issued_at=time.monotonic(),
        )
        self._inflight[lease.lease_id] = state
        self._busy.update(loaded)
        self._conn_leases.setdefault(conn_id, set()).add(lease.lease_id)
        session.stats.add_counter("leases_issued")
        return lease

    def _handle_delta(self, message: Dict[str, Any]) -> Dict[str, Any]:
        token = str(message.get("lease_id", ""))
        with self._lock:
            state = self._inflight.get(token)
            if state is None or state.lease.epoch != int(message.get("epoch", -1)):
                self.session.stats.add_counter("stale_deltas_rejected")
                return {"ok": True, "status": "stale"}
            src = decode_array(str(message.get("src", "")))
            keys = decode_array(str(message.get("keys", "")))
            if len(src) != len(keys):
                return error_response(
                    f"delta chunk arrays disagree: {len(src)} vs {len(keys)}"
                )
            state.chunks.append((src, keys))
            return {"ok": True, "status": "ack", "seq": len(state.chunks)}

    def _handle_complete(self, message: Dict[str, Any]) -> Dict[str, Any]:
        token = str(message.get("lease_id", ""))
        epoch = int(message.get("epoch", -1))
        stats = self.session.stats
        with self._lock:
            if token in self._applied_tokens:
                # Duplicate delivery (a retried completion): the delta is
                # already merged — acknowledge without re-applying.
                stats.add_counter("duplicate_deltas_suppressed")
                return {"ok": True, "status": "duplicate"}
            state = self._inflight.get(token)
            if state is None or state.lease.epoch != epoch:
                # A superseded holder reporting in after its lease was
                # re-issued (or never existed): reject, never merge.
                stats.add_counter("stale_deltas_rejected")
                return {"ok": True, "status": "stale"}
            expected = int(message.get("chunks", 0))
            if expected != len(state.chunks):
                return error_response(
                    f"lease {token}: got {len(state.chunks)} delta chunks, "
                    f"completion claims {expected}"
                )
            added_src, added_keys = join_delta_chunks(state.chunks)
            edges_added = self._apply(
                state,
                added_src,
                added_keys,
                iterations=int(message.get("iterations", 0)),
                completed=bool(message.get("completed", True)),
                compute_seconds=float(message.get("compute_seconds", 0.0)),
            )
            return {"ok": True, "status": "applied", "edges_added": edges_added}

    def _handle_heartbeat(self, message: Dict[str, Any]) -> Dict[str, Any]:
        token = str(message.get("lease_id", ""))
        with self._lock:
            state = self._inflight.get(token)
            self.session.stats.add_counter("heartbeats_received")
            if state is None:
                return {"ok": True, "status": "unknown"}
            state.deadline = time.monotonic() + self.lease_timeout
            return {"ok": True, "status": "renewed"}

    def _handle_release(self, message: Dict[str, Any]) -> Dict[str, Any]:
        token = str(message.get("lease_id", ""))
        with self._lock:
            if token not in self._inflight:
                return {"ok": True, "status": "unknown"}
            self._requeue(token)
            return {"ok": True, "status": "released"}

    def _handle_status(self) -> Dict[str, Any]:
        stats = self.session.stats
        with self._lock:
            return {
                "ok": True,
                "finished": self.finished(),
                "inflight": len(self._inflight),
                "supersteps": stats.num_supersteps,
                "distributed": stats.distributed_summary(),
            }

    # ------------------------------------------------------------------
    # lease bookkeeping
    # ------------------------------------------------------------------
    def _reap_expired(self) -> None:
        """Re-queue every lease past its deadline (lock held)."""
        now = time.monotonic()
        expired = [
            token
            for token, state in self._inflight.items()
            if state.deadline < now
        ]
        for token in expired:
            self.session.stats.add_counter("leases_expired")
            self._requeue(token)

    def _requeue(self, token: str) -> None:
        """Forget an outstanding lease so its pair is schedulable again.

        The pair's DDM cells were never synced (only a completed apply
        syncs them), so dropping the lease *is* the re-queue; the next
        lease request may pick the pair up under a bumped epoch.  The
        retired token keeps late completions recognizably stale.
        """
        state = self._inflight.pop(token, None)
        if state is None:
            return
        self._retired_tokens.add(token)
        p, q = state.lease.pair
        self._busy.discard(p)
        self._busy.discard(q)
        self._pair_epochs[(p, q)] = state.lease.epoch
        self.session.stats.add_counter("leases_reissued")

    def _shift_pids(self, split_pid: int) -> None:
        """Renumber lease state after ``split_pid`` split (lock held).

        ``PartitionSet.split`` inserts the right half at ``pid + 1``,
        shifting every higher id up by one.  In-flight leases are always
        disjoint from the pair being applied (the only place splits
        happen), so no outstanding lease references ``split_pid`` itself
        — members above it just slide up.  Vertex intervals and file
        contents are untouched by renumbering, so the leases workers
        hold remain valid; only the coordinator's pid bookkeeping moves.
        """

        def shift(pid: int) -> int:
            return pid + 1 if pid > split_pid else pid

        self._busy = {shift(pid) for pid in self._busy}
        self._pair_epochs = {
            (shift(p), shift(q)): epoch
            for (p, q), epoch in self._pair_epochs.items()
        }
        for state in self._inflight.values():
            p, q = state.lease.pair
            if p > split_pid or q > split_pid:
                lease = state.lease
                state.lease = Lease(
                    lease_id=lease.lease_id,
                    epoch=lease.epoch,
                    pair=(shift(p), shift(q)),
                    partitions=lease.partitions,
                    deadline_seconds=lease.deadline_seconds,
                )

    # ------------------------------------------------------------------
    # delta application: the distributed half of _run_one_superstep
    # ------------------------------------------------------------------
    def _apply(
        self,
        state: _LeaseState,
        added_src: np.ndarray,
        added_keys: np.ndarray,
        iterations: int,
        completed: bool,
        compute_seconds: float,
    ) -> int:
        """Merge one worker delta exactly as the serial superstep would.

        Called with the lock held; returns the number of edges actually
        merged.  The final pair content is reconstructed as
        ``base ∪ delta`` — ``run_superstep`` returns its added arrays as
        the disjoint complement of the base in the final set, so the
        merge of the shipped delta with the coordinator's own base *is*
        the worker's final edge set, in the same canonical lexsorted
        order ``_merge_disjoint`` always produces.
        """
        from repro.engine.session import _combine_views, record_added_edges

        session = self.session
        pset, stats = session.pset, session.stats
        lease = state.lease
        token = lease.lease_id
        p, q = lease.pair
        loaded = (p,) if p == q else (p, q)
        watch = Stopwatch().start()
        with pset.pinned(*loaded):
            if pset.memory_budget is None:
                pset.evict_all_except(loaded)
            parts = [pset.acquire(pid) for pid in loaded]
            base = _combine_views(parts)
            base_src, base_keys = expand_view(base)

            with stats.timers.phase("compute"):
                delta_src, delta_keys = _dedup_pairs(added_src, added_keys)
                if len(delta_src):
                    # Edge-level idempotency backstop: anything already in
                    # the base (impossible under at-most-once delivery,
                    # cheap to enforce) is dropped before the merge so
                    # the DDM sees exactly the genuinely new edges.
                    delta_src, delta_keys = _fresh_pairs(
                        delta_src, delta_keys, base
                    )
                final_src, final_keys = _merge_disjoint(
                    base_src, base_keys, delta_src, delta_keys
                )

            for pid, part in zip(loaded, parts):
                lo = int(
                    np.searchsorted(final_src, part.interval.lo, side="left")
                )
                hi = int(
                    np.searchsorted(final_src, part.interval.hi, side="right")
                )
                view = CsrView.from_flat(final_src[lo:hi], final_keys[lo:hi])
                part.replace_csr(view.vertices, view.indptr, view.keys)
                pset.note_mutated(pid)
                pset.ddm.set_exact_row(pid, part.destination_counts(pset.vit))

            record_added_edges(pset, delta_src, delta_keys)
            if completed:
                pset.ddm.mark_synced(loaded)

            resident_edges = sum(pset.edge_count(pid) for pid in loaded)
            stats.max_counter("peak_resident_edges", resident_edges)

            # Settle the lease ledger BEFORE repartitioning: splits shift
            # partition ids (including this lease's own members), and the
            # busy set must be released under the pre-split ids or the
            # shifted survivors leak as permanently-excluded pids.  It
            # also precedes the checkpoint commit so a crash inside the
            # commit cannot leave the lease re-appliable.
            self._applied_tokens.add(token)
            self._inflight.pop(token, None)
            self._busy.discard(p)
            self._busy.discard(q)
            self._pair_epochs[(p, q)] = lease.epoch
            self._conn_leases.get(state.conn_id, set()).discard(token)
            stats.add_counter("leases_completed")
            stats.add_counter("delta_edges_applied", len(delta_src))

            self._maybe_repartition(loaded)
        pset.enforce_budget()
        apply_seconds = watch.stop()

        telemetry = JoinTelemetry(
            backend="distributed",
            pool_seconds=compute_seconds,
            serial_estimate_seconds=compute_seconds,
            lease_epoch=lease.epoch,
            lease_reissues=state.reissues,
            delta_edges=len(delta_src),
        )
        stats.record_superstep(
            SuperstepRecord(
                pair=(p, q),
                iterations=iterations,
                edges_added=len(delta_src),
                seconds=compute_seconds if compute_seconds > 0 else apply_seconds,
                completed=completed,
                num_partitions_after=pset.num_partitions,
                backend=telemetry.backend,
                pool_seconds=telemetry.pool_seconds,
                serial_estimate_seconds=telemetry.serial_estimate_seconds,
                worker=state.worker,
                lease_epoch=lease.epoch,
                lease_reissues=state.reissues,
                delta_edges=len(delta_src),
            )
        )

        session.superstep_index += 1
        if session.journal is not None:
            session._commit_checkpoint()
        return int(len(delta_src))

    def _maybe_repartition(self, loaded: Tuple[int, ...]) -> None:
        """Split outgrown loaded partitions, renumbering lease state."""
        session = self.session
        engine, pset, stats = session.engine, session.pset, session.stats
        if engine.max_edges_per_partition is None:
            return
        threshold = int(
            engine.max_edges_per_partition * engine.repartition_growth
        )
        for pid in sorted(loaded, reverse=True):
            while (
                pset.edge_count(pid) > threshold
                and len(pset.vit.interval(pid)) > 1
            ):
                pset.split(pid)
                stats.add_counter("repartition_count")
                self._shift_pids(pid)


def run_distributed(session) -> None:
    """Drive an opened session to its fixed point through lease workers.

    The engine-integrated form of the coordinator: in-process worker
    threads (``engine.num_threads`` of them, or ``workers`` from the
    engine's ``distributed`` options) pull leases over real sockets from
    a coordinator wrapping ``session``.  Workers that die (injected
    faults) are replaced until the coordinator reports the fixed point,
    so a run with a seeded worker-kill plan still completes — via lease
    reissue, never by re-applying a delta.
    """
    from repro.distributed.worker import DistributedWorker, WorkerKilled
    from repro.service.client import ServiceError

    engine = session.engine
    options = dict(getattr(engine, "distributed", None) or {})
    num_workers = max(1, int(options.get("workers", engine.num_threads) or 1))
    lease_timeout = float(options.get("lease_timeout", 30.0))
    max_inflight = options.get("max_inflight")
    worker_backend = options.get("worker_backend")
    worker_threads = int(options.get("worker_threads", 1))
    worker_budget = options.get("worker_memory_budget", engine.memory_budget)
    plan = engine.fault_injector.plan if engine.fault_injector else None

    coordinator = DistributedCoordinator(
        session,
        lease_timeout=lease_timeout,
        max_inflight=max_inflight,
        worker_backend=worker_backend,
        worker_threads=worker_threads,
    )
    coordinator.start()
    try:
        generation = 0
        while True:
            threads = []
            for i in range(num_workers):
                # The seeded kill plan rides on worker 0 of the first
                # generation only — one deterministic death, as the
                # REPRO_FAULT_KILL_WORKER contract specifies.
                worker_plan = plan if (i == 0 and generation == 0) else None
                worker = DistributedWorker(
                    "127.0.0.1",
                    coordinator.port,
                    workdir=engine.workdir,
                    worker_id=f"w{generation}-{i}",
                    memory_budget=worker_budget,
                    fault_plan=worker_plan,
                )
                thread = threading.Thread(
                    target=_run_worker_quietly,
                    args=(worker,),
                    name=f"lease-worker-{generation}-{i}",
                    daemon=True,
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join()
            if (
                coordinator.failure is not None
                or coordinator.finished()
                or coordinator._stopping.is_set()
            ):
                break
            generation += 1
            if generation > 16:
                raise RuntimeError(
                    "distributed workers kept dying without reaching the "
                    "fixed point; giving up after 16 replacement rounds"
                )
            num_workers = 1  # a single replacement drains reissued leases
    finally:
        coordinator.stop()
    if coordinator.failure is not None:
        raise coordinator.failure
    # Imported for the quiet-runner's except clause; referenced here so
    # linters see the imports are intentional.
    del WorkerKilled, ServiceError


def _run_worker_quietly(worker) -> None:
    """Run one in-process worker, absorbing expected terminal states."""
    from repro.distributed.worker import WorkerKilled
    from repro.service.client import ServiceError

    try:
        worker.run()
    except WorkerKilled:
        pass  # simulated SIGKILL: the coordinator reissues its lease
    except ServiceError:
        pass  # coordinator gone (stopped or crashed): nothing to do here
